#!/usr/bin/env python3
"""DPDK pipeline mode: two cores joined by an rte_ring (paper §II.A).

Run-to-completion mode processes each packet fully on one core; pipeline
mode splits RX and packet processing across cores connected by a
user-level ring buffer.  This example runs the same deep-touch workload
both ways and compares sustained throughput and per-core utilization.

Run:  python examples/pipeline_mode.py
"""

from repro.apps.touchfwd import TouchFwd
from repro.harness.report import format_table
from repro.loadgen.ether_load_gen import SyntheticConfig
from repro.system.node import DpdkNode
from repro.system.presets import gem5_default

PACKET_SIZE = 1518
RATE_GBPS = 12.0
COUNT = 4000


def run_to_completion():
    node = DpdkNode(gem5_default())
    node.install_app(TouchFwd)
    loadgen = node.attach_loadgen()
    node.start()
    loadgen.start_synthetic(SyntheticConfig(packet_size=PACKET_SIZE,
                                            rate_gbps=RATE_GBPS,
                                            count=COUNT))
    node.run_us(6000.0)
    return node, loadgen


def pipeline():
    node = DpdkNode(gem5_default())
    node.install_pipeline_app(touch_payload=True)
    loadgen = node.attach_loadgen()
    node.start()
    loadgen.start_synthetic(SyntheticConfig(packet_size=PACKET_SIZE,
                                            rate_gbps=RATE_GBPS,
                                            count=COUNT))
    node.run_us(6000.0)
    return node, loadgen


def main() -> None:
    rtc_node, rtc_lg = run_to_completion()
    pipe_node, pipe_lg = pipeline()
    rows = [
        ["run-to-completion",
         f"{rtc_lg.rx_packets}/{rtc_lg.tx_packets}",
         f"{rtc_lg.drop_rate * 100:.1f}%",
         f"{rtc_node.core.busy_ns / 1e3:.0f}",
         "-"],
        ["pipeline (2 cores)",
         f"{pipe_lg.rx_packets}/{pipe_lg.tx_packets}",
         f"{pipe_lg.drop_rate * 100:.1f}%",
         f"{pipe_node.core.busy_ns / 1e3:.0f}",
         f"{pipe_node.worker_core.busy_ns / 1e3:.0f}"],
    ]
    print(format_table(
        f"TouchFwd at {RATE_GBPS} Gbps, {PACKET_SIZE}B frames",
        ["mode", "rcvd/sent", "drop", "core0 busy us", "core1 busy us"],
        rows))
    print("\nPipeline mode relieves the RX core (compare core0 busy "
          "time), but end-to-end capacity")
    print("is still set by the slowest stage — the deep-touch worker — "
          "plus the rte_ring handoff.")
    print("Pipelining pays off when processing is split across several "
          "worker stages, which is the")
    print("multi-core pattern the paper describes for it (§II.A).")


if __name__ == "__main__":
    main()
