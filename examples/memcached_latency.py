#!/usr/bin/env python3
"""Load a memcached server through the simulated network (paper §VI-VII).

Builds a DPDK-based and a kernel-based memcached server, warms each with
5000 keys (key/value sizes Zipfian: min=10, max=100, skew=0.5 — the
paper's workload), then drives 80% GET / 20% SET traffic at increasing
request rates and reports throughput, drop rate and round-trip latency
percentiles per rate — the data behind Figs 18-19.

Run:  python examples/memcached_latency.py
"""

from repro.harness.report import format_table
from repro.harness.runner import run_memcached
from repro.system.presets import gem5_default


def main() -> None:
    config = gem5_default()
    for kernel, rates in ((False, (200_000, 500_000, 700_000)),
                          (True, (100_000, 200_000, 300_000))):
        flavour = "MemcachedKernel" if kernel else "MemcachedDPDK"
        rows = []
        for rate in rates:
            result = run_memcached(config, kernel, float(rate),
                                   n_requests=2000)
            rows.append([
                f"{rate // 1000}k",
                f"{result.drop_rate * 100:.1f}%",
                f"{result.latency_us.get('mean', 0):.0f}",
                f"{result.latency_us.get('median', 0):.0f}",
                f"{result.latency_us.get('p99', 0):.0f}",
                f"{result.get_hits}",
            ])
        print(format_table(
            f"{flavour}: load vs latency (3GHz O3 core)",
            ["offered RPS", "drop", "mean us", "median us", "p99 us",
             "GET hits"],
            rows))
        print()


if __name__ == "__main__":
    main()
