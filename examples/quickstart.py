#!/usr/bin/env python3
"""Quickstart: bring up a DPDK Test Node and load it with EtherLoadGen.

This walks the exact bring-up the paper's Listing 2 performs on gem5:

    modprobe uio_pci_generic
    dpdk-devbind.py -b uio_pci_generic 00:02.0
    echo 2048 > /sys/kernel/mm/hugepages/.../nr_hugepages
    dpdk-testpmd -l 0-3 -n 4 -- --nb-cores=1 --forward-mode=macswap

then connects the hardware load generator (Fig 1b), offers 10 Gbps of
256-byte frames, and prints the statistics EtherLoadGen reports.

Run:  python examples/quickstart.py
"""

from repro.apps.testpmd import TestPmd
from repro.loadgen.ether_load_gen import SyntheticConfig
from repro.system.node import DpdkNode
from repro.system.presets import gem5_default


def main() -> None:
    config = gem5_default()

    # Build the Test Node: core + caches + DRAM + PCI + NIC, UIO-bound,
    # hugepages reserved, EAL probed, PMD launched.
    node = DpdkNode(config)
    node.install_app(TestPmd, forward_mode="macswap")
    print(f"NIC bound to {node.nic.driver_name}, "
          f"PMD launched on {node.nic.bdf}")
    print(f"mempool: {node.mempool!r}")

    # Connect the hardware load generator directly to the NIC port.
    loadgen = node.attach_loadgen()
    node.start()
    loadgen.start_synthetic(SyntheticConfig(
        packet_size=256,
        rate_gbps=10.0,
        count=5000,
        distribution="fixed",
    ))

    # Simulate: sends finish in ~1 ms of simulated time; allow the round
    # trip (2 x 200us link latency) to drain.
    node.run_us(3000.0)

    # EtherLoadGen's statistics-file summary.
    print(f"\noffered      : {loadgen.offered_gbps():.2f} Gbps")
    print(f"sent/received: {loadgen.tx_packets}/{loadgen.rx_packets}")
    print(f"drop rate    : {loadgen.drop_rate * 100:.2f}%")
    print("round-trip latency (us):")
    for key, value in loadgen.latency.summary().items():
        print(f"  {key:>7s}: {value:10.2f}")

    # Drop causes, if any (Fig 4 FSM).
    print("drop breakdown:", node.nic.drop_fsm.breakdown())

    # What the app saw.
    print(f"\napp processed {node.app.packets_processed} packets in "
          f"{node.app.bursts} bursts; core busy "
          f"{node.core.busy_ns / 1000:.1f} us")


if __name__ == "__main__":
    main()
