#!/usr/bin/env python3
"""Deep vs shallow network functions under microarchitectural sweeps.

TouchFwd models a deep network function (every payload byte inspected,
like DPI); TestPMD is the shallow L2 forwarder.  This example sweeps core
frequency and core type to show the paper's §VII.C findings: deep
functions are core-bound everywhere — they scale with frequency and gain
dramatically from out-of-order execution — while the shallow forwarder
goes IO-bound at MTU frames and stops caring.

Run:  python examples/deep_packet_inspection.py
"""

from repro.harness.msb import find_msb
from repro.harness.report import format_table
from repro.system.presets import gem5_default, with_core, with_frequency


def main() -> None:
    base = gem5_default()

    rows = []
    for ghz in (1.0, 2.0, 3.0, 4.0):
        config = with_frequency(base, ghz * 1e9)
        shallow = find_msb(config, "testpmd", 1518).msb_gbps
        deep = find_msb(config, "touchfwd", 1518, max_gbps=20.0).msb_gbps
        rows.append([f"{ghz:.0f} GHz", f"{shallow:.1f}", f"{deep:.1f}"])
    print(format_table(
        "MSB (Gbps) at 1518B vs core frequency",
        ["frequency", "TestPMD (shallow)", "TouchFwd (deep)"], rows))

    print()
    rows = []
    for label, config in (("out-of-order", with_core(base, True)),
                          ("in-order", with_core(base, False))):
        shallow = find_msb(config, "testpmd", 1518).msb_gbps
        deep = find_msb(config, "touchfwd", 128, max_gbps=20.0).msb_gbps
        rows.append([label, f"{shallow:.1f}", f"{deep:.1f}"])
    print(format_table(
        "MSB (Gbps) vs core microarchitecture",
        ["core", "TestPMD 1518B", "TouchFwd 128B"], rows))

    print("\nTakeaway: the deep function tracks the core; the shallow one "
          "tracks the I/O subsystem.")


if __name__ == "__main__":
    main()
