#!/usr/bin/env python3
"""EtherLoadGen trace mode: record a PCAP, replay it against a server.

The paper's §IV workflow: userspace traffic cannot be captured with
tcpdump, so the DPDK KVS client integrates a PCAP writer (dpdk-pdump);
EtherLoadGen then replays the capture, rewriting destination MACs to the
simulated system and pacing by the embedded timestamps.

This example records 500 memcached requests to ``/tmp/kvs_requests.pcap``
(a standard pcap readable by wireshark), replays the file through
EtherLoadGen's trace mode against a MemcachedDPDK server, and reports the
outcome.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro.apps.memcached_dpdk import MemcachedDpdk
from repro.kvstore.store import KvStore
from repro.loadgen.ether_load_gen import (
    DEFAULT_DST_MAC,
    DEFAULT_SRC_MAC,
    TraceConfig,
)
from repro.loadgen.memcached_client import (
    MemcachedClient,
    MemcachedClientConfig,
)
from repro.net.pcap import PcapReader
from repro.system.node import DpdkNode
from repro.system.presets import gem5_default


def main() -> None:
    trace_path = Path(tempfile.gettempdir()) / "kvs_requests.pcap"

    # --- record phase (the dpdk-pdump integration) ----------------------
    node = DpdkNode(gem5_default())
    store = KvStore(node.address_space)
    node.install_app(MemcachedDpdk, store=store)
    recorder = MemcachedClient(
        node.sim, "recorder",
        MemcachedClientConfig(n_warm_keys=300, n_requests=500,
                              rate_rps=400_000.0),
        dst_mac=DEFAULT_DST_MAC, src_mac=DEFAULT_SRC_MAC)
    recorder.preload(store)
    written = recorder.write_trace(trace_path, n_requests=500)
    print(f"recorded {written} request frames to {trace_path}")

    # --- replay phase (EtherLoadGen trace mode) --------------------------
    records = PcapReader(trace_path).read_all()
    print(f"trace: {len(records)} records, "
          f"first frame {records[0].wire_len}B, "
          f"span {(records[-1].ts_ns - records[0].ts_ns) / 1e6:.2f} ms")
    loadgen = node.attach_loadgen()
    node.start()
    loadgen.start_trace(TraceConfig(records=records,
                                    use_trace_timestamps=True))
    node.run_us(5000.0)

    print(f"\nreplayed      : {loadgen.tx_packets} frames")
    print(f"server served : {node.app.requests_served} requests "
          f"({node.app.parse_errors} parse errors)")
    print(f"responses     : {loadgen.rx_packets}")
    print(f"drop rate     : {loadgen.drop_rate * 100:.2f}%")
    print("rtt (us)      :", {k: round(v, 1) for k, v in
                              loadgen.latency.summary().items()})


if __name__ == "__main__":
    main()
