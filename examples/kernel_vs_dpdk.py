#!/usr/bin/env python3
"""Kernel stack vs userspace networking: the paper's headline experiment.

Measures the maximum sustainable bandwidth (MSB) of the kernel network
stack (iperf over the interrupt-driven driver) and of DPDK (testpmd over
the poll-mode driver) at several frame sizes, printing the speedup that
motivates the whole paper ("6.3x compared with the current Linux kernel
software stack").

Run:  python examples/kernel_vs_dpdk.py
"""

from repro.harness.msb import find_msb
from repro.harness.report import format_table
from repro.system.presets import gem5_default


def main() -> None:
    config = gem5_default()
    rows = []
    for size in (128, 512, 1518):
        dpdk = find_msb(config, "testpmd", size).msb_gbps
        kernel = find_msb(config, "iperf", size, max_gbps=16.0).msb_gbps
        rows.append([f"{size}B", f"{kernel:.2f}", f"{dpdk:.2f}",
                     f"{dpdk / kernel:.1f}x"])
    print(format_table(
        "Maximum sustainable bandwidth: kernel stack vs DPDK",
        ["frame", "kernel (iperf) Gbps", "DPDK (testpmd) Gbps", "speedup"],
        rows))
    print()
    print("Why: the kernel path pays interrupts, context switches, "
          "syscalls and per-packet copies;")
    print("the DPDK path polls descriptor rings from userspace with "
          "zero-copy hugepage buffers.")


if __name__ == "__main__":
    main()
