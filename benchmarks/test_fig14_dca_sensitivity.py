"""Fig 14 — effect of Direct Cache Access on MSB/RPS.

Paper: DCA enables higher throughput for every application; the relative
gain is largest for DPDK applications (zero-copy makes DMA placement the
dominant memory effect) — e.g. TestPMD +54.5% to +96.3% at small/mid
sizes and +14.3% at 1518B.
"""

from repro.harness.experiments import fig14_dca_sensitivity
from repro.harness.report import format_series


def _flatten(result):
    return {f"{app}/{variant}": points
            for app, per_variant in result.items()
            for variant, points in per_variant.items()}


def test_fig14_dca_sensitivity(benchmark, scope, save_result):
    result = benchmark.pedantic(
        fig14_dca_sensitivity,
        kwargs={"packet_sizes": scope.sizes_sensitivity,
                "jobs": scope.jobs, "cache_dir": scope.cache_dir},
        rounds=1, iterations=1)
    text = format_series(
        "Fig 14: MSB (Gbps) / RPS (k) with DCA enabled vs disabled",
        _flatten(result), x_label="pkt size B", y_label="MSB/kRPS")
    save_result("fig14_dca_sensitivity", text)

    def gain(app, size):
        on = dict(result[app]["ddio-enabled"])[size]
        off = dict(result[app]["ddio-disabled"])[size]
        return on / max(off, 1e-9)

    small = scope.sizes_sensitivity[0]
    # DCA helps DPDK forwarding at small (core-bound) packet sizes...
    assert gain("TestPMD", small) > 1.15
    # ...and never hurts.
    for app in ("TestPMD", "TouchFwd", "RXpTX-10ns"):
        for size in scope.sizes_sensitivity:
            assert gain(app, size) >= 0.97
