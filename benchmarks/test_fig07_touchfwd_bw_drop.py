"""Fig 7 — TouchFwd bandwidth vs drop rate, gem5 vs altra.

Paper: the deep network function drops at far lower bandwidths than
TestPMD; gem5 tracks altra with slightly lower throughput (the real N1
core outperforms the simulated one on core-bound work).
"""

from repro.harness.experiments import fig7_touchfwd_bw_drop
from repro.harness.plotting import ascii_plot
from repro.harness.report import format_series


def test_fig07_touchfwd_bw_drop(benchmark, scope, save_result):
    series = benchmark.pedantic(
        fig7_touchfwd_bw_drop,
        kwargs={"packet_sizes": scope.sizes_bwdrop,
                "rates": [2, 4, 6, 8, 10, 12, 14],
                "n_packets": scope.n_packets,
                "jobs": scope.jobs, "cache_dir": scope.cache_dir},
        rounds=1, iterations=1)
    text = format_series(
        "Fig 7: TouchFwd bandwidth vs drop rate (gem5 vs altra)",
        series, x_label="offered Gbps", y_label="drop rate")
    text += "\n\n" + ascii_plot(
        {k: list(v) for k, v in series.items() if v},
        x_label="offered Gbps", y_label="drop rate",
        title="shape preview")
    save_result("fig07_touchfwd_bw_drop", text)

    # Deep function: drops appear within the 0-14 Gbps window on gem5.
    gem5_small = series[f"{scope.sizes_bwdrop[0]}-gem5"]
    assert any(d > 0.05 for _x, d in gem5_small)
    # altra sustains at least as much as gem5 at the largest size
    # (core-bound + real-core advantage).
    biggest = scope.sizes_bwdrop[-1]

    def knee(points, threshold=0.01):
        best = 0.0
        for x, d in points:
            if d <= threshold:
                best = x
            else:
                break
        return best

    assert knee(series[f"{biggest}-altra"]) >= \
        knee(series[f"{biggest}-gem5"]) - 2.0
