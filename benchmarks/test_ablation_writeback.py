"""Ablation — descriptor-cache writeback threshold (paper §III.A.3).

The paper's NIC fix makes the writeback threshold a parameter because a
poll-mode driver on baseline gem5 degenerates to writing back only when
the whole descriptor cache is used, DMAing packets "in large batches (32
to 64 packets), which causes unrealistic pressure on the CPU memory
subsystem and increases the possibility of packet drops at high receive
rates".  This ablation sweeps the threshold and measures both effects:
per-packet latency at low rate (batching delays visibility) and drop rate
at high rate.
"""

from dataclasses import replace

from repro.harness.report import format_table
from repro.harness.runner import run_fixed_load
from repro.nic.i8254x import NicQuirks
from repro.system.presets import gem5_default


def _config_with_threshold(threshold, timer_us=2.0, baseline=False):
    base = gem5_default()
    nic = replace(base.nic, writeback_threshold=threshold,
                  writeback_timer_us=timer_us)
    if baseline:
        nic = replace(nic, quirks=NicQuirks(
            imr_implemented=True, pmd_writeback_threshold_works=False))
    return base.variant(nic=nic)


def run_ablation():
    rows = []
    for label, threshold, timer, baseline in (
            ("threshold=1", 1, 2.0, False),
            ("threshold=8 (paper)", 8, 2.0, False),
            ("threshold=32", 32, 16.0, False),
            ("baseline gem5 PMD (full cache)", 8, 2.0, True)):
        config = _config_with_threshold(threshold, timer, baseline)
        low = run_fixed_load(config, "testpmd", 256, 1.0, n_packets=800)
        high = run_fixed_load(config, "testpmd", 256, 50.0, n_packets=4000)
        rows.append((label, low.latency_us.get("mean", 0.0),
                     high.drop_rate, high.service_gbps))
    return rows


def test_ablation_writeback_threshold(benchmark, save_result):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    table = format_table(
        "Ablation: descriptor writeback threshold (paper fix #3)",
        ["configuration", "low-rate mean RTT (us)", "overload drop",
         "service Gbps"],
        [[label, f"{lat:.1f}", f"{drop * 100:.1f}%", f"{svc:.1f}"]
         for label, lat, drop, svc in rows])
    save_result("ablation_writeback_threshold", table)

    by_label = {label: (lat, drop, svc) for label, lat, drop, svc in rows}
    paper_lat = by_label["threshold=8 (paper)"][0]
    batch_lat = by_label["baseline gem5 PMD (full cache)"][0]
    # Full-cache batching visibly delays packets at low rate.
    assert batch_lat > paper_lat + 5.0
