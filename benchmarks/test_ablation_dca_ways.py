"""Ablation — DCA way-partition size.

The paper fixes DCA at 4/16 LLC ways (256KiB of a 1MiB-per-4MiB LLC for
network data) and shows that a too-small partition leaks in-flight DMA
data to DRAM (Fig 13).  This ablation sweeps the reserved way count at a
fixed large ring, measuring throughput and leaked lines.
"""

from dataclasses import replace

from repro.harness.report import format_table
from repro.harness.runner import run_fixed_load
from repro.system.presets import gem5_default, with_dca, with_llc_size

MIB = 1024 * 1024


def run_ablation():
    rows = []
    for ways in (0, 2, 4, 8):
        base = with_llc_size(gem5_default(), 1 * MIB)
        config = with_dca(base, ways > 0, io_ways=ways)
        config = config.variant(
            nic=replace(config.nic, rx_ring_size=2048, tx_ring_size=2048),
            mempool_mbufs=5000)
        result = run_fixed_load(config, "rxptx", 256, 20.0,
                                n_packets=3000,
                                app_options={"proc_time_ns": 2000.0})
        rows.append((ways, result.service_gbps, result.drop_rate,
                     result.dma_leaked_lines, result.llc_miss_rate))
    return rows


def test_ablation_dca_ways(benchmark, save_result):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    table = format_table(
        "Ablation: LLC ways reserved for DCA (ring 2048, LLC 1MiB, "
        "RXpTX-2us at 20Gbps offered)",
        ["io ways", "service Gbps", "drop", "leaked lines",
         "LLC miss rate"],
        [[w, f"{svc:.1f}", f"{drop * 100:.1f}%", leaks, f"{miss:.2f}"]
         for w, svc, drop, leaks, miss in rows])
    save_result("ablation_dca_ways", table)

    by_ways = {w: (svc, drop, leaks, miss) for w, svc, drop, leaks,
               miss in rows}
    # More reserved ways leak less in-flight DMA data.
    assert by_ways[8][2] <= by_ways[2][2]
