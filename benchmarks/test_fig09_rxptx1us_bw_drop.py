"""Fig 9 — RXpTX (1us processing) bandwidth vs drop rate.

Paper: with a 1us processing interval small-packet MSB collapses (2/5/10
Gbps at 64/128/256B in their setup) while large packets are barely
affected — the per-burst cost is amortized over more bytes.
"""

from repro.harness.experiments import fig9_rxptx1us_bw_drop
from repro.harness.plotting import ascii_plot
from repro.harness.report import format_series


def test_fig09_rxptx1us_bw_drop(benchmark, scope, save_result):
    series = benchmark.pedantic(
        fig9_rxptx1us_bw_drop,
        kwargs={"packet_sizes": scope.sizes_bwdrop,
                "rates": [2, 6, 10, 15, 25, 40, 55],
                "n_packets": scope.n_packets,
                "jobs": scope.jobs, "cache_dir": scope.cache_dir},
        rounds=1, iterations=1)
    text = format_series(
        "Fig 9: RXpTX-1us bandwidth vs drop rate (gem5 vs altra)",
        series, x_label="offered Gbps", y_label="drop rate")
    text += "\n\n" + ascii_plot(
        {k: list(v) for k, v in series.items() if v},
        x_label="offered Gbps", y_label="drop rate",
        title="shape preview")
    save_result("fig09_rxptx1us_bw_drop", text)

    def knee(points, threshold=0.01):
        best = 0.0
        for x, d in points:
            if d <= threshold:
                best = x
            else:
                break
        return best

    # Small packets hit the processing-interval wall well before large.
    smallest, biggest = scope.sizes_bwdrop[0], scope.sizes_bwdrop[-1]
    assert knee(series[f"{smallest}-gem5"]) < knee(series[f"{biggest}-gem5"])
