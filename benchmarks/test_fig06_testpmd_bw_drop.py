"""Fig 6 — TestPMD bandwidth vs drop rate, gem5 vs altra.

Paper: the altra software load generator cannot load the server beyond
~8Gbps at 64B / ~16Gbps at 128B; gem5 saturates around 53Gbps at 512B and
~56Gbps at 1518B; the two systems' curves correlate for sizes up to 256B.
"""

from repro.harness.experiments import fig6_testpmd_bw_drop
from repro.harness.plotting import ascii_plot
from repro.harness.report import format_series


def test_fig06_testpmd_bw_drop(benchmark, scope, save_result):
    series = benchmark.pedantic(
        fig6_testpmd_bw_drop,
        kwargs={"packet_sizes": scope.sizes_bwdrop,
                "rates": scope.bw_rates,
                "n_packets": scope.n_packets,
                "jobs": scope.jobs, "cache_dir": scope.cache_dir},
        rounds=1, iterations=1)
    text = format_series(
        "Fig 6: TestPMD bandwidth vs drop rate (gem5 vs altra)",
        series, x_label="offered Gbps", y_label="drop rate")
    text += "\n\n" + ascii_plot(
        {k: list(v) for k, v in series.items() if v},
        x_label="offered Gbps", y_label="drop rate",
        title="shape preview")
    save_result("fig06_testpmd_bw_drop", text)

    # The altra client ceiling truncates the 64B curve near 8Gbps.
    altra_64 = series["64-altra"]
    assert max(x for x, _d in altra_64) < 10.0
    # gem5 sustains far higher rates at large packets before drops.
    gem5_1518 = series["1518-gem5"]
    low = [d for x, d in gem5_1518 if x < 45]
    assert all(d < 0.05 for d in low)
