"""Table I — simulated and real system configurations."""

from repro.harness.experiments import table1_configs
from repro.harness.report import format_table


def test_table1_configs(benchmark, save_result):
    rows = benchmark.pedantic(table1_configs, rounds=1, iterations=1)
    params = list(next(iter(rows.values())).keys())
    table = format_table(
        "Table I: simulated (gem5) and real (altra) configurations",
        ["Parameter"] + list(rows.keys()),
        [[p] + [rows[label][p] for label in rows] for p in params])
    save_result("table1_configs", table)
    assert rows["gem5"]["Core freq"] == "3GHz"
    assert rows["altra"]["DCA/DDIO"] == "disabled"
