"""Fig 12 — sensitivity of MSB/RPS to LLC size.

Paper: no sensitivity between LLC size and performance even up to 64MiB —
a single network application causes low LLC contention.
"""

from repro.harness.experiments import fig12_llc_sensitivity
from repro.harness.report import format_series


def _flatten(result):
    return {f"{app}/{variant}": points
            for app, per_variant in result.items()
            for variant, points in per_variant.items()}


def test_fig12_llc_sensitivity(benchmark, scope, save_result):
    result = benchmark.pedantic(
        fig12_llc_sensitivity,
        kwargs={"packet_sizes": scope.sizes_sensitivity,
                "jobs": scope.jobs, "cache_dir": scope.cache_dir},
        rounds=1, iterations=1)
    text = format_series(
        "Fig 12: MSB (Gbps) / RPS (k) vs LLC size",
        _flatten(result), x_label="pkt size B", y_label="MSB/kRPS")
    save_result("fig12_llc_sensitivity", text)

    def spread(per_variant, size):
        values = [dict(points)[size] for points in per_variant.values()]
        return max(values) / max(min(values), 1e-9)

    # LLC-insensitive across the sweep for the forwarding apps.
    for app in ("TestPMD", "TouchFwd"):
        for size in scope.sizes_sensitivity:
            assert spread(result[app], size) < 1.2
