"""Fig 19 — memcached response latency and drop rate vs core frequency.

Paper: at high request rates, response time rises sharply as the core
slows down; once drops begin, reported latency can fall because dropped
packets stop contributing samples.
"""

from repro.harness.experiments import fig19_memcached_latency
from repro.harness.report import format_series


def test_fig19_memcached_latency(benchmark, scope, save_result):
    result = benchmark.pedantic(
        fig19_memcached_latency,
        kwargs={"freqs_ghz": [1.0, 3.0] if not scope.full
                else [1.0, 2.0, 3.0, 4.0],
                "n_requests": scope.memcached_requests,
                "jobs": scope.jobs, "cache_dir": scope.cache_dir},
        rounds=1, iterations=1)
    series = {}
    for app, per_freq in result.items():
        for freq, rows in per_freq.items():
            series[f"{app}/{freq}-NL"] = [(rps, lat) for rps, lat, _d in rows]
            series[f"{app}/{freq}-DR"] = [(rps, d) for rps, _lat, d in rows]
    text = format_series(
        "Fig 19: memcached normalized latency (NL) and drop rate (DR) "
        "vs offered kRPS, per core frequency",
        series, x_label="kRPS", y_label="norm-latency / drop")
    save_result("fig19_memcached_latency", text)

    for app, per_freq in result.items():
        freqs = sorted(per_freq)
        slow_rows = per_freq[freqs[0]]       # 1GHz
        fast_rows = per_freq[freqs[-1]]      # 3 or 4GHz
        # At the highest offered rate the slow core is visibly worse:
        # higher normalized latency or more drops.
        _rps, slow_lat, slow_drop = slow_rows[-1]
        _rps, fast_lat, fast_drop = fast_rows[-1]
        assert slow_lat > fast_lat * 1.1 or slow_drop > fast_drop + 0.05
