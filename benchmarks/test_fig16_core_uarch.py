"""Fig 16 — MSB/RPS for out-of-order vs in-order cores.

Paper: TestPMD and RXpTX-10ns at 1518B are not core-bound and are
insensitive to the core microarchitecture; TouchFwd gains up to 8x from
the O3 core, iperf ~93%, memcached 45-92%.
"""

from repro.harness.experiments import fig16_core_uarch
from repro.harness.report import format_series


def _flatten(result):
    return {f"{app}/{variant}": points
            for app, per_variant in result.items()
            for variant, points in per_variant.items()}


def test_fig16_core_uarch(benchmark, scope, save_result):
    result = benchmark.pedantic(
        fig16_core_uarch,
        kwargs={"packet_sizes": scope.sizes_pair,
                "jobs": scope.jobs, "cache_dir": scope.cache_dir},
        rounds=1, iterations=1)
    text = format_series(
        "Fig 16: MSB (Gbps) / RPS (k), out-of-order vs in-order core",
        _flatten(result), x_label="pkt size B", y_label="MSB/kRPS")
    save_result("fig16_core_uarch", text)

    def gain(app, size):
        ooo = dict(result[app]["OoO Core"])[size]
        ino = dict(result[app]["In-Order Core"])[size]
        return ooo / max(ino, 1e-9)

    # Deep function: large O3 advantage at every size.
    assert gain("TouchFwd", 128) > 3.0
    assert gain("TouchFwd", 1518) > 3.0
    # IO-bound TestPMD-1518: insensitive.
    assert gain("TestPMD", 1518) < 1.4
    # Kernel stack benefits substantially.
    assert gain("iperf", 1518) > 1.3
