"""Fig 13 — DCA policy: processing-time sweep with a 4096-entry ring.

Paper: as the per-burst processing interval grows past a threshold the
core lags the RX rate, the RX ring fills, drops begin, and the LLC miss
rate rises because the 256KiB DCA partition cannot hold the in-flight
ring data (DMA leaks).
"""

from repro.harness.experiments import fig13_dca_proctime
from repro.harness.report import format_series


def test_fig13_dca_proctime(benchmark, scope, save_result):
    result = benchmark.pedantic(
        fig13_dca_proctime,
        kwargs={"packet_sizes": [64, 256, 1518],
                "proc_times_ns": scope.proc_times,
                "n_packets": scope.n_packets,
                "jobs": scope.jobs, "cache_dir": scope.cache_dir},
        rounds=1, iterations=1)
    series = {}
    for size, rows in result.items():
        series[f"{size}-droprate"] = [(p, d) for p, d, _m in rows]
        series[f"{size}-missrate"] = [(p, m) for p, _d, m in rows]
    text = format_series(
        "Fig 13: RXpTX drop rate and LLC miss rate vs processing time "
        "(ring 4096, LLC 1MiB, DCA 4/16 ways)",
        series, x_label="proc ns", y_label="rate")
    save_result("fig13_dca_proctime", text)

    for size, rows in result.items():
        first_drop, last_drop = rows[0][1], rows[-1][1]
        first_miss, last_miss = rows[0][2], rows[-1][2]
        # Drops appear as processing time grows...
        assert last_drop > first_drop
        # ...and the LLC miss rate rises with them (the DMA leak).
        assert last_miss > first_miss
