"""Fig 17 — sensitivity to DRAM channel count and ROB size.

Paper: with DCA disabled, more memory channels raise TestPMD's 1518B MSB
(peaking at 8, with slight degradation at 16 from lost row locality);
ROB growth helps the small-packet MSB of access-heavy kernels through
memory-level parallelism.

Known deviation (see EXPERIMENTS.md): our I/O bus saturates before 16
channels lose row locality, so the 8->16 dip flattens into a plateau.
"""

from repro.harness.experiments import fig17_channels, fig17_rob
from repro.harness.report import format_series


def _flatten(result):
    return {f"{app}/{variant}": points
            for app, per_variant in result.items()
            for variant, points in per_variant.items()}


def test_fig17a_memory_channels(benchmark, scope, save_result):
    result = benchmark.pedantic(
        fig17_channels,
        kwargs={"packet_sizes": scope.sizes_pair,
                "jobs": scope.jobs, "cache_dir": scope.cache_dir},
        rounds=1, iterations=1)
    text = format_series(
        "Fig 17a-c: MSB (Gbps) vs DRAM channels (DCA disabled)",
        _flatten(result), x_label="channels", y_label="MSB Gbps")
    save_result("fig17a_channels", text)

    testpmd_1518 = dict(result["TestPMD"]["1518B"])
    # One channel starves large-packet DMA; four channels recover it.
    assert testpmd_1518[4] > 1.3 * testpmd_1518[1]
    # Beyond the I/O-bus saturation point, more channels cannot help.
    assert testpmd_1518[16] <= 1.1 * testpmd_1518[8]


def test_fig17d_rob_size(benchmark, scope, save_result):
    result = benchmark.pedantic(
        fig17_rob,
        kwargs={"packet_sizes": scope.sizes_pair,
                "jobs": scope.jobs, "cache_dir": scope.cache_dir},
        rounds=1, iterations=1)
    text = format_series(
        "Fig 17d-f: MSB (Gbps) vs ROB entries",
        _flatten(result), x_label="ROB entries", y_label="MSB Gbps")
    save_result("fig17d_rob", text)

    testpmd_128 = dict(result["TestPMD"]["128B"])
    # Larger ROB exposes more MLP for the access-heavy small-packet path.
    assert testpmd_128[128] >= testpmd_128[32]
    # TestPMD 1518B is IO-bound: ROB cannot move it.
    testpmd_1518 = dict(result["TestPMD"]["1518B"])
    assert testpmd_1518[512] <= 1.15 * testpmd_1518[32]
