"""Fig 5 — breakdown of packet-drop causes at the knee rate.

Paper: TestPMD shifts from ~86% CoreDrops at 64B to 100% DmaDrops at
1518B; TouchFwd/TouchDrop stay CoreDrop-dominated; RXpTX shifts from
DmaDrops to CoreDrops as processing time grows; memcached drops are
mostly CoreDrops.
"""

from repro.harness.experiments import fig5_drop_breakdown
from repro.harness.report import format_table


def test_fig05_drop_breakdown(benchmark, scope, save_result):
    result = benchmark.pedantic(
        fig5_drop_breakdown,
        kwargs={"n_packets": scope.n_packets,
                "jobs": scope.jobs, "cache_dir": scope.cache_dir},
        rounds=1, iterations=1)
    rows = []
    for label, data in result.items():
        rows.append([
            label,
            f"{data['CoreDrop'] * 100:.1f}%",
            f"{data['DmaDrop'] * 100:.1f}%",
            f"{data['TxDrop'] * 100:.1f}%",
            f"{data['drop_rate'] * 100:.1f}%",
        ])
    table = format_table(
        "Fig 5: drop-cause breakdown at high packet rate",
        ["Workload", "CoreDrop", "DmaDrop", "TxDrop", "total drop"],
        rows)
    save_result("fig05_drop_breakdown", table)

    # Shape assertions from the paper's discussion.
    assert result["TestPMD-64B"]["CoreDrop"] > 0.5
    assert result["TestPMD-1518B"]["DmaDrop"] > 0.7
    assert result["TouchFwd-1518B"]["CoreDrop"] > 0.5
