"""Fig 15 — effect of core frequency on MSB/RPS.

Paper: MSB improves with frequency when the application is core-bound;
shallow functions (TestPMD, RXpTX) become IO-bound at large packet sizes
and stop scaling, while TouchFwd (deep) and both memcached flavours keep
scaling.
"""

from repro.harness.experiments import fig15_frequency
from repro.harness.report import format_series


def _flatten(result):
    return {f"{app}/{variant}": points
            for app, per_variant in result.items()
            for variant, points in per_variant.items()}


def test_fig15_frequency(benchmark, scope, save_result):
    result = benchmark.pedantic(
        fig15_frequency,
        kwargs={"packet_sizes": scope.sizes_sensitivity,
                "freqs_ghz": scope.freqs,
                "jobs": scope.jobs, "cache_dir": scope.cache_dir},
        rounds=1, iterations=1)
    text = format_series(
        "Fig 15: MSB (Gbps) / RPS (k) vs core frequency",
        _flatten(result), x_label="pkt size B", y_label="MSB/kRPS")
    save_result("fig15_frequency", text)

    lo, hi = f"{scope.freqs[0]:.0f}GHz", f"{scope.freqs[-1]:.0f}GHz"
    small, large = (scope.sizes_sensitivity[0],
                    scope.sizes_sensitivity[-1])

    def value(app, variant, size):
        return dict(result[app][variant])[size]

    # Core-bound: TouchFwd scales with frequency at every size.
    assert value("TouchFwd", hi, large) > 1.8 * value("TouchFwd", lo, large)
    # IO-bound: TestPMD at 1518B stops scaling between mid and top freq.
    assert value("TestPMD", hi, large) < 1.3 * value("TestPMD",
                                                     f"{scope.freqs[-2]:.0f}GHz",
                                                     large)
    # TestPMD at small sizes is core-bound and does scale.
    assert value("TestPMD", hi, small) > 1.5 * value("TestPMD", lo, small)
