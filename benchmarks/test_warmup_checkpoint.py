"""Acceptance benchmark for shared warm-up checkpoints.

An eight-point single-configuration TestPMD load sweep runs twice:
once plain (every point simulates its own warm-up) and once with a
warm-up cache (the first point checkpoints its post-warm-up state, the
other seven restore it).  The cached sweep must be bit-identical to the
plain one and at least 1.3x faster wall-clock — the warm-up phase is a
large, load-independent fraction of every short run, and the subsystem
exists to stop paying it per point.
"""

import dataclasses
import time

from repro.harness.parallel import SweepExecutor, fixed_load_point
from repro.harness.report import format_table
from repro.system.presets import gem5_default

SWEEP_RATES = [4.0, 8.0, 12.0, 16.0, 20.0, 24.0, 28.0, 32.0]
SPEEDUP_FLOOR = 1.3


def _sweep_points():
    config = gem5_default()
    return [fixed_load_point(config, "testpmd", 256, rate, n_packets=400)
            for rate in SWEEP_RATES]


def test_warmup_checkpoint_acceptance(benchmark, tmp_path, save_result):
    points = _sweep_points()

    plain_ex = SweepExecutor(jobs=1)
    t0 = time.monotonic()
    plain = plain_ex.run(points)
    plain_s = time.monotonic() - t0

    cached_ex = SweepExecutor(jobs=1, warmup_cache_dir=tmp_path)

    def cached_run():
        return cached_ex.run(points)

    t0 = time.monotonic()
    cached = benchmark.pedantic(cached_run, rounds=1, iterations=1)
    cached_s = time.monotonic() - t0

    # Correctness bar first: restoring the shared warm-up snapshot must
    # not change a single measured bit on any point.
    assert [dataclasses.asdict(r) for r in cached] == \
        [dataclasses.asdict(r) for r in plain]

    # One snapshot serves the whole sweep: one save, seven restores.
    snapshots = list(tmp_path.glob("warmup-*.json"))
    assert len(snapshots) == 1, \
        f"expected one shared snapshot, found {len(snapshots)}"

    speedup = plain_s / cached_s
    save_result("warmup_checkpoint", format_table(
        f"Warm-up checkpoints: {len(points)}-point TestPMD 256B sweep",
        ["mode", "wall s", "warm-ups simulated"],
        [["plain", f"{plain_s:.2f}", len(points)],
         ["warmup cache", f"{cached_s:.2f}", 1],
         ["speedup", f"{speedup:.2f}x", ""]]))

    assert speedup >= SPEEDUP_FLOOR, (
        f"shared warm-up snapshots gave {speedup:.2f}x, "
        f"acceptance floor is {SPEEDUP_FLOOR}x")
