"""Fig 10 — sensitivity of MSB/RPS to L1 cache size.

Paper: DPDK apps are insensitive to L1 size (tiny hot loop); iperf gains
for packets >256B (copies); both memcached flavours show some L1
sensitivity.
"""

from repro.harness.experiments import fig10_l1_sensitivity
from repro.harness.report import format_series


def _flatten(result):
    series = {}
    for app, per_variant in result.items():
        for variant, points in per_variant.items():
            series[f"{app}/{variant}"] = points
    return series


def test_fig10_l1_sensitivity(benchmark, scope, save_result):
    result = benchmark.pedantic(
        fig10_l1_sensitivity,
        kwargs={"packet_sizes": scope.sizes_sensitivity,
                "jobs": scope.jobs, "cache_dir": scope.cache_dir},
        rounds=1, iterations=1)
    text = format_series(
        "Fig 10: MSB (Gbps) / RPS (k) vs L1 cache size",
        _flatten(result), x_label="pkt size B", y_label="MSB/kRPS")
    save_result("fig10_l1_sensitivity", text)

    # DPDK forwarding is L1-insensitive: best and worst variant within 15%.
    testpmd = result["TestPMD"]
    largest_size = scope.sizes_sensitivity[-1]

    def msb_at(points, size):
        return dict(points)[size]

    values = [msb_at(points, largest_size) for points in testpmd.values()]
    assert max(values) <= 1.15 * max(min(values), 0.01)
