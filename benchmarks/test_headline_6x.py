"""Headline — userspace networking multiplies gem5's network bandwidth.

Paper abstract: "enabling userspace networking improves gem5's network
bandwidth by 6.3x compared with the current Linux kernel software stack"
(~56Gbps TestPMD vs ~9Gbps iperf at MTU frames).
"""

from repro.harness.experiments import headline_speedup
from repro.harness.report import format_table


def test_headline_6x(benchmark, scope, save_result):
    result = benchmark.pedantic(
        headline_speedup,
        kwargs={"jobs": scope.jobs, "cache_dir": scope.cache_dir},
        rounds=1, iterations=1)
    table = format_table(
        "Headline: DPDK vs kernel-stack bandwidth (1518B frames)",
        ["metric", "value"],
        [["DPDK (TestPMD) MSB", f"{result['dpdk_gbps']:.1f} Gbps"],
         ["kernel (iperf) MSB", f"{result['kernel_gbps']:.1f} Gbps"],
         ["speedup", f"{result['speedup']:.1f}x"]])
    save_result("headline_6x", table)

    assert result["dpdk_gbps"] > 50.0       # ">50 Gbps per core"
    assert 4.0 < result["kernel_gbps"] < 14.0   # "~10Gbps" kernel stack
    assert result["speedup"] > 4.0          # paper: 6.3x
