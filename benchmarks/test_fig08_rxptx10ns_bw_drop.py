"""Fig 8 — RXpTX (10ns processing) bandwidth vs drop rate.

Paper: with a 10ns processing interval RXpTX mirrors TestPMD's behaviour
on both gem5 and altra across all packet sizes.
"""

from repro.harness.experiments import fig8_rxptx10ns_bw_drop
from repro.harness.plotting import ascii_plot
from repro.harness.report import format_series


def test_fig08_rxptx10ns_bw_drop(benchmark, scope, save_result):
    series = benchmark.pedantic(
        fig8_rxptx10ns_bw_drop,
        kwargs={"packet_sizes": scope.sizes_bwdrop,
                "rates": scope.bw_rates,
                "n_packets": scope.n_packets,
                "jobs": scope.jobs, "cache_dir": scope.cache_dir},
        rounds=1, iterations=1)
    text = format_series(
        "Fig 8: RXpTX-10ns bandwidth vs drop rate (gem5 vs altra)",
        series, x_label="offered Gbps", y_label="drop rate")
    text += "\n\n" + ascii_plot(
        {k: list(v) for k, v in series.items() if v},
        x_label="offered Gbps", y_label="drop rate",
        title="shape preview")
    save_result("fig08_rxptx10ns_bw_drop", text)

    # Mirrors TestPMD: large packets sustain high bandwidth on gem5.
    biggest = scope.sizes_bwdrop[-1]
    low = [d for x, d in series[f"{biggest}-gem5"] if x < 45]
    assert all(d < 0.05 for d in low)
