"""Acceptance benchmark for the parallel sweep executor.

A six-point TestPMD bandwidth sweep is pushed through the executor three
ways — serial, ``jobs=4``, and warm-cache replay — and must produce
bit-identical results each time.  On a multi-core host the parallel run
must also beat serial wall-clock; the warm-cache run must execute zero
simulations regardless of core count.
"""

import dataclasses
import os
import time

from repro.harness.parallel import SweepExecutor, fixed_load_point
from repro.harness.report import format_table
from repro.system.presets import gem5_default

SWEEP_RATES = [5.0, 15.0, 25.0, 35.0, 45.0, 55.0]


def _sweep_points(n_packets: int = 600):
    config = gem5_default()
    return [fixed_load_point(config, "testpmd", 256, rate,
                             n_packets=n_packets)
            for rate in SWEEP_RATES]


def test_parallel_executor_acceptance(benchmark, tmp_path, save_result):
    points = _sweep_points()

    serial_ex = SweepExecutor(jobs=1)
    t0 = time.monotonic()
    serial = serial_ex.run(points)
    serial_s = time.monotonic() - t0

    parallel_ex = SweepExecutor(jobs=4, timeout_s=300.0,
                                cache_dir=tmp_path)

    def parallel_run():
        return parallel_ex.run(points)

    t0 = time.monotonic()
    parallel = benchmark.pedantic(parallel_run, rounds=1, iterations=1)
    parallel_s = time.monotonic() - t0

    # Determinism: jobs=4 must be bit-identical to the serial reference.
    assert [dataclasses.asdict(r) for r in parallel] == \
        [dataclasses.asdict(r) for r in serial]
    assert parallel_ex.stats.executed == len(points)

    # Warm cache: a fresh executor replays the sweep without running a
    # single simulation, and still matches bit-for-bit.
    cached_ex = SweepExecutor(jobs=4, cache_dir=tmp_path)
    t0 = time.monotonic()
    cached = cached_ex.run(points)
    cached_s = time.monotonic() - t0
    assert cached_ex.stats.executed == 0
    assert cached_ex.stats.cache_hits == len(points)
    assert [dataclasses.asdict(r) for r in cached] == \
        [dataclasses.asdict(r) for r in serial]
    assert cached_s < serial_s

    save_result("parallel_executor", format_table(
        "Parallel executor: 6-point TestPMD 256B sweep",
        ["mode", "wall s", "simulated"],
        [["serial (jobs=1)", f"{serial_s:.2f}", len(points)],
         ["parallel (jobs=4)", f"{parallel_s:.2f}",
          parallel_ex.stats.executed],
         ["warm cache", f"{cached_s:.2f}", cached_ex.stats.executed]]))

    # Fan-out only pays off with cores to fan out onto; single-core CI
    # boxes still check determinism and caching above.
    if (os.cpu_count() or 1) >= 2:
        assert parallel_s < serial_s, (
            f"jobs=4 ({parallel_s:.2f}s) should beat serial "
            f"({serial_s:.2f}s) on a {os.cpu_count()}-core host")
