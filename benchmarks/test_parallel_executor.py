"""Acceptance benchmark for the parallel sweep executor.

A six-point TestPMD bandwidth sweep is pushed through the executor three
ways — serial, persistent-worker ``jobs=4`` with a shared warm-up cache,
and warm result-cache replay — and must produce bit-identical results
each time.  The parallel mode must beat serial wall-clock even on a
single core: its workers fork after the parent has prewarmed the sweep's
shared warm-up checkpoint, so the six points pay for one warm-up instead
of six.  The warm-replay run must execute zero simulations and reports
its (near-zero) wall time and hit count honestly — it measures cache
lookup cost, not simulation speed.

A single-run speed gate rides along: one 600-packet TestPMD run must
stay at least 1.3x faster than the pre-batching baseline recorded below,
locking in the event-loop/hot-path optimisation this executor rides on.
"""

import dataclasses
import time

from repro.harness.parallel import SweepExecutor, fixed_load_point
from repro.harness.report import format_table
from repro.harness.runner import run_fixed_load
from repro.system.presets import gem5_default

SWEEP_RATES = [5.0, 15.0, 25.0, 35.0, 45.0, 55.0]

#: Best-of-3 wall clock of ``run_fixed_load(gem5_default(), "testpmd",
#: 256, 25.0, n_packets=600)`` measured immediately before the batched
#: event loop landed (per-packet heap events, no same-tick FIFO run
#: queue, no event pooling).  The single-run gate below asserts against
#: this recorded constant, not a re-measurement.
PRE_BATCHING_SINGLE_RUN_S = 2.46
SINGLE_RUN_MIN_SPEEDUP = 1.3


def _sweep_points(n_packets: int = 600):
    config = gem5_default()
    return [fixed_load_point(config, "testpmd", 256, rate,
                             n_packets=n_packets)
            for rate in SWEEP_RATES]


def _best_of(n, fn):
    best = float("inf")
    for _ in range(n):
        t0 = time.monotonic()
        fn()
        best = min(best, time.monotonic() - t0)
    return best


def test_parallel_executor_acceptance(benchmark, tmp_path, save_result):
    points = _sweep_points()

    # Single-run gate: the hot-path work the sweep rows build on.
    single_s = _best_of(3, lambda: run_fixed_load(
        gem5_default(), "testpmd", 256, 25.0, n_packets=600))
    speedup = PRE_BATCHING_SINGLE_RUN_S / single_s

    # Best-of-2 for the compared rows: single-core hosts time-share the
    # workers, so one noisy round must not decide the verdict.
    serial_ex = SweepExecutor(jobs=1)
    t0 = time.monotonic()
    serial = serial_ex.run(points)
    serial_s = min(time.monotonic() - t0,
                   _best_of(1, lambda: SweepExecutor(jobs=1).run(points)))

    # jobs>1 provisions its own ephemeral warm-up cache: workers fork
    # after the parent prewarms the sweep's shared warm-up checkpoint.
    warm_round_ex = SweepExecutor(jobs=4, timeout_s=300.0)
    t0 = time.monotonic()
    warm_round = warm_round_ex.run(points)
    warm_round_s = time.monotonic() - t0

    parallel_ex = SweepExecutor(jobs=4, timeout_s=300.0,
                                cache_dir=tmp_path)

    def parallel_run():
        return parallel_ex.run(points)

    t0 = time.monotonic()
    parallel = benchmark.pedantic(parallel_run, rounds=1, iterations=1)
    parallel_s = min(time.monotonic() - t0, warm_round_s)

    assert [dataclasses.asdict(r) for r in warm_round] == \
        [dataclasses.asdict(r) for r in serial]

    # Determinism: jobs=4 must be bit-identical to the serial reference.
    assert [dataclasses.asdict(r) for r in parallel] == \
        [dataclasses.asdict(r) for r in serial]
    assert parallel_ex.stats.executed == len(points)

    # Warm cache: a fresh executor replays the sweep without running a
    # single simulation, and still matches bit-for-bit.  Its wall time
    # is cache lookup cost — reported as such, not as a simulation time.
    cached_ex = SweepExecutor(jobs=4, cache_dir=tmp_path)
    t0 = time.monotonic()
    cached = cached_ex.run(points)
    cached_s = time.monotonic() - t0
    assert cached_ex.stats.executed == 0
    assert cached_ex.stats.cache_hits == len(points)
    assert [dataclasses.asdict(r) for r in cached] == \
        [dataclasses.asdict(r) for r in serial]
    assert cached_s < serial_s

    save_result("parallel_executor", format_table(
        "Parallel executor: 6-point TestPMD 256B sweep",
        ["mode", "wall s", "simulated", "cache hits"],
        [["single run @25Gbps (pre-PR 2.46s)", f"{single_s:.2f}",
          1, "-"],
         ["serial (jobs=1)", f"{serial_s:.2f}",
          serial_ex.stats.executed, "-"],
         ["parallel (jobs=4, shared warm-up)", f"{parallel_s:.2f}",
          parallel_ex.stats.executed, "-"],
         ["warm replay (result cache)", f"{cached_s:.3f}",
          cached_ex.stats.executed, cached_ex.stats.cache_hits]]))

    # The headline claims, asserted on every host: the batched hot path
    # holds its recorded speedup, and the persistent-worker sweep beats
    # serial even single-core (one shared warm-up instead of six).
    assert speedup >= SINGLE_RUN_MIN_SPEEDUP, (
        f"single 600-packet run took {single_s:.2f}s; needs >= "
        f"{SINGLE_RUN_MIN_SPEEDUP}x over the recorded "
        f"{PRE_BATCHING_SINGLE_RUN_S}s pre-batching baseline")
    assert parallel_s < serial_s, (
        f"jobs=4 ({parallel_s:.2f}s) should beat serial "
        f"({serial_s:.2f}s): workers share one prewarmed checkpoint")
