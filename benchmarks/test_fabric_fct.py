"""Fabric FCT-vs-load curves: the datacenter-scale stack contrast.

A K=4 fat-tree (16 hosts, 20 switches) offers uniform open-loop flow
traffic at increasing loads through DPDK-stack and kernel-stack hosts,
via the sweep executor and a shared warm-up cache (one warm snapshot
per stack serves every load point).  The rendered table is the fabric
counterpart of the paper's bandwidth-vs-drop figures: flow completion
time percentiles and drop rates per offered load, per stack.
"""

import time

from repro.harness.parallel import SweepExecutor, fabric_point
from repro.harness.report import format_table
from repro.system.presets import gem5_default

STACKS = ("dpdk", "kernel")


def test_fabric_fct_curves(benchmark, tmp_path, scope, save_result):
    loads = ([0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8] if scope.full
             else [0.2, 0.4, 0.6, 0.8])
    n_flows = 2000 if scope.full else 400
    config = gem5_default()
    points = [fabric_point(config, "fat-tree-k4", stack,
                           pattern="uniform", load=load, n_flows=n_flows)
              for stack in STACKS for load in loads]
    ex = SweepExecutor(jobs=scope.jobs, cache_dir=scope.cache_dir,
                       warmup_cache_dir=tmp_path)

    t0 = time.monotonic()
    results = benchmark.pedantic(lambda: ex.run(points),
                                 rounds=1, iterations=1)
    wall_s = time.monotonic() - t0

    by_stack = {stack: results[i * len(loads):(i + 1) * len(loads)]
                for i, stack in enumerate(STACKS)}
    rows = []
    for stack in STACKS:
        for r in by_stack[stack]:
            rows.append([stack, f"{r.offered_load:.2f}",
                         f"{r.flows_completed}/{r.flows_started}",
                         f"{r.drop_rate * 100:.2f}%",
                         f"{r.fct_us.get('p50', 0):.2f}",
                         f"{r.fct_us.get('p99', 0):.2f}"])
    save_result("fabric_fct", format_table(
        f"Fat-tree K=4 uniform flows: FCT vs load "
        f"({n_flows} flows/point, {wall_s:.1f}s wall)",
        ["stack", "load", "completed", "drop rate", "p50 us", "p99 us"],
        rows))

    # The paper's contrast must survive at fabric scale: at every load,
    # kernel-stack hosts complete flows slower than DPDK hosts.
    for d, k in zip(by_stack["dpdk"], by_stack["kernel"]):
        assert k.fct_us["mean"] > d.fct_us["mean"], \
            f"kernel not slower at load {d.offered_load}"
    # And every run conserves: completions plus drops account for all.
    for r in results:
        assert r.flows_completed <= r.flows_started
        assert 0 <= r.drop_rate < 0.5
