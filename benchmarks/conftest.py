"""Shared benchmark fixtures.

Every benchmark regenerates one table or figure from the paper and writes
its rendering to ``bench_results/<name>.txt`` (and stdout, visible with
``pytest -s``).

Scope control: set ``REPRO_BENCH_SCALE=full`` for the paper's full
parameter grids; the default ``quick`` scale trims packet-size and sweep
grids so the whole suite finishes in minutes while preserving every
figure's shape.

Executor control: ``REPRO_BENCH_JOBS=N`` fans each figure's sweep points
across N worker processes and ``REPRO_BENCH_CACHE=DIR`` replays
unchanged points from an on-disk cache — results are bit-identical
either way (see docs/parallel_sweeps.md).
"""

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "bench_results"


class BenchScope:
    """Parameter grids for the current scale."""

    def __init__(self, full: bool) -> None:
        self.full = full
        # Packet-size grids.
        self.sizes_bwdrop = ([64, 128, 256, 512, 1024, 1518] if full
                             else [64, 256, 1518])
        self.sizes_sensitivity = ([128, 256, 512, 1024, 1518] if full
                                  else [128, 512, 1518])
        self.sizes_pair = [128, 1518]
        # Sweep resolutions.
        self.bw_rates = ([5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 55, 60, 65]
                         if full else [5, 15, 25, 35, 45, 55, 65])
        self.n_packets = 2500 if full else 1200
        # Memcached knee measurements must outlast the ring+FIFO backlog
        # (~500 requests) by a wide margin.
        self.memcached_requests = 8000 if full else 4000
        self.proc_times = ([10, 100, 300, 500, 700, 1000, 3000, 5000, 10000]
                           if full else [10, 300, 1000, 3000, 10000])
        self.freqs = [1.0, 2.0, 3.0, 4.0] if full else [1.0, 2.0, 4.0]
        self.rps_grid = ([100e3, 200e3, 300e3, 400e3, 500e3, 600e3,
                          700e3, 800e3] if full
                         else [100e3, 250e3, 400e3, 600e3, 750e3])
        # Sweep executor: worker process count and result cache.
        self.jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
        self.cache_dir = os.environ.get("REPRO_BENCH_CACHE") or None


@pytest.fixture(scope="session")
def scope():
    return BenchScope(os.environ.get("REPRO_BENCH_SCALE", "quick") == "full")


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _save
