"""Fig 18 — memcached throughput vs drop rate.

Paper: MemcachedDPDK sustains ~709k RPS and MemcachedKernel ~218k RPS
before the drop rate shoots up.
"""

from repro.harness.experiments import fig18_memcached_rps
from repro.harness.report import format_series


def test_fig18_memcached_rps(benchmark, scope, save_result):
    result = benchmark.pedantic(
        fig18_memcached_rps,
        kwargs={"rps_points": scope.rps_grid,
                "n_requests": scope.memcached_requests,
                "jobs": scope.jobs, "cache_dir": scope.cache_dir},
        rounds=1, iterations=1)
    text = format_series(
        "Fig 18: memcached requests/second vs drop rate",
        result, x_label="kRPS", y_label="drop rate")
    save_result("fig18_memcached_rps", text)

    def knee(points, threshold=0.01):
        best = 0.0
        for rps, drop in points:
            if drop <= threshold:
                best = rps
            else:
                break
        return best

    kernel_knee = knee(result["memcachedKernel"])
    dpdk_knee = knee(result["memcachedDpdk"])
    # DPDK sustains several times the kernel's request rate
    # (paper: 709k vs 218k ~ 3.3x).
    assert dpdk_knee > 2.0 * kernel_knee
    assert 100 <= kernel_knee <= 400
    assert 450 <= dpdk_knee <= 900
