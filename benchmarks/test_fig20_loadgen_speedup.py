"""Fig 20 — simulation-time speedup of EtherLoadGen over dual-mode gem5.

Paper: replacing the simulated Drive Node with the hardware EtherLoadGen
model speeds simulation up by up to 70% (DPDK) / ~40% (kernel).  The
speedup here is genuine host wall-clock: both topologies are actually
simulated and timed.
"""

from repro.harness.experiments import fig20_loadgen_speedup


def test_fig20_loadgen_speedup(benchmark, scope, save_result):
    result = benchmark.pedantic(
        fig20_loadgen_speedup,
        kwargs={"freqs_ghz": [1.0, 3.0] if not scope.full
                else [1.0, 2.0, 3.0, 4.0],
                "n_requests": 1500 if scope.full else 800},
        rounds=1, iterations=1)
    lines = ["Fig 20: EtherLoadGen wall-clock speedup over dual mode",
             "=" * 56]
    for label, points in result.items():
        for freq, pct in points:
            lines.append(f"  {label:7s} {freq:6s}  {pct:5.1f}%")
    save_result("fig20_loadgen_speedup", "\n".join(lines))

    # The hardware load generator must save real simulation time for both
    # stacks at every frequency.
    for label, points in result.items():
        for _freq, pct in points:
            assert pct > 5.0, f"{label}: no speedup measured"
