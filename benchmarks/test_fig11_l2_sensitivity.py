"""Fig 11 — sensitivity of MSB/RPS to L2 cache size.

Paper: shrinking L2 to 256KiB degrades TestPMD and RXpTX-10ns (DPDK's
working set is between 256KiB and 1MiB); iperf keeps improving up to a
4MiB L2 (the kernel stack's working set exceeds 1MiB).
"""

from repro.harness.experiments import fig11_l2_sensitivity
from repro.harness.report import format_series


def _flatten(result):
    return {f"{app}/{variant}": points
            for app, per_variant in result.items()
            for variant, points in per_variant.items()}


def test_fig11_l2_sensitivity(benchmark, scope, save_result):
    result = benchmark.pedantic(
        fig11_l2_sensitivity,
        kwargs={"packet_sizes": scope.sizes_sensitivity,
                "jobs": scope.jobs, "cache_dir": scope.cache_dir},
        rounds=1, iterations=1)
    text = format_series(
        "Fig 11: MSB (Gbps) / RPS (k) vs L2 cache size",
        _flatten(result), x_label="pkt size B", y_label="MSB/kRPS")
    save_result("fig11_l2_sensitivity", text)

    def msb_at(points, size):
        return dict(points)[size]

    # iperf: 4MiB L2 beats 256KiB L2 at MTU frames (kernel WSS > 1MiB;
    # small frames are overhead-dominated and show little L2 effect).
    size = scope.sizes_sensitivity[-1]
    iperf = result["iperf"]
    assert msb_at(iperf["4MiB-L2"], size) > msb_at(iperf["256KiB-L2"], size)
