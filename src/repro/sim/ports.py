"""Typed ports and bindings — the wiring layer.

gem5 composes SimObjects through *ports*: a request port on one object
binds to a response port on another, and the binding (not the objects) is
where direction and type are checked.  This module is the equivalent for
the reproduction: every connection between components — packet wires,
memory requests, DMA channels, driver attachment, clock distribution —
goes through a :class:`Port` pair whose :meth:`Port.bind` validates the
pairing, carries per-link metadata (latency, bandwidth), and gives both
owners a connection-time hook where cross-component conservation rules
are registered with the invariant registry.

Port taxonomy (``kind``):

==========  ==========================================================
packet      Ethernet frames between two devices (symmetric peers,
            bound through an :class:`~repro.nic.phy.EtherLink` that
            carries the bandwidth/latency of the cable)
mem         memory requests into a :class:`~repro.mem.hierarchy.MemoryHierarchy`
dma         the NIC's channel to its :class:`~repro.nic.dma.DmaEngine`
bus         a bandwidth-limited interconnect (:class:`~repro.mem.xbar.BandwidthServer`)
driver      a driver (PMD or kernel) taking ownership of a device
app         an application attaching to its driver
buffer      a packet-buffer pool client (mempool)
clock       simulated-time distribution from a :class:`ClockDomain`
stack       kernel protocol-stack attachment
==========  ==========================================================

Roles mirror gem5's master/slave (request/response after v20.x): a
``request`` port initiates, a ``response`` port serves, and symmetric
``peer`` ports (packet ports) bind to each other.  A response port
created with ``multi=True`` accepts several requestors (a memory
hierarchy serving two cores and a DMA engine); everything else is
strictly point-to-point and a second ``bind`` raises
:class:`PortBindError`.

The binding layer adds *no* runtime indirection to the data path: bound
components keep calling each other directly, exactly as before.  What the
ports add is build-time structure — the wiring graph a
:class:`~repro.system.topology.Topology` validates, renders as DOT and
uses to place connection-scoped invariants.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.ticks import TICKS_PER_NS

# -- port kinds --------------------------------------------------------------

KIND_PACKET = "packet"
KIND_MEM = "mem"
KIND_DMA = "dma"
KIND_BUS = "bus"
KIND_DRIVER = "driver"
KIND_APP = "app"
KIND_BUFFER = "buffer"
KIND_CLOCK = "clock"
KIND_STACK = "stack"

KINDS = (KIND_PACKET, KIND_MEM, KIND_DMA, KIND_BUS, KIND_DRIVER,
         KIND_APP, KIND_BUFFER, KIND_CLOCK, KIND_STACK)

#: Trace categories each port kind's traffic shows up under (see
#: docs/tracing_and_invariants.md) — the wiring graph can name the trace
#: categories a topology will emit without running it.
KIND_TRACE_CATEGORIES: Dict[str, Tuple[str, ...]] = {
    KIND_PACKET: ("loadgen", "nic"),
    KIND_DMA: ("dma",),
    KIND_APP: ("app",),
}

# -- roles -------------------------------------------------------------------

ROLE_REQUEST = "request"
ROLE_RESPONSE = "response"
ROLE_PEER = "peer"

_COMPLEMENT = {
    ROLE_REQUEST: ROLE_RESPONSE,
    ROLE_RESPONSE: ROLE_REQUEST,
    ROLE_PEER: ROLE_PEER,
}


class PortBindError(RuntimeError):
    """A port pairing is invalid (kind/role mismatch, double bind, ...)."""


def owner_label(owner) -> str:
    """Display name of a port's owning component."""
    if owner is None:
        return "<unowned>"
    name = getattr(owner, "name", None)
    if isinstance(name, str) and name:
        return name
    return type(owner).__name__


class Port:
    """One typed connection point on a component.

    ``owner`` is the component the port belongs to; it may define an
    ``on_port_bound(port, peer, **metadata)`` method which runs once at
    bind time — the place to register connection-scoped invariants or
    finish handshakes that need the peer.
    """

    def __init__(self, owner, name: str, kind: str, role: str,
                 multi: bool = False, external: bool = False,
                 hint: Optional[str] = None) -> None:
        if kind not in KINDS:
            raise ValueError(f"unknown port kind {kind!r}; expected one "
                             f"of {KINDS}")
        if role not in _COMPLEMENT:
            raise ValueError(f"unknown port role {role!r}")
        self.owner = owner
        self.port_name = name
        self.kind = kind
        self.role = role
        self.multi = multi
        #: Actionable advice shown when this port is reported dangling.
        self.hint = hint
        #: External ports face outside the topology under construction
        #: (a NIC's wire-side port before a generator attaches); the
        #: unbound-port check reports them separately instead of failing.
        self.external = external
        self.peers: List["Port"] = []
        #: Per-binding metadata (latency/bandwidth/...), parallel to peers.
        self.bind_metadata: List[dict] = []

    # -- introspection -----------------------------------------------------

    @property
    def full_name(self) -> str:
        """``owner.port`` — the name bind errors and DOT edges use."""
        return f"{owner_label(self.owner)}.{self.port_name}"

    @property
    def bound(self) -> bool:
        """True once at least one peer is bound."""
        return bool(self.peers)

    @property
    def peer(self) -> Optional["Port"]:
        """The bound peer (first one, for ``multi`` ports)."""
        return self.peers[0] if self.peers else None

    def trace_categories(self) -> Tuple[str, ...]:
        """Trace categories traffic over this port appears under."""
        return KIND_TRACE_CATEGORIES.get(self.kind, ())

    # -- binding -----------------------------------------------------------

    def bind_error(self, peer: "Port") -> Optional[str]:
        """Why this pairing would be invalid (None when it is fine)."""
        if not isinstance(peer, Port):
            return f"{self.full_name}: peer {peer!r} is not a Port"
        if peer is self:
            return f"{self.full_name}: cannot bind a port to itself"
        if self.kind != peer.kind:
            return (f"kind mismatch: {self.full_name} is a {self.kind} "
                    f"port but {peer.full_name} is a {peer.kind} port")
        if _COMPLEMENT[self.role] != peer.role:
            return (f"role mismatch: {self.full_name} ({self.role}) "
                    f"cannot bind {peer.full_name} ({peer.role}); "
                    f"a {self.role} port needs a "
                    f"{_COMPLEMENT[self.role]} peer")
        for port in (self, peer):
            if port.bound and not port.multi:
                return (f"{port.full_name} is already bound to "
                        f"{port.peer.full_name}")
        if peer in self.peers:
            return (f"{self.full_name} is already bound to "
                    f"{peer.full_name}")
        return None

    def bind(self, peer: "Port", **metadata) -> "Port":
        """Bind this port to ``peer`` after validating the pairing.

        ``metadata`` (link latency, bandwidth, ...) is recorded on both
        sides and passed to each owner's ``on_port_bound`` hook.  Returns
        ``self`` so wiring code chains naturally.
        """
        problem = self.bind_error(peer)
        if problem:
            raise PortBindError(problem)
        self.peers.append(peer)
        self.bind_metadata.append(dict(metadata))
        peer.peers.append(self)
        peer.bind_metadata.append(dict(metadata))
        for port, other in ((self, peer), (peer, self)):
            hook = getattr(port.owner, "on_port_bound", None)
            if hook is not None:
                hook(port, other, **metadata)
        return self

    def __repr__(self) -> str:
        state = (f"-> {self.peer.full_name}" if self.bound else "unbound")
        return f"<Port {self.full_name} {self.kind}/{self.role} {state}>"


class RequestPort(Port):
    """The initiating side of a connection (gem5 master)."""

    def __init__(self, owner, name: str, kind: str,
                 external: bool = False,
                 hint: Optional[str] = None) -> None:
        super().__init__(owner, name, kind, ROLE_REQUEST, external=external,
                         hint=hint)


class ResponsePort(Port):
    """The serving side of a connection (gem5 slave).

    ``multi=True`` lets several requestors share one server — a memory
    hierarchy below two cores, a mempool with several clients.
    """

    def __init__(self, owner, name: str, kind: str, multi: bool = False,
                 external: bool = False,
                 hint: Optional[str] = None) -> None:
        super().__init__(owner, name, kind, ROLE_RESPONSE, multi=multi,
                         external=external, hint=hint)


class PacketPort(Port):
    """A symmetric Ethernet-frame endpoint.

    Packet ports bind peer-to-peer through an
    :class:`~repro.nic.phy.EtherLink` (or, when the far end lives in
    another simulation, a proxy that stands in for the remote half of
    the cable: a :class:`~repro.system.dist.DistPortAdapter` within one
    process, a :class:`~repro.sim.channel.ChannelHalf` across
    processes), which supplies the binding's bandwidth/latency
    metadata.
    """

    def __init__(self, owner, name: str, external: bool = False) -> None:
        super().__init__(owner, name, KIND_PACKET, ROLE_PEER,
                         external=external)


def ports_of(component) -> List[Port]:
    """All :class:`Port` instances a component exposes, in creation
    order (instance attributes preserve insertion order)."""
    found: List[Port] = []
    attrs = getattr(component, "__dict__", None)
    if not attrs:
        return found
    for value in attrs.values():
        if isinstance(value, Port):
            found.append(value)
    return found


class ClockDomain:
    """A shared simulated-time source.

    Components in the same clock domain read one consistent notion of
    "now" in nanoseconds (the unit the core and DRAM models work in).
    This replaces the historical ``core.clock = lambda: sim.now / 1000``
    attribute injection: a :class:`~repro.cpu.core.CoreModel` now *takes*
    a clock domain, and sharing one (e.g. the pipeline worker core with
    the RX core) is explicit in the wiring instead of a copied lambda.
    """

    def __init__(self, sim, name: str = "clock") -> None:
        self.sim = sim
        self.name = name
        self.port = ResponsePort(self, "out", KIND_CLOCK, multi=True)

    def now_ns(self) -> float:
        """Current simulated time in nanoseconds."""
        return self.sim.now / TICKS_PER_NS

    def now_ticks(self) -> int:
        """Current simulated tick (picoseconds)."""
        return self.sim.now

    def serialize_state(self) -> dict:
        """Stateless: a clock domain reads time from the simulation."""
        return {}

    def deserialize_state(self, state: dict) -> None:
        pass

    def __repr__(self) -> str:
        return f"<ClockDomain {self.name}>"


class CallbackClock:
    """A clock-domain stand-in wrapping a plain callable.

    Unit tests (and calibration scripts) sometimes drive a core from a
    synthetic time source; wrapping the callable keeps
    :class:`~repro.cpu.core.CoreModel`'s public API uniform — it always
    holds an object with ``now_ns()``, never a bare lambda.
    """

    def __init__(self, fn: Callable[[], float], name: str = "callback_clock"):
        self._fn = fn
        self.name = name
        self.port = ResponsePort(self, "out", KIND_CLOCK, multi=True)

    def now_ns(self) -> float:
        """Current time in nanoseconds, as reported by the callback."""
        return self._fn()
