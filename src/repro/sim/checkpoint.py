"""Versioned, schema-checked simulation checkpoints.

The checkpoint subsystem follows gem5's drain-then-serialize discipline:
a checkpoint is taken only at *quiescence* — no frames on the wire, no
DMA in flight, no packets held by FIFOs, rings, or applications — so no
in-flight :class:`~repro.net.packet.Packet` payload ever needs to be
serialized.  What remains is plain counter/cursor state per SimObject,
the event queue's pending (named) events, the RNG streams, the stats
registry, and the tracer — all JSON-representable.

Format
------
A checkpoint is a single JSON document::

    {
      "format": 1,
      "meta":    {...},          # app/config/seed provenance (free-form)
      "sim":     {...},          # event queue, rng, stats, tracer
      "objects": {label: state}, # one entry per topology component
      "digest":  "sha256..."     # over the canonical JSON minus "digest"
    }

The digest makes corruption and tampering detectable: :func:`verify`
recomputes it and raises :class:`CheckpointError` on mismatch.  Every
value is produced by ``serialize_state()`` on the owning component and
consumed by ``deserialize_state()`` — the :class:`Serializable`
protocol that :class:`repro.system.topology.Topology` enforces at
registration time, so an unserializable component is a build-time
error rather than a silent checkpoint gap.

Determinism: checkpoints contain no wall-clock timestamps and are
written with sorted keys, so the same simulation state always produces
the same bytes (and the same digest).
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict

#: Version of the on-disk checkpoint schema.  Bump when the layout of
#: the document (or any component's state dict) changes incompatibly.
CHECKPOINT_FORMAT = 1

#: Top-level keys every checkpoint document must carry.
_REQUIRED_KEYS = ("format", "meta", "sim", "objects", "digest")


class CheckpointError(Exception):
    """A checkpoint could not be taken, verified, or restored."""


def is_serializable(component: Any) -> bool:
    """True if ``component`` implements the Serializable protocol."""
    return (callable(getattr(component, "serialize_state", None))
            and callable(getattr(component, "deserialize_state", None)))


def assert_serializable(label: str, component: Any) -> None:
    """Raise :class:`CheckpointError` unless ``component`` implements
    ``serialize_state()`` / ``deserialize_state()``."""
    if not is_serializable(component):
        raise CheckpointError(
            f"component {label!r} ({type(component).__name__}) does not "
            f"implement serialize_state()/deserialize_state(); every "
            f"topology component must be checkpointable")


def canonical_json(document: Any) -> str:
    """Deterministic JSON encoding: sorted keys, no whitespace drift."""
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def compute_digest(document: Dict[str, Any]) -> str:
    """SHA-256 over the canonical JSON of ``document`` minus ``digest``."""
    body = {k: v for k, v in document.items() if k != "digest"}
    return hashlib.sha256(canonical_json(body).encode()).hexdigest()


def seal(document: Dict[str, Any]) -> Dict[str, Any]:
    """Stamp ``format`` and ``digest`` onto a checkpoint document."""
    document["format"] = CHECKPOINT_FORMAT
    document["digest"] = compute_digest(document)
    return document


def verify(document: Any) -> Dict[str, Any]:
    """Validate a checkpoint document's schema, version, and digest.

    Returns the document on success; raises :class:`CheckpointError`
    describing the first problem found otherwise.
    """
    if not isinstance(document, dict):
        raise CheckpointError(
            f"checkpoint must be a JSON object, got {type(document).__name__}")
    for key in _REQUIRED_KEYS:
        if key not in document:
            raise CheckpointError(f"checkpoint missing required key {key!r}")
    fmt = document["format"]
    if fmt != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"checkpoint format {fmt!r} not supported "
            f"(this build reads format {CHECKPOINT_FORMAT})")
    if not isinstance(document["objects"], dict):
        raise CheckpointError("checkpoint 'objects' must be an object")
    if not isinstance(document["sim"], dict):
        raise CheckpointError("checkpoint 'sim' must be an object")
    expected = compute_digest(document)
    if document["digest"] != expected:
        raise CheckpointError(
            f"checkpoint digest mismatch: recorded {document['digest']!r}, "
            f"recomputed {expected!r} (corrupted or tampered)")
    return document


def save_checkpoint(document: Dict[str, Any], path: str) -> None:
    """Write a sealed checkpoint to ``path`` atomically.

    The write goes to a same-directory temp file and is published with
    ``os.replace`` so concurrent writers (sweep workers racing to
    produce the same warmup snapshot) can never leave a torn file.
    """
    if "digest" not in document:
        seal(document)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(canonical_json(document))
    os.replace(tmp, path)


def load_checkpoint(path: str) -> Dict[str, Any]:
    """Read, parse, and :func:`verify` the checkpoint at ``path``."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            document = json.load(fh)
    except (OSError, ValueError) as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    return verify(document)


def describe(document: Dict[str, Any]) -> str:
    """Human-readable one-screen summary for ``checkpoint info``."""
    meta = document.get("meta", {})
    queue = document.get("sim", {}).get("events", {})
    lines = [
        f"format:  {document.get('format')}",
        f"digest:  {document.get('digest')}",
        f"tick:    {queue.get('now')}",
        f"events:  {len(queue.get('events', []))} pending",
        f"objects: {len(document.get('objects', {}))}",
    ]
    for key in sorted(meta):
        lines.append(f"meta.{key}: {meta[key]}")
    return "\n".join(lines)
