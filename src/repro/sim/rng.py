"""Deterministic random number generation.

Every stochastic element of the simulation (packet inter-arrival jitter,
Zipfian key draws, value sizes) draws from a seeded generator so that two
runs with the same configuration produce bit-identical results — the
property that makes the benchmark harness's paper-vs-measured comparisons
meaningful.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Sequence


class DeterministicRng:
    """A thin, seedable wrapper around :class:`random.Random`.

    Child generators (``fork``) are derived deterministically from the parent
    seed and a label, so adding a new consumer never perturbs the streams of
    existing ones.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    def fork(self, label: str) -> "DeterministicRng":
        """Derive an independent child stream named by ``label``.

        Uses a cryptographic digest rather than ``hash()``: Python string
        hashing is salted per process, which would silently break
        cross-run reproducibility.
        """
        digest = hashlib.sha256(f"{self.seed}:{label}".encode()).digest()
        child_seed = int.from_bytes(digest[:8], "big") & 0x7FFFFFFFFFFFFFFF
        return DeterministicRng(child_seed)

    def uniform(self, lo: float, hi: float) -> float:
        """Uniform float in [lo, hi]."""
        return self._random.uniform(lo, hi)

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi] inclusive."""
        return self._random.randint(lo, hi)

    def expovariate(self, rate: float) -> float:
        """Exponential inter-arrival sample with the given rate (1/mean)."""
        return self._random.expovariate(rate)

    def choice(self, seq: Sequence):
        """Uniformly choose one element."""
        return self._random.choice(seq)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def shuffle(self, seq: List) -> None:
        """In-place deterministic shuffle."""
        self._random.shuffle(seq)

    def bernoulli(self, p: float) -> bool:
        """True with probability ``p``."""
        return self._random.random() < p
