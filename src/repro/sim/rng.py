"""Deterministic random number generation.

Every stochastic element of the simulation (packet inter-arrival jitter,
Zipfian key draws, value sizes) draws from a seeded generator so that two
runs with the same configuration produce bit-identical results — the
property that makes the benchmark harness's paper-vs-measured comparisons
meaningful.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Dict, List, Sequence


class DeterministicRng:
    """A thin, seedable wrapper around :class:`random.Random`.

    Child generators (``fork``) are derived deterministically from the parent
    seed and a label, so adding a new consumer never perturbs the streams of
    existing ones.  Fork labels are recorded (in order) so a checkpoint can
    carry the stream's lineage alongside its Mersenne Twister state.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._random = random.Random(seed)
        #: Labels forked from this stream, in fork order.  Because child
        #: seeds are derived from ``(seed, label)`` alone — not from the
        #: parent's draw position — re-forking the same label after a
        #: restore yields the same child stream.
        self.fork_labels: List[str] = []

    def fork(self, label: str) -> "DeterministicRng":
        """Derive an independent child stream named by ``label``.

        Uses a cryptographic digest rather than ``hash()``: Python string
        hashing is salted per process, which would silently break
        cross-run reproducibility.
        """
        digest = hashlib.sha256(f"{self.seed}:{label}".encode()).digest()
        child_seed = int.from_bytes(digest[:8], "big") & 0x7FFFFFFFFFFFFFFF
        self.fork_labels.append(label)
        return DeterministicRng(child_seed)

    # -- checkpoint support --------------------------------------------------

    def getstate(self) -> Dict[str, Any]:
        """JSON-representable snapshot: seed, fork lineage, and the
        underlying :class:`random.Random` state (version, 625-word
        Mersenne state vector, gauss carry)."""
        version, internal, gauss_next = self._random.getstate()
        return {
            "seed": self.seed,
            "fork_labels": list(self.fork_labels),
            "version": version,
            "internal": list(internal),
            "gauss_next": gauss_next,
        }

    def setstate(self, state: Dict[str, Any]) -> None:
        """Restore a snapshot produced by :meth:`getstate`; the stream
        continues bit-identically from the captured position."""
        self.seed = state["seed"]
        self.fork_labels = list(state["fork_labels"])
        self._random.setstate((state["version"],
                               tuple(state["internal"]),
                               state["gauss_next"]))

    def serialize_state(self) -> Dict[str, Any]:
        """Serializable protocol alias for :meth:`getstate`."""
        return self.getstate()

    def deserialize_state(self, state: Dict[str, Any]) -> None:
        """Serializable protocol alias for :meth:`setstate`."""
        self.setstate(state)

    def uniform(self, lo: float, hi: float) -> float:
        """Uniform float in [lo, hi]."""
        return self._random.uniform(lo, hi)

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi] inclusive."""
        return self._random.randint(lo, hi)

    def expovariate(self, rate: float) -> float:
        """Exponential inter-arrival sample with the given rate (1/mean)."""
        return self._random.expovariate(rate)

    def choice(self, seq: Sequence):
        """Uniformly choose one element."""
        return self._random.choice(seq)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def shuffle(self, seq: List) -> None:
        """In-place deterministic shuffle."""
        self._random.shuffle(seq)

    def bernoulli(self, p: float) -> bool:
        """True with probability ``p``."""
        return self._random.random() < p
