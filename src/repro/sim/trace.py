"""Structured event tracing.

A :class:`Tracer` is attached to every :class:`~repro.sim.simobject.Simulation`
and is **disabled by default**: the only cost a non-traced simulation pays
is one attribute read and a branch at each instrumentation site.  When
enabled (``REPRO_TRACE=1`` in the environment, ``--trace`` on the CLI, or
an explicit :class:`TraceOptions`), instrumented components append
structured records — ``(tick, object, category, event, fields)`` — into a
bounded ring buffer per SimObject, so a runaway simulation can never
exhaust memory through its own trace.

The trace exports as JSONL: one schema-versioned header line followed by
one line per record in deterministic ``(tick, seq)`` order.  Because the
simulation itself is deterministic, the exported byte stream (and hence
:meth:`Tracer.digest`) is a fingerprint of the simulation's behaviour:
identical ``(config, seed)`` must produce identical digests, serial or
parallel — a property the test suite enforces.

Categories used by the built-in instrumentation:

========  ====================================================
loadgen   EtherLoadGen packet emission and return
nic       wire reception, drops (with FSM cause), writebacks
dma       RX/TX packet DMA start/finish at the NIC
app       application burst processing
========  ====================================================
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

#: Bump when the JSONL record shape changes; readers check the header.
TRACE_SCHEMA_VERSION = 1

DEFAULT_BUFFER_SIZE = 4096


@dataclass(frozen=True)
class TraceOptions:
    """What to trace and how much of it to keep.

    ``categories``/``objects`` of ``None`` mean "everything"; otherwise
    only records matching one of the named categories *and* one of the
    named objects are kept.
    """

    enabled: bool = False
    buffer_size: int = DEFAULT_BUFFER_SIZE
    categories: Optional[frozenset] = None
    objects: Optional[frozenset] = None

    def __post_init__(self) -> None:
        if self.buffer_size < 1:
            raise ValueError("trace buffer size must be positive")

    @classmethod
    def from_env(cls, env=None) -> "TraceOptions":
        """Build options from ``REPRO_TRACE``.

        ``REPRO_TRACE`` unset/empty/``0`` disables tracing; ``1`` or
        ``all`` traces everything; any other value is a comma-separated
        category filter (e.g. ``REPRO_TRACE=nic,dma``).
        ``REPRO_TRACE_BUFFER`` overrides the per-object ring capacity.
        """
        env = os.environ if env is None else env
        spec = env.get("REPRO_TRACE", "").strip()
        if not spec or spec == "0":
            return cls(enabled=False)
        buffer_size = int(env.get("REPRO_TRACE_BUFFER",
                                  str(DEFAULT_BUFFER_SIZE)))
        if spec in ("1", "all", "on"):
            return cls(enabled=True, buffer_size=buffer_size)
        categories = frozenset(
            part.strip() for part in spec.split(",") if part.strip())
        return cls(enabled=True, buffer_size=buffer_size,
                   categories=categories or None)


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record."""

    tick: int
    seq: int          # global insertion order (tie-break within a tick)
    obj: str          # SimObject name that emitted the record
    category: str
    event: str
    fields: Tuple[Tuple[str, object], ...]   # sorted (key, value) pairs

    def as_dict(self) -> dict:
        """Plain-dict rendering (the JSONL line payload)."""
        return {"tick": self.tick, "seq": self.seq, "obj": self.obj,
                "cat": self.category, "event": self.event,
                "fields": dict(self.fields)}


class Tracer:
    """Per-simulation trace collector with bounded per-object buffers."""

    def __init__(self, options: Optional[TraceOptions] = None) -> None:
        self.options = options if options is not None \
            else TraceOptions.from_env()
        #: Hot-path flag: instrumentation sites read this and bail early.
        self.enabled = self.options.enabled
        self._buffers: Dict[str, Deque[TraceEvent]] = {}
        self._seq = 0
        self.recorded = 0
        self.filtered = 0
        self.evicted = 0   # records pushed out of a full ring buffer

    def record(self, tick: int, obj: str, category: str, event: str,
               fields: Optional[dict] = None) -> None:
        """Append one record (no-op while disabled)."""
        if not self.enabled:
            return
        opts = self.options
        if opts.categories is not None and category not in opts.categories:
            self.filtered += 1
            return
        if opts.objects is not None and obj not in opts.objects:
            self.filtered += 1
            return
        buf = self._buffers.get(obj)
        if buf is None:
            buf = self._buffers[obj] = deque(maxlen=opts.buffer_size)
        if len(buf) == buf.maxlen:
            self.evicted += 1
        packed = tuple(sorted(fields.items())) if fields else ()
        buf.append(TraceEvent(tick, self._seq, obj, category, event, packed))
        self._seq += 1
        self.recorded += 1

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------

    def _options_signature(self) -> dict:
        opts = self.options
        return {
            "enabled": opts.enabled,
            "buffer_size": opts.buffer_size,
            "categories": (sorted(opts.categories)
                           if opts.categories is not None else None),
            "objects": (sorted(opts.objects)
                        if opts.objects is not None else None),
        }

    def serialize_state(self) -> dict:
        """Snapshot retained records and counters.  The trace digest
        covers warm-up-era records, so a restored run must resume with
        the same buffers to stay bit-identical with a straight-through
        run."""
        buffers = [[obj, [[ev.tick, ev.seq, ev.category, ev.event,
                           [list(pair) for pair in ev.fields]]
                          for ev in buf]]
                   for obj, buf in self._buffers.items()]
        return {
            "options": self._options_signature(),
            "buffers": buffers,
            "seq": self._seq,
            "recorded": self.recorded,
            "filtered": self.filtered,
            "evicted": self.evicted,
        }

    def deserialize_state(self, state: dict) -> None:
        if state["options"] != self._options_signature():
            raise ValueError(
                f"trace options changed across checkpoint: "
                f"{state['options']} -> {self._options_signature()}")
        self._buffers = {}
        for obj, records in state["buffers"]:
            buf = deque(maxlen=self.options.buffer_size)
            for tick, seq, category, event, fields in records:
                packed = tuple((key, value) for key, value in fields)
                buf.append(TraceEvent(tick, seq, obj, category, event,
                                      packed))
            self._buffers[obj] = buf
        self._seq = state["seq"]
        self.recorded = state["recorded"]
        self.filtered = state["filtered"]
        self.evicted = state["evicted"]

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def events(self) -> List[TraceEvent]:
        """All retained records in deterministic (tick, seq) order."""
        merged: List[TraceEvent] = []
        for buf in self._buffers.values():
            merged.extend(buf)
        merged.sort(key=lambda ev: (ev.tick, ev.seq))
        return merged

    def header(self) -> dict:
        """The schema-versioned JSONL header line payload."""
        opts = self.options
        return {
            "trace_schema": TRACE_SCHEMA_VERSION,
            "buffer_size": opts.buffer_size,
            "categories": (sorted(opts.categories)
                           if opts.categories is not None else None),
            "objects": (sorted(opts.objects)
                        if opts.objects is not None else None),
            "records": len(self.events()),
            "evicted": self.evicted,
        }

    def to_jsonl(self) -> str:
        """The full trace as JSONL text: header line + one line/record."""
        lines = [json.dumps(self.header(), sort_keys=True,
                            separators=(",", ":"))]
        for ev in self.events():
            lines.append(json.dumps(ev.as_dict(), sort_keys=True,
                                    separators=(",", ":")))
        return "\n".join(lines) + "\n"

    def write_jsonl(self, path) -> None:
        """Export the trace to ``path``."""
        with open(path, "w") as fh:
            fh.write(self.to_jsonl())

    def digest(self) -> str:
        """SHA-256 fingerprint of the exported trace.

        Deterministic simulations produce deterministic traces, so equal
        (config, seed) pairs must yield equal digests regardless of how
        (serial, parallel, cached replay recomputation) the run executed.
        """
        return hashlib.sha256(self.to_jsonl().encode()).hexdigest()


def read_jsonl(path) -> Tuple[dict, List[dict]]:
    """Parse a trace file back into (header, records); validates the
    schema version so format drift is an explicit error, not silence."""
    with open(path) as fh:
        lines = [line for line in fh.read().splitlines() if line]
    if not lines:
        raise ValueError(f"trace file {path} is empty")
    header = json.loads(lines[0])
    version = header.get("trace_schema")
    if version != TRACE_SCHEMA_VERSION:
        raise ValueError(
            f"trace file {path} has schema {version!r}; this reader "
            f"understands {TRACE_SCHEMA_VERSION}")
    return header, [json.loads(line) for line in lines[1:]]
