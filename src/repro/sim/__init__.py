"""Discrete-event simulation substrate.

This package plays the role gem5's event engine plays for the paper: an
integer-tick (picosecond) event queue, a :class:`SimObject` base class with
hierarchical naming and statistics registration, and a statistics framework
with scalars, histograms and distribution summaries.

Everything in the reproduction — the NIC model, DMA engine, cores, the
EtherLoadGen — is a :class:`SimObject` scheduled on a single
:class:`EventQueue` owned by a :class:`Simulation`.
"""

from repro.sim.ticks import (
    TICKS_PER_SEC,
    TICKS_PER_MS,
    TICKS_PER_US,
    TICKS_PER_NS,
    s_to_ticks,
    ms_to_ticks,
    us_to_ticks,
    ns_to_ticks,
    ticks_to_s,
    ticks_to_us,
    ticks_to_ns,
    freq_to_period,
)
from repro.sim.event_queue import Event, EventQueue
from repro.sim.simobject import SimObject, Simulation
from repro.sim.stats import (
    Counter,
    Distribution,
    Histogram,
    StatGroup,
    StatRegistry,
)
from repro.sim.rng import DeterministicRng
from repro.sim.trace import (
    TRACE_SCHEMA_VERSION,
    TraceEvent,
    TraceOptions,
    Tracer,
)
from repro.sim.invariants import (
    InvariantRegistry,
    InvariantViolation,
    mode_from_env,
)
from repro.sim.ports import (
    CallbackClock,
    ClockDomain,
    PacketPort,
    Port,
    PortBindError,
    RequestPort,
    ResponsePort,
    ports_of,
)

__all__ = [
    "TICKS_PER_SEC",
    "TICKS_PER_MS",
    "TICKS_PER_US",
    "TICKS_PER_NS",
    "s_to_ticks",
    "ms_to_ticks",
    "us_to_ticks",
    "ns_to_ticks",
    "ticks_to_s",
    "ticks_to_us",
    "ticks_to_ns",
    "freq_to_period",
    "Event",
    "EventQueue",
    "SimObject",
    "Simulation",
    "Counter",
    "Distribution",
    "Histogram",
    "StatGroup",
    "StatRegistry",
    "DeterministicRng",
    "TRACE_SCHEMA_VERSION",
    "TraceEvent",
    "TraceOptions",
    "Tracer",
    "InvariantRegistry",
    "InvariantViolation",
    "mode_from_env",
    "CallbackClock",
    "ClockDomain",
    "PacketPort",
    "Port",
    "PortBindError",
    "RequestPort",
    "ResponsePort",
    "ports_of",
]
