"""Statistics framework.

Mirrors the part of gem5's stats system the paper's evaluation relies on:
scalar counters, distributions with mean/stddev/percentiles, and histograms
(EtherLoadGen reports "mean, median, standard deviation, and tail latency of
network packets ... a packet drop percentage and a histogram of packet
forwarding latency").
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List


class Counter:
    """A named scalar counter."""

    __slots__ = ("name", "desc", "value")

    def __init__(self, name: str, desc: str = "") -> None:
        self.name = name
        self.desc = desc
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Increment by ``amount`` (may be negative for corrections)."""
        self.value += amount

    def reset(self) -> None:
        """Reset to the initial (empty) state."""
        self.value = 0

    def serialize_state(self):
        return self.value

    def deserialize_state(self, state) -> None:
        self.value = state

    def __int__(self) -> int:
        return int(self.value)

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Distribution:
    """Streaming distribution: keeps every sample for exact percentiles.

    Sample counts in this simulator are modest (one per packet), so exact
    storage is affordable and gives exact medians/tails, which matter for the
    latency plots.
    """

    __slots__ = ("name", "desc", "samples")

    def __init__(self, name: str, desc: str = "") -> None:
        self.name = name
        self.desc = desc
        self.samples: List[float] = []

    def sample(self, value: float) -> None:
        """Record one sample."""
        self.samples.append(value)

    def reset(self) -> None:
        """Reset to the initial (empty) state."""
        self.samples.clear()

    def serialize_state(self):
        return list(self.samples)

    def deserialize_state(self, state) -> None:
        self.samples = [float(x) for x in state]

    @property
    def count(self) -> int:
        """Number of items currently held."""
        return len(self.samples)

    @property
    def total(self) -> float:
        """Sum of all samples."""
        return sum(self.samples)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples."""
        return self.total / len(self.samples) if self.samples else 0.0

    @property
    def stddev(self) -> float:
        """Sample standard deviation."""
        n = len(self.samples)
        if n < 2:
            return 0.0
        mu = self.mean
        var = sum((x - mu) ** 2 for x in self.samples) / (n - 1)
        return math.sqrt(var)

    @property
    def minimum(self) -> float:
        """Smallest sample seen."""
        return min(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        """Largest sample seen."""
        return max(self.samples) if self.samples else 0.0

    def percentile(self, pct: float) -> float:
        """Exact percentile by linear interpolation; pct in [0, 100]."""
        if not self.samples:
            return 0.0
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile {pct} out of range")
        data = sorted(self.samples)
        if len(data) == 1:
            return data[0]
        rank = (pct / 100.0) * (len(data) - 1)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            return data[lo]
        frac = rank - lo
        return data[lo] * (1 - frac) + data[hi] * frac

    @property
    def median(self) -> float:
        """50th percentile."""
        return self.percentile(50.0)

    @property
    def p99(self) -> float:
        """99th percentile."""
        return self.percentile(99.0)

    def summary(self) -> Dict[str, float]:
        """The summary EtherLoadGen reports in its statistics file."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "median": self.median,
            "stddev": self.stddev,
            "min": self.minimum,
            "max": self.maximum,
            "p95": self.percentile(95.0),
            "p99": self.p99,
        }

    def __repr__(self) -> str:
        return f"<Distribution {self.name} n={self.count} mean={self.mean:.3g}>"


class Histogram:
    """Fixed-bucket histogram with overflow/underflow buckets."""

    __slots__ = ("name", "desc", "lo", "hi", "nbuckets", "buckets",
                 "underflow", "overflow", "_width")

    def __init__(
        self,
        name: str,
        lo: float,
        hi: float,
        nbuckets: int = 32,
        desc: str = "",
    ) -> None:
        if hi <= lo:
            raise ValueError(f"histogram range [{lo}, {hi}) is empty")
        if nbuckets < 1:
            raise ValueError("need at least one bucket")
        self.name = name
        self.desc = desc
        self.lo = lo
        self.hi = hi
        self.nbuckets = nbuckets
        self.buckets = [0] * nbuckets
        self.underflow = 0
        self.overflow = 0
        self._width = (hi - lo) / nbuckets

    def sample(self, value: float) -> None:
        """Record one sample."""
        if value < self.lo:
            self.underflow += 1
        elif value >= self.hi:
            self.overflow += 1
        else:
            idx = int((value - self.lo) / self._width)
            # Guard against float edge cases landing exactly on hi.
            idx = min(idx, self.nbuckets - 1)
            self.buckets[idx] += 1

    def reset(self) -> None:
        """Reset to the initial (empty) state."""
        self.buckets = [0] * self.nbuckets
        self.underflow = 0
        self.overflow = 0

    def serialize_state(self):
        return {"buckets": list(self.buckets), "underflow": self.underflow,
                "overflow": self.overflow}

    def deserialize_state(self, state) -> None:
        if len(state["buckets"]) != self.nbuckets:
            raise ValueError(
                f"histogram {self.name}: bucket count changed "
                f"({len(state['buckets'])} -> {self.nbuckets})")
        self.buckets = list(state["buckets"])
        self.underflow = state["underflow"]
        self.overflow = state["overflow"]

    @property
    def count(self) -> int:
        """Number of items currently held."""
        return sum(self.buckets) + self.underflow + self.overflow

    def bucket_edges(self) -> List[float]:
        """The nbuckets+1 bucket boundary values."""
        return [self.lo + i * self._width for i in range(self.nbuckets + 1)]

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict rendering for dumps."""
        return {
            "edges": self.bucket_edges(),
            "counts": list(self.buckets),
            "underflow": self.underflow,
            "overflow": self.overflow,
        }

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count}>"


class StatGroup:
    """A namespace of stats belonging to one SimObject."""

    def __init__(self, owner_name: str) -> None:
        self.owner_name = owner_name
        self._stats: Dict[str, object] = {}

    def counter(self, name: str, desc: str = "") -> Counter:
        """Create a namespaced Counter."""
        return self._add(Counter(f"{self.owner_name}.{name}", desc))

    def distribution(self, name: str, desc: str = "") -> Distribution:
        """Create a namespaced Distribution."""
        return self._add(Distribution(f"{self.owner_name}.{name}", desc))

    def histogram(
        self, name: str, lo: float, hi: float, nbuckets: int = 32, desc: str = ""
    ) -> Histogram:
        """Create a namespaced Histogram."""
        return self._add(
            Histogram(f"{self.owner_name}.{name}", lo, hi, nbuckets, desc)
        )

    def _add(self, stat):
        short = stat.name.rsplit(".", 1)[-1]
        if short in self._stats:
            raise ValueError(f"duplicate stat {stat.name}")
        self._stats[short] = stat
        return stat

    def __getitem__(self, short_name: str):
        return self._stats[short_name]

    def __contains__(self, short_name: str) -> bool:
        return short_name in self._stats

    def all(self) -> Iterable[object]:
        """All stats in this group."""
        return self._stats.values()

    def reset(self) -> None:
        """Reset to the initial (empty) state."""
        for stat in self._stats.values():
            stat.reset()

    def serialize_state(self):
        return {short: stat.serialize_state()
                for short, stat in self._stats.items()}

    def deserialize_state(self, state) -> None:
        if set(state) != set(self._stats):
            missing = set(self._stats) - set(state)
            extra = set(state) - set(self._stats)
            raise ValueError(
                f"stat group {self.owner_name}: schema mismatch "
                f"(missing {sorted(missing)}, unexpected {sorted(extra)})")
        for short, value in state.items():
            self._stats[short].deserialize_state(value)


class StatRegistry:
    """All stat groups of a simulation; supports dump and global reset.

    ``reset()`` is how the harness implements gem5-style warm-up: run the
    simulation for the warm-up period, reset statistics, then measure.
    """

    def __init__(self) -> None:
        self._groups: List[StatGroup] = []

    def group(self, owner_name: str) -> StatGroup:
        """Create a stat group namespaced by an owner name."""
        grp = StatGroup(owner_name)
        self._groups.append(grp)
        return grp

    def reset(self) -> None:
        """Reset to the initial (empty) state."""
        for grp in self._groups:
            grp.reset()

    def serialize_state(self):
        """Groups serialized positionally (creation order), name-checked
        on restore so a layout drift fails loudly instead of silently
        mapping counters to the wrong owner."""
        return [[grp.owner_name, grp.serialize_state()]
                for grp in self._groups]

    def deserialize_state(self, state) -> None:
        if len(state) != len(self._groups):
            raise ValueError(
                f"stat registry: group count changed "
                f"({len(state)} -> {len(self._groups)})")
        for (name, grp_state), grp in zip(state, self._groups):
            if name != grp.owner_name:
                raise ValueError(
                    f"stat registry: group order changed "
                    f"({name!r} -> {grp.owner_name!r})")
            grp.deserialize_state(grp_state)

    def dump(self) -> Dict[str, object]:
        """Flatten all stats into a {full_name: value} mapping."""
        out: Dict[str, object] = {}
        for grp in self._groups:
            for stat in grp.all():
                if isinstance(stat, Counter):
                    out[stat.name] = stat.value
                elif isinstance(stat, Distribution):
                    for key, val in stat.summary().items():
                        out[f"{stat.name}.{key}"] = val
                elif isinstance(stat, Histogram):
                    out[stat.name] = stat.as_dict()
        return out

    def format(self) -> str:
        """A gem5 stats.txt-style text rendering."""
        lines = []
        for name, value in sorted(self.dump().items()):
            if isinstance(value, dict):
                lines.append(f"{name:60s} <histogram n={sum(value['counts'])}>")
            elif isinstance(value, float):
                lines.append(f"{name:60s} {value:.6g}")
            else:
                lines.append(f"{name:60s} {value}")
        return "\n".join(lines)
