"""Simulation invariant checking.

Components register *conservation rules* — exact structural equalities
over lifetime counters — into the simulation's
:class:`InvariantRegistry`.  The registry runs them in one of three
modes:

``final``  (default)
    Every rule is evaluated once when the harness finishes a run
    (:func:`repro.harness.runner.run_fixed_load` and friends call
    :meth:`InvariantRegistry.check` before returning a result), so every
    existing test and benchmark exercises the whole rule set for free.

``strict``
    Additionally, rules registered with ``strict=True`` are re-evaluated
    after **every simulation event** via the event queue's ``on_event``
    hook.  This localises a violation to the exact tick and event that
    introduced it, at the cost of extra wall-clock (bounded; see
    docs/tracing_and_invariants.md for measured overhead).

``off``
    Nothing runs.  Useful to confirm a failure is the checker's and not
    the model's.

The mode comes from ``REPRO_CHECK_INVARIANTS`` (``--check-invariants``
on the CLI simply sets that variable so forked sweep workers inherit
it).

Rule functions take one argument ``final`` (False during per-event
strict checks, True at end of run) and report trouble by returning a
string or list of strings; ``None``/empty means the invariant holds.
Rules must be *exact at any instant* — they are built on lifetime
counters that are never reset by the gem5-style warm-up stats reset, so
they cannot be confused by packets in flight across the measurement
boundary.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Sequence, Tuple

MODES = ("off", "final", "strict")

CheckFn = Callable[[bool], object]


def mode_from_env(env=None) -> str:
    """Resolve the checking mode from ``REPRO_CHECK_INVARIANTS``.

    Unset or empty means ``final``: conservation is checked at the end
    of every harness run unless explicitly disabled.
    """
    env = os.environ if env is None else env
    raw = env.get("REPRO_CHECK_INVARIANTS", "").strip().lower()
    if not raw or raw in ("1", "final", "on", "default"):
        return "final"
    if raw in ("0", "off", "none", "disabled"):
        return "off"
    if raw == "strict":
        return "strict"
    raise ValueError(
        f"REPRO_CHECK_INVARIANTS={raw!r}: expected one of {MODES}")


class InvariantViolation(AssertionError):
    """One or more registered invariants do not hold.

    Subclasses ``AssertionError`` so a violation fails a pytest test
    naturally even when nothing anticipates it.
    """

    def __init__(self, failures: Sequence[str], tick: Optional[int] = None,
                 phase: str = "final"):
        self.failures = list(failures)
        self.tick = tick
        self.phase = phase
        where = f" at tick {tick}" if tick is not None else ""
        detail = "\n  ".join(self.failures)
        super().__init__(
            f"{len(self.failures)} invariant violation(s) "
            f"({phase} check{where}):\n  {detail}")


class InvariantRegistry:
    """Named conservation rules, checked per-event and/or at end of run."""

    def __init__(self, event_queue=None, mode: Optional[str] = None):
        if mode is None:
            mode = mode_from_env()
        if mode not in MODES:
            raise ValueError(f"invariant mode {mode!r}: expected {MODES}")
        self.mode = mode
        self._event_queue = event_queue
        self._checks: List[Tuple[str, CheckFn]] = []
        self._strict_checks: List[Tuple[str, CheckFn]] = []
        #: Flat dispatch table for the per-event hook: just the strict
        #: check functions, rebuilt on registration so the hot loop does
        #: no tuple unpacking and no name handling on the success path.
        self._strict_fns: List[CheckFn] = []
        self._names = set()
        self.events_checked = 0
        self.final_checks_run = 0
        if mode == "strict" and event_queue is not None:
            event_queue.on_event = self._on_event

    @property
    def enabled(self) -> bool:
        return self.mode != "off"

    def register(self, name: str, check: CheckFn,
                 strict: bool = False) -> None:
        """Add a rule.  ``strict=True`` opts it into per-event checking
        (keep such rules to a few integer compares — they run on every
        simulation event under ``--check-invariants=strict``)."""
        if name in self._names:
            raise ValueError(f"invariant {name!r} registered twice")
        self._names.add(name)
        self._checks.append((name, check))
        if strict:
            self._strict_checks.append((name, check))
            self._strict_fns.append(check)

    @property
    def names(self) -> List[str]:
        return [name for name, _ in self._checks]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    @staticmethod
    def _collect(name: str, result) -> List[str]:
        if not result:
            return []
        if isinstance(result, str):
            return [f"{name}: {result}"]
        return [f"{name}: {item}" for item in result]

    def failures(self, final: bool = True) -> List[str]:
        """Evaluate every rule; returns failure messages (empty == OK)."""
        out: List[str] = []
        for name, check in self._checks:
            out.extend(self._collect(name, check(final)))
        return out

    def check(self, final: bool = True) -> None:
        """Evaluate every rule, raising :class:`InvariantViolation` on
        any failure.  No-op when the mode is ``off``."""
        if self.mode == "off":
            return
        self.final_checks_run += 1
        failed = self.failures(final)
        if failed:
            tick = (self._event_queue.now
                    if self._event_queue is not None else None)
            raise InvariantViolation(failed, tick=tick, phase="final")

    def _on_event(self, event) -> None:
        """Event-queue hook: strict rules after every event callback."""
        self.events_checked += 1
        for index, check in enumerate(self._strict_fns):
            result = check(False)
            if result:
                name = self._strict_checks[index][0]
                raise InvariantViolation(
                    self._collect(name, result),
                    tick=self._event_queue.now, phase="strict")
