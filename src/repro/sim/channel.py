"""Latency-tolerant link channels between simulation shards.

SimBricks (PAPERS.md) couples independent component simulators through
message channels with synchronized virtual time: a simulator may run
ahead of its peers by up to the link latency, because a message sent at
time *t* can never need delivery before ``t + latency``.  This module is
that coupling layer for the reproduction's shards:

- :class:`ChannelHalf` is the shard-local end of a link whose other end
  lives in a different shard (usually a different OS process).  It is
  EtherLink-compatible on the transmit side — an attached
  :class:`~repro.nic.phy.EtherPort` calls ``transmit`` exactly as it
  would on a local cable — and computes the very same delivery tick an
  :class:`~repro.nic.phy.EtherLink` would: serialization at line rate
  on a per-direction busy horizon, plus the propagation delay.  Instead
  of scheduling the delivery locally it appends the frame to an
  *outbox*, batched per sync epoch.
- :class:`ChannelGroup` drives one shard's conservative synchronization:
  the shard advances its event queue to the next epoch horizon (at most
  ``quantum <= min link latency`` past the last synchronized point),
  drains every outbox, exchanges the batches with its peers, and injects
  the frames it received — each at its sender-computed delivery tick,
  which the quantum bound guarantees is still in this shard's future.

Determinism: frames inside one channel are ordered by a per-channel
sequence number, and a shard injects everything it received in one
epoch in ``(deliver_at, channel name, sequence)`` order, so delivery
scheduling does not depend on message arrival order on the wire.  The
delivery *ticks* are bit-identical to the single-process
:class:`EtherLink` by construction; the cross-process equivalence suite
(``tests/test_dist_shard_equivalence.py``) pins the end-to-end result.

The epoch machinery is split into ``begin_epoch`` / ``finish_epoch`` so
the identical code path runs under :class:`InProcessCoupler` (unit and
hypothesis tests, no processes involved) and under the multiprocess
shard runner in :mod:`repro.dist.shard`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.net.packet import MacAddress, Packet
from repro.sim.checkpoint import CheckpointError
from repro.sim.event_queue import EventPool, batching_enabled
from repro.sim.ports import PacketPort
from repro.sim.simobject import SimObject, Simulation


class ChannelError(RuntimeError):
    """A link-channel protocol violation (quantum too large, epoch skew,
    delivery scheduled into the past)."""


#: A frame crossing a channel: (deliver_at tick, per-channel sequence,
#: encoded packet).  The tuple form is what crosses the process boundary.
ChannelFrame = Tuple[int, int, tuple]


def encode_frame(packet: Packet) -> tuple:
    """Flatten a packet for the process boundary (no live objects).

    Everything observable crosses except ``packet_id``, a process-local
    debugging counter: the receiving shard assigns a fresh one.
    """
    return (packet.wire_len, packet.dst.value, packet.src.value,
            packet.ethertype, packet.data, packet.ts_tx, packet.ts_offset,
            packet.request_id, dict(packet.meta) if packet.meta else None)


def decode_frame(data: tuple) -> Packet:
    """Rebuild a packet on the receiving shard."""
    wire_len, dst, src, ethertype, payload, ts_tx, ts_offset, req_id, \
        meta = data
    return Packet(wire_len, dst=MacAddress(dst), src=MacAddress(src),
                  ethertype=ethertype, data=payload, ts_tx=ts_tx,
                  ts_offset=ts_offset, request_id=req_id, meta=meta)


class ChannelHalf(SimObject):
    """The shard-local end of one cross-shard link.

    Carries exactly one direction of traffic out (this shard's attached
    port transmitting toward the peer shard) and one direction in
    (frames the peer shard's half drained, injected at epoch
    boundaries).  The two halves of one link therefore mirror the two
    independent per-direction serialization horizons of a full-duplex
    :class:`~repro.nic.phy.EtherLink`.
    """

    def __init__(self, sim: Simulation, name: str, peer_shard: int,
                 bandwidth_bits_per_sec: float = 100e9,
                 delay_ticks: int = 0) -> None:
        super().__init__(sim, name)
        if bandwidth_bits_per_sec <= 0:
            raise ValueError("channel bandwidth must be positive")
        if delay_ticks <= 0:
            raise ValueError(
                "a cross-shard channel needs a positive link latency: "
                "the sync quantum is bounded by it")
        self.peer_shard = peer_shard
        self.bandwidth_bits_per_sec = bandwidth_bits_per_sec
        self.delay_ticks = delay_ticks
        #: Typed stand-in for the far shard's half of the cable, so the
        #: cross-shard edge appears in the wiring graph like any link.
        self.wire = PacketPort(self, "wire", external=True)
        self.port: Optional["EtherPort"] = None  # noqa: F821
        self._tx_free_at = 0
        self._outbox: List[ChannelFrame] = []
        self._out_seq = 0
        self._pending_in = 0      # injected deliveries not yet fired
        # Lifetime counters: the shard-level conservation law closes
        # over frames that left / entered through this half.
        self.frames_out = 0
        self.frames_in = 0
        self.stat_out = self.stats.counter("tx_frames",
                                           "frames sent to the peer shard")
        self.stat_in = self.stats.counter("rx_frames",
                                          "frames received from the peer")
        self._event_pools = batching_enabled()
        self._deliver_pool = EventPool(self._deliver_pooled,
                                       f"{name}.deliver")
        self._register_invariants()

    def _register_invariants(self) -> None:
        half = self

        def sane(final: bool):
            fails = []
            if half._pending_in < 0:
                fails.append(f"negative pending delivery count "
                             f"{half._pending_in}")
            if len(half._outbox) > half.frames_out:
                fails.append(
                    f"outbox holds {len(half._outbox)} frames but only "
                    f"{half.frames_out} were ever posted")
            return fails

        self.sim.invariants.register(f"{self.name}.channel-sane", sane,
                                     strict=True)

    # -- attachment ----------------------------------------------------------

    def attach(self, port: "EtherPort") -> None:  # noqa: F821
        """Wire a local device port to this end of the channel."""
        if port.link is not None:
            raise RuntimeError(f"{port.name} is already connected")
        self.wire.bind(port, link=self,
                       bandwidth_bits_per_sec=self.bandwidth_bits_per_sec,
                       delay_ticks=self.delay_ticks)
        port.link = self
        self.port = port

    # -- transmit side (EtherLink-compatible surface) ------------------------

    def serialization_ticks(self, packet: Packet) -> int:
        wire_bits = (packet.wire_len + 20) * 8
        return round(wire_bits * 1e12 / self.bandwidth_bits_per_sec)

    def transmit(self, src_port, packet: Packet) -> None:
        """Serialize at line rate, then post to the epoch outbox.

        Identical timing arithmetic to :meth:`EtherLink.transmit`: the
        delivery tick of a frame does not depend on whether the link was
        cut at a shard boundary.
        """
        start = max(self.now, self._tx_free_at)
        finish = start + self.serialization_ticks(packet)
        self._tx_free_at = finish
        deliver_at = finish + self.delay_ticks
        self._outbox.append((deliver_at, self._out_seq,
                             encode_frame(packet)))
        self._out_seq += 1
        self.frames_out += 1
        self.stat_out.inc()

    def drain(self, horizon: int) -> List[ChannelFrame]:
        """Take the frames posted this epoch (the batch for the peer).

        The conservative-sync safety argument requires every drained
        frame to deliver strictly after ``horizon`` (the epoch
        boundary); a violation means the quantum exceeded the link
        latency somewhere, so fail loudly rather than corrupt time.
        """
        out, self._outbox = self._outbox, []
        for deliver_at, _seq, _frame in out:
            if deliver_at <= horizon:
                raise ChannelError(
                    f"{self.name}: frame delivers at {deliver_at}, not "
                    f"after the epoch boundary {horizon}; the sync "
                    f"quantum must not exceed the link latency "
                    f"{self.delay_ticks}")
        return out

    # -- receive side --------------------------------------------------------

    def inject(self, deliver_at: int, frame: tuple) -> None:
        """Schedule one received frame for local delivery."""
        if deliver_at <= self.now:
            raise ChannelError(
                f"{self.name}: peer frame delivers at {deliver_at} but "
                f"this shard is already at {self.now} (epoch skew)")
        self._pending_in += 1
        packet = decode_frame(frame)
        if self._event_pools:
            self._deliver_pool.schedule_at(self.sim.events, deliver_at,
                                           packet)
            return

        def _deliver(p=packet):
            self._deliver(p)

        self.sim.events.call_at(deliver_at, _deliver,
                                name=f"{self.name}.deliver")

    def _deliver_pooled(self, packet: Packet) -> None:
        self._deliver(packet)

    def _deliver(self, packet: Packet) -> None:
        if self.port is None:
            raise RuntimeError(f"{self.name} has no attached device port")
        self._pending_in -= 1
        self.frames_in += 1
        self.stat_in.inc()
        self.port.deliver(packet)

    # -- introspection -------------------------------------------------------

    @property
    def in_flight(self) -> int:
        """Frames this half is responsible for that have not been
        handed to a device yet: posted-but-undrained plus
        injected-but-undelivered."""
        return len(self._outbox) + self._pending_in

    # -- checkpoint support --------------------------------------------------

    def serialize_state(self) -> dict:
        if self.in_flight:
            raise CheckpointError(
                f"channel {self.name} has {self.in_flight} frames in "
                f"flight; checkpoints require a drained fabric")
        return {
            "tx_free_at": self._tx_free_at,
            "out_seq": self._out_seq,
            "frames_out": self.frames_out,
            "frames_in": self.frames_in,
        }

    def deserialize_state(self, state: dict) -> None:
        self._tx_free_at = state["tx_free_at"]
        self._out_seq = state["out_seq"]
        self.frames_out = state["frames_out"]
        self.frames_in = state["frames_in"]
        self._outbox = []
        self._pending_in = 0


#: One epoch's outgoing batches, keyed by peer shard id: each entry is a
#: list of (channel name, frames) pairs.
EpochBatches = Dict[int, List[Tuple[str, List[ChannelFrame]]]]


class ChannelGroup:
    """One shard's synchronization driver over all its channel halves.

    Implements the conservative lookahead loop: the shard's clock may
    advance at most ``quantum`` past the last synchronized point, where
    ``quantum <= min(link latency)`` over every attached channel — the
    dist-gem5/SimBricks bound that makes peer frames always land in the
    local future.  Epochs are two-phase so transports can differ:

    - :meth:`begin_epoch` runs the event queue to the horizon and
      returns the per-peer outgoing batches;
    - :meth:`finish_epoch` takes everything received for that epoch and
      injects it in deterministic ``(deliver_at, channel, seq)`` order.

    A shard with no channels degenerates to plain ``sim.run``.
    """

    def __init__(self, sim: Simulation, halves: Sequence[ChannelHalf],
                 quantum_ticks: Optional[int] = None) -> None:
        self.sim = sim
        self.halves = list(halves)
        self.by_name: Dict[str, ChannelHalf] = {}
        for half in self.halves:
            if half.name in self.by_name:
                raise ChannelError(f"duplicate channel name {half.name!r}")
            self.by_name[half.name] = half
        if self.halves:
            min_latency = min(h.delay_ticks for h in self.halves)
            self.quantum_ticks = (quantum_ticks if quantum_ticks is not None
                                  else min_latency)
            if self.quantum_ticks <= 0:
                raise ChannelError("sync quantum must be positive")
            if self.quantum_ticks > min_latency:
                raise ChannelError(
                    f"sync quantum {self.quantum_ticks} exceeds the "
                    f"minimum channel latency {min_latency}: peer frames "
                    f"could arrive in this shard's past")
        else:
            self.quantum_ticks = quantum_ticks or 1
        self.sync_time = sim.now
        self.epoch = 0

    def neighbors(self) -> List[int]:
        """Peer shard ids this shard exchanges epochs with, sorted."""
        return sorted({h.peer_shard for h in self.halves})

    def next_horizon(self, target: int) -> int:
        return min(self.sync_time + self.quantum_ticks, target)

    def begin_epoch(self, horizon: int) -> EpochBatches:
        """Run local events up to ``horizon`` and drain every outbox."""
        if horizon <= self.sync_time and self.halves:
            raise ChannelError(
                f"epoch horizon {horizon} does not advance past the "
                f"synchronized time {self.sync_time}")
        self.sim.run(until=horizon)
        batches: EpochBatches = {peer: [] for peer in self.neighbors()}
        for half in self.halves:
            batches[half.peer_shard].append((half.name,
                                             half.drain(horizon)))
        return batches

    def finish_epoch(self, horizon: int,
                     incoming: Sequence[Tuple[str, List[ChannelFrame]]]
                     ) -> int:
        """Inject the frames received for this epoch; returns the count.

        Injection order is independent of which peer's message arrived
        first: all frames of the epoch are sorted by
        ``(deliver_at, channel name, per-channel sequence)`` before
        scheduling, so the receiving event queue is deterministic.
        """
        entries = []
        for channel_name, frames in incoming:
            half = self.by_name.get(channel_name)
            if half is None:
                raise ChannelError(
                    f"received frames for unknown channel "
                    f"{channel_name!r}; shard plans out of sync?")
            for deliver_at, seq, frame in frames:
                entries.append((deliver_at, channel_name, seq, frame))
        entries.sort(key=lambda e: (e[0], e[1], e[2]))
        for deliver_at, channel_name, _seq, frame in entries:
            self.by_name[channel_name].inject(deliver_at, frame)
        self.sync_time = horizon
        self.epoch += 1
        return len(entries)

    def advance(self, target: int,
                exchange: Callable[[int, int, EpochBatches],
                                   List[Tuple[str, List[ChannelFrame]]]]
                ) -> None:
        """Advance to ``target`` in epoch steps, calling ``exchange``
        with ``(epoch index, horizon, outgoing batches)`` at each
        boundary; it must return this shard's incoming batches for the
        same epoch (the multiprocess transport lives there)."""
        if not self.halves:
            # A shard with no cross-shard links has nothing to
            # synchronize on: run straight to the target.
            self.sim.run(until=target)
            self.sync_time = target
            return
        while self.sync_time < target:
            horizon = self.next_horizon(target)
            outgoing = self.begin_epoch(horizon)
            incoming = exchange(self.epoch, horizon, outgoing)
            self.finish_epoch(horizon, incoming)

    @property
    def in_flight(self) -> int:
        """Frames somewhere between a local device and a peer device."""
        return sum(h.in_flight for h in self.halves)


class InProcessCoupler:
    """Run several shards' channel groups in lockstep in one process.

    The unit-test and hypothesis harness for the channel layer: no
    processes, no queues — epochs are exchanged by routing each group's
    outgoing batches straight into the peer group.  The per-epoch code
    path (``begin_epoch`` / ``finish_epoch``) is exactly what the
    multiprocess shard runner drives, so properties proven here hold
    for the real transport too.
    """

    def __init__(self, groups: Dict[int, ChannelGroup]) -> None:
        self.groups = dict(groups)
        quanta = {g.quantum_ticks for g in self.groups.values()
                  if g.halves}
        if len(quanta) > 1:
            raise ChannelError(
                f"coupled shards disagree on the sync quantum: {quanta}")

    def advance(self, target: int) -> None:
        """Advance every shard to ``target`` in synchronized epochs."""
        while any(g.sync_time < target for g in self.groups.values()):
            outgoing = {}
            horizons = {}
            for shard_id, group in self.groups.items():
                horizon = group.next_horizon(target)
                horizons[shard_id] = horizon
                outgoing[shard_id] = group.begin_epoch(horizon)
            for shard_id, group in self.groups.items():
                incoming = []
                for src_id, batches in outgoing.items():
                    if src_id != shard_id:
                        incoming.extend(batches.get(shard_id, []))
                group.finish_epoch(horizons[shard_id], incoming)
