"""SimObject base class and the Simulation container.

A :class:`Simulation` owns the event queue, the stat registry and the RNG; a
:class:`SimObject` is any named component attached to it.  This mirrors
gem5's SimObject/Root split closely enough that the paper's architecture
descriptions ("we implement a simulation object called EtherLoadGen ...")
translate one-to-one.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.sim.event_queue import Event, EventQueue
from repro.sim.invariants import InvariantRegistry
from repro.sim.rng import DeterministicRng
from repro.sim.stats import StatGroup, StatRegistry
from repro.sim.trace import TraceOptions, Tracer


class Simulation:
    """Top-level container: event queue + stats + RNG + object registry,
    plus the cross-cutting correctness layer (tracer + invariants)."""

    def __init__(self, seed: int = 0,
                 trace_options: Optional[TraceOptions] = None,
                 invariant_mode: Optional[str] = None) -> None:
        self.events = EventQueue()
        self.stats = StatRegistry()
        self.rng = DeterministicRng(seed)
        self._objects: Dict[str, "SimObject"] = {}
        #: Persistent events by registry name — the callbacks a restored
        #: checkpoint can re-bind pending events to.  Populated by
        #: :meth:`SimObject.make_event`; one-shot ``call_after`` closures
        #: are deliberately absent (they imply non-quiescence).
        self._named_events: Dict[str, Event] = {}
        self.tracer = Tracer(trace_options)
        self.invariants = InvariantRegistry(self.events, mode=invariant_mode)
        self._register_core_invariants()

    def _register_core_invariants(self) -> None:
        """Event-queue sanity: simulated time never flows backwards and
        the next pending event is never behind ``now``."""
        queue = self.events
        state = {"last_now": 0, "last_fired": 0}

        def tick_monotonic(final: bool):
            now = queue.now
            if now < state["last_now"]:
                return [f"time went backwards: "
                        f"{state['last_now']} -> {now}"]
            state["last_now"] = now
            head = queue.peek()
            if head is not None and head < now:
                return [f"pending event at tick {head} is in the past "
                        f"(now {now})"]
            return None

        def queue_sane(final: bool):
            fired = queue.fired
            if fired < state["last_fired"]:
                return [f"fired-event count decreased: "
                        f"{state['last_fired']} -> {fired}"]
            state["last_fired"] = fired
            if queue.pending < 0:
                return [f"negative pending event count {queue.pending}"]
            return None

        self.invariants.register("sim.tick-monotonic", tick_monotonic,
                                 strict=True)
        self.invariants.register("sim.event-queue-sane", queue_sane)

    @property
    def now(self) -> int:
        """Current simulated tick."""
        return self.events.now

    def register(self, obj: "SimObject") -> None:
        """Register a SimObject under its unique name."""
        if obj.name in self._objects:
            raise ValueError(f"duplicate SimObject name {obj.name!r}")
        self._objects[obj.name] = obj

    def object(self, name: str) -> "SimObject":
        """Look up a SimObject by name."""
        return self._objects[name]

    def objects(self) -> List["SimObject"]:
        """All registered SimObjects."""
        return list(self._objects.values())

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Run the event loop; see :meth:`EventQueue.run`."""
        return self.events.run(until=until, max_events=max_events)

    def reset_stats(self) -> None:
        """gem5-style stats reset after warm-up."""
        self.stats.reset()
        for obj in self._objects.values():
            obj.on_stats_reset()

    # -- checkpoint support ------------------------------------------------

    def register_event(self, name: str, event: Event) -> Event:
        """Register a persistent event so checkpoints can re-bind it.

        Names are unique per simulation (SimObject names already are, and
        event names are prefixed by their owner), so a collision means two
        components claimed the same identity — fail loudly.
        """
        if name in self._named_events:
            raise ValueError(f"duplicate named event {name!r}")
        self._named_events[name] = event
        return event

    def named_event_status(self):
        """Pending live events partitioned into (registered, unregistered).

        A pending event outside the registry is a one-shot closure that
        cannot survive a checkpoint; callers use this to decide whether
        the simulation has drained far enough to snapshot.
        """
        names_by_event = {id(ev): name
                          for name, ev in self._named_events.items()}
        registered, unregistered = [], []
        for event in self.events.live_events():
            (registered if id(event) in names_by_event
             else unregistered).append(event)
        return registered, unregistered

    def serialize_state(self) -> dict:
        """Snapshot the simulation-global state: event queue (pending
        events by registry name), RNG stream, stats registry, tracer."""
        names_by_event = {id(ev): name
                          for name, ev in self._named_events.items()}
        return {
            "events": self.events.serialize_state(names_by_event),
            "rng": self.rng.getstate(),
            "stats": self.stats.serialize_state(),
            "trace": self.tracer.serialize_state(),
        }

    def deserialize_state(self, state: dict) -> None:
        """Restore simulation-global state into this freshly built
        simulation: the event queue must be empty (nothing started)."""
        self.events.deserialize_state(state["events"], self._named_events)
        self.rng.setstate(state["rng"])
        self.stats.deserialize_state(state["stats"])
        self.tracer.deserialize_state(state["trace"])


class SimObject:
    """A named simulation component.

    Subclasses get:

    - ``self.sim`` — the owning :class:`Simulation`
    - ``self.stats`` — a :class:`StatGroup` namespaced by the object name
    - scheduling helpers (``schedule_after`` etc.) bound to the shared queue

    The base attributes are slotted so the hottest lookups
    (``self.sim``, ``self.stats``) hit descriptors rather than a dict;
    subclasses that declare their own ``__slots__`` drop the per-instance
    dict entirely.
    """

    __slots__ = ("sim", "name", "stats", "__dict__")

    def __init__(self, sim: Simulation, name: str) -> None:
        self.sim = sim
        self.name = name
        self.stats: StatGroup = sim.stats.group(name)
        sim.register(self)

    @property
    def now(self) -> int:
        """Current simulated tick."""
        return self.sim.events.now

    def make_event(self, callback: Callable[[], None], name: str = "",
                   priority: int = Event.DEFAULT_PRIORITY) -> Event:
        """Create a persistent event owned by this object.

        The event is registered in the simulation's named-event registry,
        which is what allows it to be pending across a checkpoint: the
        restoring side looks the callback up again by the same name.
        """
        event = Event(callback, name=f"{self.name}.{name or 'event'}",
                      priority=priority)
        return self.sim.register_event(event.name, event)

    def schedule(self, event: Event, when: int) -> Event:
        """Schedule an event at an absolute tick."""
        return self.sim.events.schedule(event, when)

    def schedule_after(self, event: Event, delay: int) -> Event:
        """Schedule an event relative to now."""
        return self.sim.events.schedule_after(event, delay)

    def call_after(self, delay: int, callback: Callable[[], None],
                   name: str = "") -> Event:
        """Schedule a one-shot callback relative to now."""
        return self.sim.events.call_after(
            delay, callback, name=f"{self.name}.{name or 'call'}")

    def deschedule(self, event: Event) -> None:
        """Cancel a pending event."""
        self.sim.events.deschedule(event)

    def trace(self, category: str, event: str, **fields) -> None:
        """Record a structured trace event attributed to this object.

        Near-free while tracing is disabled: one attribute read and a
        branch.  Callers on hot paths should still guard expensive field
        construction with ``if self.sim.tracer.enabled:``.
        """
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.record(self.sim.events.now, self.name, category, event,
                          fields or None)

    def on_stats_reset(self) -> None:
        """Hook invoked by Simulation.reset_stats; override to clear any
        measurement state kept outside the stats framework."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"
