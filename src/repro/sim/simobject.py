"""SimObject base class and the Simulation container.

A :class:`Simulation` owns the event queue, the stat registry and the RNG; a
:class:`SimObject` is any named component attached to it.  This mirrors
gem5's SimObject/Root split closely enough that the paper's architecture
descriptions ("we implement a simulation object called EtherLoadGen ...")
translate one-to-one.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.sim.event_queue import Event, EventQueue
from repro.sim.rng import DeterministicRng
from repro.sim.stats import StatGroup, StatRegistry


class Simulation:
    """Top-level container: event queue + stats + RNG + object registry."""

    def __init__(self, seed: int = 0) -> None:
        self.events = EventQueue()
        self.stats = StatRegistry()
        self.rng = DeterministicRng(seed)
        self._objects: Dict[str, "SimObject"] = {}

    @property
    def now(self) -> int:
        """Current simulated tick."""
        return self.events.now

    def register(self, obj: "SimObject") -> None:
        """Register a SimObject under its unique name."""
        if obj.name in self._objects:
            raise ValueError(f"duplicate SimObject name {obj.name!r}")
        self._objects[obj.name] = obj

    def object(self, name: str) -> "SimObject":
        """Look up a SimObject by name."""
        return self._objects[name]

    def objects(self) -> List["SimObject"]:
        """All registered SimObjects."""
        return list(self._objects.values())

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Run the event loop; see :meth:`EventQueue.run`."""
        return self.events.run(until=until, max_events=max_events)

    def reset_stats(self) -> None:
        """gem5-style stats reset after warm-up."""
        self.stats.reset()
        for obj in self._objects.values():
            obj.on_stats_reset()


class SimObject:
    """A named simulation component.

    Subclasses get:

    - ``self.sim`` — the owning :class:`Simulation`
    - ``self.stats`` — a :class:`StatGroup` namespaced by the object name
    - scheduling helpers (``schedule_after`` etc.) bound to the shared queue
    """

    def __init__(self, sim: Simulation, name: str) -> None:
        self.sim = sim
        self.name = name
        self.stats: StatGroup = sim.stats.group(name)
        sim.register(self)

    @property
    def now(self) -> int:
        """Current simulated tick."""
        return self.sim.events.now

    def make_event(self, callback: Callable[[], None], name: str = "",
                   priority: int = Event.DEFAULT_PRIORITY) -> Event:
        """Create an event owned by this object."""
        return Event(callback, name=f"{self.name}.{name or 'event'}",
                     priority=priority)

    def schedule(self, event: Event, when: int) -> Event:
        """Schedule an event at an absolute tick."""
        return self.sim.events.schedule(event, when)

    def schedule_after(self, event: Event, delay: int) -> Event:
        """Schedule an event relative to now."""
        return self.sim.events.schedule_after(event, delay)

    def call_after(self, delay: int, callback: Callable[[], None],
                   name: str = "") -> Event:
        """Schedule a one-shot callback relative to now."""
        return self.sim.events.call_after(
            delay, callback, name=f"{self.name}.{name or 'call'}")

    def deschedule(self, event: Event) -> None:
        """Cancel a pending event."""
        self.sim.events.deschedule(event)

    def on_stats_reset(self) -> None:
        """Hook invoked by Simulation.reset_stats; override to clear any
        measurement state kept outside the stats framework."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"
