"""The event queue at the heart of the simulation.

Events are (tick, priority, sequence) ordered: ties on tick are broken by
priority (lower first) and then by insertion order, which makes simulations
fully deterministic for a fixed seed and schedule order — the property gem5
guarantees and that reproducible experiments depend on.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional

from repro.sim.checkpoint import CheckpointError


class Event:
    """A scheduled callback.

    Events are single-shot: once fired (or cancelled) they must be
    re-scheduled to run again.  ``deschedule`` marks the event cancelled;
    the queue lazily discards cancelled entries when they surface.
    """

    __slots__ = ("callback", "name", "priority", "_when", "_scheduled",
                 "_seq", "_gen")

    DEFAULT_PRIORITY = 0

    def __init__(
        self,
        callback: Callable[[], None],
        name: str = "",
        priority: int = DEFAULT_PRIORITY,
    ) -> None:
        self.callback = callback
        self.name = name or getattr(callback, "__qualname__", "event")
        self.priority = priority
        self._when: Optional[int] = None
        self._scheduled = False
        self._seq = -1
        self._gen = 0   # bumped on deschedule so stale heap entries die

    @property
    def scheduled(self) -> bool:
        """Whether the event is currently pending in a queue."""
        return self._scheduled

    @property
    def when(self) -> Optional[int]:
        """The tick the event is scheduled for, or None."""
        return self._when if self._scheduled else None

    def __repr__(self) -> str:
        state = f"@{self._when}" if self._scheduled else "unscheduled"
        return f"<Event {self.name} {state}>"


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._now = 0
        self._seq = 0
        self._fired = 0
        #: Optional hook fired after every executed event callback.  Used
        #: by the invariant registry's strict mode; None (the default)
        #: costs one attribute read per event.
        self.on_event: Optional[Callable[["Event"], None]] = None

    @property
    def now(self) -> int:
        """Current simulated tick."""
        return self._now

    @property
    def fired(self) -> int:
        """Total number of events executed."""
        return self._fired

    @property
    def pending(self) -> int:
        """Number of live (not descheduled) events still queued."""
        return sum(1 for entry in self._heap
                   if entry[3]._scheduled and entry[4] == entry[3]._gen)

    def schedule(self, event: Event, when: int) -> Event:
        """Schedule ``event`` at absolute tick ``when``.

        Scheduling into the past is an error; scheduling an already-scheduled
        event is an error (deschedule or reschedule instead).
        """
        if when < self._now:
            raise ValueError(
                f"cannot schedule {event!r} at {when}, now is {self._now}"
            )
        if event._scheduled:
            raise RuntimeError(f"{event!r} is already scheduled")
        event._when = when
        event._scheduled = True
        event._seq = self._seq
        self._seq += 1
        heapq.heappush(self._heap,
                       (when, event.priority, event._seq, event, event._gen))
        return event

    def schedule_after(self, event: Event, delay: int) -> Event:
        """Schedule ``event`` ``delay`` ticks from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.schedule(event, self._now + delay)

    def deschedule(self, event: Event) -> None:
        """Cancel a pending event.  Cancelling an idle event is a no-op."""
        event._scheduled = False
        event._gen += 1

    def reschedule(self, event: Event, when: int) -> Event:
        """Move an event (scheduled or not) to absolute tick ``when``."""
        self.deschedule(event)
        return self.schedule(event, when)

    def call_at(
        self, when: int, callback: Callable[[], None], name: str = ""
    ) -> Event:
        """Convenience: wrap ``callback`` in a fresh event at tick ``when``."""
        return self.schedule(Event(callback, name=name), when)

    def call_after(
        self, delay: int, callback: Callable[[], None], name: str = ""
    ) -> Event:
        """Convenience: wrap ``callback`` in a fresh event ``delay`` ticks out."""
        return self.schedule_after(Event(callback, name=name), delay)

    def peek(self) -> Optional[int]:
        """Tick of the next live event, or None if the queue is drained."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0][0]

    def _drop_cancelled(self) -> None:
        while self._heap:
            _when, _prio, _seq, event, gen = self._heap[0]
            if event._scheduled and gen == event._gen:
                return
            heapq.heappop(self._heap)

    def step(self) -> bool:
        """Execute the next event.  Returns False if the queue is empty."""
        self._drop_cancelled()
        if not self._heap:
            return False
        when, _prio, _seq, event, _gen = heapq.heappop(self._heap)
        self._now = when
        event._scheduled = False
        event._gen += 1
        self._fired += 1
        event.callback()
        hook = self.on_event
        if hook is not None:
            hook(event)
        return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is passed, or
        ``max_events`` have fired.  Returns the current tick.

        ``until`` is inclusive: events scheduled exactly at ``until`` run.
        When the horizon is reached with events still pending, ``now`` is
        advanced to ``until`` so repeated bounded runs make progress.
        """
        budget = max_events if max_events is not None else -1
        while budget != 0:
            self._drop_cancelled()
            if not self._heap:
                break
            if until is not None and self._heap[0][0] > until:
                self._now = until
                break
            self.step()
            if budget > 0:
                budget -= 1
        if until is not None and self._now < until and not self._heap:
            self._now = until
        return self._now

    # -- checkpoint support ----------------------------------------------

    def live_events(self) -> List[Event]:
        """Live (scheduled) events in firing order."""
        entries = [entry for entry in self._heap
                   if entry[3]._scheduled and entry[4] == entry[3]._gen]
        return [entry[3] for entry in sorted(entries)]

    def serialize_state(self, names_by_event: Dict[int, str]) -> dict:
        """Snapshot the queue: clock, counters, and pending events by name.

        ``names_by_event`` maps ``id(event)`` to the registry name the
        restoring side will use to find the callback again.  A pending
        event absent from the map — a one-shot ``call_after`` closure —
        cannot be re-bound after restore, so it is a checkpoint error:
        the simulation has not been drained to a checkpointable point.
        """
        events = []
        for event in self.live_events():
            name = names_by_event.get(id(event))
            if name is None:
                raise CheckpointError(
                    f"pending event {event!r} is not in the named-event "
                    f"registry; drain the simulation to quiescence before "
                    f"checkpointing")
            events.append({"name": name, "when": event._when,
                           "priority": event.priority})
        return {"now": self._now, "seq": self._seq, "fired": self._fired,
                "events": events}

    def deserialize_state(self, state: dict,
                          events_by_name: Dict[str, Event]) -> None:
        """Rebuild a snapshot into this (freshly constructed, empty) queue.

        Events are re-scheduled in snapshot order — which is firing order,
        so relative tie-breaks among restored events are preserved — and
        the sequence counter is then advanced past its checkpointed value
        so events scheduled after restore sort behind restored ones.
        """
        if self._heap or self._now or self._seq:
            raise CheckpointError(
                "event queue restore requires a fresh (empty) queue")
        self._now = state["now"]
        for entry in state["events"]:
            event = events_by_name.get(entry["name"])
            if event is None:
                raise CheckpointError(
                    f"checkpoint references unknown event "
                    f"{entry['name']!r}; was the node built with the "
                    f"same configuration?")
            if event.priority != entry["priority"]:
                raise CheckpointError(
                    f"event {entry['name']!r} priority changed "
                    f"({entry['priority']} -> {event.priority})")
            self.schedule(event, entry["when"])
        self._seq = max(self._seq, state["seq"])
        self._fired = state["fired"]
