"""The event queue at the heart of the simulation.

Events are (tick, priority, sequence) ordered: ties on tick are broken by
priority (lower first) and then by insertion order, which makes simulations
fully deterministic for a fixed seed and schedule order — the property gem5
guarantees and that reproducible experiments depend on.

Two hot-path mechanisms keep the queue cheap without changing that order:

- a **same-tick FIFO run queue**: events scheduled at the current tick with
  default priority skip the heap entirely.  A newly scheduled event always
  has a larger sequence number than everything already pending, so a plain
  append keeps the FIFO sorted by the global (tick, priority, seq) key and
  the run loop only has to compare the two queue heads.
- :class:`EventPool`: a free-list of reusable one-shot events sharing one
  precomputed name and dispatch callback, replacing per-packet ``call_at``
  allocations.  Sequence numbers are assigned at ``schedule()`` time, so a
  pooled event scheduled at the same call site sorts identically to a
  freshly constructed one — firing order (and hence trace digests) is
  bit-identical either way.

Setting ``REPRO_EVENT_BATCH=0`` disables both and restores the reference
one-fresh-event-per-packet pure-heap path; the equivalence suite in
``tests/perf`` checks the two paths produce identical results.
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from typing import Callable, Dict, List, Optional

from repro.sim.checkpoint import CheckpointError


def batching_enabled() -> bool:
    """Whether the batched hot path (same-tick FIFO + event pools) is on.

    Read once per component at construction time so a single simulation
    never mixes the two paths mid-run.
    """
    return os.environ.get("REPRO_EVENT_BATCH", "1") != "0"


class Event:
    """A scheduled callback.

    Events are single-shot: once fired (or cancelled) they must be
    re-scheduled to run again.  ``deschedule`` marks the event cancelled;
    the queue lazily discards cancelled entries when they surface.
    """

    __slots__ = ("callback", "name", "priority", "_when", "_scheduled",
                 "_seq", "_gen")

    DEFAULT_PRIORITY = 0

    def __init__(
        self,
        callback: Callable[[], None],
        name: str = "",
        priority: int = DEFAULT_PRIORITY,
    ) -> None:
        self.callback = callback
        self.name = name or getattr(callback, "__qualname__", "event")
        self.priority = priority
        self._when: Optional[int] = None
        self._scheduled = False
        self._seq = -1
        self._gen = 0   # bumped on deschedule so stale heap entries die

    @property
    def scheduled(self) -> bool:
        """Whether the event is currently pending in a queue."""
        return self._scheduled

    @property
    def when(self) -> Optional[int]:
        """The tick the event is scheduled for, or None."""
        return self._when if self._scheduled else None

    def __repr__(self) -> str:
        state = f"@{self._when}" if self._scheduled else "unscheduled"
        return f"<Event {self.name} {state}>"


class _PooledEvent(Event):
    """A reusable one-shot event owned by an :class:`EventPool`.

    Carries its payload in a slot so no closure is allocated per
    scheduling; returns itself to the pool's free list when it fires.
    """

    __slots__ = ("pool", "payload")

    def __init__(self, pool: "EventPool") -> None:
        super().__init__(self._fire, name=pool.name)
        self.pool = pool
        self.payload = None

    def _fire(self) -> None:
        payload = self.payload
        self.payload = None
        pool = self.pool
        # Recycle before dispatch: the callback may immediately schedule
        # another completion from the same pool and can reuse this object.
        pool._free.append(self)
        pool.dispatch(payload)


class EventPool:
    """A free-list of one-shot events sharing a dispatch callback and name.

    Hot paths that used to allocate ``Event`` + closure + f-string name per
    packet instead call :meth:`schedule_at` with the per-firing state as a
    payload.  Recycled events are rescheduled through the normal
    ``EventQueue.schedule`` path, so ordering is identical to fresh events.
    """

    __slots__ = ("_free", "dispatch", "name")

    def __init__(self, dispatch: Callable, name: str) -> None:
        self._free: List[_PooledEvent] = []
        self.dispatch = dispatch   # called as dispatch(payload)
        self.name = name

    def schedule_at(self, queue: "EventQueue", when: int,
                    payload=None) -> Event:
        free = self._free
        event = free.pop() if free else _PooledEvent(self)
        event.payload = payload
        return queue.schedule(event, when)


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        #: Same-tick run queue: entries scheduled at the current tick with
        #: default priority.  Append-only while ``now`` holds still, which
        #: keeps it sorted by (tick, priority, seq) by construction.
        self._fifo: deque = deque()
        self._use_fifo = batching_enabled()
        self._now = 0
        self._seq = 0
        self._fired = 0
        self._live = 0
        #: Optional hook fired after every executed event callback.  Used
        #: by the invariant registry's strict mode; None (the default)
        #: costs one attribute read per event.
        self.on_event: Optional[Callable[["Event"], None]] = None

    @property
    def now(self) -> int:
        """Current simulated tick."""
        return self._now

    @property
    def fired(self) -> int:
        """Total number of events executed."""
        return self._fired

    @property
    def pending(self) -> int:
        """Number of live (not descheduled) events still queued."""
        return self._live

    def schedule(self, event: Event, when: int) -> Event:
        """Schedule ``event`` at absolute tick ``when``.

        Scheduling into the past is an error; scheduling an already-scheduled
        event is an error (deschedule or reschedule instead).
        """
        if when < self._now:
            raise ValueError(
                f"cannot schedule {event!r} at {when}, now is {self._now}"
            )
        if event._scheduled:
            raise RuntimeError(f"{event!r} is already scheduled")
        event._when = when
        event._scheduled = True
        seq = self._seq
        event._seq = seq
        self._seq = seq + 1
        self._live += 1
        if self._use_fifo and when == self._now and event.priority == 0:
            self._fifo.append((when, 0, seq, event, event._gen))
        else:
            heapq.heappush(self._heap,
                           (when, event.priority, seq, event, event._gen))
        return event

    def schedule_after(self, event: Event, delay: int) -> Event:
        """Schedule ``event`` ``delay`` ticks from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.schedule(event, self._now + delay)

    def deschedule(self, event: Event) -> None:
        """Cancel a pending event.  Cancelling an idle event is a no-op."""
        if event._scheduled:
            self._live -= 1
        event._scheduled = False
        event._gen += 1

    def reschedule(self, event: Event, when: int) -> Event:
        """Move an event (scheduled or not) to absolute tick ``when``."""
        self.deschedule(event)
        return self.schedule(event, when)

    def call_at(
        self, when: int, callback: Callable[[], None], name: str = ""
    ) -> Event:
        """Convenience: wrap ``callback`` in a fresh event at tick ``when``."""
        return self.schedule(Event(callback, name=name), when)

    def call_after(
        self, delay: int, callback: Callable[[], None], name: str = ""
    ) -> Event:
        """Convenience: wrap ``callback`` in a fresh event ``delay`` ticks out."""
        return self.schedule_after(Event(callback, name=name), delay)

    def _drop_cancelled(self) -> None:
        """Discard dead entries from both queue heads."""
        fifo = self._fifo
        while fifo:
            entry = fifo[0]
            event = entry[3]
            if event._scheduled and entry[4] == event._gen:
                break
            fifo.popleft()
        heap = self._heap
        while heap:
            entry = heap[0]
            event = entry[3]
            if event._scheduled and entry[4] == event._gen:
                break
            heapq.heappop(heap)

    def _head(self) -> Optional[tuple]:
        """The next live entry (not popped), or None."""
        self._drop_cancelled()
        fifo, heap = self._fifo, self._heap
        if fifo and (not heap or fifo[0] < heap[0]):
            return fifo[0]
        return heap[0] if heap else None

    def peek(self) -> Optional[int]:
        """Tick of the next live event, or None if the queue is drained."""
        head = self._head()
        return head[0] if head is not None else None

    def advance_to(self, tick: int) -> int:
        """Advance an idle clock to ``tick`` without running anything.

        ``run(until=h)`` freezes ``now`` at the last fired event when the
        queue drains mid-horizon, so two event queues that drained at
        different ticks disagree on "now" even after running to the same
        horizon.  Cross-process shard synchronization needs them
        realigned before a phase starts (a flow generator stamps its
        schedule with the current tick).  No-op when already at or past
        ``tick``; refuses to jump over a live pending event.
        """
        head = self._head()
        if head is not None and head[0] < tick:
            raise RuntimeError(
                f"cannot advance the clock to {tick}: a live event is "
                f"pending at {head[0]}")
        if tick > self._now:
            self._now = tick
        return self._now

    def step(self) -> bool:
        """Execute the next event.  Returns False if the queue is empty."""
        head = self._head()
        if head is None:
            return False
        if head is (self._fifo[0] if self._fifo else None):
            self._fifo.popleft()
        else:
            heapq.heappop(self._heap)
        when, _prio, _seq, event, _gen = head
        self._now = when
        event._scheduled = False
        event._gen += 1
        self._live -= 1
        self._fired += 1
        event.callback()
        hook = self.on_event
        if hook is not None:
            hook(event)
        return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is passed, or
        ``max_events`` have fired.  Returns the current tick.

        ``until`` is inclusive: events scheduled exactly at ``until`` run.
        When the horizon is reached with events still pending, ``now`` is
        advanced to ``until`` so repeated bounded runs make progress.
        """
        budget = max_events if max_events is not None else -1
        fifo, heap = self._fifo, self._heap
        while budget != 0:
            # Drop dead entries from both heads, then take the lesser.
            while fifo:
                entry = fifo[0]
                event = entry[3]
                if event._scheduled and entry[4] == event._gen:
                    break
                fifo.popleft()
            while heap:
                entry = heap[0]
                event = entry[3]
                if event._scheduled and entry[4] == event._gen:
                    break
                heapq.heappop(heap)
            if fifo and (not heap or fifo[0] < heap[0]):
                if until is not None and fifo[0][0] > until:
                    self._now = until
                    break
                when, _prio, _seq, event, _gen = fifo.popleft()
            elif heap:
                if until is not None and heap[0][0] > until:
                    self._now = until
                    break
                when, _prio, _seq, event, _gen = heapq.heappop(heap)
            else:
                break
            self._now = when
            event._scheduled = False
            event._gen += 1
            self._live -= 1
            self._fired += 1
            event.callback()
            hook = self.on_event
            if hook is not None:
                hook(event)
            if budget > 0:
                budget -= 1
        if until is not None and self._now < until \
                and not heap and not fifo:
            self._now = until
        return self._now

    # -- checkpoint support ----------------------------------------------

    def live_events(self) -> List[Event]:
        """Live (scheduled) events in firing order."""
        entries = [entry for entry in self._heap
                   if entry[3]._scheduled and entry[4] == entry[3]._gen]
        entries.extend(entry for entry in self._fifo
                       if entry[3]._scheduled and entry[4] == entry[3]._gen)
        return [entry[3] for entry in sorted(entries)]

    def serialize_state(self, names_by_event: Dict[int, str]) -> dict:
        """Snapshot the queue: clock, counters, and pending events by name.

        ``names_by_event`` maps ``id(event)`` to the registry name the
        restoring side will use to find the callback again.  A pending
        event absent from the map — a one-shot ``call_after`` closure —
        cannot be re-bound after restore, so it is a checkpoint error:
        the simulation has not been drained to a checkpointable point.
        """
        events = []
        for event in self.live_events():
            name = names_by_event.get(id(event))
            if name is None:
                raise CheckpointError(
                    f"pending event {event!r} is not in the named-event "
                    f"registry; drain the simulation to quiescence before "
                    f"checkpointing")
            events.append({"name": name, "when": event._when,
                           "priority": event.priority})
        return {"now": self._now, "seq": self._seq, "fired": self._fired,
                "events": events}

    def deserialize_state(self, state: dict,
                          events_by_name: Dict[str, Event]) -> None:
        """Rebuild a snapshot into this (freshly constructed, empty) queue.

        Events are re-scheduled in snapshot order — which is firing order,
        so relative tie-breaks among restored events are preserved — and
        the sequence counter is then advanced past its checkpointed value
        so events scheduled after restore sort behind restored ones.
        """
        if self._heap or self._fifo or self._now or self._seq:
            raise CheckpointError(
                "event queue restore requires a fresh (empty) queue")
        self._now = state["now"]
        for entry in state["events"]:
            event = events_by_name.get(entry["name"])
            if event is None:
                raise CheckpointError(
                    f"checkpoint references unknown event "
                    f"{entry['name']!r}; was the node built with the "
                    f"same configuration?")
            if event.priority != entry["priority"]:
                raise CheckpointError(
                    f"event {entry['name']!r} priority changed "
                    f"({entry['priority']} -> {event.priority})")
            self.schedule(event, entry["when"])
        self._seq = max(self._seq, state["seq"])
        self._fired = state["fired"]
