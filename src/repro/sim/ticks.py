"""Simulated-time units.

Like gem5, simulated time is an integer count of *ticks* where one tick is a
picosecond.  Integer ticks keep the event queue exact and deterministic; all
conversions round to the nearest tick.
"""

from __future__ import annotations

TICKS_PER_SEC = 10**12
TICKS_PER_MS = 10**9
TICKS_PER_US = 10**6
TICKS_PER_NS = 10**3


def s_to_ticks(seconds: float) -> int:
    """Convert seconds to ticks (rounded to nearest tick)."""
    return round(seconds * TICKS_PER_SEC)


def ms_to_ticks(milliseconds: float) -> int:
    """Convert milliseconds to ticks."""
    return round(milliseconds * TICKS_PER_MS)


def us_to_ticks(microseconds: float) -> int:
    """Convert microseconds to ticks."""
    return round(microseconds * TICKS_PER_US)


def ns_to_ticks(nanoseconds: float) -> int:
    """Convert nanoseconds to ticks."""
    return round(nanoseconds * TICKS_PER_NS)


def ticks_to_s(ticks: int) -> float:
    """Convert ticks to seconds."""
    return ticks / TICKS_PER_SEC


def ticks_to_us(ticks: int) -> float:
    """Convert ticks to microseconds."""
    return ticks / TICKS_PER_US


def ticks_to_ns(ticks: int) -> float:
    """Convert ticks to nanoseconds."""
    return ticks / TICKS_PER_NS


def freq_to_period(hz: float) -> int:
    """Clock period in ticks for a frequency in Hz.

    >>> freq_to_period(1e9)   # 1 GHz -> 1 ns
    1000
    """
    if hz <= 0:
        raise ValueError(f"frequency must be positive, got {hz}")
    return round(TICKS_PER_SEC / hz)
