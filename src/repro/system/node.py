"""Test-node assembly.

Builds the full simulated host of Fig 1b: EtherLoadGen — link — NIC —
DMA/I-O bus — memory hierarchy — core — application, in both DPDK and
kernel-stack flavours.  The build path exercises the same sequence as
Listing 2 of the paper: bind ``uio_pci_generic``, reserve hugepages, and
launch the DPDK application through the EAL.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Type

from repro.cpu import make_core
from repro.dpdk.eal import Eal
from repro.dpdk.hugepages import HugepageAllocator
from repro.dpdk.mempool import Mempool
from repro.dpdk.pmd import E1000Pmd
from repro.kernelstack.driver import InterruptNicDriver
from repro.kernelstack.stack import KernelStackModel
from repro.kvstore.store import KvStore
from repro.loadgen.ether_load_gen import (
    DEFAULT_DST_MAC,
    DEFAULT_SRC_MAC,
    EtherLoadGen,
    SyntheticConfig,
)
from repro.loadgen.memcached_client import MemcachedClient, MemcachedClientConfig
from repro.nic.i8254x import E1000_DEVICE_ID, INTEL_VENDOR_ID
from repro.nic.phy import EtherLink
from repro.pci.bus import PciBus
from repro.pci.uio import UioBindError, UioPciGeneric
from repro.sim.checkpoint import CheckpointError, seal, verify
from repro.sim.simobject import Simulation
from repro.sim.ticks import us_to_ticks
from repro.system.config import SystemConfig
from repro.system.topology import Topology, build_platform


class NodeBuildError(RuntimeError):
    """The node could not be brought up (e.g. DPDK on baseline gem5)."""


@dataclass(frozen=True)
class WarmupPlan:
    """One description of a warm-up phase, shared by every entry point.

    The plan is deliberately *load-independent*: the warm rate is a
    canonical comfortable rate, not the measured offered load, so sweep
    points that differ only in offered load produce byte-identical
    post-warm-up machine state — the property that lets one warm-up
    checkpoint be shared across a whole load sweep.
    """

    #: Minimum warm simulated time (the link round trip is always added).
    min_warm_us: float = 100.0
    #: Warm until the app has processed this many packets (cache cycling).
    warm_packet_target: int = 500
    #: Synthetic (EtherLoadGen) warm traffic; 0 Gbps disables it.
    packet_size: int = 64
    warm_rate_gbps: float = 0.0
    expect_responses: bool = True
    #: Memcached warm traffic; 0 requests disables it.
    warm_requests: int = 0
    warm_rate_rps: float = 0.0
    #: Post-warm-up drain: run in fixed chunks until checkpoint-ready.
    drain_chunk_us: float = 200.0
    max_drain_chunks: int = 400


class _BaseNode:
    """Common plumbing: sim, memory, core, NIC, link.

    The components themselves come from the shared
    :func:`~repro.system.topology.build_platform` builder; this class
    keeps the flat attribute API (``node.core``, ``node.nic``, ...) the
    harness and tests use, while ``node.topology`` holds the typed
    wiring graph for validation and rendering.
    """

    def __init__(self, config: SystemConfig, seed: int = 0) -> None:
        self.config = config
        self.sim = Simulation(seed=seed)
        self.topology = Topology(config.label)
        platform = build_platform(self.topology, self.sim, config,
                                  nic_config=self._nic_config())
        self.address_space = platform.address_space
        self.hierarchy = platform.hierarchy
        self.clock_domain = platform.clock
        self.core = platform.core
        self.iobus = platform.iobus
        self.dma = platform.dma
        self.nic = platform.nic
        self.pci_bus = PciBus()
        self.pci_bus.attach("00:02.0", self.nic)
        self.link = EtherLink(self.sim, "link0",
                              bandwidth_bits_per_sec=config.link_bandwidth_bps,
                              delay_ticks=us_to_ticks(config.link_delay_us))
        self.topology.add("link0", self.link)
        self.loadgen: Optional[EtherLoadGen] = None
        self.memcached_client: Optional[MemcachedClient] = None
        self.app = None
        self._register_node_invariants()

    def _nic_config(self):
        return self.config.nic

    # -- wiring graph ------------------------------------------------------

    def validate_wiring(self) -> None:
        """Fail with the dangling ports named if the node is half-wired."""
        self.topology.validate()

    def wiring_dot(self) -> str:
        """The node's wiring graph in Graphviz DOT form."""
        return self.topology.to_dot()

    # -- invariants -------------------------------------------------------

    def _register_node_invariants(self) -> None:
        """Cross-component rules that only the node can see: DMA<->memory
        byte conservation adjacency, core accounting sanity, and (for
        DPDK nodes, via _extra_invariant_failures) mempool conservation."""
        node = self

        def node_sanity(final: bool):
            fails = []
            fails.extend(f"core: {msg}"
                         for msg in node.core.invariant_failures())
            fails.extend(f"hierarchy: {msg}"
                         for msg in node.hierarchy.invariant_failures())
            fails.extend(node._extra_invariant_failures(final))
            return fails

        self.sim.invariants.register("node.sanity", node_sanity)

    def _extra_invariant_failures(self, final: bool):
        """Subclass hook for stack-specific conservation rules."""
        return []

    def nic_quiescent(self) -> bool:
        """True when no packet is anywhere inside the NIC: the FIFOs and
        rings are empty and no DMA is in flight.  Quiescence-conditional
        invariants (mbuf leaks, end-to-end conservation) only assert once
        this and the app's own pipeline are drained."""
        nic = self.nic
        return (len(nic.rx_fifo) == 0
                and len(nic.tx_fifo) == 0
                and nic.rx_ring.completed_count == 0
                and nic.rx_ring.pending_writeback_count == 0
                and nic.tx_ring.occupancy == 0
                and nic._tx_dma_in_flight == 0)

    def app_holding(self) -> int:
        """Packets currently held inside the application between harvest
        and burst completion (0 for synchronous kernel apps)."""
        held = getattr(self.app, "_holding", 0) if self.app else 0
        ring = getattr(self.app, "ring", None)
        if ring is not None:
            held += ring.count
        return held

    # -- client attachment -------------------------------------------------

    def attach_loadgen(self) -> EtherLoadGen:
        """Connect an EtherLoadGen to the NIC port (Fig 1b)."""
        if self.loadgen is not None or self.memcached_client is not None:
            raise NodeBuildError("node already has a traffic source")
        self.loadgen = EtherLoadGen(self.sim, "loadgen",
                                    dst_mac=DEFAULT_DST_MAC,
                                    src_mac=DEFAULT_SRC_MAC)
        self.topology.add("loadgen", self.loadgen)
        self.link.connect(self.loadgen.port, self.nic.port)
        self._register_end_to_end_invariant()
        return self.loadgen

    def _register_end_to_end_invariant(self) -> None:
        """The paper's headline conservation law (Figs 5-9): injected ==
        delivered + Σ drops-by-cause.  Only exact once every queue and
        wire between the generator and the app has drained, so it asserts
        at final check time and only at full quiescence."""
        node = self

        def end_to_end(final: bool):
            if not final or not node.fully_quiescent():
                return None
            gen = node.loadgen
            nic = node.nic
            absorbed = getattr(node.app, "total_absorbed", 0) \
                if node.app is not None else 0
            accounted = (gen.total_rx_packets + nic.total_rx_drops
                         + nic.total_tx_fifo_drops + absorbed)
            if gen.total_tx_packets != accounted:
                return [
                    f"injected {gen.total_tx_packets} != returned "
                    f"{gen.total_rx_packets} + NIC drops "
                    f"{nic.total_rx_drops} + TX FIFO drops "
                    f"{nic.total_tx_fifo_drops} + app-absorbed {absorbed}"]
            return None

        self.sim.invariants.register("node.end-to-end-conservation",
                                     end_to_end)

    def fully_quiescent(self) -> bool:
        """Quiescent NIC, empty app pipeline, and nothing on the wire."""
        link_idle = all(count == 0
                        for count in self.link._in_flight.values())
        return (self.nic_quiescent() and self.app_holding() == 0
                and link_idle)

    def attach_memcached_client(
            self, client_config: MemcachedClientConfig) -> MemcachedClient:
        """Connect the memcached client personality instead."""
        if self.loadgen is not None or self.memcached_client is not None:
            raise NodeBuildError("node already has a traffic source")
        self.memcached_client = MemcachedClient(
            self.sim, "memcached_client", client_config,
            dst_mac=DEFAULT_DST_MAC, src_mac=DEFAULT_SRC_MAC)
        self.topology.add("memcached_client", self.memcached_client)
        self.link.connect(self.memcached_client.port, self.nic.port)
        return self.memcached_client

    # -- simulation control --------------------------------------------------

    def run_us(self, microseconds: float) -> int:
        """Advance the simulation by the given simulated time."""
        return self.sim.run(until=self.sim.now + us_to_ticks(microseconds))

    def warmup_and_reset(self, plan: Optional[WarmupPlan] = None) -> None:
        """Run one warm-up phase, drain to quiescence, reset statistics.

        This is the single warm-up entry point (the gem5 methodology of
        §VI.A): warm traffic is offered at the plan's canonical rate,
        stopped, and the node drained until it is checkpoint-ready before
        the statistics reset.  The post-reset state is therefore exactly
        what :meth:`checkpoint` captures, so a restored node and a
        straight-through node run identical measured phases.
        """
        if plan is None:
            plan = WarmupPlan(min_warm_us=self.config.warmup_us)
        warming = False
        if self.loadgen is not None and plan.warm_rate_gbps > 0:
            self.loadgen.start_synthetic(SyntheticConfig(
                packet_size=plan.packet_size,
                rate_gbps=plan.warm_rate_gbps,
                count=None,
                expect_responses=plan.expect_responses,
            ))
            warming = True
        elif self.memcached_client is not None and plan.warm_requests > 0:
            self.memcached_client.run_warmup(plan.warm_requests,
                                             plan.warm_rate_rps)
            warming = True
        self.run_us(max(plan.min_warm_us,
                        self.config.link_delay_us + 100.0))
        if warming and self.app is not None:
            # Packet-count criterion: slow kernel-stack apps need far more
            # simulated time than fast DPDK apps to cycle their caches.
            for _ in range(60):
                if self.app.packets_processed >= plan.warm_packet_target:
                    break
                self.run_us(plan.drain_chunk_us)
        if self.loadgen is not None and self.loadgen.active:
            self.loadgen.stop()
        if (self.memcached_client is not None
                and self.memcached_client.active):
            self.memcached_client.stop()
        self.drain_to_quiescence(chunk_us=plan.drain_chunk_us,
                                 max_chunks=plan.max_drain_chunks)
        self.reset_measurement()
        if self.memcached_client is not None:
            self.memcached_client.reset_measurements()

    def drain_to_quiescence(self, chunk_us: float = 200.0,
                            max_chunks: int = 400) -> None:
        """Run in fixed deterministic chunks until the node is
        checkpoint-ready (every queue empty, nothing on the wire, no
        anonymous one-shot event pending)."""
        self.run_us(2 * self.config.link_delay_us + 200.0)
        for _ in range(max_chunks):
            if self._checkpoint_ready():
                return
            self.run_us(chunk_us)
        raise CheckpointError(
            f"{self.config.label}: node failed to reach quiescence after "
            f"{max_chunks} drain chunks of {chunk_us}us")

    def _checkpoint_ready(self) -> bool:
        """Quiescent datapath, idle traffic sources, and every pending
        event re-creatable by name on restore."""
        if not self.fully_quiescent():
            return False
        if self.loadgen is not None and self.loadgen.active:
            return False
        if (self.memcached_client is not None
                and self.memcached_client.active):
            return False
        _registered, unregistered = self.sim.named_event_status()
        return not unregistered

    def reset_measurement(self) -> None:
        """Reset every measurement counter in one place.  The counters
        form co-reset groups (NIC stats + drop FSM, DMA engine + memory
        hierarchy, ...) whose invariants only hold when the whole group
        resets atomically — resetting a subset would trip the checker."""
        self.sim.reset_stats()
        self.hierarchy.reset_counters()
        self.core.reset_counters()
        worker = getattr(self, "worker_core", None)
        if worker is not None:
            worker.reset_counters()
        self.dma.reset_counters()
        self.iobus.reset_counters()

    # -- checkpoint / restore ----------------------------------------------

    def checkpoint(self, extra_meta: Optional[dict] = None) -> dict:
        """Capture the node's complete state as a sealed checkpoint
        document (the gem5 drain-then-serialize flow).

        The node must be quiescent (:meth:`drain_to_quiescence`); a live
        packet anywhere in the datapath raises :class:`CheckpointError`.
        Taking a checkpoint reads state only — it never perturbs the run.
        """
        if not self._checkpoint_ready():
            _registered, unregistered = self.sim.named_event_status()
            detail = []
            if not self.fully_quiescent():
                detail.append("packets are still in flight")
            if unregistered:
                detail.append(
                    "anonymous one-shot events pending: "
                    + ", ".join(sorted(e.name for e in unregistered)))
            raise CheckpointError(
                f"{self.config.label}: node is not checkpoint-ready "
                f"({'; '.join(detail) or 'traffic source still active'})")
        labels = [label for label, _comp in self.topology.components()]
        meta = {
            "label": self.config.label,
            "app": type(self.app).__name__ if self.app is not None else None,
            "seed": self.sim.rng.seed,
            "components": labels,
        }
        if extra_meta:
            meta.update(extra_meta)
        objects = {}
        for label, component in self.topology.components():
            try:
                objects[label] = component.serialize_state()
            except CheckpointError:
                raise
            except Exception as exc:
                raise CheckpointError(
                    f"{self.config.label}: serializing {label!r} failed: "
                    f"{exc}") from exc
        return seal({
            "meta": meta,
            "sim": self.sim.serialize_state(),
            "objects": objects,
        })

    def restore(self, doc: dict) -> None:
        """Restore a checkpoint into this (freshly built, never started)
        node: the inverse of :meth:`checkpoint`.

        The node must have been rebuilt with the same configuration,
        application and seed — the topology label set is verified, and
        each component checks its own schema.  Do not call ``start()``
        on a restored node: the event queue is reconstructed exactly,
        including the application's poll/NAPI events.
        """
        doc = verify(doc)
        meta = doc["meta"]
        if meta["label"] != self.config.label:
            raise CheckpointError(
                f"checkpoint is for config {meta['label']!r}, "
                f"not {self.config.label!r}")
        labels = [label for label, _comp in self.topology.components()]
        if meta["components"] != labels:
            raise CheckpointError(
                f"topology mismatch: checkpoint has {meta['components']}, "
                f"node has {labels}")
        app_name = type(self.app).__name__ if self.app is not None else None
        if meta["app"] != app_name:
            raise CheckpointError(
                f"checkpoint is for application {meta['app']!r}, "
                f"node runs {app_name!r}")
        if meta["seed"] != self.sim.rng.seed:
            raise CheckpointError(
                f"checkpoint was taken with seed {meta['seed']}, "
                f"node was built with seed {self.sim.rng.seed}")
        for label, component in self.topology.components():
            try:
                component.deserialize_state(doc["objects"][label])
            except CheckpointError:
                raise
            except Exception as exc:
                raise CheckpointError(
                    f"{self.config.label}: restoring {label!r} failed: "
                    f"{exc}") from exc
        self.sim.deserialize_state(doc["sim"])


class DpdkNode(_BaseNode):
    """A Test Node running a DPDK application (Listing 2 flow)."""

    def __init__(self, config: SystemConfig, app_class: Optional[Type] = None,
                 app_kwargs: Optional[dict] = None, seed: int = 0) -> None:
        super().__init__(config, seed=seed)
        # modprobe uio_pci_generic && dpdk-devbind.py -b uio_pci_generic
        self.uio = UioPciGeneric()
        try:
            self.uio.bind(self.nic)
        except UioBindError as exc:
            raise NodeBuildError(
                f"cannot run DPDK on {config.label}: {exc} — flip "
                f"SystemConfig.pci_quirks from PciQuirks.baseline_gem5() "
                f"to PciQuirks() (the paper's §III.A.1-2 PCI fixes)"
            ) from exc
        # echo 2048 > .../nr_hugepages
        self.hugepages = HugepageAllocator(self.address_space,
                                           config.nr_hugepages)
        # The pool must always cover both rings plus in-flight bursts;
        # ring-size overrides (e.g. Fig 13's 4096-entry ring) scale it.
        n_mbufs = max(config.mempool_mbufs,
                      config.nic.rx_ring_size + config.nic.tx_ring_size
                      + 512)
        self.mempool = Mempool("mbuf_pool", self.hugepages,
                               n_mbufs=n_mbufs,
                               mbuf_size=config.mbuf_size)
        self.topology.add("mbuf_pool", self.mempool)
        # dpdk-<app> -l 0-3 -n 4 ...  (EAL probe + PMD launch)
        self.eal = Eal(self.pci_bus, config.eal)
        self.eal.register_pmd(INTEL_VENDOR_ID, E1000_DEVICE_ID, E1000Pmd)
        try:
            ports = self.eal.probe(self.mempool)
        except Exception as exc:
            raise NodeBuildError(
                f"EAL probe failed on {config.label}: {exc} — check "
                f"SystemConfig.nic.quirks and SystemConfig.eal") from exc
        self.pmd: E1000Pmd = ports[0]
        self.topology.add("pmd", self.pmd)
        if app_class is not None:
            self.install_app(app_class, **(app_kwargs or {}))

    def _extra_invariant_failures(self, final: bool):
        """Mbuf conservation, plus leak detection once the datapath is
        quiescent (a held mbuf is legitimate while packets are in
        flight; at quiescence it is a leak — DPDK's classic failure
        mode, which surfaces as ``MempoolEmptyError`` much later)."""
        expect_idle = (final and self.fully_quiescent())
        return [f"mempool: {msg}" for msg in
                self.mempool.invariant_failures(expect_idle=expect_idle)]

    def install_app(self, app_class: Type, **kwargs):
        """Instantiate the DPDK application on this node's core."""
        if self.app is not None:
            raise NodeBuildError("node already runs an application")
        self.app = app_class(self.sim, "app", self.pmd, self.core,
                             self.config.costs, self.address_space, **kwargs)
        self.topology.add("app", self.app)
        return self.app

    def install_pipeline_app(self, ring_size: int = 1024,
                             touch_payload: bool = False):
        """Instantiate a pipeline-mode application (paper §II.A): the
        existing core runs the RX stage and a second core (same
        configuration, shared memory hierarchy and clock domain) runs
        the worker stage."""
        from repro.apps.pipeline import PipelineForwarder
        if self.app is not None:
            raise NodeBuildError("node already runs an application")
        self.worker_core = make_core(self.config.core, self.hierarchy,
                                     clock=self.clock_domain,
                                     name="worker_core")
        self.topology.add("worker_core", self.worker_core)
        self.app = PipelineForwarder(
            self.sim, "app", self.pmd, self.core, self.worker_core,
            self.config.costs, self.address_space,
            ring_size=ring_size, touch_payload=touch_payload)
        self.topology.add("app", self.app)
        return self.app

    def start(self, when: int = 0) -> None:
        """Begin operation at tick ``when`` (default: now)."""
        if self.app is None:
            raise NodeBuildError("no application installed")
        self.app.start(when)


class KernelNode(_BaseNode):
    """A Test Node running a kernel-stack application."""

    def __init__(self, config: SystemConfig, app_class: Optional[Type] = None,
                 app_kwargs: Optional[dict] = None, seed: int = 0) -> None:
        super().__init__(config, seed=seed)
        self.stack = KernelStackModel(self.address_space, config.costs)
        self.topology.add("kernel.stack", self.stack)
        self.driver = InterruptNicDriver(self.nic, self.stack)
        self.topology.add("driver", self.driver)
        if app_class is not None:
            self.install_app(app_class, **(app_kwargs or {}))

    def install_app(self, app_class: Type, **kwargs):
        """Instantiate the kernel-stack application on this node's core."""
        if self.app is not None:
            raise NodeBuildError("node already runs an application")
        self.app = app_class(self.sim, "app", self.driver, self.stack,
                             self.core, self.config.costs, **kwargs)
        self.topology.add("app", self.app)
        return self.app

    def _nic_config(self):
        # Kernel drivers use smaller rings and *do* program the writeback
        # threshold (so even the baseline NIC model behaves, §III.A.3).
        return replace(self.config.nic,
                       rx_ring_size=self.config.kernel_rx_ring,
                       tx_ring_size=self.config.kernel_rx_ring)

    def start(self, when: int = 0) -> None:
        """Kernel apps are interrupt-driven; nothing to schedule."""


def make_kvstore(node: _BaseNode, n_buckets: int = 4096) -> KvStore:
    """A KV store in the node's address space."""
    return KvStore(node.address_space, n_buckets=n_buckets)
