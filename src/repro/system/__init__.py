"""System assembly.

Builds complete simulated hosts from Table-I-style configurations: the
``gem5`` preset (the simulated Test Node) and the ``altra`` preset (the
real Ampere Altra Max reference system, §VI.A), node builders that wire
core + caches + DRAM + PCI + NIC + driver + application + EtherLoadGen,
and the dual-mode (two simulated nodes) topology used for the Fig 20
simulation-speed comparison.
"""

from repro.system.config import SystemConfig
from repro.system.presets import (
    altra,
    gem5_baseline,
    gem5_default,
    with_core,
    with_dca,
    with_dram_channels,
    with_frequency,
    with_l1_size,
    with_l2_size,
    with_llc_size,
    with_rob,
)
from repro.system.node import DpdkNode, KernelNode, NodeBuildError
from repro.system.dual_mode import DualModeResult, run_dual_mode_comparison
from repro.system.dist import DistCoordinator, DistEtherLink
from repro.system.topology import (
    Platform,
    Topology,
    TopologyError,
    build_platform,
)

__all__ = [
    "SystemConfig",
    "altra",
    "gem5_baseline",
    "gem5_default",
    "with_core",
    "with_dca",
    "with_dram_channels",
    "with_frequency",
    "with_l1_size",
    "with_l2_size",
    "with_llc_size",
    "with_rob",
    "DpdkNode",
    "KernelNode",
    "NodeBuildError",
    "DualModeResult",
    "run_dual_mode_comparison",
    "DistCoordinator",
    "DistEtherLink",
    "Platform",
    "Topology",
    "TopologyError",
    "build_platform",
]
