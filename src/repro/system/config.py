"""Whole-system configuration.

One :class:`SystemConfig` captures everything Table I specifies for a
platform, plus the calibration constants that give the simulated host its
measured magnitudes.  Presets (``gem5_default``, ``altra``) live in
:mod:`repro.system.presets`; sweeps derive variants with
``dataclasses.replace``-style helpers there.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Optional

from repro.cpu.core import CoreConfig
from repro.cpu.kernels import KernelCosts
from repro.mem.hierarchy import HierarchyConfig
from repro.nic.i8254x import NicConfig
from repro.pci.config_space import PciQuirks
from repro.dpdk.eal import EalConfig


@dataclass(frozen=True)
class SystemConfig:
    """A complete simulated host + its load-generation environment."""

    label: str = "gem5"
    core: CoreConfig = field(default_factory=CoreConfig)
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    nic: NicConfig = field(default_factory=NicConfig)
    costs: KernelCosts = field(default_factory=KernelCosts)
    pci_quirks: PciQuirks = field(default_factory=PciQuirks)
    eal: EalConfig = field(default_factory=lambda: EalConfig(
        skip_vendor_check=True, vendor_info_missing=True))

    # I/O bus: "loosely models a PCIe bus between the NIC and CPU".
    iobus_bytes_per_sec: float = 7.6e9
    iobus_latency_ns: float = 150.0

    # Network (Table I: 100Gbps, 200us).
    link_bandwidth_bps: float = 100e9
    link_delay_us: float = 200.0

    # DPDK environment.  The pool covers both rings plus in-flight bursts;
    # LIFO recycling keeps the *hot* buffer subset far smaller (the paper's
    # ">256KiB, <1MiB" DPDK working set emerges from steady-state ring
    # occupancy, not pool capacity).
    nr_hugepages: int = 2048
    mempool_mbufs: int = 2600
    mbuf_size: int = 2048

    # Kernel driver ring (typical e1000 default, smaller than DPDK's).
    kernel_rx_ring: int = 256

    # Real-system modelling: a software load-generator client (Pktgen on
    # the Drive Node) can source at most this many packets/second; None
    # means a hardware load generator with no client-side ceiling.
    software_loadgen_max_pps: Optional[float] = None

    # Simulation methodology (paper §VI.A: 200ms warm-up in gem5; here the
    # microarchitectural state is far smaller, so the default warm-up is
    # scaled down while serving the same purpose).
    warmup_us: float = 300.0

    # Parameters that must be strictly positive / non-negative numbers.
    _POSITIVE = ("iobus_bytes_per_sec", "link_bandwidth_bps",
                 "nr_hugepages", "mempool_mbufs", "mbuf_size",
                 "kernel_rx_ring")
    _NON_NEGATIVE = ("iobus_latency_ns", "link_delay_us", "warmup_us")

    def __post_init__(self) -> None:
        if not isinstance(self.label, str) or not self.label:
            raise ValueError("SystemConfig.label must be a non-empty string")
        for name in self._POSITIVE:
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or value <= 0:
                raise ValueError(
                    f"SystemConfig.{name} must be a positive number, "
                    f"got {value!r}")
        for name in self._NON_NEGATIVE:
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(
                    f"SystemConfig.{name} must be a non-negative number, "
                    f"got {value!r}")
        pps = self.software_loadgen_max_pps
        if pps is not None and (not isinstance(pps, (int, float))
                                or pps <= 0):
            raise ValueError(
                "SystemConfig.software_loadgen_max_pps must be None or a "
                f"positive number, got {pps!r}")

    def variant(self, **changes) -> "SystemConfig":
        """A modified copy (dataclasses.replace with a nicer name).

        Unknown parameter names are rejected explicitly: a silent typo in
        a sweep helper would otherwise produce a configuration that looks
        varied but is not.
        """
        valid = {f.name for f in fields(self)}
        unknown = sorted(set(changes) - valid)
        if unknown:
            raise ValueError(
                f"unknown SystemConfig parameter(s) {unknown}; "
                f"valid parameters: {sorted(valid)}")
        return replace(self, **changes)

    def canonical_dict(self) -> dict:
        """The full nested configuration as plain dicts/scalars."""
        return asdict(self)

    def stable_hash(self) -> str:
        """A process- and run-independent digest of the configuration.

        Two equal configs always hash identically (canonical JSON with
        sorted keys, hashed with SHA-256), so the digest is usable as an
        on-disk cache key — unlike ``hash()``, which Python salts per
        process for strings.
        """
        blob = json.dumps(self.canonical_dict(), sort_keys=True,
                          separators=(",", ":"), default=repr)
        return hashlib.sha256(blob.encode()).hexdigest()
