"""Platform presets (Table I) and sweep helpers.

``gem5_default`` is the simulated Test Node column of Table I with the
paper's extensions enabled; ``gem5_baseline`` re-introduces the mainline
gem5 limitations (unimplemented interrupt-disable bit, no byte-granular
command access, unimplemented IMR, PMD writeback threshold broken);
``altra`` is the Ampere Altra Max reference system column.

The ``with_*`` helpers derive single-parameter variants for the
sensitivity sweeps of Figs 10-17.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cpu.core import CoreConfig
from repro.cpu.kernels import KernelCosts
from repro.dpdk.eal import EalConfig
from repro.mem.cache import CacheConfig
from repro.mem.dram import DramConfig
from repro.mem.hierarchy import HierarchyConfig
from repro.nic.i8254x import NicConfig, NicQuirks
from repro.pci.config_space import PciQuirks
from repro.system.config import SystemConfig

# The paper's Fig 6 observation: Pktgen on the Drive Node cannot load the
# server beyond ~8Gbps at 64B / ~16Gbps at 128B, i.e. a packets-per-second
# ceiling of roughly 15.6M.
ALTRA_CLIENT_MAX_PPS = 15.6e6


def _table1_core(freq_hz: float = 3e9, ooo: bool = True,
                 efficiency: float = 1.0, rob: int = 128) -> CoreConfig:
    return CoreConfig(
        freq_hz=freq_hz,
        ooo=ooo,
        width=4,
        rob_entries=rob,
        iq_entries=120,
        lq_entries=68,
        sq_entries=72,
        int_regs=256,
        fp_regs=256,
        btb_entries=8192,
        branch_predictor="BiModeBP",
        efficiency=efficiency,
    )


def _table1_hierarchy(l1_size: int = 64 * 1024,
                      l2_size: int = 1024 * 1024,
                      llc_size: int = 4 * 1024 * 1024,
                      dca: bool = True,
                      channels: int = 2,
                      dram_mhz: int = 2400) -> HierarchyConfig:
    # DDR4-2400 x64: 19.2 GB/s per channel; scale with the data rate.
    channel_bw = 19.2 * (dram_mhz / 2400.0)
    return HierarchyConfig(
        l1i=CacheConfig(name="l1i", size=l1_size, assoc=4,
                        latency_cycles=1, mshrs=2),
        l1d=CacheConfig(name="l1d", size=l1_size, assoc=4,
                        latency_cycles=2, mshrs=6),
        l2=CacheConfig(name="l2", size=l2_size, assoc=8,
                       latency_cycles=12, mshrs=16),
        llc=CacheConfig(name="llc", size=llc_size, assoc=16,
                        latency_cycles=30, mshrs=32,
                        reserved_io_ways=4 if dca else 0),
        dram=DramConfig(channels=channels,
                        channel_bw_bytes_per_ns=channel_bw),
    )


def gem5_default() -> SystemConfig:
    """The simulated system of Table I with the paper's extensions."""
    return SystemConfig(
        label="gem5",
        core=_table1_core(),
        hierarchy=_table1_hierarchy(dca=True, dram_mhz=2400),
        nic=NicConfig(),
        costs=KernelCosts(),
        pci_quirks=PciQuirks.fixed(),
        eal=EalConfig(skip_vendor_check=True, vendor_info_missing=True),
    )


def gem5_baseline() -> SystemConfig:
    """Mainline gem5 before the paper's changes: DPDK cannot run."""
    cfg = gem5_default()
    return cfg.variant(
        label="gem5-baseline",
        pci_quirks=PciQuirks.baseline_gem5(),
        nic=replace(cfg.nic, quirks=NicQuirks.baseline_gem5()),
        eal=EalConfig(skip_vendor_check=False, vendor_info_missing=True),
    )


def altra() -> SystemConfig:
    """The Ampere Altra Max reference system (Table I right column).

    Real-system traits the paper calls out: a Neoverse N1 core that
    outperforms its gem5 model on core-bound work (§VII.B), DDR4-3200,
    DDIO/DCA disabled (the Ampere tuning guide), and a *software* load
    generator (Pktgen) whose client-side ceiling caps offered load at
    small packet sizes (Fig 6).
    """
    return SystemConfig(
        label="altra",
        core=_table1_core(efficiency=1.35),
        hierarchy=_table1_hierarchy(dca=False, dram_mhz=3200),
        nic=NicConfig(),
        costs=KernelCosts(),
        pci_quirks=PciQuirks.fixed(),
        eal=EalConfig(skip_vendor_check=False, vendor_info_missing=False),
        # ConnectX-6 DMA over PCIe4 x16 is not the large-packet bottleneck
        # the gem5 I/O bus is; give the real NIC more headroom.
        iobus_bytes_per_sec=10.5e9,
        software_loadgen_max_pps=ALTRA_CLIENT_MAX_PPS,
    )


# ----------------------------------------------------------------------
# Sweep helpers (Figs 10-17)
# ----------------------------------------------------------------------

def with_l1_size(config: SystemConfig, l1_size: int) -> SystemConfig:
    """Both L1I and L1D set to ``l1_size`` (Fig 10 sweeps them together)."""
    hier = config.hierarchy
    return config.variant(hierarchy=replace(
        hier,
        l1i=replace(hier.l1i, size=l1_size),
        l1d=replace(hier.l1d, size=l1_size),
    ))


def with_l2_size(config: SystemConfig, l2_size: int) -> SystemConfig:
    """Variant with the given L2 capacity."""
    hier = config.hierarchy
    return config.variant(hierarchy=replace(
        hier, l2=replace(hier.l2, size=l2_size)))


def with_llc_size(config: SystemConfig, llc_size: int) -> SystemConfig:
    """Variant with the given LLC capacity."""
    hier = config.hierarchy
    return config.variant(hierarchy=replace(
        hier, llc=replace(hier.llc, size=llc_size)))


def with_dca(config: SystemConfig, enabled: bool,
             io_ways: int = 4) -> SystemConfig:
    """Variant with DCA enabled/disabled."""
    hier = config.hierarchy
    return config.variant(hierarchy=replace(
        hier, llc=replace(hier.llc,
                          reserved_io_ways=io_ways if enabled else 0)))


def with_frequency(config: SystemConfig, freq_hz: float) -> SystemConfig:
    """Variant at the given core frequency."""
    return config.variant(core=replace(config.core, freq_hz=freq_hz))


def with_rob(config: SystemConfig, rob_entries: int) -> SystemConfig:
    """Variant with the given ROB size."""
    return config.variant(core=replace(config.core,
                                       rob_entries=rob_entries))


def with_core(config: SystemConfig, ooo: bool) -> SystemConfig:
    """Variant with an out-of-order or in-order core."""
    return config.variant(core=replace(config.core, ooo=ooo))


def with_dram_channels(config: SystemConfig, channels: int) -> SystemConfig:
    """Variant with the given DRAM channel count."""
    hier = config.hierarchy
    return config.variant(hierarchy=replace(
        hier, dram=replace(hier.dram, channels=channels)))


# -- fabric presets ----------------------------------------------------------
#
# Named switch-fabric geometries for ``python -m repro fabric`` and the
# scenario test matrix.  Geometry only: link parameters default to the
# Table I wire (100Gbps) with datacenter-scale 1us hops, and the
# per-frame host service cost is resolved from the platform's
# KernelCosts by the harness (repro.harness.fabric.fabric_config_for)
# when left at 0.


def fabric_fat_tree_k4(stack: str = "dpdk"):
    """K=4 fat-tree: 4 pods, 20 switches, 16 hosts, full bisection."""
    from repro.net.fabric import FabricConfig
    return FabricConfig(topology="fat_tree", k=4, stack=stack)


def fabric_leaf_spine(stack: str = "dpdk"):
    """4 leaves x 2 spines, 4 hosts per leaf: 2:1 oversubscribed."""
    from repro.net.fabric import FabricConfig
    return FabricConfig(topology="leaf_spine", leaves=4, spines=2,
                        hosts_per_leaf=4, stack=stack)


FABRIC_PRESETS = {
    "fat-tree-k4": fabric_fat_tree_k4,
    "leaf-spine": fabric_leaf_spine,
}
