"""Declarative node topology: build, validate, render.

A :class:`Topology` is the wiring graph of one simulated host (or of
several hosts sharing one event queue, as in dual mode): every component
is registered under a label, every connection between components is a
typed :class:`~repro.sim.ports.Port` binding, and the graph as a whole
can be validated (no dangling ports) and rendered as DOT for the
architecture docs.

The module also owns the *builder* for the common platform of Fig 1b —
memory hierarchy, clock domain, core, I/O bus, DMA engine, NIC — which
:mod:`repro.system.node` (both node flavours) and
:mod:`repro.system.dual_mode` (the embedded Drive Node client) share
instead of each hand-wiring its own copy.  Construction order is part of
the platform's contract: object registration, address-space allocation
and stat-group creation happen in a fixed sequence so results are
bit-identical across builders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cpu import make_core
from repro.cpu.core import CoreModel
from repro.mem.address import AddressSpace
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.xbar import BandwidthServer
from repro.nic.dma import DmaEngine
from repro.nic.i8254x import I8254xNic, NicConfig
from repro.sim.checkpoint import assert_serializable
from repro.sim.ports import (
    ClockDomain,
    Port,
    ROLE_REQUEST,
    ports_of,
)
from repro.sim.simobject import Simulation
from repro.sim.ticks import ns_to_ticks
from repro.system.config import SystemConfig


class TopologyError(RuntimeError):
    """The wiring graph is not buildable/complete."""


def _required(port: Port) -> bool:
    """Is an unbound ``port`` a wiring error?

    Request ports always need a server; a point-to-point response port
    needs its single client.  Multi response ports are capacity offers
    (a pool nobody draws from is odd but legal), and ``external`` ports
    face outside the topology (a NIC awaiting its cable).
    """
    if port.external:
        return False
    if port.role == ROLE_REQUEST:
        return True
    return not port.multi


class Topology:
    """A labelled set of components plus the port bindings between them."""

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self._components: Dict[str, object] = {}

    # -- construction ------------------------------------------------------

    def add(self, label: str, component):
        """Register ``component`` under ``label``; returns the component
        so builders can assign and register in one expression."""
        if label in self._components:
            raise TopologyError(
                f"{self.name}: duplicate component label {label!r}")
        if component is None:
            raise TopologyError(f"{self.name}: component {label!r} is None")
        # Every component is part of the checkpoint traversal, so a
        # missing serialize/deserialize pair is a build-time error here
        # rather than a checkpoint-time surprise.
        try:
            assert_serializable(label, component)
        except Exception as exc:
            raise TopologyError(f"{self.name}: {exc}") from None
        self._components[label] = component
        return component

    def connect(self, a: Port, b: Port, **metadata) -> None:
        """Bind two ports (see :meth:`repro.sim.ports.Port.bind`)."""
        a.bind(b, **metadata)

    # -- introspection -----------------------------------------------------

    def components(self) -> List[Tuple[str, object]]:
        """(label, component) pairs in registration order."""
        return list(self._components.items())

    def get(self, label: str):
        """Component registered under ``label``."""
        try:
            return self._components[label]
        except KeyError:
            raise TopologyError(
                f"{self.name}: no component labelled {label!r}; have "
                f"{sorted(self._components)}") from None

    def ports(self) -> List[Tuple[str, Port]]:
        """(component label, port) pairs in registration/creation order."""
        out: List[Tuple[str, Port]] = []
        for label, component in self._components.items():
            for port in ports_of(component):
                out.append((label, port))
        return out

    def unbound_ports(self) -> List[Port]:
        """Unbound ports that make the topology incomplete."""
        return [port for _label, port in self.ports()
                if not port.bound and _required(port)]

    def external_ports(self) -> List[Port]:
        """Unbound ports that legitimately face outside the topology."""
        return [port for _label, port in self.ports()
                if not port.bound and port.external]

    def edges(self) -> List[Tuple[str, Port, str, Port, dict]]:
        """Deduplicated bound port pairs within this topology.

        Each edge appears once as ``(label_a, port_a, label_b, port_b,
        metadata)`` in creation order.  Bindings whose peer component is
        not registered here are skipped (they belong to another
        topology — or another shard).  The shard partitioner's tests use
        this to prove a sharded build has no direct binding between
        components owned by different shards: every cut edge must go
        through a channel half instead.
        """
        label_of = {id(comp): label
                    for label, comp in self._components.items()}
        seen = set()
        out: List[Tuple[str, Port, str, Port, dict]] = []
        for label, port in self.ports():
            for peer, meta in zip(port.peers, port.bind_metadata):
                peer_label = label_of.get(id(peer.owner))
                if peer_label is None:
                    continue
                key = frozenset((id(port), id(peer)))
                if key in seen:
                    continue
                seen.add(key)
                out.append((label, port, peer_label, peer, meta))
        return out

    # -- validation --------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`TopologyError` naming every dangling port."""
        dangling = self.unbound_ports()
        if not dangling:
            return
        lines = [f"{self.name}: {len(dangling)} dangling port(s):"]
        for port in dangling:
            advice = port.hint or (
                f"bind it to a {port.kind} "
                f"{'response' if port.role == ROLE_REQUEST else 'request'} "
                f"port")
            lines.append(f"  - {port.full_name} ({port.kind} {port.role})"
                         f" — {advice}")
        raise TopologyError("\n".join(lines))

    # -- rendering ---------------------------------------------------------

    def _edge_label(self, port: Port, meta: dict) -> str:
        parts = [port.kind]
        link = meta.get("link")
        if link is not None:
            parts.append(getattr(link, "name", str(link)))
        bw = meta.get("bandwidth_bits_per_sec")
        if bw:
            parts.append(f"{bw / 1e9:g}Gbps")
        bps = meta.get("bytes_per_sec")
        if bps:
            parts.append(f"{bps * 8 / 1e9:g}Gbps")
        lat = meta.get("latency_ticks") or meta.get("delay_ticks")
        if lat:
            parts.append(f"{lat / 1000:g}ns")
        return "\\n".join(parts)

    def to_dot(self) -> str:
        """The wiring graph in Graphviz DOT form (deterministic)."""
        label_of = {id(comp): label
                    for label, comp in self._components.items()}
        lines = [f'digraph "{self.name}" {{',
                 "  rankdir=LR;",
                 '  node [shape=box, fontname="monospace", fontsize=10];',
                 '  edge [fontname="monospace", fontsize=8];']
        for label, component in self._components.items():
            kind = type(component).__name__
            lines.append(f'  "{label}" [label="{label}\\n({kind})"];')
        seen = set()
        for label, port in self.ports():
            for peer, meta in zip(port.peers, port.bind_metadata):
                peer_label = label_of.get(id(peer.owner))
                if peer_label is None:
                    continue   # peer outside this topology
                key = frozenset((id(port), id(peer)))
                if key in seen:
                    continue
                seen.add(key)
                # Draw request -> response; peers draw in insertion order.
                src, dst = ((label, peer_label)
                            if port.role != "response"
                            else (peer_label, label))
                lines.append(f'  "{src}" -> "{dst}" '
                             f'[label="{self._edge_label(port, meta)}"];')
        lines.append("}")
        return "\n".join(lines)


@dataclass
class Platform:
    """The common Fig 1b base a node builds on."""

    sim: Simulation
    address_space: AddressSpace
    hierarchy: MemoryHierarchy
    clock: ClockDomain
    core: CoreModel
    iobus: BandwidthServer
    dma: DmaEngine
    nic: I8254xNic


def build_platform(topology: Topology, sim: Simulation,
                   config: SystemConfig, *, prefix: str = "",
                   address_space: Optional[AddressSpace] = None,
                   nic_config: Optional[NicConfig] = None) -> Platform:
    """Construct the shared platform: memory, clock, core, I/O bus, DMA
    engine and NIC, registered with ``topology`` and wired through typed
    ports.

    ``prefix`` namespaces every component name (the dual-mode client uses
    ``"client."``); ``nic_config`` overrides the NIC geometry (kernel
    nodes shrink the rings).  Construction order is load-bearing — see
    the module docstring.
    """
    aspace = address_space if address_space is not None else AddressSpace()
    hierarchy = MemoryHierarchy(config.hierarchy,
                                name=f"{prefix}hierarchy")
    clock = ClockDomain(sim, f"{prefix}clock")
    core = make_core(config.core, hierarchy, clock=clock,
                     name=f"{prefix}core")
    iobus = BandwidthServer(
        f"{prefix}iobus", config.iobus_bytes_per_sec,
        ns_to_ticks(config.iobus_latency_ns))
    dma = DmaEngine(config.nic.dma, iobus, hierarchy, name=f"{prefix}dma")
    nic = I8254xNic(sim, f"{prefix}nic0", nic_config or config.nic,
                    dma, aspace, config.pci_quirks)
    topology.add(f"{prefix}hierarchy", hierarchy)
    topology.add(f"{prefix}clock", clock)
    topology.add(f"{prefix}core", core)
    topology.add(f"{prefix}iobus", iobus)
    topology.add(f"{prefix}iobus.tx", dma.iobus_tx)
    topology.add(f"{prefix}dma", dma)
    topology.add(f"{prefix}nic0", nic)
    return Platform(sim=sim, address_space=aspace, hierarchy=hierarchy,
                    clock=clock, core=core, iobus=iobus, dma=dma, nic=nic)
