"""Dual-mode (two simulated nodes) vs EtherLoadGen comparison.

The paper's Fig 20 measures how much *simulation time* is saved by
replacing a fully-simulated Drive Node running a software load generator
(Fig 1a) with the EtherLoadGen hardware model (Fig 1b).  Here both
topologies are built and run to completion, and host wall-clock time is
compared:

- **dual mode** — a second simulated host (core + caches + NIC + driver)
  runs a memcached client application; every request pays simulated
  client-side work and the host pays for simulating it;
- **loadgen mode** — the MemcachedClient personality of EtherLoadGen
  sources the same request stream with zero client-side simulation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from repro.apps.base import DpdkApp, KernelNetApp
from repro.apps.memcached_dpdk import MemcachedDpdk
from repro.apps.memcached_kernel import MemcachedKernel
from repro.cpu.core import Work
from repro.cpu.kernels import lines_covering
from repro.kvstore.protocol import GetRequest, SetRequest, encode_request
from repro.kvstore.store import KvStore
from repro.kvstore.zipf import ZipfianGenerator
from repro.loadgen.distributions import FixedInterArrival
from repro.loadgen.memcached_client import MemcachedClientConfig
from repro.net.headers import build_udp_frame
from repro.net.packet import MacAddress
from repro.sim.ticks import us_to_ticks
from repro.system.config import SystemConfig
from repro.system.node import DpdkNode, KernelNode

CLIENT_MAC = MacAddress.parse("02:00:00:00:00:01")
SERVER_MAC = MacAddress.parse("02:00:00:00:00:02")


class _ClientWorkload:
    """Shared request generation for the simulated clients."""

    def __init__(self, rng, n_keys: int = 512) -> None:
        self._size_gen = ZipfianGenerator(10, 100, 0.5, rng)
        self._rng = rng
        self.keys = [f"key-{i:08d}".encode()[:self._size_gen.sample()]
                     .ljust(10, b"x") for i in range(n_keys)]
        self._next_id = 1

    def preload(self, store: KvStore) -> None:
        """Populate the server store with this workload's keys."""
        for key in self.keys:
            store.set(key, bytes(self._size_gen.sample()))

    def next_request(self):
        """Generate the next GET/SET request."""
        request_id = self._next_id
        self._next_id += 1
        key = self._rng.choice(self.keys)
        if self._rng.bernoulli(0.8):
            return GetRequest(request_id=request_id, key=key)
        return SetRequest(request_id=request_id, key=key,
                          value=bytes(self._size_gen.sample()))


class _DpdkClientApp(DpdkApp):
    """A simulated Drive Node client over DPDK (the Fig 1a load-gen app,
    DPDK flavour)."""

    def __init__(self, sim, name, pmd, core, costs, address_space,
                 workload: _ClientWorkload, n_requests: int,
                 rate_rps: float) -> None:
        super().__init__(sim, name, pmd, core, costs, address_space)
        self.workload = workload
        self.n_requests = n_requests
        self._gap = FixedInterArrival(rate_rps)
        self._send_event = self.make_event(self._send, "send")
        self.requests_sent = 0
        self.responses_received = 0

    def start(self, when: int = 0) -> None:
        """Begin operation at tick ``when`` (default: now)."""
        super().start(when)
        self.schedule(self._send_event, max(when, self.now))

    def _send(self) -> None:
        if self.requests_sent >= self.n_requests:
            return
        request = self.workload.next_request()
        payload = encode_request(request)
        mbuf = self.pmd.mempool.get()
        packet = build_udp_frame(
            src_mac=CLIENT_MAC, dst_mac=SERVER_MAC,
            src_ip=0x0A000001, dst_ip=0x0A000002,
            src_port=40000, dst_port=11211, payload=payload)
        packet.request_id = request.request_id
        packet.ts_tx = self.now
        packet.meta["mbuf"] = mbuf
        # Client-side request construction costs simulated core time.
        self.core.execute(Work(
            compute_cycles=(self.costs.pmd_per_packet_cycles
                            + self.costs.app_base_cycles * 4),
            writes=lines_covering(mbuf.data_addr, len(payload)),
        ))
        self.pmd.nic.tx_enqueue(mbuf.data_addr, packet)
        self.requests_sent += 1
        if self.requests_sent < self.n_requests:
            self.schedule_after(self._send_event, self._gap.next_gap_ticks())

    def frame_work(self, frame):
        # Response parsing on the client core.
        """Per-packet application work for one received frame."""
        return Work(compute_cycles=self.costs.app_base_cycles * 4,
                    reads=[frame.mbuf.data_addr])

    def transform(self, frame):
        """Outgoing packet for this frame (None drops it)."""
        self.responses_received += 1
        return None   # consume the response


class _KernelClientApp(KernelNetApp):
    """A simulated Drive Node client over the kernel stack."""

    def __init__(self, sim, name, driver, stack, core, costs,
                 workload: _ClientWorkload, n_requests: int,
                 rate_rps: float) -> None:
        super().__init__(sim, name, driver, stack, core, costs)
        self.workload = workload
        self.n_requests = n_requests
        self._gap = FixedInterArrival(rate_rps)
        self._send_event = self.make_event(self._send, "send")
        self.requests_sent = 0
        self.responses_received = 0

    def start(self, when: int = 0) -> None:
        """Begin operation at tick ``when`` (default: now)."""
        self.schedule(self._send_event, max(when, self.now))

    def _send(self) -> None:
        if self.requests_sent >= self.n_requests:
            return
        request = self.workload.next_request()
        payload = encode_request(request)
        packet = build_udp_frame(
            src_mac=CLIENT_MAC, dst_mac=SERVER_MAC,
            src_ip=0x0A000001, dst_ip=0x0A000002,
            src_port=40000, dst_port=11211, payload=payload)
        packet.request_id = request.request_id
        packet.ts_tx = self.now
        tx = self.stack.tx_work(len(payload))
        self.core.execute(tx.app)
        self.core.execute(tx.kernel)
        skb_addr = self.stack.alloc_skb(packet.wire_len)
        self.driver.transmit(skb_addr, packet)
        self.requests_sent += 1
        if self.requests_sent < self.n_requests:
            self.schedule_after(self._send_event, self._gap.next_gap_ticks())

    def handle_packet(self, desc, batch_size: int) -> float:
        """Application-level processing; returns extra ns."""
        self.responses_received += 1
        return 0.0


@dataclass
class DualModeResult:
    """Wall-clock comparison of the two topologies."""

    dual_wall_s: float
    loadgen_wall_s: float
    requests: int
    dual_responses: int
    loadgen_responses: int

    @property
    def speedup_fraction(self) -> float:
        """Simulation-time saving of EtherLoadGen vs dual mode (Fig 20's
        y-axis: (t_dual - t_loadgen) / t_dual)."""
        if self.dual_wall_s <= 0:
            return 0.0
        return max(0.0, 1.0 - self.loadgen_wall_s / self.dual_wall_s)


def _run_to_completion(sim, horizon_us: float) -> None:
    sim.run(until=sim.now + us_to_ticks(horizon_us))


def run_dual_mode_comparison(config: SystemConfig, kernel: bool = False,
                             n_requests: int = 2000,
                             rate_rps: float = 150_000.0,
                             seed: int = 7) -> DualModeResult:
    """Run both topologies and compare wall-clock time."""
    # Generous drain horizon: the cold-started kernel server works through
    # its early-backlog before caches warm.
    horizon_us = n_requests / rate_rps * 1e6 + 5000.0

    # ---- dual mode: two simulated nodes sharing one event queue -----------
    start = time.perf_counter()
    if kernel:
        server = KernelNode(config, seed=seed)
        store = KvStore(server.address_space)
        server.install_app(MemcachedKernel, store=store)
    else:
        server = DpdkNode(config, seed=seed)
        store = KvStore(server.address_space)
        server.install_app(MemcachedDpdk, store=store)
    client = _build_client_in(server, config, kernel, n_requests, rate_rps)
    client.workload.preload(store)
    server.start()
    client.start()
    _run_to_completion(server.sim, horizon_us)
    dual_wall = time.perf_counter() - start
    dual_responses = client.responses_received

    # ---- loadgen mode: EtherLoadGen memcached personality ------------------
    start = time.perf_counter()
    if kernel:
        node = KernelNode(config, seed=seed)
        store2 = KvStore(node.address_space)
        node.install_app(MemcachedKernel, store=store2)
    else:
        node = DpdkNode(config, seed=seed)
        store2 = KvStore(node.address_space)
        node.install_app(MemcachedDpdk, store=store2)
    client_cfg = MemcachedClientConfig(
        n_warm_keys=512, n_requests=n_requests, rate_rps=rate_rps)
    mc = node.attach_memcached_client(client_cfg)
    mc.preload(store2)
    node.start()
    mc.start()
    _run_to_completion(node.sim, horizon_us)
    loadgen_wall = time.perf_counter() - start

    return DualModeResult(
        dual_wall_s=dual_wall,
        loadgen_wall_s=loadgen_wall,
        requests=n_requests,
        dual_responses=dual_responses,
        loadgen_responses=mc.responses_received,
    )


def _build_client_in(server, config: SystemConfig, kernel: bool,
                     n_requests: int, rate_rps: float):
    """Construct the Drive Node inside the server's Simulation and wire
    the two NICs with the server's link.

    The client reuses the same declarative platform builder as a full
    node — prefixed names, its own address space — so dual mode is one
    :class:`~repro.system.topology.Topology` covering both hosts.
    """
    from repro.dpdk.hugepages import HugepageAllocator
    from repro.dpdk.mempool import Mempool
    from repro.dpdk.pmd import E1000Pmd
    from repro.kernelstack.driver import InterruptNicDriver
    from repro.kernelstack.stack import KernelStackModel
    from repro.mem.address import AddressSpace
    from repro.pci.uio import UioPciGeneric
    from repro.system.topology import build_platform

    sim = server.sim
    topo = server.topology
    platform = build_platform(
        topo, sim, config, prefix="client.",
        address_space=AddressSpace(base=0x8000_0000))
    aspace = platform.address_space
    core = platform.core
    nic = platform.nic
    server.link.connect(nic.port, server.nic.port)
    workload = _ClientWorkload(sim.rng.fork("client.workload"))
    if kernel:
        stack = KernelStackModel(aspace, config.costs,
                                 name="client.kernel.stack")
        topo.add("client.kernel.stack", stack)
        driver = InterruptNicDriver(nic, stack)
        topo.add("client.driver", driver)
        client = _KernelClientApp(sim, "client.app", driver, stack, core,
                                  config.costs, workload=workload,
                                  n_requests=n_requests, rate_rps=rate_rps)
    else:
        uio = UioPciGeneric()
        uio.bind(nic)
        hugepages = HugepageAllocator(aspace, 512)
        mempool = Mempool("client.mbuf_pool", hugepages,
                          n_mbufs=config.mempool_mbufs,
                          mbuf_size=config.mbuf_size)
        topo.add("client.mbuf_pool", mempool)
        pmd = E1000Pmd(nic, mempool)
        topo.add("client.pmd", pmd)
        client = _DpdkClientApp(sim, "client.app", pmd, core, config.costs,
                                aspace, workload=workload,
                                n_requests=n_requests, rate_rps=rate_rps)
    topo.add("client.app", client)
    client.workload = workload
    return client
