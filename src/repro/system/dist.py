"""dist-gem5-style synchronized simulation.

The paper's Fig 1a baseline can run as dual-mode gem5 (one process) or as
dist-gem5 [19]: two gem5 processes, one per node, "synchronizing them at
every minimum simulated network latency".  This module implements that
conservative parallel-discrete-event scheme for two (or more)
:class:`~repro.sim.simobject.Simulation` instances:

- each simulation runs independently up to the next *quantum barrier*;
- frames crossing between simulations are buffered in a mailbox and
  injected into the peer at the barrier;
- correctness holds because the link latency is at least one quantum, so
  a frame sent during quantum *k* can never need delivery before barrier
  *k+1* — exactly dist-gem5's synchronization argument.

The simulations here still run in one Python process (true parallelism
would need multiprocessing), but the synchronization structure, the
quantum-bounded skew and the mailbox protocol are the real thing, and the
skew/ordering invariants are testable.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.net.packet import Packet
from repro.nic.phy import EtherPort
from repro.sim.ports import PacketPort
from repro.sim.simobject import Simulation


class DistPortAdapter:
    """One end of a cross-simulation link, living inside one simulation."""

    def __init__(self, sim: Simulation, name: str, link: "DistEtherLink",
                 side: int) -> None:
        self.sim = sim
        self.name = name
        self._link = link
        self._side = side
        #: Typed stand-in for the far simulation's half of the cable; the
        #: local device port binds here, so the cross-simulation edge shows
        #: up in the wiring graph like any other packet link.
        self.wire = PacketPort(self, "wire", external=True)
        self.peer_port: Optional[EtherPort] = None
        self._tx_free_at = 0

    def attach(self, port: EtherPort) -> None:
        """Wire a device port to this end of the distributed link."""
        if port.link is not None:
            raise RuntimeError(f"{port.name} is already connected")
        self.wire.bind(
            port, link=self,
            bandwidth_bits_per_sec=self._link.bandwidth_bits_per_sec,
            delay_ticks=self._link.delay_ticks)
        port.link = self
        self.peer_port = port

    # EtherLink-compatible surface for the attached EtherPort:
    def transmit(self, src_port: EtherPort, packet: Packet) -> None:
        """Serialize at line rate, then hand off to the mailbox."""
        start = max(self.sim.now, self._tx_free_at)
        wire_bits = (packet.wire_len + 20) * 8
        finish = start + round(
            wire_bits * 1e12 / self._link.bandwidth_bits_per_sec)
        self._tx_free_at = finish
        deliver_at = finish + self._link.delay_ticks
        self._link.post(self._side, deliver_at, packet)

    def deliver(self, packet: Packet) -> None:
        """Called by the link coordinator at a barrier flush."""
        if self.peer_port is None:
            raise RuntimeError(f"{self.name} has no attached device port")
        self.peer_port.deliver(packet)


class DistEtherLink:
    """A point-to-point Ethernet link spanning two simulations."""

    def __init__(self, sim_a: Simulation, sim_b: Simulation,
                 bandwidth_bits_per_sec: float = 100e9,
                 delay_ticks: int = 0) -> None:
        if delay_ticks <= 0:
            raise ValueError(
                "a distributed link needs a positive latency: the sync "
                "quantum is bounded by it")
        self.bandwidth_bits_per_sec = bandwidth_bits_per_sec
        self.delay_ticks = delay_ticks
        self.end_a = DistPortAdapter(sim_a, "dist.a", self, 0)
        self.end_b = DistPortAdapter(sim_b, "dist.b", self, 1)
        # mailbox[side] holds frames sent *from* that side.
        self._mailbox: Tuple[List, List] = ([], [])
        self.frames_carried = 0

    def post(self, side: int, deliver_at: int, packet: Packet) -> None:
        """Queue a frame for delivery into the peer simulation."""
        self._mailbox[side].append((deliver_at, packet))

    def flush(self) -> int:
        """Inject mailboxed frames into their target simulations.

        Called by the coordinator at each barrier; returns the number of
        frames moved.  Frames are scheduled at their exact delivery tick,
        which the quantum bound guarantees is still in the target's
        future.
        """
        moved = 0
        for side, target in ((0, self.end_b), (1, self.end_a)):
            pending, self._mailbox[side][:] = \
                list(self._mailbox[side]), []
            for deliver_at, packet in pending:
                if deliver_at < target.sim.now:
                    raise RuntimeError(
                        "synchronization violated: delivery at "
                        f"{deliver_at} but peer already at "
                        f"{target.sim.now} (quantum too large?)")
                target.sim.events.call_at(
                    deliver_at,
                    lambda p=packet, t=target: t.deliver(p),
                    name="dist.deliver")
                moved += 1
                self.frames_carried += 1
        return moved


class DistCoordinator:
    """Runs multiple simulations in quantum-synchronized lockstep."""

    def __init__(self, sims: List[Simulation], links: List[DistEtherLink],
                 quantum_ticks: Optional[int] = None) -> None:
        if len(sims) < 2:
            raise ValueError("dist mode needs at least two simulations")
        min_latency = min(link.delay_ticks for link in links)
        self.quantum_ticks = (quantum_ticks if quantum_ticks is not None
                              else min_latency)
        if self.quantum_ticks <= 0:
            raise ValueError("quantum must be positive")
        if self.quantum_ticks > min_latency:
            raise ValueError(
                f"quantum {self.quantum_ticks} exceeds the minimum link "
                f"latency {min_latency}: frames could arrive in a peer's "
                "past")
        self.sims = sims
        self.links = links
        self.barriers = 0

    @property
    def now(self) -> int:
        """Global time: the last completed barrier."""
        return min(sim.now for sim in self.sims)

    def run(self, until: int) -> int:
        """Advance all simulations to ``until`` in quantum steps."""
        while self.now < until:
            barrier = min(self.now + self.quantum_ticks, until)
            for sim in self.sims:
                sim.run(until=barrier)
            for link in self.links:
                link.flush()
            self.barriers += 1
        return self.now

    def max_skew(self) -> int:
        """Worst-case divergence between member simulations right now."""
        times = [sim.now for sim in self.sims]
        return max(times) - min(times)
