"""Command-line interface.

``python -m repro <command>`` exposes the harness from the shell:

- ``run``       — one fixed-load run of a benchmark application
- ``msb``       — maximum-sustainable-bandwidth search
- ``sweep``     — a bandwidth-vs-drop curve
- ``memcached`` — load a memcached server at a fixed request rate
- ``table1``    — print the platform configurations
- ``apps``      — list the registered applications
- ``graph``     — emit a node's wiring graph as Graphviz DOT
- ``checkpoint``— save/restore/info on warm-up checkpoints
- ``fabric``    — multi-node switch fabrics: run/sweep/trace/dot
- ``profile``   — cProfile one fixed-load run and print the hotspots

Every simulation routes through the parallel sweep executor:
``--jobs N`` fans a sweep's points out across N worker processes and
``--cache-dir DIR`` replays unchanged points from an on-disk result
cache (see docs/parallel_sweeps.md).  Results are bit-identical
regardless of ``--jobs`` and cache state.  ``--warmup-cache DIR``
additionally shares warm-up checkpoints between the points of a sweep
(see docs/checkpointing.md): every point of a single-configuration
load sweep restores the same post-warm-up snapshot instead of
re-simulating the warm-up.

Diagnostics (see docs/tracing_and_invariants.md): every run asserts the
registered conservation invariants at completion; ``--check-invariants
strict`` re-checks after every simulated event and ``--trace FILE``
exports a structured JSONL event trace of a single run.

Examples::

    python -m repro run testpmd --size 256 --gbps 20
    python -m repro msb touchfwd --size 1518 --max-gbps 20 --platform altra
    python -m repro sweep testpmd --size 64 --rates 5,10,15,20 --jobs 4
    python -m repro sweep testpmd --size 64 --rates 5,10,15,20 \\
        --jobs 4 --cache-dir ~/.cache/repro-sweeps
    python -m repro memcached --kernel --rps 200000
    python -m repro sweep testpmd --size 64 --rates 5,10,15,20 \\
        --warmup-cache /tmp/warm
    python -m repro checkpoint save testpmd --size 256 -o warm.ckpt
    python -m repro checkpoint info warm.ckpt
    python -m repro checkpoint restore warm.ckpt
    python -m repro fabric run fat-tree-k4 --stack dpdk --pattern incast \\
        --load 0.7 --flows 400
    python -m repro fabric sweep leaf-spine --loads 0.2,0.4,0.6,0.8 --jobs 4
    python -m repro fabric trace fat-tree-k4 --flows 1000 -o flows.txt
    python -m repro fabric dot leaf-spine -o fabric.dot
    python -m repro profile gem5 --app touchfwd --top 15
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.harness.experiments import table1_configs
from repro.harness.msb import bandwidth_sweep
from repro.harness.parallel import (
    SweepExecutor,
    fabric_point,
    fixed_load_point,
    memcached_point,
    msb_point,
)
from repro.harness.report import format_executor_summary, format_table
from repro.harness.runner import APP_REGISTRY
from repro.system.config import SystemConfig
from repro.system.presets import (
    FABRIC_PRESETS,
    altra,
    gem5_baseline,
    gem5_default,
)

PLATFORMS = {
    "gem5": gem5_default,
    "altra": altra,
    "gem5-baseline": gem5_baseline,
}


def _platform(name: str) -> SystemConfig:
    if name not in PLATFORMS:
        raise SystemExit(
            f"unknown platform {name!r}; choose from {sorted(PLATFORMS)}")
    return PLATFORMS[name]()


def _app_options(args) -> Optional[dict]:
    if getattr(args, "proc_time_ns", None) is not None:
        return {"proc_time_ns": args.proc_time_ns}
    return None


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {text!r}")
    return value


def _apply_diagnostics_env(args) -> None:
    """Translate the diagnostics flags into the environment variables the
    simulation layer reads.  Going through the environment (rather than
    plumbing arguments down) means forked sweep workers inherit the same
    settings for free."""
    if getattr(args, "check_invariants", None):
        os.environ["REPRO_CHECK_INVARIANTS"] = args.check_invariants
    if getattr(args, "trace", None):
        # Respect an existing category filter; otherwise trace everything.
        if not os.environ.get("REPRO_TRACE"):
            os.environ["REPRO_TRACE"] = "1"
        os.environ["REPRO_TRACE_PATH"] = args.trace


def _report_trace(args, result) -> None:
    if getattr(args, "trace", None):
        digest = getattr(result, "trace_digest", "")
        print(f"trace written to {args.trace}"
              + (f" (digest {digest[:16]})" if digest else ""))


def _executor_from(args) -> SweepExecutor:
    return SweepExecutor(jobs=getattr(args, "jobs", 1),
                         cache_dir=getattr(args, "cache_dir", None),
                         warmup_cache_dir=getattr(args, "warmup_cache",
                                                  None))


def _report_executor(args, ex: SweepExecutor) -> None:
    """Show what the executor did when the user opted into jobs/cache."""
    if getattr(args, "jobs", 1) > 1 or getattr(args, "cache_dir", None):
        print(format_executor_summary(ex.stats, jobs=ex.jobs))


def _cmd_run(args) -> int:
    ex = _executor_from(args)
    result = ex.run([fixed_load_point(
        _platform(args.platform), args.app, args.size, args.gbps,
        n_packets=args.packets, app_options=_app_options(args),
        seed=args.seed)])[0]
    print(format_table(
        f"{args.app} @ {result.offered_gbps:.2f} Gbps, "
        f"{args.size}B frames ({result.label})",
        ["metric", "value"],
        [["offered Gbps", f"{result.offered_gbps:.3f}"],
         ["service Gbps", f"{result.service_gbps:.3f}"],
         ["drop rate", f"{result.drop_rate * 100:.2f}%"],
         ["CoreDrop", f"{result.drop_breakdown.get('CoreDrop', 0) * 100:.1f}%"],
         ["DmaDrop", f"{result.drop_breakdown.get('DmaDrop', 0) * 100:.1f}%"],
         ["TxDrop", f"{result.drop_breakdown.get('TxDrop', 0) * 100:.1f}%"],
         ["mean RTT us", f"{result.latency_us.get('mean', 0):.1f}"],
         ["p99 RTT us", f"{result.latency_us.get('p99', 0):.1f}"],
         ["LLC miss rate", f"{result.llc_miss_rate:.3f}"]]))
    _report_trace(args, result)
    _report_executor(args, ex)
    return 0


def _cmd_msb(args) -> int:
    ex = _executor_from(args)
    result = ex.run([msb_point(
        _platform(args.platform), args.app, args.size,
        max_gbps=args.max_gbps, app_options=_app_options(args),
        seed=args.seed)])[0]
    print(f"{args.app} {args.size}B on {result.label}: "
          f"MSB = {result.msb_gbps:.2f} Gbps")
    for offered, drop in result.curve:
        print(f"    probe {offered:7.2f} Gbps -> {drop * 100:5.1f}% drop")
    _report_executor(args, ex)
    return 0


def _cmd_sweep(args) -> int:
    rates = [float(r) for r in args.rates.split(",")]
    ex = _executor_from(args)
    points = bandwidth_sweep(
        _platform(args.platform), args.app, args.size, rates_gbps=rates,
        n_packets=args.packets, app_options=_app_options(args),
        seed=args.seed, executor=ex)
    print(format_table(
        f"{args.app} {args.size}B bandwidth vs drop ({args.platform})",
        ["offered Gbps", "drop rate"],
        [[f"{x:.2f}", f"{d * 100:.2f}%"] for x, d in points]))
    _report_executor(args, ex)
    return 0


def _cmd_memcached(args) -> int:
    ex = _executor_from(args)
    result = ex.run([memcached_point(
        _platform(args.platform), kernel=args.kernel, rate_rps=args.rps,
        n_requests=args.requests, seed=args.seed)])[0]
    flavour = "MemcachedKernel" if args.kernel else "MemcachedDPDK"
    print(format_table(
        f"{flavour} @ {args.rps / 1000:.0f} kRPS ({result.label})",
        ["metric", "value"],
        [["achieved RPS", f"{result.achieved_rps:,.0f}"],
         ["drop rate", f"{result.drop_rate * 100:.2f}%"],
         ["mean RTT us", f"{result.latency_us.get('mean', 0):.1f}"],
         ["median RTT us", f"{result.latency_us.get('median', 0):.1f}"],
         ["p99 RTT us", f"{result.latency_us.get('p99', 0):.1f}"],
         ["GET hits/misses", f"{result.get_hits}/{result.get_misses}"]]))
    _report_trace(args, result)
    _report_executor(args, ex)
    return 0


def _cmd_table1(args) -> int:
    rows = table1_configs()
    params = list(next(iter(rows.values())).keys())
    print(format_table(
        "Table I: system configurations",
        ["Parameter"] + list(rows.keys()),
        [[p] + [rows[label][p] for label in rows] for p in params]))
    return 0


def _cmd_graph(args) -> int:
    from repro.harness.runner import build_node

    node = build_node(_platform(args.platform), args.app, seed=args.seed)
    if args.loadgen:
        node.attach_loadgen()
    dot = node.wiring_dot()
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(dot + "\n")
        print(f"wiring graph written to {args.output}")
    else:
        print(dot)
    return 0


def _checkpoint_node(config, app: str, seed: int, packet_size: int,
                     client_options: Optional[dict] = None):
    """Build a node plus its traffic source exactly as ``checkpoint
    save`` does, so ``checkpoint restore`` reconstructs the same
    topology.  Returns ``(node, plan, needs_preload)``."""
    from repro.harness.runner import (
        APP_REGISTRY,
        _fixed_load_plan,
        _memcached_plan,
        build_node,
    )
    from repro.loadgen.memcached_client import MemcachedClientConfig

    node = build_node(config, app, seed=seed)
    if app.startswith("memcached"):
        node.attach_memcached_client(
            MemcachedClientConfig(**(client_options or {})))
        return node, _memcached_plan(config), True
    node.attach_loadgen()
    echoes = APP_REGISTRY[app][2]
    return node, _fixed_load_plan(config, packet_size, echoes, None), False


def _cmd_checkpoint_save(args) -> int:
    from dataclasses import asdict

    from repro.loadgen.memcached_client import MemcachedClientConfig
    from repro.sim.checkpoint import save_checkpoint

    config = _platform(args.platform)
    node, plan, needs_preload = _checkpoint_node(
        config, args.app, args.seed, args.size)
    extra = {
        "phase": "warmup",
        "platform": args.platform,
        "app_name": args.app,
        "packet_size": args.size,
    }
    if needs_preload:
        node.memcached_client.preload(node.app.store)
        extra["client"] = asdict(MemcachedClientConfig())
    node.start()
    node.warmup_and_reset(plan)
    document = node.checkpoint(extra_meta=extra)
    save_checkpoint(document, args.output)
    print(f"checkpoint written to {args.output} "
          f"(tick {node.sim.now}, digest {document['digest'][:16]})")
    return 0


def _cmd_checkpoint_info(args) -> int:
    from repro.sim.checkpoint import CheckpointError, describe, load_checkpoint

    try:
        document = load_checkpoint(args.file)
    except CheckpointError as exc:
        print(f"invalid checkpoint: {exc}", file=sys.stderr)
        return 1
    print(describe(document))
    return 0


def _cmd_checkpoint_restore(args) -> int:
    """Restore a CLI-saved checkpoint into a freshly built node and
    prove the round trip: re-checkpointing the restored node must
    reproduce the original digest bit-for-bit."""
    from repro.sim.checkpoint import CheckpointError, load_checkpoint

    try:
        document = load_checkpoint(args.file)
    except CheckpointError as exc:
        print(f"invalid checkpoint: {exc}", file=sys.stderr)
        return 1
    meta = document["meta"]
    app = meta.get("app_name")
    platform = meta.get("platform")
    if not app or not platform:
        print("checkpoint was not saved by 'checkpoint save' (no "
              "app_name/platform in meta); cannot rebuild the node",
              file=sys.stderr)
        return 1
    client = meta.get("client")
    node, _plan, _preload = _checkpoint_node(
        _platform(platform), app, meta["seed"],
        meta.get("packet_size", 0), client_options=client)
    try:
        node.restore(document)
    except CheckpointError as exc:
        print(f"restore failed: {exc}", file=sys.stderr)
        return 1
    extra = {k: meta[k] for k in meta
             if k not in ("label", "app", "seed", "components")}
    replica = node.checkpoint(extra_meta=extra)
    if replica["digest"] != document["digest"]:
        print(f"restore round-trip digest mismatch: "
              f"{replica['digest']} != {document['digest']}",
              file=sys.stderr)
        return 1
    print(f"restored {app} on {platform} at tick {node.sim.now}; "
          f"round-trip digest matches ({document['digest'][:16]})")
    return 0


def _cmd_fabric_run(args) -> int:
    if args.shards > 1:
        if args.trace:
            print("--trace is not available with --shards > 1: each shard "
                  "traces its own slice only", file=sys.stderr)
            return 2
        from repro.harness.fabric import run_fabric_sharded
        # Run with the same forked per-point seed the executor path
        # uses, so --shards N reproduces the --shards 1 digest exactly.
        point = fabric_point(
            _platform(args.platform), args.preset, args.stack,
            pattern=args.pattern, load=args.load, n_flows=args.flows,
            size_cdf=args.size_cdf, seed=args.seed)
        result = run_fabric_sharded(
            point.config, args.preset, args.stack,
            pattern=args.pattern, load=args.load, n_flows=args.flows,
            size_cdf=args.size_cdf, seed=point.effective_seed,
            shards=args.shards)
        ex = None
    else:
        ex = _executor_from(args)
        result = ex.run([fabric_point(
            _platform(args.platform), args.preset, args.stack,
            pattern=args.pattern, load=args.load, n_flows=args.flows,
            size_cdf=args.size_cdf, seed=args.seed)])[0]
    rows = [
        ["flows completed", f"{result.flows_completed}/{result.flows_started}"],
        ["frames sent", f"{result.frames_sent:,}"],
        ["frames delivered", f"{result.frames_delivered:,}"],
        ["drop rate", f"{result.drop_rate * 100:.2f}%"],
        ["mean FCT us", f"{result.fct_us.get('mean', 0):.2f}"],
        ["p50 FCT us", f"{result.fct_us.get('p50', 0):.2f}"],
        ["p95 FCT us", f"{result.fct_us.get('p95', 0):.2f}"],
        ["p99 FCT us", f"{result.fct_us.get('p99', 0):.2f}"],
        ["p999 FCT us", f"{result.fct_us.get('p999', 0):.2f}"],
    ]
    for cause, share in sorted(result.drop_breakdown.items()):
        rows.append([f"drops: {cause}", f"{share * 100:.1f}%"])
    print(format_table(
        f"{args.preset}/{args.stack} {args.pattern} @ load {args.load:g}, "
        f"{args.flows} flows ({result.label})",
        ["metric", "value"], rows))
    if args.switch_drops and result.per_switch_drops:
        print(format_table(
            "per-switch window drops",
            ["switch", "cause", "count"],
            [[name, cause, str(count)]
             for name, causes in sorted(result.per_switch_drops.items())
             for cause, count in sorted(causes.items())]))
    _report_trace(args, result)
    if ex is not None:
        _report_executor(args, ex)
    return 0


def _cmd_fabric_sweep(args) -> int:
    loads = [float(x) for x in args.loads.split(",")]
    ex = _executor_from(args)
    points = [fabric_point(
        _platform(args.platform), args.preset, args.stack,
        pattern=args.pattern, load=load, n_flows=args.flows,
        size_cdf=args.size_cdf, seed=args.seed) for load in loads]
    results = ex.run(points)
    print(format_table(
        f"{args.preset}/{args.stack} {args.pattern} FCT vs load "
        f"({args.platform})",
        ["load", "completed", "drop rate", "p50 us", "p99 us"],
        [[f"{r.offered_load:.2f}",
          f"{r.flows_completed}/{r.flows_started}",
          f"{r.drop_rate * 100:.2f}%",
          f"{r.fct_us.get('p50', 0):.2f}",
          f"{r.fct_us.get('p99', 0):.2f}"] for r in results]))
    _report_executor(args, ex)
    return 0


def _cmd_fabric_trace(args) -> int:
    from repro.harness.fabric import build_fabric_rig
    from repro.loadgen.flowgen import (
        FlowGenConfig,
        plan_flows,
        write_flow_trace,
    )

    fabric = build_fabric_rig(_platform(args.platform), args.preset,
                              args.stack, seed=args.seed)
    config = FlowGenConfig(pattern=args.pattern, load=args.load,
                           n_flows=args.flows, size_cdf=args.size_cdf)
    flows = plan_flows(config, fabric.host_groups(),
                       fabric.config.link_bandwidth_bps, seed=args.seed)
    text = write_flow_trace(flows)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"{len(flows)} flows written to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_fabric_dot(args) -> int:
    from repro.harness.fabric import build_fabric_rig

    fabric = build_fabric_rig(_platform(args.platform), args.preset,
                              args.stack, seed=args.seed)
    dot = fabric.wiring_dot()
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(dot + "\n")
        print(f"fabric wiring graph written to {args.output}")
    else:
        print(dot)
    return 0


def _cmd_profile(args) -> int:
    """cProfile one fixed-load run and print the top-N hotspots.

    The run goes through :func:`repro.harness.runner.run_fixed_load`
    directly (no executor, no worker processes) so the profile covers
    exactly the simulation hot path a sweep point pays for.
    """
    import cProfile
    import pstats
    from io import StringIO

    from repro.harness.runner import run_fixed_load

    config = _platform(args.preset)
    profiler = cProfile.Profile()
    profiler.enable()
    result = run_fixed_load(config, args.app, args.size, args.gbps,
                            n_packets=args.packets, seed=args.seed)
    profiler.disable()

    print(f"{args.app} {args.size}B @ {args.gbps:g} Gbps on "
          f"{result.label}: service {result.service_gbps:.2f} Gbps, "
          f"drop {result.drop_rate * 100:.2f}%")
    stream = StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    print(stream.getvalue().rstrip())
    if args.output:
        stats.dump_stats(args.output)
        print(f"raw profile written to {args.output}")
    return 0


def _cmd_apps(args) -> int:
    for name, (node_class, app_class, echoes) in sorted(
            APP_REGISTRY.items()):
        stack = "DPDK" if node_class.__name__ == "DpdkNode" else "kernel"
        echo = "echoes responses" if echoes else "receive-only"
        print(f"  {name:18s} {stack:6s} {app_class.__name__:16s} ({echo})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Userspace networking in a simulated host "
                    "(ISPASS 2024 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, with_app=True):
        """Attach the options shared by most subcommands."""
        if with_app:
            p.add_argument("app", choices=sorted(APP_REGISTRY))
            p.add_argument("--size", type=int, default=256,
                           help="frame size in bytes incl. CRC")
            p.add_argument("--proc-time-ns", type=float, default=None,
                           dest="proc_time_ns",
                           help="RXpTX processing interval")
        p.add_argument("--platform", default="gem5",
                       choices=sorted(PLATFORMS))
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--jobs", type=_positive_int,
                       default=int(os.environ.get("REPRO_JOBS", "1")),
                       help="worker processes for independent sweep "
                            "points (default: REPRO_JOBS or 1)")
        p.add_argument("--cache-dir", dest="cache_dir",
                       default=os.environ.get("REPRO_CACHE_DIR") or None,
                       help="on-disk result cache; unchanged points "
                            "replay for free (default: REPRO_CACHE_DIR)")
        p.add_argument("--warmup-cache", dest="warmup_cache",
                       default=os.environ.get("REPRO_WARMUP_CACHE") or None,
                       help="shared warm-up checkpoint cache; points "
                            "differing only in offered load restore one "
                            "post-warm-up snapshot instead of "
                            "re-simulating the warm-up (default: "
                            "REPRO_WARMUP_CACHE)")
        p.add_argument("--check-invariants", dest="check_invariants",
                       choices=("final", "strict", "off"), default=None,
                       help="conservation checking: 'final' asserts at "
                            "the end of each run (default), 'strict' "
                            "re-checks after every event, 'off' disables "
                            "(sets REPRO_CHECK_INVARIANTS)")

    p_run = sub.add_parser("run", help="one fixed-load run")
    common(p_run)
    p_run.add_argument("--gbps", type=float, default=10.0)
    p_run.add_argument("--packets", type=int, default=2000)
    p_run.add_argument("--trace", metavar="FILE", default=None,
                       help="export a structured event trace (JSONL) of "
                            "the run to FILE")
    p_run.set_defaults(func=_cmd_run)

    p_msb = sub.add_parser("msb", help="maximum sustainable bandwidth")
    common(p_msb)
    p_msb.add_argument("--max-gbps", type=float, default=70.0)
    p_msb.set_defaults(func=_cmd_msb)

    p_sweep = sub.add_parser("sweep", help="bandwidth vs drop curve")
    common(p_sweep)
    p_sweep.add_argument("--rates", default="5,15,25,35,45,55,65",
                         help="comma-separated offered rates in Gbps")
    p_sweep.add_argument("--packets", type=int, default=1500)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_mc = sub.add_parser("memcached", help="load a memcached server")
    common(p_mc, with_app=False)
    p_mc.add_argument("--kernel", action="store_true",
                      help="kernel-stack server (default: DPDK)")
    p_mc.add_argument("--rps", type=float, default=200_000.0)
    p_mc.add_argument("--requests", type=int, default=2000)
    p_mc.add_argument("--trace", metavar="FILE", default=None,
                      help="export a structured event trace (JSONL) of "
                           "the run to FILE")
    p_mc.set_defaults(func=_cmd_memcached)

    p_t1 = sub.add_parser("table1", help="print platform configurations")
    p_t1.set_defaults(func=_cmd_table1)

    p_apps = sub.add_parser("apps", help="list registered applications")
    p_apps.set_defaults(func=_cmd_apps)

    p_graph = sub.add_parser(
        "graph", help="emit a node's wiring graph as Graphviz DOT")
    p_graph.add_argument("app", choices=sorted(APP_REGISTRY))
    p_graph.add_argument("--platform", default="gem5",
                         choices=sorted(PLATFORMS))
    p_graph.add_argument("--seed", type=int, default=0)
    p_graph.add_argument("--loadgen", action="store_true",
                         help="include the attached EtherLoadGen")
    p_graph.add_argument("-o", "--output", metavar="FILE", default=None,
                         help="write DOT to FILE instead of stdout")
    p_graph.set_defaults(func=_cmd_graph)

    p_ckpt = sub.add_parser(
        "checkpoint", help="save/restore/info on warm-up checkpoints")
    ckpt_sub = p_ckpt.add_subparsers(dest="checkpoint_command",
                                     required=True)

    p_save = ckpt_sub.add_parser(
        "save", help="warm a node up, drain it, and checkpoint it")
    p_save.add_argument("app", choices=sorted(APP_REGISTRY))
    p_save.add_argument("--size", type=int, default=256,
                        help="frame size for the synthetic warm-up")
    p_save.add_argument("--platform", default="gem5",
                        choices=sorted(PLATFORMS))
    p_save.add_argument("--seed", type=int, default=0)
    p_save.add_argument("-o", "--output", metavar="FILE", required=True,
                        help="checkpoint file to write")
    p_save.set_defaults(func=_cmd_checkpoint_save)

    p_info = ckpt_sub.add_parser(
        "info", help="verify a checkpoint and summarise its contents")
    p_info.add_argument("file")
    p_info.set_defaults(func=_cmd_checkpoint_info)

    p_restore = ckpt_sub.add_parser(
        "restore",
        help="restore a saved checkpoint and verify the round trip")
    p_restore.add_argument("file")
    p_restore.set_defaults(func=_cmd_checkpoint_restore)

    p_fab = sub.add_parser(
        "fabric",
        help="multi-node switch fabrics with flow-level traffic")
    fab_sub = p_fab.add_subparsers(dest="fabric_command", required=True)

    def fabric_common(p, with_load=True):
        p.add_argument("preset", choices=sorted(FABRIC_PRESETS))
        p.add_argument("--stack", default="dpdk",
                       choices=("dpdk", "kernel"),
                       help="host networking stack at the leaves")
        if with_load:
            p.add_argument("--pattern", default="uniform",
                           choices=("uniform", "hotspot", "incast"))
            p.add_argument("--load", type=float, default=0.3,
                           help="offered load as a fraction of host "
                                "link bandwidth")
            p.add_argument("--flows", type=_positive_int, default=200,
                           help="number of flows to offer")
            p.add_argument("--size-cdf", dest="size_cdf", default="smoke",
                           choices=("smoke", "websearch", "datamining"),
                           help="empirical flow-size distribution")

    p_frun = fab_sub.add_parser(
        "run", help="one open-loop flow run through a fabric")
    fabric_common(p_frun)
    common(p_frun, with_app=False)
    p_frun.add_argument("--switch-drops", action="store_true",
                        dest="switch_drops",
                        help="also print per-switch drop causes")
    p_frun.add_argument("--trace", metavar="FILE", default=None,
                        help="export a structured event trace (JSONL) of "
                             "the run to FILE")
    p_frun.add_argument("--shards", type=_positive_int, default=1,
                        help="split the simulation across N processes "
                             "with synchronized virtual time (flow "
                             "digest is identical to --shards 1)")
    p_frun.set_defaults(func=_cmd_fabric_run)

    p_fsweep = fab_sub.add_parser(
        "sweep", help="FCT/drop curve over offered loads")
    fabric_common(p_fsweep)
    common(p_fsweep, with_app=False)
    p_fsweep.add_argument("--loads", default="0.2,0.4,0.6,0.8",
                          help="comma-separated offered load fractions")
    p_fsweep.set_defaults(func=_cmd_fabric_sweep)

    p_ftrace = fab_sub.add_parser(
        "trace", help="emit a flow trace (offline, no simulation)")
    fabric_common(p_ftrace)
    p_ftrace.add_argument("--platform", default="gem5",
                          choices=sorted(PLATFORMS))
    p_ftrace.add_argument("--seed", type=int, default=0)
    p_ftrace.add_argument("-o", "--output", metavar="FILE", default=None,
                          help="write the trace to FILE instead of stdout")
    p_ftrace.set_defaults(func=_cmd_fabric_trace)

    p_fdot = fab_sub.add_parser(
        "dot", help="emit the fabric wiring graph as Graphviz DOT")
    fabric_common(p_fdot, with_load=False)
    p_fdot.add_argument("--platform", default="gem5",
                        choices=sorted(PLATFORMS))
    p_fdot.add_argument("--seed", type=int, default=0)
    p_fdot.add_argument("-o", "--output", metavar="FILE", default=None,
                        help="write DOT to FILE instead of stdout")
    p_fdot.set_defaults(func=_cmd_fabric_dot)

    p_prof = sub.add_parser(
        "profile",
        help="cProfile one fixed-load run and print the hotspots")
    p_prof.add_argument("preset", choices=sorted(PLATFORMS),
                        help="platform preset to profile")
    p_prof.add_argument("--app", choices=sorted(APP_REGISTRY),
                        default="testpmd")
    p_prof.add_argument("--size", type=int, default=256,
                        help="frame size in bytes incl. CRC")
    p_prof.add_argument("--gbps", type=float, default=25.0)
    p_prof.add_argument("--packets", type=int, default=600)
    p_prof.add_argument("--seed", type=int, default=0)
    p_prof.add_argument("--top", type=_positive_int, default=25,
                        help="number of hotspot rows to print")
    p_prof.add_argument("--sort", default="cumulative",
                        choices=("cumulative", "tottime", "calls"))
    p_prof.add_argument("-o", "--output", metavar="FILE", default=None,
                        help="also dump raw pstats data to FILE")
    p_prof.set_defaults(func=_cmd_profile)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _apply_diagnostics_env(args)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
