"""Linux kernel network stack model.

The baseline the paper compares DPDK against: interrupt-driven reception
through a NAPI-style driver, sk_buff allocation, protocol processing in
softirq context, socket queues, and syscall-crossing copies to userspace.
Every overhead the paper names (§II.A) has an explicit cost here:
"frequent system calls and context switches ... frequent buffer copies
within the kernel software stack and between kernel and userspace buffers
... extended latency associated with interrupt processing".
"""

from repro.kernelstack.stack import KernelStackModel, StackWork
from repro.kernelstack.socket import UdpSocketModel
from repro.kernelstack.driver import InterruptNicDriver

__all__ = [
    "KernelStackModel",
    "StackWork",
    "UdpSocketModel",
    "InterruptNicDriver",
]
