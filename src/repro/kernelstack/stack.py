"""Per-packet kernel-stack work construction.

Translates the kernel path into :class:`~repro.cpu.core.Work` objects
against real address regions, so the kernel stack's larger working set
("larger than 1MiB", §VII.C) emerges from its buffer and code footprints:

- *sk_buff pool*: packet data lands in a large circulating buffer area
  (driver rings cycle through far more memory than a DPDK mempool);
- *kernel text*: protocol processing touches a sizeable instruction
  footprint every packet;
- *copies*: RX data is copied kernel->user (and TX user->kernel), reading
  and writing every payload line — DPDK's zero-copy advantage is the
  absence of exactly these accesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cpu.core import Work
from repro.cpu.kernels import KernelCosts, LINE_SIZE, lines_covering
from repro.mem.address import AddressSpace, Region
from repro.sim.ports import KIND_STACK, ResponsePort


@dataclass
class StackWork:
    """Work split into kernel-context and app-context portions."""

    kernel: Work
    app: Work


class KernelStackModel:
    """Builds kernel-path work for RX and TX packets."""

    # Footprints chosen so the kernel working set exceeds 1MiB (paper
    # §VII.C: iperf improves up to a 4MiB L2).
    SKB_POOL_BYTES = 2 * 1024 * 1024
    KERNEL_TEXT_BYTES = 768 * 1024
    TEXT_LINES_PER_PACKET = 22       # icache footprint touched per packet
    USER_BUFFER_BYTES = 512 * 1024

    def __init__(self, address_space: AddressSpace,
                 costs: KernelCosts = KernelCosts(),
                 name: str = "kernel.stack") -> None:
        self.costs = costs
        self.name = name
        # The interrupt driver binds here; the stack serves it work costs.
        self.driver_side = ResponsePort(self, "driver_side", KIND_STACK)
        self.skb_pool: Region = address_space.allocate(
            "kernel.skb_pool", self.SKB_POOL_BYTES)
        self.kernel_text: Region = address_space.allocate(
            "kernel.text", self.KERNEL_TEXT_BYTES)
        self.user_buffer: Region = address_space.allocate(
            "kernel.user_buf", self.USER_BUFFER_BYTES)
        self._skb_cursor = 0
        self._text_cursor = 0
        self._user_cursor = 0
        self.skb_allocs = 0

    # -- buffer management ----------------------------------------------------

    def alloc_skb(self, nbytes: int) -> int:
        """Next sk_buff data address; the pool circulates, giving the
        kernel stack its large data working set."""
        skb_bytes = max(256, nbytes)
        addr = self.skb_pool.wrap_addr(self._skb_cursor)
        self._skb_cursor += skb_bytes
        self.skb_allocs += 1
        return addr

    def _text_lines(self, count: int) -> List[int]:
        """Instruction lines touched by one trip through the stack.

        The protocol path walks a long call chain through the kernel text
        region, cycling it with a periodic pattern: the full region's
        footprint competes with packet data for L2 capacity, which is why
        iperf keeps improving until the L2 holds the whole kernel working
        set (paper Fig 11c).
        """
        lines = []
        for _ in range(count):
            lines.append(self.kernel_text.wrap_addr(self._text_cursor))
            self._text_cursor = (self._text_cursor + LINE_SIZE) \
                % self.KERNEL_TEXT_BYTES
        return lines

    def _user_addr(self, nbytes: int) -> int:
        addr = self.user_buffer.wrap_addr(self._user_cursor)
        self._user_cursor += nbytes
        return addr

    # -- checkpoint support ------------------------------------------------

    def serialize_state(self) -> dict:
        return {
            "skb_cursor": self._skb_cursor,
            "text_cursor": self._text_cursor,
            "user_cursor": self._user_cursor,
            "skb_allocs": self.skb_allocs,
        }

    def deserialize_state(self, state: dict) -> None:
        self._skb_cursor = state["skb_cursor"]
        self._text_cursor = state["text_cursor"]
        self._user_cursor = state["user_cursor"]
        self.skb_allocs = state["skb_allocs"]

    # -- work builders ----------------------------------------------------------

    def rx_work(self, skb_addr: int, payload_bytes: int,
                batch_size: int = 1, deliver_to_user: bool = True) -> StackWork:
        """Kernel + app work for receiving one packet.

        ``batch_size`` is how many packets share one interrupt + wakeup
        (NAPI coalescing); the per-batch costs are amortized accordingly.
        """
        costs = self.costs
        batch = max(1, batch_size)
        amortized = (costs.interrupt_cycles
                     + costs.context_switch_cycles) // batch
        kernel_cycles = (amortized
                         + costs.softirq_per_packet_cycles
                         + costs.skb_alloc_cycles
                         + costs.socket_dequeue_cycles)
        payload_lines = lines_covering(skb_addr, payload_bytes)
        kernel = Work(
            compute_cycles=kernel_cycles,
            ifetch=self._text_lines(self.TEXT_LINES_PER_PACKET),
            reads=payload_lines,           # checksum / protocol inspection
            writes=[skb_addr],             # skb metadata update
        )
        app_reads: List[int] = []
        app_writes: List[int] = []
        app_cycles = 0
        if deliver_to_user:
            # recvmsg: one syscall pair (amortized over the batch for a
            # busy server looping on the socket) + copy_to_user.
            app_cycles = (costs.syscall_cycles // batch
                          + costs.copy_cycles_per_line * len(payload_lines))
            user_addr = self._user_addr(payload_bytes)
            app_reads = payload_lines
            app_writes = lines_covering(user_addr, payload_bytes)
        app = Work(compute_cycles=app_cycles, reads=app_reads,
                   writes=app_writes)
        return StackWork(kernel=kernel, app=app)

    def tx_work(self, payload_bytes: int, batch_size: int = 1) -> StackWork:
        """App + kernel work for sending one packet (sendmsg path)."""
        costs = self.costs
        batch = max(1, batch_size)
        skb_addr = self.alloc_skb(payload_bytes)
        payload_lines = lines_covering(skb_addr, payload_bytes)
        user_addr = self._user_addr(payload_bytes)
        user_lines = lines_covering(user_addr, payload_bytes)
        app = Work(
            compute_cycles=(costs.syscall_cycles // batch
                            + costs.copy_cycles_per_line * len(user_lines)),
            reads=user_lines,
            writes=payload_lines,          # copy_from_user into the skb
        )
        kernel = Work(
            compute_cycles=(costs.softirq_per_packet_cycles // 2
                            + costs.skb_alloc_cycles),
            ifetch=self._text_lines(self.TEXT_LINES_PER_PACKET // 2),
            reads=[skb_addr],
            writes=[skb_addr],
        )
        return StackWork(kernel=kernel, app=app)
