"""The interrupt-driven (kernel) NIC driver.

The counterpart of the poll-mode driver: enables the NIC's receive
interrupt, supplies sk_buff addresses for incoming DMA, and hands
completed descriptors to a NAPI-style processing loop owned by the
application model.  It also programs the descriptor writeback threshold —
in kernel mode the threshold registers *are* set (paper §III.A.3), so the
baseline gem5 NIC behaves correctly here.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.kernelstack.stack import KernelStackModel
from repro.net.packet import Packet
from repro.nic.descriptors import RxDescriptor
from repro.nic.i8254x import I8254xNic, ICR_RXT0, REG_IMC, REG_IMS
from repro.sim.ports import (
    KIND_APP,
    KIND_DRIVER,
    KIND_STACK,
    RequestPort,
    ResponsePort,
)


class InterruptNicDriver:
    """Binds the kernel stack to the NIC model."""

    def __init__(self, nic: I8254xNic, stack: KernelStackModel) -> None:
        self.nic = nic
        self.stack = stack
        self.name = f"{nic.name}.e1000"
        self.interrupts_taken = 0
        self._rx_handler: Optional[Callable[[int], None]] = None
        self.device_port = RequestPort(self, "device_port", KIND_DRIVER)
        self.device_port.bind(nic.driver_side)
        self.stack_port = RequestPort(self, "stack_port", KIND_STACK)
        self.stack_port.bind(stack.driver_side)
        self.app_side = ResponsePort(
            self, "app_side", KIND_APP,
            hint="install a kernel-stack application on this driver "
                 "(node.install_app)")
        nic.rx_buffer_source = self._rx_buffer_for
        nic.rx_notify = self._on_rx_writeback
        nic.bind_driver("e1000")
        nic.write_reg(REG_IMS, ICR_RXT0)   # enable RX interrupts

    def set_rx_handler(self, handler: Callable[[int], None]) -> None:
        """``handler(count)`` runs in interrupt context when descriptors
        are written back (the NAPI schedule point)."""
        self._rx_handler = handler

    def _rx_buffer_for(self, packet: Packet) -> int:
        return self.stack.alloc_skb(packet.wire_len)

    def _on_rx_writeback(self, count: int) -> None:
        self.interrupts_taken += 1
        if self._rx_handler is not None:
            self._rx_handler(count)

    # -- NAPI-style harvesting -------------------------------------------------

    def harvest(self, budget: int) -> List[RxDescriptor]:
        """Collect up to ``budget`` completed descriptors and replenish."""
        descs = self.nic.rx_ring.harvest(budget)
        if descs:
            self.nic.rx_replenish(len(descs))
        return descs

    def transmit(self, skb_addr: int, packet: Packet) -> bool:
        """Queue a packet for TX DMA."""
        return self.nic.tx_enqueue(skb_addr, packet)

    def irq_disable(self) -> None:
        """Mask RX interrupts while NAPI polls (interrupt mitigation)."""
        self.nic.write_reg(REG_IMC, ICR_RXT0)

    def irq_enable(self) -> None:
        """Unmask RX interrupts (NAPI poll round finished)."""
        self.nic.write_reg(REG_IMS, ICR_RXT0)

    # -- checkpoint support ------------------------------------------------

    def serialize_state(self) -> dict:
        return {"interrupts_taken": self.interrupts_taken}

    def deserialize_state(self, state: dict) -> None:
        self.interrupts_taken = state["interrupts_taken"]
