"""Socket buffer model.

A bounded receive queue between softirq protocol processing and the
application's recv path.  When the application cannot keep up, the socket
buffer overflows and packets are dropped inside the host — invisible to
the NIC's drop FSM, visible in the loadgen's end-to-end drop accounting,
matching how kernel-stack drops actually manifest.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.net.packet import Packet


class UdpSocketModel:
    """A UDP socket's receive queue (SO_RCVBUF in packets)."""

    def __init__(self, rcvbuf_packets: int = 256) -> None:
        if rcvbuf_packets < 1:
            raise ValueError("receive buffer must hold at least one packet")
        self.rcvbuf_packets = rcvbuf_packets
        self._queue: Deque[Packet] = deque()
        self.delivered = 0
        self.overflow_drops = 0

    @property
    def queued(self) -> int:
        """Packets waiting in the receive queue."""
        return len(self._queue)

    @property
    def full(self) -> bool:
        """True when no further item can be accepted."""
        return len(self._queue) >= self.rcvbuf_packets

    def enqueue(self, packet: Packet) -> bool:
        """Protocol layer delivers a packet; False on overflow drop."""
        if self.full:
            self.overflow_drops += 1
            return False
        self._queue.append(packet)
        return True

    def recv(self) -> Optional[Packet]:
        """Application receives one packet (non-blocking)."""
        if not self._queue:
            return None
        self.delivered += 1
        return self._queue.popleft()
