"""repro — Userspace networking in a simulated host.

A Python reproduction of "Userspace Networking in gem5" (ISPASS 2024):
a discrete-event host-network simulator with a DPDK-like userspace stack,
a kernel-stack baseline, the EtherLoadGen hardware load generator, the
paper's six-application benchmark suite, and a harness regenerating every
table and figure of its evaluation.

Top-level convenience imports cover the most common entry points; the
subpackages hold the full API:

- :mod:`repro.system` — platform presets and node builders
- :mod:`repro.harness` — runs, MSB search, experiments
- :mod:`repro.apps` — the benchmark applications
- :mod:`repro.loadgen` — EtherLoadGen
"""

from repro.harness.msb import find_msb
from repro.harness.runner import run_fixed_load, run_memcached
from repro.system.node import DpdkNode, KernelNode
from repro.system.presets import altra, gem5_baseline, gem5_default

__version__ = "1.0.0"

__all__ = [
    "find_msb",
    "run_fixed_load",
    "run_memcached",
    "DpdkNode",
    "KernelNode",
    "altra",
    "gem5_baseline",
    "gem5_default",
    "__version__",
]
