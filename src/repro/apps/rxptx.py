"""RXpTX — configurable processing-interval forwarder.

"RXpTX receives a burst of packets from NIC, waits for a processing
interval, and transmits them over the network.  Changing processing time
can model network functions with different DMA to core use distances.
RXpTX can be used to evaluate the performance of various policies for
Direct Cache Access (DCA)." (paper §V)

The processing interval is a busy-wait *per burst* (a fixed number of
spin iterations, so its wall time scales inversely with core frequency).
Longer intervals delay the consumption of DMA-ed packet data — exactly
the DMA-to-core use distance Fig 13 sweeps to expose DCA partition leaks.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.base import DpdkApp
from repro.cpu.core import Work
from repro.dpdk.pmd import RxMbuf
from repro.net.packet import Packet

#: Reference frequency at which the configured interval is exact: the
#: spin-loop iteration count is ``proc_time_ns * 3`` (Table I: 3GHz).
NOMINAL_FREQ_GHZ = 3.0


class RxPTx(DpdkApp):
    """RX burst -> spin for proc_time -> TX burst."""

    def __init__(self, *args, proc_time_ns: float = 10.0, **kwargs) -> None:
        if proc_time_ns < 0:
            raise ValueError("processing time cannot be negative")
        super().__init__(*args, **kwargs)
        self.proc_time_ns = proc_time_ns
        self._proc_cycles = round(proc_time_ns * NOMINAL_FREQ_GHZ)
        self._burst_pending = False

    def frame_work(self, frame: RxMbuf) -> Optional[Work]:
        # The wait happens once per burst: charge it to the first frame.
        """Per-packet application work for one received frame."""
        if self._burst_pending:
            self._burst_pending = False
            return Work(compute_cycles=self._proc_cycles)
        return None

    def _poll(self) -> None:
        self._burst_pending = True
        super()._poll()

    def transform(self, frame: RxMbuf) -> Optional[Packet]:
        """Outgoing packet for this frame (None drops it)."""
        return frame.packet.response_to()

    def serialize_state(self) -> dict:
        state = super().serialize_state()
        state["burst_pending"] = self._burst_pending
        return state

    def deserialize_state(self, state: dict) -> None:
        super().deserialize_state(state)
        self._burst_pending = state["burst_pending"]
