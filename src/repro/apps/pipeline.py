"""Pipeline-mode DPDK application (paper §II.A).

"Pipeline mode: where the cores pass packets between each other via a
user-level ring buffer for efficient packet processing."

An RX core runs the PMD receive loop and enqueues frames into an
``rte_ring``; a worker core dequeues bursts, does the packet processing
(payload touch, like a deep network function stage), and transmits.  Each
core has its own timeline; they share the memory hierarchy (same-socket
cores behind a shared LLC).

This is the paper's alternative to run-to-completion mode and
demonstrates the framework's ``rte_ring`` in its intended role.
"""

from __future__ import annotations

from typing import List

from repro.cpu.core import CoreModel, Work
from repro.cpu.kernels import KernelCosts, touch_lines
from repro.dpdk.pmd import E1000Pmd, RxMbuf
from repro.dpdk.ring import RteRing
from repro.mem.address import AddressSpace
from repro.sim.checkpoint import CheckpointError
from repro.sim.ports import KIND_APP, RequestPort
from repro.sim.simobject import SimObject, Simulation
from repro.sim.ticks import ns_to_ticks

from repro.apps.base import POLL_REACTION_NS
from repro.apps.touchfwd import (
    TOUCH_CYCLES_PER_LINE,
    TOUCH_INORDER_PENALTY,
    TOUCH_MAX_MLP,
)

RING_ENQ_DEQ_CYCLES = 25   # per-packet rte_ring enqueue+dequeue pair


class PipelineForwarder(SimObject):
    """Two-stage pipeline: RX core -> rte_ring -> worker core -> TX.

    ``touch_payload`` selects the worker stage's depth: False makes the
    worker a shallow forwarder (testpmd-like), True a deep one
    (touchfwd-like).
    """

    burst_size = 32

    def __init__(self, sim: Simulation, name: str, pmd: E1000Pmd,
                 rx_core: CoreModel, worker_core: CoreModel,
                 costs: KernelCosts, address_space: AddressSpace,
                 ring_size: int = 1024,
                 touch_payload: bool = False) -> None:
        super().__init__(sim, name)
        self.pmd = pmd
        self.rx_core = rx_core
        self.worker_core = worker_core
        self.costs = costs
        self.ring = RteRing(f"{name}.ring", ring_size)
        self.touch_payload = touch_payload
        region = address_space.allocate(f"{name}.text", 16 * 1024)
        self._code = [region.addr(i * 64) for i in range(8)]
        self._rx_event = self.make_event(self._rx_poll, "rx_poll")
        self._worker_event = self.make_event(self._worker_poll,
                                             "worker_poll")
        self._running = False
        self._rx_idle = True
        self._worker_idle = True
        self.packets_received = 0
        self.packets_processed = 0
        self.packets_forwarded = 0
        self.ring_full_drops = 0
        self.tx_ring_drops = 0
        # Lifetime accounting for the conservation layer: every frame the
        # RX stage harvests is forwarded, absorbed (ring/TX-ring drop),
        # queued in the rte_ring, or held by one of the two stages.
        self.total_processed = 0
        self.total_forwarded = 0
        self.total_absorbed = 0
        self._holding = 0
        pmd.nic.rx_notify = self._rx_hint
        self.driver_port = RequestPort(self, "driver_port", KIND_APP)
        self.driver_port.bind(pmd.app_side)
        self._register_invariants()

    def _register_invariants(self) -> None:
        app = self

        def ring_conservation(final: bool):
            return app.ring.invariant_failures()

        def conservation(final: bool):
            fails = []
            accounted = (app.total_forwarded + app.total_absorbed
                         + app.ring.count + app._holding)
            if app.total_processed != accounted:
                fails.append(
                    f"harvested {app.total_processed} != forwarded "
                    f"{app.total_forwarded} + absorbed "
                    f"{app.total_absorbed} + ring {app.ring.count} + "
                    f"holding {app._holding}")
            harvested = app.pmd.nic.rx_ring.harvested_total
            if app.total_processed != harvested:
                fails.append(
                    f"pipeline harvested {app.total_processed} packets "
                    f"but the RX ring released {harvested}")
            return fails

        self.sim.invariants.register(
            f"{self.name}.ring-conservation", ring_conservation,
            strict=True)
        self.sim.invariants.register(
            f"{self.name}.packet-conservation", conservation, strict=True)

    # -- lifecycle ---------------------------------------------------------

    def start(self, when: int = 0) -> None:
        """Begin operation at tick ``when`` (default: now)."""
        self._running = True
        self._rx_idle = False
        self._worker_idle = False
        start = max(when, self.now)
        self.schedule(self._rx_event, start)
        self.schedule(self._worker_event, start)

    def stop(self) -> None:
        """Stop operation; pending events are cancelled."""
        self._running = False
        for event in (self._rx_event, self._worker_event):
            if event.scheduled:
                self.deschedule(event)

    def _rx_hint(self, count: int) -> None:
        if self._running and self._rx_idle and not self._rx_event.scheduled:
            self._rx_idle = False
            self.schedule_after(self._rx_event,
                                ns_to_ticks(POLL_REACTION_NS))

    # -- RX stage (core 0) ---------------------------------------------------

    def _rx_poll(self) -> None:
        if not self._running:
            return
        frames = self.pmd.rx_burst(self.burst_size)
        if not frames:
            self._rx_idle = True
            return
        self.packets_received += len(frames)
        self.total_processed += len(frames)
        total_ns = self.rx_core.execute(Work(
            compute_cycles=self.costs.pmd_rx_burst_cycles,
            ifetch=self._code[:4]))
        for frame in frames:
            total_ns += self.rx_core.execute(Work(
                compute_cycles=(self.costs.pmd_per_packet_cycles
                                + RING_ENQ_DEQ_CYCLES),
                reads=[frame.desc_addr],
                writes=[frame.mbuf.buffer_addr]))
        accepted = self.ring.enqueue_burst(frames)
        for frame in frames[accepted:]:
            # Worker backpressure: the RX stage drops at the ring.
            self.ring_full_drops += 1
            self.total_absorbed += 1
            self.pmd.free(frame)
        if self.sim.tracer.enabled:
            self.trace("app", "rx_stage", harvested=len(frames),
                       enqueued=accepted)
        self.call_after(ns_to_ticks(total_ns), self._rx_resume,
                        name="rx_resume")
        self._wake_worker()

    def _rx_resume(self) -> None:
        if self._running:
            self._rx_poll()

    # -- worker stage (core 1) -------------------------------------------------

    def _wake_worker(self) -> None:
        if (self._running and self._worker_idle
                and not self._worker_event.scheduled):
            self._worker_idle = False
            self.schedule_after(self._worker_event,
                                ns_to_ticks(POLL_REACTION_NS))

    def _worker_poll(self) -> None:
        if not self._running:
            return
        frames: List[RxMbuf] = self.ring.dequeue_burst(self.burst_size)
        if not frames:
            self._worker_idle = True
            return
        total_ns = self.worker_core.execute(Work(
            compute_cycles=self.costs.pmd_tx_burst_cycles,
            ifetch=self._code[4:]))
        for frame in frames:
            if self.touch_payload:
                lines = touch_lines(frame.mbuf.data_addr,
                                    frame.packet.wire_len)
                work = Work(
                    compute_cycles=(self.costs.app_base_cycles
                                    + RING_ENQ_DEQ_CYCLES
                                    + TOUCH_CYCLES_PER_LINE * len(lines)),
                    reads=lines,
                    max_mlp=TOUCH_MAX_MLP,
                    inorder_penalty=TOUCH_INORDER_PENALTY)
            else:
                work = Work(
                    compute_cycles=(self.costs.app_base_cycles
                                    + RING_ENQ_DEQ_CYCLES),
                    reads=[frame.mbuf.data_addr],
                    writes=[frame.mbuf.data_addr])
            total_ns += self.worker_core.execute(work)
            frame.packet = frame.packet.response_to()
            frame.packet.meta["mbuf"] = frame.mbuf
        self.packets_processed += len(frames)
        self._holding += len(frames)
        self.call_after(ns_to_ticks(total_ns),
                        lambda out=frames: self._worker_finish(out),
                        name="worker_finish")

    def _worker_finish(self, frames: List[RxMbuf]) -> None:
        self._holding -= len(frames)
        sent = self.pmd.tx_burst(frames)
        self.packets_forwarded += sent
        self.total_forwarded += sent
        for frame in frames[sent:]:
            self.tx_ring_drops += 1
            self.total_absorbed += 1
            self.pmd.free(frame)
        if self._running:
            self._worker_poll()

    def on_stats_reset(self) -> None:
        """Clear measurement counters after a stats reset."""
        self.packets_received = 0
        self.packets_processed = 0
        self.packets_forwarded = 0
        self.ring_full_drops = 0
        self.tx_ring_drops = 0

    # -- checkpoint support ------------------------------------------------

    def serialize_state(self) -> dict:
        """Both stages' flags/counters plus the inter-core ring (which
        enforces its own emptiness — queued frames are live packets)."""
        if self._holding:
            raise CheckpointError(
                f"{self.name} worker holds {self._holding} packets "
                f"mid-burst; checkpoints require a quiescent node")
        return {
            "running": self._running,
            "rx_idle": self._rx_idle,
            "worker_idle": self._worker_idle,
            "packets_received": self.packets_received,
            "packets_processed": self.packets_processed,
            "packets_forwarded": self.packets_forwarded,
            "ring_full_drops": self.ring_full_drops,
            "tx_ring_drops": self.tx_ring_drops,
            "total_processed": self.total_processed,
            "total_forwarded": self.total_forwarded,
            "total_absorbed": self.total_absorbed,
            "ring": self.ring.serialize_state(),
        }

    def deserialize_state(self, state: dict) -> None:
        self._running = state["running"]
        self._rx_idle = state["rx_idle"]
        self._worker_idle = state["worker_idle"]
        self.packets_received = state["packets_received"]
        self.packets_processed = state["packets_processed"]
        self.packets_forwarded = state["packets_forwarded"]
        self.ring_full_drops = state["ring_full_drops"]
        self.tx_ring_drops = state["tx_ring_drops"]
        self.total_processed = state["total_processed"]
        self.total_forwarded = state["total_forwarded"]
        self.total_absorbed = state["total_absorbed"]
        self.ring.deserialize_state(state["ring"])
