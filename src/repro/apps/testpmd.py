"""TestPMD — the unmodified testpmd forwarding application.

"TestPMD can receive packets from NIC in configurable batch sizes, swap
their source and destination MAC addresses (if macswap forwarding mode is
enabled), and then enqueue them in the TX ring buffer for transmission.
TestPMD is a shallow network function, meaning that it only uses the L2
header (14 bytes) to make the forwarding decision." (paper §V)
"""

from __future__ import annotations

from typing import Optional

from repro.apps.base import DpdkApp
from repro.cpu.core import Work
from repro.dpdk.pmd import RxMbuf
from repro.net.packet import Packet

FORWARD_MODES = ("io", "macswap")


class TestPmd(DpdkApp):
    """Shallow L2 forwarder with io/macswap modes."""

    def __init__(self, *args, forward_mode: str = "macswap", **kwargs) -> None:
        if forward_mode not in FORWARD_MODES:
            raise ValueError(
                f"unknown forward mode {forward_mode!r}; "
                f"expected one of {FORWARD_MODES}")
        super().__init__(*args, **kwargs)
        self.forward_mode = forward_mode

    def frame_work(self, frame: RxMbuf) -> Optional[Work]:
        """Per-packet application work for one received frame."""
        if self.forward_mode == "io":
            return None   # pure descriptor forwarding, no header rewrite
        # macswap: read + rewrite the L2 header (one line).
        return Work(
            compute_cycles=self.costs.app_base_cycles,
            reads=[frame.mbuf.data_addr],
            writes=[frame.mbuf.data_addr],
        )

    def transform(self, frame: RxMbuf) -> Optional[Packet]:
        """Outgoing packet for this frame (None drops it)."""
        if self.forward_mode == "io":
            return frame.packet
        return frame.packet.response_to()   # MACs swapped, timestamp echoed
