"""MemcachedKernel — the kernel-stack key-value store.

"An in-memory key-value store implemented using the memcached library and
Linux POSIX APIs ... MemcachedKernel is not a DPDK application, we provide
it for performance comparison of DPDK and kernel network stacks."
(paper §V)

Every request pays the full kernel RX path (interrupt/softirq/copy via
:class:`KernelStackModel`), the application-level parse + hash work, and
the kernel TX path for the response.
"""

from __future__ import annotations

from repro.apps.base import KernelNetApp
from repro.cpu.core import Work
from repro.kvstore.protocol import (
    GetRequest,
    GetResponse,
    SetResponse,
    decode_request,
    encode_response,
)
from repro.kvstore.store import KvStore
from repro.net.headers import build_udp_frame, parse_udp_frame
from repro.nic.descriptors import RxDescriptor


class MemcachedKernel(KernelNetApp):
    """KV store server over UDP sockets."""

    def __init__(self, *args, store: KvStore, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.store = store
        self.requests_served = 0
        self.parse_errors = 0

    def handle_packet(self, desc: RxDescriptor, batch_size: int) -> float:
        """Application-level processing; returns extra ns."""
        packet = desc.packet
        try:
            _ip, _udp, payload = parse_udp_frame(packet)
            request = decode_request(payload)
        except (ValueError, TypeError):
            self.parse_errors += 1
            return 0.0
        if isinstance(request, GetRequest):
            value, footprint = self.store.get(request.key)
            response = GetResponse(request_id=request.request_id,
                                   hit=value is not None,
                                   value=value or b"")
        else:
            footprint = self.store.set(request.key, request.value)
            response = SetResponse(request_id=request.request_id)
        self.requests_served += 1
        encoded = encode_response(response)

        # Application-level request processing: the memcached library's
        # libevent dispatch + connection state machine on top of the
        # request logic itself.
        app_ns = self.core.execute(Work(
            compute_cycles=(self.costs.memcached_request_cycles
                            + self.costs.memcached_event_loop_cycles),
            reads=footprint.value_lines,
            dependent_reads=footprint.dependent_reads,
        ))

        # Response: sendmsg through the kernel TX path, then NIC DMA.
        tx = self.stack.tx_work(len(encoded), batch_size=batch_size)
        app_ns += self.core.execute(tx.app)
        app_ns += self.core.execute(tx.kernel)
        response_packet = build_udp_frame(
            src_mac=packet.dst, dst_mac=packet.src,
            src_ip=0x0A000002, dst_ip=0x0A000001,
            src_port=11211, dst_port=40000,
            payload=encoded)
        response_packet.request_id = packet.request_id
        response_packet.ts_tx = packet.ts_tx
        response_packet.meta.update(packet.meta)
        skb_addr = self.stack.alloc_skb(response_packet.wire_len)
        if self.driver.transmit(skb_addr, response_packet):
            self.total_responses += 1
        return app_ns

    def on_stats_reset(self) -> None:
        """Clear measurement counters after a stats reset."""
        super().on_stats_reset()
        self.requests_served = 0

    def serialize_state(self) -> dict:
        """The store rides along with the app (see MemcachedDpdk)."""
        state = super().serialize_state()
        state["requests_served"] = self.requests_served
        state["parse_errors"] = self.parse_errors
        state["store"] = self.store.serialize_state()
        return state

    def deserialize_state(self, state: dict) -> None:
        super().deserialize_state(state)
        self.requests_served = state["requests_served"]
        self.parse_errors = state["parse_errors"]
        self.store.deserialize_state(state["store"])
