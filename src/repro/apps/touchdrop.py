"""TouchDrop — RX-only deep packet touch.

"TouchDrop is a variation of TouchFwd that does not implement the
transmission phase.  TouchDrop can be used to evaluate the performance of
end-host packet reception." (paper §V)

Note the paper excludes TouchDrop from MSB-based results "as the drop rate
of TouchDrop is always 100%" — every packet is consumed, none returns to
the load generator.  Its reception performance is read from the app's
processed-packet counter instead.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.base import DpdkApp
from repro.apps.touchfwd import (
    TOUCH_CYCLES_PER_LINE,
    TOUCH_INORDER_PENALTY,
    TOUCH_MAX_MLP,
)
from repro.cpu.core import Work
from repro.cpu.kernels import touch_lines
from repro.dpdk.pmd import RxMbuf
from repro.net.packet import Packet


class TouchDrop(DpdkApp):
    """Touch header + payload, then drop."""

    def frame_work(self, frame: RxMbuf) -> Optional[Work]:
        """Per-packet application work for one received frame."""
        payload_lines = touch_lines(frame.mbuf.data_addr,
                                    frame.packet.wire_len)
        return Work(
            compute_cycles=(self.costs.app_base_cycles
                            + TOUCH_CYCLES_PER_LINE * len(payload_lines)),
            reads=payload_lines,
            max_mlp=TOUCH_MAX_MLP,
            inorder_penalty=TOUCH_INORDER_PENALTY,
        )

    def transform(self, frame: RxMbuf) -> Optional[Packet]:
        """Outgoing packet for this frame (None drops it)."""
        return None   # no transmission phase
