"""Application base classes.

:class:`DpdkApp` is the run-to-completion loop of §II.A: "(1) retrieve RX
packets through Polling Mode Driver (PMD) RX API, (2) process packets on
the same logical core, (3) send pending packets through the PMD TX API."
The loop runs on one simulated core; per-packet work is charged against
the memory hierarchy through the core model.

:class:`KernelNetApp` is the interrupt-driven counterpart: a NAPI-style
harvest loop with softirq protocol processing and socket delivery, using
the :mod:`repro.kernelstack` cost model.

A note on poll scheduling: a real PMD spins continuously.  Simulating
every empty poll iteration would flood the event queue, so when the RX
ring is empty the app parks and is re-armed by the NIC's descriptor
writeback — with a small reaction delay standing in for the partial poll
iteration in flight.  This changes nothing observable: a spinning core is
busy-idle either way, and the reaction delay preserves poll-loop latency.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cpu.core import CoreModel, Work
from repro.cpu.kernels import KernelCosts
from repro.dpdk.pmd import E1000Pmd, RxMbuf
from repro.kernelstack.driver import InterruptNicDriver
from repro.kernelstack.stack import KernelStackModel
from repro.mem.address import AddressSpace
from repro.net.packet import Packet
from repro.sim.checkpoint import CheckpointError
from repro.sim.event_queue import EventPool, batching_enabled
from repro.sim.ports import KIND_APP, RequestPort
from repro.sim.simobject import SimObject, Simulation
from repro.sim.ticks import ns_to_ticks

POLL_REACTION_NS = 25.0   # partial poll iteration when traffic resumes


class DpdkApp(SimObject):
    """Run-to-completion DPDK application on one core."""

    #: rx_burst size; testpmd's default burst is 32 packets.
    burst_size = 32
    #: Distinct instruction lines in the hot loop (small: DPDK apps are
    #: L1I-resident, which is why they show no L1 sensitivity in Fig 10).
    code_lines = 6

    def __init__(self, sim: Simulation, name: str, pmd: E1000Pmd,
                 core: CoreModel, costs: KernelCosts,
                 address_space: AddressSpace) -> None:
        super().__init__(sim, name)
        self.pmd = pmd
        self.core = core
        self.costs = costs
        region = address_space.allocate(f"{name}.text", 16 * 1024)
        self._code = [region.addr(i * 64) for i in range(self.code_lines)]
        self._poll_event = self.make_event(self._poll, "poll")
        # Pooled burst-completion event: at most one in flight (the loop
        # is run-to-completion), so the pool never grows past one event,
        # but each burst skips an Event + closure + f-string allocation.
        self._event_pools = batching_enabled()
        self._finish_pool = EventPool(self._finish_burst,
                                      f"{name}.finish_burst")
        self._idle = True
        self._running = False
        self.packets_processed = 0
        self.packets_forwarded = 0
        self.packets_dropped_by_app = 0
        self.tx_ring_drops = 0
        self.bursts = 0
        # Lifetime accounting (never reset) for the conservation layer:
        # every harvested packet is forwarded, absorbed (app drop or TX
        # ring overflow) or still held between poll and burst completion.
        self.total_processed = 0
        self.total_forwarded = 0
        self.total_absorbed = 0
        self._holding = 0
        # The NIC's writeback hint re-arms the parked poll loop.
        pmd.nic.rx_notify = self._rx_hint
        self.driver_port = RequestPort(self, "driver_port", KIND_APP)
        self.driver_port.bind(pmd.app_side)
        self._register_invariants()

    def _register_invariants(self) -> None:
        app = self

        def conservation(final: bool):
            fails = []
            accounted = (app.total_forwarded + app.total_absorbed
                         + app._holding)
            if app.total_processed != accounted:
                fails.append(
                    f"processed {app.total_processed} != forwarded "
                    f"{app.total_forwarded} + absorbed "
                    f"{app.total_absorbed} + holding {app._holding}")
            if app._holding < 0:
                fails.append(f"negative holding count {app._holding}")
            harvested = app.pmd.nic.rx_ring.harvested_total
            if app.total_processed != harvested:
                fails.append(
                    f"app processed {app.total_processed} packets but the "
                    f"RX ring released {harvested}")
            return fails

        self.sim.invariants.register(
            f"{self.name}.packet-conservation", conservation, strict=True)

    # -- lifecycle ---------------------------------------------------------

    def start(self, when: int = 0) -> None:
        """Begin operation at tick ``when`` (default: now)."""
        self._running = True
        self._idle = False
        self.schedule(self._poll_event, max(when, self.now))

    def stop(self) -> None:
        """Stop operation; pending events are cancelled."""
        self._running = False
        if self._poll_event.scheduled:
            self.deschedule(self._poll_event)

    def _rx_hint(self, count: int) -> None:
        if self._running and self._idle and not self._poll_event.scheduled:
            self._idle = False
            self.schedule_after(self._poll_event, ns_to_ticks(POLL_REACTION_NS))

    # -- the run-to-completion loop ----------------------------------------

    def _poll(self) -> None:
        if not self._running:
            return
        frames = self.pmd.rx_burst(self.burst_size)
        if not frames:
            self._idle = True   # park; _rx_hint re-arms
            return
        self.bursts += 1
        total_ns = self.core.execute(Work(
            compute_cycles=(self.costs.pmd_rx_burst_cycles
                            + self.costs.pmd_tx_burst_cycles),
            ifetch=self._code,
        ))
        outgoing: List[RxMbuf] = []
        for frame in frames:
            total_ns += self.core.execute(self._pmd_work(frame))
            app_work = self.frame_work(frame)
            if app_work is not None:
                total_ns += self.core.execute(app_work)
            response = self.transform(frame)
            if response is None:
                self.packets_dropped_by_app += 1
                self.total_absorbed += 1
                self.pmd.free(frame)
            else:
                if response is not frame.packet:
                    response.meta["mbuf"] = frame.mbuf
                    frame.packet = response
                outgoing.append(frame)
        self.packets_processed += len(frames)
        self.total_processed += len(frames)
        self._holding += len(outgoing)
        if self.sim.tracer.enabled:
            self.trace("app", "burst", harvested=len(frames),
                       outgoing=len(outgoing), ns=round(total_ns, 3))
        if self._event_pools:
            self._finish_pool.schedule_at(
                self.sim.events, self.now + ns_to_ticks(total_ns), outgoing)
        else:
            self.call_after(ns_to_ticks(total_ns),
                            lambda out=outgoing: self._finish_burst(out),
                            name="finish_burst")

    def _pmd_work(self, frame: RxMbuf) -> Work:
        """Driver-side footprint: descriptor read, mbuf metadata write
        (rte_mbuf is 128B: two lines), packet header read."""
        return Work(
            compute_cycles=(self.costs.pmd_per_packet_cycles
                            + self.costs.mempool_get_put_cycles),
            ifetch=self._code[:2],
            reads=[frame.desc_addr, frame.mbuf.data_addr],
            writes=[frame.mbuf.buffer_addr, frame.mbuf.buffer_addr + 64],
        )

    def _finish_burst(self, outgoing: List[RxMbuf]) -> None:
        self._holding -= len(outgoing)
        if outgoing:
            sent = self.pmd.tx_burst(outgoing)
            self.packets_forwarded += sent
            self.total_forwarded += sent
            for frame in outgoing[sent:]:
                self.tx_ring_drops += 1
                self.total_absorbed += 1
                self.pmd.free(frame)
        if self._running:
            self._poll()

    # -- subclass hooks -------------------------------------------------------

    def frame_work(self, frame: RxMbuf) -> Optional[Work]:
        """Application-specific per-packet work (None = nothing extra)."""
        return None

    def transform(self, frame: RxMbuf) -> Optional[Packet]:
        """Produce the outgoing packet for ``frame`` (None = drop)."""
        return frame.packet

    def on_stats_reset(self) -> None:
        """Clear measurement counters after a stats reset."""
        self.packets_processed = 0
        self.packets_forwarded = 0
        self.packets_dropped_by_app = 0
        self.tx_ring_drops = 0
        self.bursts = 0

    # -- checkpoint support ------------------------------------------------

    def serialize_state(self) -> dict:
        if self._holding:
            raise CheckpointError(
                f"{self.name} holds {self._holding} packets mid-burst; "
                f"checkpoints require a quiescent (drained) node")
        return {
            "idle": self._idle,
            "running": self._running,
            "packets_processed": self.packets_processed,
            "packets_forwarded": self.packets_forwarded,
            "packets_dropped_by_app": self.packets_dropped_by_app,
            "tx_ring_drops": self.tx_ring_drops,
            "bursts": self.bursts,
            "total_processed": self.total_processed,
            "total_forwarded": self.total_forwarded,
            "total_absorbed": self.total_absorbed,
        }

    def deserialize_state(self, state: dict) -> None:
        self._idle = state["idle"]
        self._running = state["running"]
        self.packets_processed = state["packets_processed"]
        self.packets_forwarded = state["packets_forwarded"]
        self.packets_dropped_by_app = state["packets_dropped_by_app"]
        self.tx_ring_drops = state["tx_ring_drops"]
        self.bursts = state["bursts"]
        self.total_processed = state["total_processed"]
        self.total_forwarded = state["total_forwarded"]
        self.total_absorbed = state["total_absorbed"]


class KernelNetApp(SimObject):
    """Interrupt-driven kernel-stack application (NAPI loop)."""

    napi_budget = 64

    def __init__(self, sim: Simulation, name: str,
                 driver: InterruptNicDriver, stack: KernelStackModel,
                 core: CoreModel, costs: KernelCosts) -> None:
        super().__init__(sim, name)
        self.driver = driver
        self.stack = stack
        self.core = core
        self.costs = costs
        self._napi_event = self.make_event(self._napi, "napi")
        self._event_pools = batching_enabled()
        self._napi_pool = EventPool(self._napi_pooled, f"{name}.napi_next")
        self._processing = False
        self.packets_processed = 0
        self.interrupts = 0
        # Lifetime accounting for the conservation layer.  Subclasses
        # that transmit responses count them in ``total_responses``;
        # everything else is absorbed (receive-only service).
        self.total_processed = 0
        self.total_responses = 0
        driver.set_rx_handler(self._on_irq)
        self.driver_port = RequestPort(self, "driver_port", KIND_APP)
        self.driver_port.bind(driver.app_side)
        self._register_invariants()

    def _register_invariants(self) -> None:
        app = self

        def conservation(final: bool):
            fails = []
            harvested = app.driver.nic.rx_ring.harvested_total
            if app.total_processed != harvested:
                fails.append(
                    f"app processed {app.total_processed} packets but the "
                    f"RX ring released {harvested}")
            if app.total_responses > app.total_processed:
                fails.append(
                    f"responses {app.total_responses} exceed processed "
                    f"packets {app.total_processed}")
            return fails

        self.sim.invariants.register(
            f"{self.name}.packet-conservation", conservation, strict=True)

    @property
    def total_absorbed(self) -> int:
        """Packets consumed without a response leaving the node."""
        return self.total_processed - self.total_responses

    def _on_irq(self, count: int) -> None:
        self.interrupts += 1
        if self._processing:
            return
        self._processing = True
        self.driver.irq_disable()
        if not self._napi_event.scheduled:
            self.schedule(self._napi_event, self.now)

    def _napi(self) -> None:
        descs = self.driver.harvest(self.napi_budget)
        if not descs:
            self._processing = False
            self.driver.irq_enable()
            # Close the harvest/enable race: anything written back in
            # between is picked up immediately.
            if self.driver.nic.rx_ring.completed_count:
                self._on_irq(self.driver.nic.rx_ring.completed_count)
            return
        batch = len(descs)
        total_ns = 0.0
        for desc in descs:
            payload = max(0, desc.packet.wire_len - 18)
            stack_work = self.stack.rx_work(desc.buffer_addr, payload,
                                            batch_size=batch,
                                            deliver_to_user=True)
            total_ns += self.core.execute(stack_work.kernel)
            total_ns += self.core.execute(stack_work.app)
            total_ns += self.handle_packet(desc, batch)
        self.packets_processed += batch
        self.total_processed += batch
        if self.sim.tracer.enabled:
            self.trace("app", "napi", harvested=batch,
                       ns=round(total_ns, 3))
        if self._event_pools:
            self._napi_pool.schedule_at(
                self.sim.events, self.now + ns_to_ticks(total_ns))
        else:
            self.call_after(ns_to_ticks(total_ns), self._napi,
                            name="napi_next")

    def _napi_pooled(self, _payload) -> None:
        self._napi()

    # -- subclass hook -----------------------------------------------------------

    def handle_packet(self, desc, batch_size: int) -> float:
        """Application-level processing; returns extra nanoseconds."""
        return 0.0

    def on_stats_reset(self) -> None:
        """Clear measurement counters after a stats reset."""
        self.packets_processed = 0
        self.interrupts = 0

    # -- checkpoint support ------------------------------------------------

    def serialize_state(self) -> dict:
        if self._processing:
            raise CheckpointError(
                f"{self.name} has a NAPI poll round in flight; "
                f"checkpoints require a quiescent (drained) node")
        return {
            "processing": self._processing,
            "packets_processed": self.packets_processed,
            "interrupts": self.interrupts,
            "total_processed": self.total_processed,
            "total_responses": self.total_responses,
        }

    def deserialize_state(self, state: dict) -> None:
        self._processing = state["processing"]
        self.packets_processed = state["packets_processed"]
        self.interrupts = state["interrupts"]
        self.total_processed = state["total_processed"]
        self.total_responses = state["total_responses"]
