"""TouchFwd — deep network function.

"TouchFwd extends TestPMD with an extra loop that brings the payload to
the core (subsequently to L2 and L1 caches).  TouchFwd can be used to
model deep network functions such as Deep Packet Inspection." (paper §V)

Every payload line is loaded; the per-line compute models the inspection
work on each fetched line.  CPU load therefore grows with packet size —
the reason TouchFwd stays core-bound and frequency/uarch-sensitive at all
packet sizes (Figs 15-16).
"""

from __future__ import annotations

from typing import Optional

from repro.apps.base import DpdkApp
from repro.cpu.core import Work
from repro.cpu.kernels import touch_lines
from repro.dpdk.pmd import RxMbuf
from repro.net.packet import Packet

#: Cycles of inspection work per payload line brought to the core.  A deep
#: network function does real per-byte work (DPI automaton steps); the
#: per-line cost dominates the kernel, which is what makes TouchFwd
#: core-bound at every packet size.
TOUCH_CYCLES_PER_LINE = 170
#: A byte-scan loop discovers little memory-level parallelism...
TOUCH_MAX_MLP = 4
#: ...and its dependence chains degrade hardest on an in-order pipeline
#: (paper Fig 16: "up to an 8x increase in MSB" for TouchFwd on O3).
TOUCH_INORDER_PENALTY = 6.0


class TouchFwd(DpdkApp):
    """L2 forwarder that touches the entire payload."""

    def frame_work(self, frame: RxMbuf) -> Optional[Work]:
        """Per-packet application work for one received frame."""
        payload_lines = touch_lines(frame.mbuf.data_addr,
                                    frame.packet.wire_len)
        return Work(
            compute_cycles=(self.costs.app_base_cycles
                            + TOUCH_CYCLES_PER_LINE * len(payload_lines)),
            reads=payload_lines,
            max_mlp=TOUCH_MAX_MLP,
            inorder_penalty=TOUCH_INORDER_PENALTY,
        )

    def transform(self, frame: RxMbuf) -> Optional[Packet]:
        """Outgoing packet for this frame (None drops it)."""
        return frame.packet.response_to()
