"""MemcachedDPDK — in-memory key-value store over DPDK.

"A simple in-memory key-value store implemented on top of DPDK and thus
achieves higher throughput and lower latency per request." (paper §V)

The server parses real memcached-over-UDP request frames, performs the
hash-table operation against the simulated store (whose bucket/entry walk
is a dependent load chain), and responds in place over the same mbuf.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.base import DpdkApp
from repro.cpu.core import Work
from repro.cpu.kernels import lines_covering
from repro.dpdk.pmd import RxMbuf
from repro.kvstore.protocol import (
    GetRequest,
    GetResponse,
    SetRequest,
    SetResponse,
    decode_request,
    encode_response,
)
from repro.kvstore.store import KvStore
from repro.net.headers import build_udp_frame, parse_udp_frame
from repro.net.packet import Packet


class MemcachedDpdk(DpdkApp):
    """KV store server on the poll-mode driver."""

    def __init__(self, *args, store: KvStore, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.store = store
        self.requests_served = 0
        self.parse_errors = 0
        self._pending_response: Optional[bytes] = None
        self._pending_footprint = None

    def frame_work(self, frame: RxMbuf) -> Optional[Work]:
        """Per-packet application work for one received frame."""
        self._pending_response = None
        self._pending_footprint = None
        try:
            _ip, _udp, payload = parse_udp_frame(frame.packet)
            request = decode_request(payload)
        except (ValueError, TypeError):
            self.parse_errors += 1
            return None
        if isinstance(request, GetRequest):
            value, footprint = self.store.get(request.key)
            response = GetResponse(request_id=request.request_id,
                                   hit=value is not None,
                                   value=value or b"")
        elif isinstance(request, SetRequest):
            footprint = self.store.set(request.key, request.value)
            response = SetResponse(request_id=request.request_id)
        else:   # pragma: no cover - decode_request only returns the above
            return None
        self._pending_response = encode_response(response)
        self._pending_footprint = footprint
        self.requests_served += 1
        request_lines = lines_covering(frame.mbuf.data_addr,
                                       frame.packet.payload_len)
        return Work(
            compute_cycles=self.costs.memcached_request_cycles,
            reads=request_lines + footprint.value_lines,
            writes=lines_covering(frame.mbuf.data_addr,
                                  len(self._pending_response)),
            dependent_reads=footprint.dependent_reads,
        )

    def transform(self, frame: RxMbuf) -> Optional[Packet]:
        """Outgoing packet for this frame (None drops it)."""
        if self._pending_response is None:
            return None   # unparsable frame: drop
        request_packet = frame.packet
        response = build_udp_frame(
            src_mac=request_packet.dst, dst_mac=request_packet.src,
            src_ip=0x0A000002, dst_ip=0x0A000001,
            src_port=11211, dst_port=40000,
            payload=self._pending_response)
        response.request_id = request_packet.request_id
        response.ts_tx = request_packet.ts_tx
        # Carry the simulation-side tracking metadata (epoch, ramp step)
        # so the load generator can attribute the response.
        response.meta.update(request_packet.meta)
        return response

    def serialize_state(self) -> dict:
        """The store rides along with the app: it is not a topology
        component of its own, and its contents (warm keys) are the whole
        point of a warm-up checkpoint."""
        state = super().serialize_state()
        state["requests_served"] = self.requests_served
        state["parse_errors"] = self.parse_errors
        state["store"] = self.store.serialize_state()
        return state

    def deserialize_state(self, state: dict) -> None:
        super().deserialize_state(state)
        self.requests_served = state["requests_served"]
        self.parse_errors = state["parse_errors"]
        self.store.deserialize_state(state["store"])
        self._pending_response = None
        self._pending_footprint = None
