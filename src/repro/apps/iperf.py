"""iperf — the representative kernel-networking throughput test.

"We use iperf as a representative application for comparing DPDK
applications to an application that uses Linux kernel networking"
(paper §VII.C); default gem5 "only delivers ~10Gbps network bandwidth
running the iPerf TCP throughput test" (§I).

The server receives a bulk byte stream through the kernel stack: every
segment pays protocol processing + the kernel->user copy, and a small ACK
frame is returned per segment.  Per-segment ACKs both exercise the TX DMA
path and let the load generator attribute every delivered segment (the
ACK echoes the segment's metadata), so drop accounting works the same way
as for the forwarding applications.
"""

from __future__ import annotations

from repro.apps.base import KernelNetApp
from repro.cpu.core import Work
from repro.nic.descriptors import RxDescriptor

ACK_EVERY = 1
ACK_FRAME_BYTES = 64


class IperfServer(KernelNetApp):
    """Kernel-stack bulk receiver with per-segment ACKs."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.bytes_received = 0
        self.segments = 0
        self.acks_sent = 0

    def handle_packet(self, desc: RxDescriptor, batch_size: int) -> float:
        """Application-level processing; returns extra ns."""
        packet = desc.packet
        self.segments += 1
        self.bytes_received += packet.wire_len
        app_ns = self.core.execute(Work(
            compute_cycles=self.costs.iperf_per_segment_cycles))
        if self.segments % ACK_EVERY == 0:
            # TCP ACKs are generated inside the kernel: no syscall and no
            # user-space copy, just an skb and half a protocol trip.
            ack = packet.response_to(wire_len=ACK_FRAME_BYTES)
            skb_addr = self.stack.alloc_skb(ACK_FRAME_BYTES)
            app_ns += self.core.execute(Work(
                compute_cycles=self.costs.tcp_ack_cycles,
                writes=[skb_addr]))
            if self.driver.transmit(skb_addr, ack):
                self.acks_sent += 1
                self.total_responses += 1
        return app_ns

    def throughput_gbps(self, elapsed_ticks: int) -> float:
        """Delivered bandwidth over ``elapsed_ticks``."""
        if elapsed_ticks <= 0:
            return 0.0
        return self.bytes_received * 8 * 1e12 / elapsed_ticks / 1e9

    def on_stats_reset(self) -> None:
        """Clear measurement counters after a stats reset."""
        super().on_stats_reset()
        self.bytes_received = 0
        self.segments = 0
        self.acks_sent = 0

    def serialize_state(self) -> dict:
        state = super().serialize_state()
        state["bytes_received"] = self.bytes_received
        state["segments"] = self.segments
        state["acks_sent"] = self.acks_sent
        return state

    def deserialize_state(self, state: dict) -> None:
        super().deserialize_state(state)
        self.bytes_received = state["bytes_received"]
        self.segments = state["segments"]
        self.acks_sent = state["acks_sent"]
