"""The network benchmark suite (paper §V).

Six applications — four network-intensive microbenchmarks and two
in-memory key-value stores — plus iperf as the representative
kernel-networking application:

- :class:`TestPmd` — RX/TX forwarding with configurable modes (macswap);
  a *shallow* network function touching only the L2 header.
- :class:`TouchFwd` — L2 forwarding that touches the entire payload; a
  *deep* network function (DPI-like).
- :class:`TouchDrop` — touches header+payload, then drops; pure RX.
- :class:`RxPTx` — RX burst, wait a configurable processing interval,
  TX; models network functions with different DMA-to-core use distances.
- :class:`MemcachedDpdk` — KV store over DPDK.
- :class:`MemcachedKernel` — KV store over the kernel stack (memcached +
  POSIX).
- :class:`IperfServer` — kernel-stack bulk-throughput receiver.
"""

from repro.apps.base import DpdkApp, KernelNetApp
from repro.apps.testpmd import TestPmd
from repro.apps.touchfwd import TouchFwd
from repro.apps.touchdrop import TouchDrop
from repro.apps.rxptx import RxPTx
from repro.apps.memcached_dpdk import MemcachedDpdk
from repro.apps.memcached_kernel import MemcachedKernel
from repro.apps.iperf import IperfServer

__all__ = [
    "DpdkApp",
    "KernelNetApp",
    "TestPmd",
    "TouchFwd",
    "TouchDrop",
    "RxPTx",
    "MemcachedDpdk",
    "MemcachedKernel",
    "IperfServer",
]
