"""Memcached UDP protocol framing.

"The payload is encapsulated in a Memcached UDP header, a request header
containing metadata, and an Ethernet II frame header" (paper §VI.A).  The
8-byte memcached UDP frame header carries the request ID that
EtherLoadGen uses to "track a map of outstanding requests"; the request
header carries opcode, key length and value length.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Union

MEMCACHED_UDP_HEADER_LEN = 8    # request id, seq, count, reserved (2B each)
REQUEST_HEADER_LEN = 8          # opcode(1), status(1), keylen(2), vallen(4)

OP_GET = 0x00
OP_SET = 0x01
OP_GET_RESPONSE = 0x80
OP_SET_RESPONSE = 0x81

STATUS_OK = 0
STATUS_MISS = 1


@dataclass(frozen=True)
class GetRequest:
    """A GET for ``key``."""
    request_id: int
    key: bytes


@dataclass(frozen=True)
class SetRequest:
    """A SET of ``key`` to ``value``."""
    request_id: int
    key: bytes
    value: bytes


@dataclass(frozen=True)
class GetResponse:
    """The reply to a GET (hit flag + value)."""
    request_id: int
    hit: bool
    value: bytes


@dataclass(frozen=True)
class SetResponse:
    """The acknowledgement of a SET."""
    request_id: int


Request = Union[GetRequest, SetRequest]
Response = Union[GetResponse, SetResponse]


def _udp_frame_header(request_id: int) -> bytes:
    return struct.pack(">HHHH", request_id & 0xFFFF, 0, 1, 0)


def encode_request(request: Request) -> bytes:
    """Serialize a request to the memcached-over-UDP wire format."""
    if isinstance(request, GetRequest):
        header = struct.pack(">BBHI", OP_GET, 0, len(request.key), 0)
        return (_udp_frame_header(request.request_id) + header
                + request.key)
    if isinstance(request, SetRequest):
        header = struct.pack(">BBHI", OP_SET, 0, len(request.key),
                             len(request.value))
        return (_udp_frame_header(request.request_id) + header
                + request.key + request.value)
    raise TypeError(f"not a request: {request!r}")


def encode_response(response: Response) -> bytes:
    """Serialize a response."""
    if isinstance(response, GetResponse):
        status = STATUS_OK if response.hit else STATUS_MISS
        header = struct.pack(">BBHI", OP_GET_RESPONSE, status, 0,
                             len(response.value))
        return (_udp_frame_header(response.request_id) + header
                + response.value)
    if isinstance(response, SetResponse):
        header = struct.pack(">BBHI", OP_SET_RESPONSE, STATUS_OK, 0, 0)
        return _udp_frame_header(response.request_id) + header
    raise TypeError(f"not a response: {response!r}")


def _split(payload: bytes) -> tuple:
    if len(payload) < MEMCACHED_UDP_HEADER_LEN + REQUEST_HEADER_LEN:
        raise ValueError(f"truncated memcached frame: {len(payload)}B")
    request_id = struct.unpack_from(">H", payload, 0)[0]
    opcode, status, keylen, vallen = struct.unpack_from(
        ">BBHI", payload, MEMCACHED_UDP_HEADER_LEN)
    body = payload[MEMCACHED_UDP_HEADER_LEN + REQUEST_HEADER_LEN:]
    return request_id, opcode, status, keylen, vallen, body


def decode_request(payload: bytes) -> Request:
    """Parse a request frame."""
    request_id, opcode, _status, keylen, vallen, body = _split(payload)
    if len(body) < keylen + (vallen if opcode == OP_SET else 0):
        raise ValueError("memcached frame body shorter than headers claim")
    key = body[:keylen]
    if opcode == OP_GET:
        return GetRequest(request_id=request_id, key=key)
    if opcode == OP_SET:
        return SetRequest(request_id=request_id, key=key,
                          value=body[keylen:keylen + vallen])
    raise ValueError(f"unknown request opcode {opcode:#x}")


def decode_response(payload: bytes) -> Response:
    """Parse a response frame."""
    request_id, opcode, status, _keylen, vallen, body = _split(payload)
    if opcode == OP_GET_RESPONSE:
        return GetResponse(request_id=request_id,
                           hit=(status == STATUS_OK),
                           value=body[:vallen])
    if opcode == OP_SET_RESPONSE:
        return SetResponse(request_id=request_id)
    raise ValueError(f"unknown response opcode {opcode:#x}")
