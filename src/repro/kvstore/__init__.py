"""In-memory key-value store substrate.

The workload behind the paper's MemcachedDPDK / MemcachedKernel
evaluations: a hash-table KV store with real memory regions (so lookups
produce dependent pointer-chasing work for the core models), the memcached
UDP binary framing the clients and servers exchange, and the Zipfian
key/value-size generator the paper configures (min=10, max=100, skew=0.5,
§VI.A).
"""

from repro.kvstore.zipf import ZipfianGenerator
from repro.kvstore.protocol import (
    MEMCACHED_UDP_HEADER_LEN,
    REQUEST_HEADER_LEN,
    GetRequest,
    GetResponse,
    SetRequest,
    SetResponse,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)
from repro.kvstore.store import KvStore, LookupFootprint

__all__ = [
    "ZipfianGenerator",
    "MEMCACHED_UDP_HEADER_LEN",
    "REQUEST_HEADER_LEN",
    "GetRequest",
    "GetResponse",
    "SetRequest",
    "SetResponse",
    "decode_request",
    "decode_response",
    "encode_request",
    "encode_response",
    "KvStore",
    "LookupFootprint",
]
