"""The in-memory key-value store.

A chained hash table whose buckets, entries and values live at real
simulated addresses, so a lookup produces a *dependent* load chain (bucket
head -> entry -> value) that the out-of-order core cannot parallelize —
the reason memcached stays core-bound in the paper's frequency sweep
("the memcached application is core-bound for the small dataset size that
we run", §VII.C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cpu.kernels import lines_covering
from repro.mem.address import AddressSpace


@dataclass
class LookupFootprint:
    """Memory footprint of one store operation."""

    dependent_reads: List[int]   # bucket/entry pointer chain
    value_lines: List[int]       # value data lines (read on GET, written on SET)
    hit: bool


@dataclass
class _Entry:
    key: bytes
    value_addr: int
    value_len: int
    chain_depth: int
    entry_addr: int = 0


class KvStore:
    """Chained hash table with a bump-allocated value heap."""

    ENTRY_SIZE = 64          # one cache line per entry
    BUCKET_SIZE = 8          # bucket head pointer

    def __init__(self, address_space: AddressSpace, n_buckets: int = 4096,
                 value_heap_bytes: int = 4 * 1024 * 1024) -> None:
        if n_buckets < 1:
            raise ValueError("need at least one bucket")
        self.n_buckets = n_buckets
        self.buckets_region = address_space.allocate(
            "kvstore.buckets", n_buckets * self.BUCKET_SIZE)
        self.entries_region = address_space.allocate(
            "kvstore.entries", n_buckets * 4 * self.ENTRY_SIZE)
        self.values_region = address_space.allocate(
            "kvstore.values", value_heap_bytes)
        self._table: Dict[int, List[_Entry]] = {}
        self._entry_cursor = 0
        self._value_cursor = 0
        self.gets = 0
        self.sets = 0
        self.hits = 0
        self.misses = 0

    def _bucket_index(self, key: bytes) -> int:
        # FNV-1a, deterministic across runs (unlike hash()).
        h = 0xCBF29CE484222325
        for byte in key:
            h = ((h ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        return h % self.n_buckets

    def _bucket_addr(self, index: int) -> int:
        return self.buckets_region.addr(index * self.BUCKET_SIZE)

    def _alloc_entry_addr(self) -> int:
        addr = self.entries_region.wrap_addr(self._entry_cursor)
        self._entry_cursor += self.ENTRY_SIZE
        return addr

    def _alloc_value(self, nbytes: int) -> int:
        addr = self.values_region.wrap_addr(self._value_cursor)
        self._value_cursor += max(nbytes, 1)
        return addr

    @property
    def size(self) -> int:
        """Number of stored key/value entries."""
        return sum(len(chain) for chain in self._table.values())

    def set(self, key: bytes, value: bytes) -> LookupFootprint:
        """Insert or update; returns the operation's memory footprint."""
        self.sets += 1
        index = self._bucket_index(key)
        chain = self._table.setdefault(index, [])
        dependent = [self._bucket_addr(index)]
        for depth, entry in enumerate(chain):
            dependent.append(self._entry_addr_for(entry))
            if entry.key == key:
                entry.value_addr = self._alloc_value(len(value))
                entry.value_len = len(value)
                return LookupFootprint(
                    dependent_reads=dependent,
                    value_lines=lines_covering(entry.value_addr, len(value)),
                    hit=True)
        value_addr = self._alloc_value(len(value))
        entry = _Entry(key=key, value_addr=value_addr, value_len=len(value),
                       chain_depth=len(chain),
                       entry_addr=self._alloc_entry_addr())
        chain.append(entry)
        dependent.append(entry.entry_addr)
        return LookupFootprint(
            dependent_reads=dependent,
            value_lines=lines_covering(value_addr, len(value)),
            hit=False)

    def _entry_addr_for(self, entry: _Entry) -> int:
        return entry.entry_addr

    # -- checkpoint support ------------------------------------------------

    def serialize_state(self) -> dict:
        """The full table (keys hex-encoded; values are synthetic so only
        their length/address matter), allocator cursors, and counters."""
        return {
            "table": {str(index): [[entry.key.hex(), entry.value_addr,
                                    entry.value_len, entry.chain_depth,
                                    entry.entry_addr]
                                   for entry in chain]
                      for index, chain in self._table.items()},
            "entry_cursor": self._entry_cursor,
            "value_cursor": self._value_cursor,
            "gets": self.gets,
            "sets": self.sets,
            "hits": self.hits,
            "misses": self.misses,
        }

    def deserialize_state(self, state: dict) -> None:
        self._table = {
            int(index): [_Entry(key=bytes.fromhex(key_hex),
                                value_addr=value_addr,
                                value_len=value_len,
                                chain_depth=chain_depth,
                                entry_addr=entry_addr)
                         for key_hex, value_addr, value_len, chain_depth,
                         entry_addr in chain]
            for index, chain in state["table"].items()
        }
        self._entry_cursor = state["entry_cursor"]
        self._value_cursor = state["value_cursor"]
        self.gets = state["gets"]
        self.sets = state["sets"]
        self.hits = state["hits"]
        self.misses = state["misses"]

    def get(self, key: bytes) -> Tuple[Optional[bytes], LookupFootprint]:
        """Look up; returns (value-or-None, footprint)."""
        self.gets += 1
        index = self._bucket_index(key)
        dependent = [self._bucket_addr(index)]
        for entry in self._table.get(index, []):
            dependent.append(self._entry_addr_for(entry))
            if entry.key == key:
                self.hits += 1
                footprint = LookupFootprint(
                    dependent_reads=dependent,
                    value_lines=lines_covering(entry.value_addr,
                                               entry.value_len),
                    hit=True)
                # Values are synthetic: length is what matters on the wire.
                return bytes(entry.value_len), footprint
        self.misses += 1
        return None, LookupFootprint(dependent_reads=dependent,
                                     value_lines=[], hit=False)
