"""Zipfian sampling.

"our Memcached client implementation generates key and value sizes using a
Zipfian distribution with control parameters for key length/value length,
specifically: min = 10, max = 100, and skew = 0.5" (paper §VI.A).

The generator precomputes the CDF over the integer range once, then draws
via binary search — O(log n) per sample and fully deterministic under the
simulation RNG.
"""

from __future__ import annotations

import bisect
from typing import List

from repro.sim.rng import DeterministicRng


class ZipfianGenerator:
    """Zipf-distributed integers over [minimum, maximum]."""

    def __init__(self, minimum: int, maximum: int, skew: float,
                 rng: DeterministicRng) -> None:
        if minimum > maximum:
            raise ValueError(f"empty range [{minimum}, {maximum}]")
        if skew < 0:
            raise ValueError(f"negative skew {skew}")
        self.minimum = minimum
        self.maximum = maximum
        self.skew = skew
        self._rng = rng
        n = maximum - minimum + 1
        weights = [1.0 / (rank ** skew) for rank in range(1, n + 1)]
        total = sum(weights)
        cdf: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cdf.append(acc)
        cdf[-1] = 1.0   # guard against float round-off
        self._cdf = cdf

    def sample(self) -> int:
        """Draw one value; rank 1 (-> ``minimum``) is the most likely."""
        u = self._rng.random()
        rank = bisect.bisect_left(self._cdf, u)
        return self.minimum + min(rank, self.maximum - self.minimum)

    def expected_head_fraction(self, head_ranks: int) -> float:
        """CDF mass of the first ``head_ranks`` ranks (for tests)."""
        if head_ranks < 1:
            return 0.0
        idx = min(head_ranks, len(self._cdf)) - 1
        return self._cdf[idx]
