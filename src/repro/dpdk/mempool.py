"""Mempools and mbufs.

An :class:`Mbuf` is a fixed-size packet buffer in hugepage memory; a
:class:`Mempool` recycles them through a LIFO free list, which — exactly as
in DPDK's per-lcore mempool cache — keeps the hot subset of buffers small
and cache-resident.  The mempool's *cycling footprint* (how many distinct
buffers are in flight) is what determines the DPDK working-set size the
paper measures to be "larger than 256KiB and smaller than 1MiB" (§VII.C).
"""

from __future__ import annotations

from typing import List, Optional

from repro.dpdk.hugepages import HugepageAllocator
from repro.mem.address import Region
from repro.net.packet import Packet
from repro.sim.checkpoint import CheckpointError
from repro.sim.ports import KIND_BUFFER, ResponsePort

MBUF_HEADROOM = 128
DEFAULT_MBUF_SIZE = 2048


class MempoolEmptyError(RuntimeError):
    """Raised when a get() finds no free mbuf (a buffer leak upstream)."""


class Mbuf:
    """One packet buffer: metadata header + data room."""

    __slots__ = ("index", "buffer_addr", "data_addr", "size", "packet", "pool")

    def __init__(self, index: int, buffer_addr: int, size: int,
                 pool: "Mempool") -> None:
        self.index = index
        self.buffer_addr = buffer_addr
        self.data_addr = buffer_addr + MBUF_HEADROOM
        self.size = size
        self.packet: Optional[Packet] = None
        self.pool = pool

    def free(self) -> None:
        """Return this mbuf to its pool."""
        self.pool.put(self)

    def __repr__(self) -> str:
        return f"<Mbuf #{self.index} @{self.buffer_addr:#x}>"


class Mempool:
    """A fixed population of mbufs with a LIFO free list."""

    def __init__(self, name: str, hugepages: HugepageAllocator,
                 n_mbufs: int, mbuf_size: int = DEFAULT_MBUF_SIZE) -> None:
        if n_mbufs < 1:
            raise ValueError("mempool needs at least one mbuf")
        if mbuf_size < MBUF_HEADROOM + 64:
            raise ValueError(f"mbuf size {mbuf_size} too small")
        self.name = name
        self.n_mbufs = n_mbufs
        self.mbuf_size = mbuf_size
        # Buffer clients (PMDs, apps) bind here; several may share a pool.
        self.client_side = ResponsePort(self, "client_side", KIND_BUFFER,
                                        multi=True)
        self.region: Region = hugepages.allocate(n_mbufs * mbuf_size)
        self._free: List[Mbuf] = [
            Mbuf(i, self.region.base + i * mbuf_size, mbuf_size, self)
            for i in reversed(range(n_mbufs))
        ]
        self.gets = 0
        self.puts = 0
        self.high_watermark = 0

    @property
    def available(self) -> int:
        """Free mbufs remaining in the pool."""
        return len(self._free)

    @property
    def in_use(self) -> int:
        """Mbufs currently allocated to users."""
        return self.n_mbufs - len(self._free)

    def get(self) -> Mbuf:
        """Allocate an mbuf (LIFO: most-recently-freed first)."""
        if not self._free:
            raise MempoolEmptyError(
                f"mempool {self.name} exhausted "
                f"({self.n_mbufs} mbufs all in use)")
        mbuf = self._free.pop()
        self.gets += 1
        self.high_watermark = max(self.high_watermark, self.in_use)
        return mbuf

    def try_get(self) -> Optional[Mbuf]:
        """Allocate, or None when empty (the PMD replenish path)."""
        if not self._free:
            return None
        return self.get()

    def put(self, mbuf: Mbuf) -> None:
        """Return an mbuf to the pool."""
        if mbuf.pool is not self:
            raise ValueError(
                f"mbuf from pool {mbuf.pool.name} returned to {self.name}")
        if len(self._free) >= self.n_mbufs:
            raise RuntimeError(f"double free into mempool {self.name}")
        mbuf.packet = None
        self._free.append(mbuf)
        self.puts += 1

    def footprint_bytes(self) -> int:
        """Total buffer memory (the upper bound of the working set)."""
        return self.n_mbufs * self.mbuf_size

    # -- checkpoint support --------------------------------------------------

    def serialize_state(self) -> dict:
        """Free-list *order* (the LIFO recycling pattern determines which
        buffer addresses the restored run touches) plus counters.  An
        mbuf still out at checkpoint time holds a live packet, so the
        pool must be idle."""
        if self.in_use:
            raise CheckpointError(
                f"mempool {self.name} has {self.in_use} mbuf(s) in use; "
                f"checkpoints require a quiescent (drained) node")
        return {
            "free_order": [mbuf.index for mbuf in self._free],
            "gets": self.gets,
            "puts": self.puts,
            "high_watermark": self.high_watermark,
        }

    def deserialize_state(self, state: dict) -> None:
        if len(state["free_order"]) != self.n_mbufs:
            raise CheckpointError(
                f"mempool {self.name}: population changed "
                f"({len(state['free_order'])} -> {self.n_mbufs})")
        by_index = {mbuf.index: mbuf for mbuf in self._free}
        self._free = [by_index[idx] for idx in state["free_order"]]
        self.gets = state["gets"]
        self.puts = state["puts"]
        self.high_watermark = state["high_watermark"]

    def invariant_failures(self, expect_idle: bool = False):
        """Mbuf conservation self-checks; a list of messages, empty when
        OK.  ``gets``/``puts`` are lifetime counters, so the accounting
        equality is exact at any instant.  With ``expect_idle`` (checked
        only once the datapath is quiescent) any mbuf still out is a leak.
        """
        fails = []
        if self.gets != self.puts + self.in_use:
            fails.append(
                f"gets ({self.gets}) != puts ({self.puts}) + in-use "
                f"({self.in_use})")
        if not 0 <= self.in_use <= self.n_mbufs:
            fails.append(
                f"in-use count {self.in_use} outside [0, {self.n_mbufs}]")
        if expect_idle and self.in_use:
            leaked = [mbuf_idx for mbuf_idx in range(self.n_mbufs)
                      if mbuf_idx not in {m.index for m in self._free}]
            fails.append(
                f"{self.in_use} mbuf(s) leaked at quiescence "
                f"(indices {leaked[:8]}{'...' if len(leaked) > 8 else ''})")
        return fails

    def __repr__(self) -> str:
        return (f"<Mempool {self.name} {self.available}/{self.n_mbufs} "
                f"free, {self.mbuf_size}B mbufs>")
