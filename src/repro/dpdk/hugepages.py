"""Hugepage reservation.

DPDK "reserves pinned huge pages and allows the NIC to DMA packet data
directly into the application's buffers" (§II.A); the gem5 guest kernel
must be built with CONFIG_HUGETLBFS and pages reserved via
``/sys/kernel/mm/hugepages`` (paper Listings 1-2).  Here hugepages are
2MiB-aligned regions carved from the simulated physical address space;
mempools allocate from them, which keeps packet buffers physically
contiguous — the property that makes single-descriptor DMA possible.
"""

from __future__ import annotations

from repro.mem.address import AddressSpace, Region

HUGEPAGE_SIZE = 2 * 1024 * 1024


class HugepageAllocator:
    """Reserves and hands out 2MiB hugepages."""

    def __init__(self, address_space: AddressSpace, nr_hugepages: int) -> None:
        if nr_hugepages < 1:
            raise ValueError("need at least one hugepage")
        self.nr_hugepages = nr_hugepages
        self._pool: Region = address_space.allocate(
            "hugepages", nr_hugepages * HUGEPAGE_SIZE,
            alignment=HUGEPAGE_SIZE)
        self._next_page = 0

    @property
    def free_pages(self) -> int:
        """Hugepages still unallocated."""
        return self.nr_hugepages - self._next_page

    def allocate(self, nbytes: int) -> Region:
        """Allocate ``nbytes`` rounded up to whole hugepages."""
        pages = (nbytes + HUGEPAGE_SIZE - 1) // HUGEPAGE_SIZE
        if pages > self.free_pages:
            raise MemoryError(
                f"hugepage pool exhausted: need {pages}, "
                f"have {self.free_pages} "
                f"(echo a larger value into nr_hugepages)")
        base = self._pool.base + self._next_page * HUGEPAGE_SIZE
        self._next_page += pages
        return Region(name=f"hugepage[{self._next_page - pages}"
                           f":{self._next_page}]",
                      base=base, size=pages * HUGEPAGE_SIZE)
