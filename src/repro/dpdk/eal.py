"""The Environment Abstraction Layer.

"The DPDK Environment Abstraction Layer (EAL) relies on vendor ID checks to
match a device and a PMD.  We modify the DPDK source to skip these checks
and force the matching of the gem5 device to NIC model PMD.  Unmodified
DPDK cannot fetch the correct vendor ID when running on gem5 and therefore
fails to call the proper PMD." (paper §III.B)

This module models both sides of that story: the platform may corrupt the
vendor information the EAL fetches (``vendor_info_missing``, the gem5
symptom), and the EAL may be patched to skip the check
(``skip_vendor_check``, the paper's DPDK patch).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.pci.bus import PciBus
from repro.pci.device import PciDevice
from repro.pci.uio import DRIVER_NAME as UIO_DRIVER, UioPciGeneric


class EalProbeError(RuntimeError):
    """EAL initialization failed (no usable port)."""


@dataclass(frozen=True)
class EalConfig:
    """EAL behaviour switches."""

    # The paper's DPDK patch: force-match the first UIO-bound device to the
    # registered PMD even if the fetched vendor ID does not match.
    skip_vendor_check: bool = False
    # The gem5 symptom: the platform cannot supply correct vendor info to
    # the EAL's scan (manufacturer-specific data missing from the model).
    vendor_info_missing: bool = False


class Eal:
    """Scans the PCI bus and matches poll-mode drivers to devices."""

    def __init__(self, bus: PciBus, config: EalConfig = EalConfig()) -> None:
        self.bus = bus
        self.config = config
        # (vendor, device) -> pmd class registrations
        self._pmd_registry: Dict[Tuple[int, int], type] = {}
        self.uio = UioPciGeneric()
        self.probed: List[object] = []

    def register_pmd(self, vendor_id: int, device_id: int,
                     pmd_class: type) -> None:
        """Register a PMD class for a (vendor, device) ID pair."""
        self._pmd_registry[(vendor_id, device_id)] = pmd_class

    def _fetch_ids(self, device: PciDevice) -> Tuple[int, int]:
        """What the EAL sees when reading the device IDs via sysfs/UIO."""
        if self.config.vendor_info_missing:
            # gem5's NIC model lacks manufacturer-specific info; the EAL
            # reads garbage instead of 8086:100e.
            return 0xFFFF, 0xFFFF
        return (device.config_space.vendor_id,
                device.config_space.device_id)

    def probe(self, *pmd_args, **pmd_kwargs) -> List[object]:
        """Scan UIO-bound devices and instantiate matching PMDs.

        Returns the PMD instances (ports).  Raises :class:`EalProbeError`
        when no device can be matched — the failure unmodified DPDK hits on
        gem5.
        """
        ports: List[object] = []
        for device in self.bus.enumerate():
            if device.driver_name != UIO_DRIVER:
                continue
            vendor, devid = self._fetch_ids(device)
            pmd_class = self._pmd_registry.get((vendor, devid))
            if pmd_class is None and self.config.skip_vendor_check:
                if len(self._pmd_registry) != 1:
                    raise EalProbeError(
                        "skip_vendor_check requires exactly one registered "
                        "PMD to force-match (found "
                        f"{len(self._pmd_registry)}); hard-code the PMD for "
                        "the NIC model in use (paper §III.B)")
                pmd_class = next(iter(self._pmd_registry.values()))
            if pmd_class is None:
                continue
            ports.append(pmd_class(device, *pmd_args, **pmd_kwargs))
        if not ports:
            raise EalProbeError(
                "EAL: no probed ports — vendor ID check failed to match a "
                "PMD (run with skip_vendor_check=True, the paper's DPDK "
                "patch, or fix the platform's vendor info)")
        self.probed = ports
        return ports
