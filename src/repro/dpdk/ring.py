"""rte_ring: fixed-size power-of-two FIFO ring.

DPDK's "pipeline mode" passes packets between cores "via a user-level ring
buffer" (§II.A); this is that structure, with burst enqueue/dequeue
semantics matching ``rte_ring_enqueue_burst``/``rte_ring_dequeue_burst``
(partial success returns the count actually moved).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.sim.checkpoint import CheckpointError


class RteRing:
    """A bounded FIFO with burst operations."""

    def __init__(self, name: str, size: int) -> None:
        if size < 2 or size & (size - 1):
            raise ValueError(f"ring size must be a power of two >= 2, "
                             f"got {size}")
        self.name = name
        self.size = size
        self._slots: List[object] = [None] * size
        self._head = 0   # next dequeue
        self._tail = 0   # next enqueue
        self._count = 0
        self.enqueued = 0
        self.dequeued = 0
        self.enqueue_failures = 0

    @property
    def count(self) -> int:
        """Number of items currently held."""
        return self._count

    @property
    def free_count(self) -> int:
        """Slots still available."""
        return self.size - self._count

    @property
    def empty(self) -> bool:
        """True when nothing is held."""
        return self._count == 0

    @property
    def full(self) -> bool:
        """True when no further item can be accepted."""
        return self._count == self.size

    def enqueue(self, item: object) -> bool:
        """Append an item; False if there is no room."""
        if self._count == self.size:
            self.enqueue_failures += 1
            return False
        self._slots[self._tail] = item
        self._tail = (self._tail + 1) & (self.size - 1)
        self._count += 1
        self.enqueued += 1
        return True

    def enqueue_burst(self, items: Sequence[object]) -> int:
        """Enqueue as many as fit; returns the number accepted."""
        accepted = 0
        for item in items:
            if not self.enqueue(item):
                break
            accepted += 1
        return accepted

    def dequeue(self) -> Optional[object]:
        """Remove and return the oldest item."""
        if self._count == 0:
            return None
        item = self._slots[self._head]
        self._slots[self._head] = None
        self._head = (self._head + 1) & (self.size - 1)
        self._count -= 1
        self.dequeued += 1
        return item

    def dequeue_burst(self, max_count: int) -> List[object]:
        """Dequeue up to ``max_count`` items."""
        if max_count < 0:
            raise ValueError("negative burst size")
        out: List[object] = []
        while self._count and len(out) < max_count:
            out.append(self.dequeue())
        return out

    # -- checkpoint support --------------------------------------------------

    def serialize_state(self) -> dict:
        """Cursors and lifetime counters.  Held items are live packets,
        so the ring must be empty (its slots are then all None and the
        cursors alone reproduce the state)."""
        if self._count:
            raise CheckpointError(
                f"rte_ring {self.name} holds {self._count} items; "
                f"checkpoints require a quiescent (drained) node")
        return {
            "head": self._head,
            "tail": self._tail,
            "enqueued": self.enqueued,
            "dequeued": self.dequeued,
            "enqueue_failures": self.enqueue_failures,
        }

    def deserialize_state(self, state: dict) -> None:
        self._head = state["head"]
        self._tail = state["tail"]
        self.enqueued = state["enqueued"]
        self.dequeued = state["dequeued"]
        self.enqueue_failures = state["enqueue_failures"]

    def invariant_failures(self):
        """Ring conservation self-checks over lifetime counters; a list
        of messages, empty when OK."""
        fails = []
        if self.enqueued != self.dequeued + self._count:
            fails.append(
                f"enqueued ({self.enqueued}) != dequeued "
                f"({self.dequeued}) + held ({self._count})")
        if not 0 <= self._count <= self.size:
            fails.append(
                f"occupancy {self._count} outside [0, {self.size}]")
        return fails
