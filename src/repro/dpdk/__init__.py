"""A DPDK-like userspace data-plane framework.

The pieces of DPDK the paper's applications use, with the same moving
parts: an Environment Abstraction Layer that scans the PCI bus and matches
poll-mode drivers by vendor/device ID (with the paper's skip-vendor-check
patch, §III.B), hugepage-backed mempools of mbufs, single-producer/
single-consumer rings for pipeline mode, and a burst-oriented PMD over the
i8254x NIC model.
"""

from repro.dpdk.hugepages import HugepageAllocator
from repro.dpdk.mempool import Mbuf, Mempool, MempoolEmptyError
from repro.dpdk.ring import RteRing
from repro.dpdk.eal import Eal, EalConfig, EalProbeError
from repro.dpdk.pmd import E1000Pmd, PmdLaunchError, RxMbuf

__all__ = [
    "HugepageAllocator",
    "Mbuf",
    "Mempool",
    "MempoolEmptyError",
    "RteRing",
    "Eal",
    "EalConfig",
    "EalProbeError",
    "E1000Pmd",
    "PmdLaunchError",
    "RxMbuf",
]
