"""The e1000 poll-mode driver.

Burst receive/transmit over the :class:`~repro.nic.i8254x.I8254xNic` model.
Launching the PMD requires a working Interrupt Mask Register — the PMD
masks all device interrupts at start-up, and the paper's fifth gem5 change
(§III.A.5) implements exactly the IMS/IMC read/write methods this needs.
"""

from __future__ import annotations


from typing import List, Sequence

from repro.dpdk.mempool import Mbuf, Mempool
from repro.net.packet import Packet
from repro.nic.i8254x import I8254xNic, REG_IMC
from repro.sim.ports import (
    KIND_APP,
    KIND_BUFFER,
    KIND_DRIVER,
    RequestPort,
    ResponsePort,
)


class PmdLaunchError(RuntimeError):
    """The PMD could not take control of the device."""


class RxMbuf:
    """One received packet as the application sees it.

    Slotted: one instance per harvested packet on the PMD hot path.
    """

    __slots__ = ("mbuf", "packet", "desc_addr")

    def __init__(self, mbuf: Mbuf, packet: Packet,
                 desc_addr: int) -> None:
        self.mbuf = mbuf
        self.packet = packet
        self.desc_addr = desc_addr

    def __repr__(self) -> str:
        return (f"RxMbuf(mbuf={self.mbuf!r}, packet={self.packet!r}, "
                f"desc_addr={self.desc_addr!r})")


class E1000Pmd:
    """Polling-mode driver bound to one NIC port."""

    def __init__(self, nic: I8254xNic, mempool: Mempool) -> None:
        if nic.driver_name != "uio_pci_generic":
            raise PmdLaunchError(
                f"{nic.name} is not bound to uio_pci_generic; bind it first "
                "(dpdk-devbind.py -b uio_pci_generic <BDF>)")
        self.nic = nic
        self.mempool = mempool
        self.name = f"{nic.name}.pmd"
        self.device_port = RequestPort(self, "device_port", KIND_DRIVER)
        self.mempool_port = RequestPort(self, "mempool_port", KIND_BUFFER)
        self.app_side = ResponsePort(
            self, "app_side", KIND_APP,
            hint="install a DPDK application on this PMD "
                 "(node.install_app / install_pipeline_app)")
        self._launch()
        # A PMD owns its device and buffer pool for its lifetime; record
        # both edges in the wiring graph once the launch has succeeded.
        self.device_port.bind(nic.driver_side)
        self.mempool_port.bind(mempool.client_side)
        self.rx_bursts = 0
        self.empty_rx_bursts = 0
        self.rx_packets = 0
        self.tx_packets = 0
        self.tx_ring_full_events = 0
        self._harvest_cursor = 0

    def _launch(self) -> None:
        # A PMD's first act is masking all interrupts; if the device's mask
        # register is not implemented this fails (baseline gem5, §III.A.5).
        self.nic.write_reg(REG_IMC, 0xFFFFFFFF)
        if not self.nic.interrupt_mask_operational():
            raise PmdLaunchError(
                f"{self.nic.name}: Interrupt Mask Register reads/writes are "
                "not implemented; the PMD cannot launch (the baseline gem5 "
                "limitation fixed in paper §III.A.5)")
        self.nic.write_reg(REG_IMC, 0xFFFFFFFF)   # leave interrupts masked
        self.nic.rx_buffer_source = self._rx_buffer_for
        self.nic.rx_notify = None                 # polling, not interrupts
        if not self.nic.nic_config.quirks.pmd_writeback_threshold_works:
            # Baseline gem5 + PMD: threshold registers are never programmed,
            # so the NIC only writes back when the whole descriptor cache is
            # used — packets DMA in 32-64 packet batches (§III.A.3).
            self.nic.rx_ring.writeback_threshold = \
                self.nic.rx_ring.desc_cache_size
            self.nic._wb_timer_disabled = True
        self.nic.tx_complete_notify = self._on_tx_complete

    # -- NIC-facing hooks -------------------------------------------------

    def _rx_buffer_for(self, packet: Packet):
        """Supply the next posted buffer's address for an incoming DMA.

        Returns None under mempool exhaustion (an application-side buffer
        leak or severe backlog): the NIC stalls its RX DMA rather than the
        simulation crashing — as hardware would."""
        mbuf = self.mempool.try_get()
        if mbuf is None:
            return None
        mbuf.packet = packet
        packet.meta["mbuf"] = mbuf
        return mbuf.data_addr

    def _on_tx_complete(self, packet: Packet) -> None:
        mbuf = packet.meta.pop("mbuf", None)
        if mbuf is not None:
            mbuf.free()

    # -- application API ---------------------------------------------------

    def rx_burst(self, max_count: int = 32) -> List[RxMbuf]:
        """rte_eth_rx_burst: harvest completed RX descriptors and
        replenish the ring."""
        self.rx_bursts += 1
        descs = self.nic.rx_ring.harvest(max_count)
        if not descs:
            self.empty_rx_bursts += 1
            return []
        self.nic.rx_replenish(len(descs))
        self.rx_packets += len(descs)
        out: List[RxMbuf] = []
        for desc in descs:
            mbuf = desc.packet.meta.get("mbuf")
            out.append(RxMbuf(mbuf=mbuf, packet=desc.packet,
                              desc_addr=self.nic.rx_ring.desc_addr(desc.index)))
        return out

    def tx_burst(self, frames: Sequence[RxMbuf]) -> int:
        """rte_eth_tx_burst: enqueue frames for transmission; returns how
        many the TX ring accepted.  Rejected frames stay owned by the
        caller (to retry or drop)."""
        sent = 0
        for frame in frames:
            if not self.nic.tx_enqueue(frame.mbuf.data_addr, frame.packet):
                self.tx_ring_full_events += 1
                break
            sent += 1
        self.tx_packets += sent
        return sent

    def tx_desc_addr(self, index: int) -> int:
        """Memory address of TX descriptor ``index``."""
        return self.nic.tx_ring.desc_addr(index)

    def free(self, frame: RxMbuf) -> None:
        """Drop a packet without transmitting (rte_pktmbuf_free)."""
        frame.packet.meta.pop("mbuf", None)
        frame.mbuf.free()

    # -- checkpoint support --------------------------------------------------

    def serialize_state(self) -> dict:
        return {
            "rx_bursts": self.rx_bursts,
            "empty_rx_bursts": self.empty_rx_bursts,
            "rx_packets": self.rx_packets,
            "tx_packets": self.tx_packets,
            "tx_ring_full_events": self.tx_ring_full_events,
            "harvest_cursor": self._harvest_cursor,
        }

    def deserialize_state(self, state: dict) -> None:
        self.rx_bursts = state["rx_bursts"]
        self.empty_rx_bursts = state["empty_rx_bursts"]
        self.rx_packets = state["rx_packets"]
        self.tx_packets = state["tx_packets"]
        self.tx_ring_full_events = state["tx_ring_full_events"]
        self._harvest_cursor = state["harvest_cursor"]
