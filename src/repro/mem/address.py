"""Physical address space layout.

Every memory structure in the simulated host — descriptor rings, mempool
buffers, socket buffers, kernel text, the key-value store's hash table —
lives in a named :class:`Region` carved out of one :class:`AddressSpace`.
Cache behaviour (and therefore all the cache-size sensitivity results)
emerges from the real addresses these regions produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Region:
    """A contiguous, aligned span of physical addresses."""

    name: str
    base: int
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"region {self.name} has size {self.size}")
        if self.base < 0:
            raise ValueError(f"region {self.name} has base {self.base}")

    @property
    def end(self) -> int:
        """One past the last byte."""
        return self.base + self.size

    def addr(self, offset: int) -> int:
        """Address at ``offset`` into the region (bounds-checked)."""
        if not 0 <= offset < self.size:
            raise ValueError(
                f"offset {offset} outside region {self.name} "
                f"(size {self.size})")
        return self.base + offset

    def wrap_addr(self, offset: int) -> int:
        """Address at ``offset`` modulo the region size (for cycling pools)."""
        return self.base + (offset % self.size)

    def contains(self, addr: int) -> bool:
        """Presence check (no LRU/counter side effects)."""
        return self.base <= addr < self.end


class AddressSpace:
    """A simple bump allocator of aligned regions."""

    def __init__(self, base: int = 0x1000_0000, alignment: int = 4096) -> None:
        self._next = base
        self.alignment = alignment
        self._regions: Dict[str, Region] = {}

    def allocate(self, name: str, size: int, alignment: int = 0) -> Region:
        """Allocate a new named region.  Names must be unique."""
        if name in self._regions:
            raise ValueError(f"region {name!r} already allocated")
        align = alignment or self.alignment
        base = (self._next + align - 1) // align * align
        region = Region(name=name, base=base, size=size)
        self._next = region.end
        self._regions[name] = region
        return region

    def region(self, name: str) -> Region:
        """Look up an allocated region by name."""
        return self._regions[name]

    def __contains__(self, name: str) -> bool:
        return name in self._regions
