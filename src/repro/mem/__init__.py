"""Memory hierarchy substrate.

Set-associative caches (L1I/L1D/L2/LLC) with LRU replacement, inclusive
back-invalidation and MSHR-limited miss parallelism; an LLC that supports
Direct Cache Access way-partitioning (ARM cache stashing, paper §III.A.4);
a multi-channel DDR4-style DRAM model with per-bank row-buffer tracking;
and bandwidth-server buses for the I/O (PCIe) and memory paths.
"""

from repro.mem.address import AddressSpace, Region
from repro.mem.cache import CacheConfig, SetAssocCache
from repro.mem.dram import DramConfig, DramModel
from repro.mem.hierarchy import AccessResult, HierarchyConfig, MemoryHierarchy
from repro.mem.xbar import BandwidthServer

__all__ = [
    "AddressSpace",
    "Region",
    "CacheConfig",
    "SetAssocCache",
    "DramConfig",
    "DramModel",
    "AccessResult",
    "HierarchyConfig",
    "MemoryHierarchy",
    "BandwidthServer",
]
