"""Multi-channel DRAM timing model.

Channels interleave at line granularity; each channel has banks with an
open-row policy.  A row hit costs CAS only; a row miss pays
precharge + activate + CAS.  Channel bandwidth is finite, so a saturated
channel queues requests.  This is the level of fidelity the paper's memory
channel sweep (Fig 17a-c) exercises: more channels add bandwidth, but
spreading a packet's lines across many channels costs row locality, which
is why the paper sees MSB degrade from 8 to 16 channels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class DramConfig:
    """DDR4-style channel/bank geometry and timings (nanoseconds)."""

    channels: int = 2
    banks_per_channel: int = 16
    row_size: int = 2048              # bytes of one row per channel
    line_size: int = 64
    t_cas_ns: float = 14.0            # row-hit access
    t_row_miss_ns: float = 42.0       # precharge + activate + CAS
    channel_bw_bytes_per_ns: float = 19.2   # DDR4-2400 x64: 19.2 GB/s
    queue_depth: int = 32

    def __post_init__(self) -> None:
        if self.channels < 1:
            raise ValueError("need at least one channel")
        if self.banks_per_channel < 1:
            raise ValueError("need at least one bank")
        if self.row_size < self.line_size:
            raise ValueError("row must hold at least one line")


class DramModel:
    """Tracks per-bank open rows and per-channel service time.

    Time is float nanoseconds internally; callers convert to ticks.  The
    model is a service-curve approximation: each access computes its latency
    from row state and the channel's queueing backlog, then advances the
    channel's busy horizon by the line transfer time.
    """

    def __init__(self, config: DramConfig, name: str = "dram") -> None:
        self.config = config
        self.name = name
        # open_rows[channel][bank] -> row id (or -1)
        self._open_rows: List[List[int]] = [
            [-1] * config.banks_per_channel for _ in range(config.channels)]
        self._channel_free_at: List[float] = [0.0] * config.channels
        self.row_hits = 0
        self.row_misses = 0
        self.reads = 0
        self.writes = 0
        self.busy_ns = 0.0

    def _map(self, addr: int) -> tuple:
        """(channel, bank, row) for a line address."""
        cfg = self.config
        line = addr // cfg.line_size
        channel = line % cfg.channels
        channel_line = line // cfg.channels
        lines_per_row = cfg.row_size // cfg.line_size
        row = channel_line // lines_per_row
        bank = row % cfg.banks_per_channel
        return channel, bank, row

    def access(self, addr: int, now_ns: float, is_write: bool = False) -> float:
        """Service one line access; returns its latency in nanoseconds."""
        cfg = self.config
        channel, bank, row = self._map(addr)
        if is_write:
            self.writes += 1
        else:
            self.reads += 1

        if self._open_rows[channel][bank] == row:
            self.row_hits += 1
            access_ns = cfg.t_cas_ns
        else:
            self.row_misses += 1
            access_ns = cfg.t_row_miss_ns
            self._open_rows[channel][bank] = row

        transfer_ns = cfg.line_size / cfg.channel_bw_bytes_per_ns
        start = max(now_ns, self._channel_free_at[channel])
        queue_ns = start - now_ns
        # Bound the modelled backlog: a real controller back-pressures the
        # requester once its queue fills rather than growing without limit.
        max_queue_ns = cfg.queue_depth * (cfg.t_cas_ns + transfer_ns)
        queue_ns = min(queue_ns, max_queue_ns)
        finish = max(now_ns, self._channel_free_at[channel]) + transfer_ns
        self._channel_free_at[channel] = finish
        self.busy_ns += transfer_ns
        return queue_ns + access_ns + transfer_ns

    @property
    def row_hit_rate(self) -> float:
        """Row-buffer hits as a fraction of accesses."""
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    def peak_bandwidth_bytes_per_ns(self) -> float:
        """Aggregate channel bandwidth."""
        return self.config.channels * self.config.channel_bw_bytes_per_ns

    def reset_counters(self) -> None:
        """Zero the measurement counters."""
        self.row_hits = 0
        self.row_misses = 0
        self.reads = 0
        self.writes = 0
        self.busy_ns = 0.0

    # -- checkpoint support --------------------------------------------------

    def serialize_state(self) -> dict:
        return {
            "open_rows": [list(banks) for banks in self._open_rows],
            "channel_free_at": list(self._channel_free_at),
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
            "reads": self.reads,
            "writes": self.writes,
            "busy_ns": self.busy_ns,
        }

    def deserialize_state(self, state: dict) -> None:
        if len(state["open_rows"]) != self.config.channels:
            raise ValueError(
                f"{self.name}: channel count changed "
                f"({len(state['open_rows'])} -> {self.config.channels})")
        self._open_rows = [list(banks) for banks in state["open_rows"]]
        self._channel_free_at = [float(t) for t in state["channel_free_at"]]
        self.row_hits = state["row_hits"]
        self.row_misses = state["row_misses"]
        self.reads = state["reads"]
        self.writes = state["writes"]
        self.busy_ns = state["busy_ns"]
