"""Bandwidth-limited interconnect links.

gem5 "connects the I/O bus directly to the memory controller" and the paper
attributes large-packet bottlenecks to "either the I/O bus (that loosely
models a PCIe bus between the NIC and CPU) or ... the memory subsystem"
(§VII.B).  A :class:`BandwidthServer` models such a link: a FIFO pipe with
fixed per-transfer latency and finite bytes/second, tracking a busy horizon
so back-to-back DMA transfers queue behind each other.
"""

from __future__ import annotations

from repro.sim.ports import KIND_BUS, ResponsePort


class BandwidthServer:
    """A work-conserving FIFO server over a fixed-bandwidth link.

    Time is integer ticks (picoseconds).  ``transfer`` reserves link time
    for a payload and returns (start_tick, finish_tick); the caller treats
    ``finish`` as the completion time of the transfer.
    """

    def __init__(self, name: str, bytes_per_sec: float, latency_ticks: int = 0) -> None:
        if bytes_per_sec <= 0:
            raise ValueError(f"{name}: bandwidth must be positive")
        if latency_ticks < 0:
            raise ValueError(f"{name}: latency must be non-negative")
        self.name = name
        self.bytes_per_sec = bytes_per_sec
        self.latency_ticks = latency_ticks
        # Devices (DMA engines) bind here to move bytes over this link.
        self.device_side = ResponsePort(self, "device_side", KIND_BUS,
                                        multi=True)
        self._free_at = 0
        self.bytes_moved = 0
        self.transfers = 0

    def occupancy_ticks(self, nbytes: int) -> int:
        """Link occupancy for ``nbytes`` (excludes fixed latency)."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        return round(nbytes * 1e12 / self.bytes_per_sec)

    def transfer(self, now: int, nbytes: int) -> tuple:
        """Reserve the link for ``nbytes`` starting no earlier than ``now``.

        Returns ``(start, finish)`` ticks; ``finish`` includes the fixed
        propagation latency.
        """
        start = max(now, self._free_at)
        busy = self.occupancy_ticks(nbytes)
        self._free_at = start + busy
        self.bytes_moved += nbytes
        self.transfers += 1
        return start, start + busy + self.latency_ticks

    def next_free(self, now: int) -> int:
        """Earliest tick a new transfer could start."""
        return max(now, self._free_at)

    def backlog_ticks(self, now: int) -> int:
        """How far the busy horizon extends beyond ``now``."""
        return max(0, self._free_at - now)

    def utilization(self, elapsed_ticks: int) -> float:
        """Fraction of ``elapsed_ticks`` the link spent transferring."""
        if elapsed_ticks <= 0:
            return 0.0
        busy = self.occupancy_ticks(self.bytes_moved)
        return min(1.0, busy / elapsed_ticks)

    def reset_counters(self) -> None:
        """Zero the measurement counters."""
        self.bytes_moved = 0
        self.transfers = 0

    # -- checkpoint support --------------------------------------------------

    def serialize_state(self) -> dict:
        return {"free_at": self._free_at, "bytes_moved": self.bytes_moved,
                "transfers": self.transfers}

    def deserialize_state(self, state: dict) -> None:
        self._free_at = state["free_at"]
        self.bytes_moved = state["bytes_moved"]
        self.transfers = state["transfers"]

    def __repr__(self) -> str:
        gbps = self.bytes_per_sec * 8 / 1e9
        return f"<BandwidthServer {self.name} {gbps:.1f}Gbps>"
