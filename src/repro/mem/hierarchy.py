"""The cache/DRAM hierarchy glue.

Mirrors the simulated system in Table I: split L1I/L1D, a unified inclusive
L2 (back-invalidates L1 on eviction), a *non-inclusive* LLC (an ARM-style
system-level cache) with optional DCA way partitioning, and multi-channel
DRAM behind it.

Core accesses return a split cost: cache pipeline *cycles* (which scale with
core frequency, as in gem5 where caches share the core clock domain) plus
DRAM *nanoseconds* (which do not).  DMA accesses are accounted in
nanoseconds only, since the NIC's DMA engine is not in the core clock
domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.mem.cache import (
    CacheConfig,
    CORE_PARTITION,
    IO_PARTITION,
    SetAssocCache,
)
from repro.mem.dram import DramConfig, DramModel
from repro.sim.ports import KIND_MEM, ResponsePort

LEVEL_L1 = "l1"
LEVEL_L2 = "l2"
LEVEL_LLC = "llc"
LEVEL_DRAM = "dram"


class AccessResult:
    """Cost of one core memory access.

    Slotted and treated as immutable: ``core_access`` is called once per
    simulated load/store/fetch (tens of thousands of times per short
    run), and cache-hit results are shared singletons — the cost of a
    hit at each level is a pure function of the configured latencies.
    """

    __slots__ = ("level", "cycles", "dram_ns")

    def __init__(self, level: str, cycles: int, dram_ns: float) -> None:
        self.level = level          # which level serviced it
        self.cycles = cycles        # cache pipeline cycles (core clock)
        self.dram_ns = dram_ns      # DRAM portion, ns (zero for hits)

    def __eq__(self, other) -> bool:
        if other.__class__ is not AccessResult:
            return NotImplemented
        return (self.level, self.cycles, self.dram_ns) == \
               (other.level, other.cycles, other.dram_ns)

    def __hash__(self) -> int:
        return hash((self.level, self.cycles, self.dram_ns))

    def __repr__(self) -> str:
        return (f"AccessResult(level={self.level!r}, "
                f"cycles={self.cycles!r}, dram_ns={self.dram_ns!r})")


@dataclass(frozen=True)
class HierarchyConfig:
    """Geometry of the whole hierarchy (Table I defaults)."""

    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="l1i", size=64 * 1024, assoc=4, latency_cycles=1, mshrs=2))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="l1d", size=64 * 1024, assoc=4, latency_cycles=2, mshrs=6))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="l2", size=1024 * 1024, assoc=8, latency_cycles=12, mshrs=16))
    llc: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="llc", size=4 * 1024 * 1024, assoc=16, latency_cycles=30,
        mshrs=32, reserved_io_ways=4))
    dram: DramConfig = field(default_factory=DramConfig)
    llc_ns_for_dma: float = 8.0   # LLC access time seen by the DMA engine
    # A demand load's DRAM trip includes the SoC fabric + memory-controller
    # round trip on top of device timing; DMA bursts amortize this across
    # whole packets and do not pay it per line.
    core_dram_extra_ns: float = 45.0

    @property
    def dca_enabled(self) -> bool:
        """DCA (cache stashing) is on when LLC ways are reserved for I/O."""
        return self.llc.reserved_io_ways > 0


class MemoryHierarchy:
    """L1I/L1D -> inclusive L2 -> LLC (with DCA partition) -> DRAM."""

    def __init__(self, config: Optional[HierarchyConfig] = None,
                 name: str = "hierarchy") -> None:
        self.config = config or HierarchyConfig()
        self.name = name
        cfg = self.config
        self.l1i = SetAssocCache(cfg.l1i)
        self.l1d = SetAssocCache(cfg.l1d)
        self.l2 = SetAssocCache(cfg.l2)
        self.llc = SetAssocCache(cfg.llc)
        self.dram = DramModel(cfg.dram, name=f"{name}.dram")
        # Cores above, DMA engines below; both are memory requestors and
        # may share the hierarchy (pipeline worker core, dual-mode client).
        self.cpu_side = ResponsePort(self, "cpu_side", KIND_MEM, multi=True)
        self.dma_side = ResponsePort(self, "dma_side", KIND_MEM, multi=True)
        # DMA-side counters (the Fig 13 "DMA leak" evidence).
        self.dma_lines_written = 0
        self.dma_lines_read = 0
        self.dma_llc_hits = 0       # TX reads served from LLC
        self.dma_leaked_lines = 0   # io-partition lines evicted by later DMA
        # Shared hit-cost singletons: the dominant core_access outcomes
        # allocate nothing.
        l2_cyc = cfg.l2.latency_cycles
        llc_cyc = cfg.llc.latency_cycles
        self._hit_l1i = AccessResult(LEVEL_L1, cfg.l1i.latency_cycles, 0.0)
        self._hit_l1d = AccessResult(LEVEL_L1, cfg.l1d.latency_cycles, 0.0)
        self._hit_l2 = {
            True: AccessResult(LEVEL_L2,
                               cfg.l1i.latency_cycles + l2_cyc, 0.0),
            False: AccessResult(LEVEL_L2,
                                cfg.l1d.latency_cycles + l2_cyc, 0.0),
        }
        self._hit_llc = {
            True: AccessResult(
                LEVEL_LLC, cfg.l1i.latency_cycles + l2_cyc + llc_cyc, 0.0),
            False: AccessResult(
                LEVEL_LLC, cfg.l1d.latency_cycles + l2_cyc + llc_cyc, 0.0),
        }

    # ------------------------------------------------------------------
    # Core-side accesses
    # ------------------------------------------------------------------

    def core_access(self, addr: int, now_ns: float = 0.0,
                    is_instr: bool = False,
                    is_write: bool = False) -> AccessResult:
        """One core load/store/fetch of the line containing ``addr``."""
        cfg = self.config
        l1 = self.l1i if is_instr else self.l1d
        if l1.lookup(addr):
            return self._hit_l1i if is_instr else self._hit_l1d
        if self.l2.lookup(addr):
            self._fill_l1(l1, addr)
            return self._hit_l2[is_instr]
        if self.llc.lookup(addr):
            self._fill_l2(addr)
            self._fill_l1(l1, addr)
            return self._hit_llc[is_instr]
        cycles = (l1.config.latency_cycles + cfg.l2.latency_cycles
                  + cfg.llc.latency_cycles)
        dram_ns = (self.dram.access(addr, now_ns, is_write=is_write)
                   + cfg.core_dram_extra_ns)
        self._fill_llc(addr)
        self._fill_l2(addr)
        self._fill_l1(l1, addr)
        return AccessResult(LEVEL_DRAM, cycles, dram_ns)

    # ------------------------------------------------------------------
    # Fills with inclusion maintenance
    # ------------------------------------------------------------------

    def _fill_l1(self, l1: SetAssocCache, addr: int) -> None:
        l1.insert(addr)

    def _fill_l2(self, addr: int) -> None:
        evicted = self.l2.insert(addr)
        if evicted is not None:
            # L2 is inclusive of both L1s (paper §VII.C): back-invalidate.
            self.l1i.invalidate(evicted)
            self.l1d.invalidate(evicted)

    def _fill_llc(self, addr: int) -> None:
        # The LLC is non-inclusive (as ARM system-level caches are): an
        # LLC eviction does not invalidate inner copies, so a large L2 is
        # useful even when it exceeds the LLC's core partition.
        self.llc.insert(addr, partition=CORE_PARTITION)

    # ------------------------------------------------------------------
    # DMA-side accesses (NIC <-> memory)
    # ------------------------------------------------------------------

    def dma_write_line(self, addr: int, now_ns: float = 0.0) -> float:
        """NIC writes one line of packet data toward memory.

        With DCA the line is stashed into the LLC's io partition; the inner
        caches' stale copies are invalidated.  Without DCA the line goes to
        DRAM and every cached copy is invalidated.  Returns nanoseconds of
        memory-side latency (the I/O bus cost is charged by the DMA engine).
        """
        self.dma_lines_written += 1
        self.l1d.invalidate(addr)
        self.l1i.invalidate(addr)
        if self.config.dca_enabled:
            self.l2.invalidate(addr)
            evicted = self.llc.insert(addr, partition=IO_PARTITION)
            if evicted is not None:
                # An unconsumed DMA line fell out of the partition: the core
                # will now have to fetch it from DRAM (a "DMA leak").
                self.dma_leaked_lines += 1
                # Writing the victim back consumes DRAM bandwidth.
                self.dram.access(evicted, now_ns, is_write=True)
            return self.config.llc_ns_for_dma
        self.l2.invalidate(addr)
        self.llc.invalidate(addr)
        return self.dram.access(addr, now_ns, is_write=True)

    def dma_read_line(self, addr: int, now_ns: float = 0.0) -> float:
        """NIC reads one line of TX packet data from memory."""
        self.dma_lines_read += 1
        if self.llc.contains(addr):
            self.dma_llc_hits += 1
            # Refresh LRU so hot TX buffers stay resident.
            self.llc.lookup(addr)
            return self.config.llc_ns_for_dma
        return self.dram.access(addr, now_ns, is_write=False)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def llc_miss_rate(self) -> float:
        """Core-side LLC miss rate (Fig 13's right axis)."""
        return self.llc.miss_rate

    def reset_counters(self) -> None:
        """Zero the measurement counters."""
        for cache in (self.l1i, self.l1d, self.l2, self.llc):
            cache.reset_counters()
        self.dram.reset_counters()
        self.dma_lines_written = 0
        self.dma_lines_read = 0
        self.dma_llc_hits = 0
        self.dma_leaked_lines = 0

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------

    def serialize_state(self) -> dict:
        return {
            "l1i": self.l1i.serialize_state(),
            "l1d": self.l1d.serialize_state(),
            "l2": self.l2.serialize_state(),
            "llc": self.llc.serialize_state(),
            "dram": self.dram.serialize_state(),
            "dma_lines_written": self.dma_lines_written,
            "dma_lines_read": self.dma_lines_read,
            "dma_llc_hits": self.dma_llc_hits,
            "dma_leaked_lines": self.dma_leaked_lines,
        }

    def deserialize_state(self, state: dict) -> None:
        self.l1i.deserialize_state(state["l1i"])
        self.l1d.deserialize_state(state["l1d"])
        self.l2.deserialize_state(state["l2"])
        self.llc.deserialize_state(state["llc"])
        self.dram.deserialize_state(state["dram"])
        self.dma_lines_written = state["dma_lines_written"]
        self.dma_lines_read = state["dma_lines_read"]
        self.dma_llc_hits = state["dma_llc_hits"]
        self.dma_leaked_lines = state["dma_leaked_lines"]

    def invariant_failures(self):
        """DMA-side accounting sanity; a list of messages, empty when OK.
        These counters all reset together in ``reset_counters`` so their
        relations hold at any instant."""
        fails = []
        for label, value in (("dma_lines_written", self.dma_lines_written),
                             ("dma_lines_read", self.dma_lines_read),
                             ("dma_llc_hits", self.dma_llc_hits),
                             ("dma_leaked_lines", self.dma_leaked_lines)):
            if value < 0:
                fails.append(f"negative {label} ({value})")
        if self.dma_llc_hits > self.dma_lines_read:
            fails.append(
                f"DMA LLC hits ({self.dma_llc_hits}) exceed DMA line "
                f"reads ({self.dma_lines_read})")
        if self.dma_leaked_lines > self.dma_lines_written:
            fails.append(
                f"DMA leaked lines ({self.dma_leaked_lines}) exceed DMA "
                f"line writes ({self.dma_lines_written})")
        return fails
