"""Set-associative cache with LRU replacement and way partitioning.

The LLC's ``reserved_ways`` support models Direct Cache Access / ARM cache
stashing as the paper configures it: "DCA uses 4 out of 16 ways of LLC for
network data" (§VII.C).  Lines inserted with ``partition='io'`` may only
occupy the reserved ways; core lines may only occupy the remainder, so
heavy DMA traffic can never wash out the application's working set — but an
RX ring larger than the reserved partition *does* leak DMA lines to DRAM
before the core consumes them (the Fig 13 "DMA leak" effect).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

CORE_PARTITION = "core"
IO_PARTITION = "io"


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str
    size: int                  # bytes
    assoc: int
    latency_cycles: int        # hit latency, in core cycles
    mshrs: int = 8             # outstanding-miss limit presented to the core
    line_size: int = 64
    reserved_io_ways: int = 0  # >0 enables the DCA partition

    def __post_init__(self) -> None:
        if self.size <= 0 or self.assoc <= 0 or self.line_size <= 0:
            raise ValueError(f"bad cache geometry for {self.name}")
        if self.size % (self.assoc * self.line_size):
            raise ValueError(
                f"{self.name}: size {self.size} not divisible by "
                f"assoc*line ({self.assoc}*{self.line_size})")
        if not 0 <= self.reserved_io_ways < self.assoc:
            raise ValueError(
                f"{self.name}: reserved_io_ways {self.reserved_io_ways} "
                f"must be < assoc {self.assoc}")

    @property
    def num_sets(self) -> int:
        """Number of cache sets implied by the geometry."""
        return self.size // (self.assoc * self.line_size)


class SetAssocCache:
    """An LRU set-associative cache over line addresses.

    Sets are plain dicts used as ordered LRU lists (oldest first); a lookup
    hit re-inserts the tag at the back.  This is the fastest pure-Python LRU
    and the simulation performs millions of these probes.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.name = config.name
        self._line_shift = config.line_size.bit_length() - 1
        if (1 << self._line_shift) != config.line_size:
            raise ValueError(f"{config.name}: line size must be a power of 2")
        self._num_sets = config.num_sets
        self._core_ways = config.assoc - config.reserved_io_ways
        self._io_ways = config.reserved_io_ways
        # One LRU dict per set per partition.  The io partition list is only
        # materialized when DCA is configured.
        self._core_sets: List[Dict[int, None]] = [
            {} for _ in range(self._num_sets)]
        self._io_sets: Optional[List[Dict[int, None]]] = (
            [{} for _ in range(self._num_sets)] if self._io_ways else None)
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- geometry -----------------------------------------------------------

    def line_addr(self, addr: int) -> int:
        """Line-aligned address."""
        return (addr >> self._line_shift) << self._line_shift

    def _index_tag(self, addr: int) -> tuple:
        line = addr >> self._line_shift
        return line % self._num_sets, line

    # -- probes -------------------------------------------------------------

    def lookup(self, addr: int, update_lru: bool = True) -> bool:
        """Probe for ``addr``; updates hit/miss counters and LRU order.

        ``_index_tag`` is inlined here: this is the hottest function in a
        packet-processing run (every core access probes two or three
        cache levels).
        """
        tag = addr >> self._line_shift
        index = tag % self._num_sets
        cset = self._core_sets[index]
        if tag in cset:
            self.hits += 1
            if update_lru:
                del cset[tag]
                cset[tag] = None
            return True
        if self._io_sets is not None:
            ioset = self._io_sets[index]
            if tag in ioset:
                self.hits += 1
                if update_lru:
                    del ioset[tag]
                    ioset[tag] = None
                return True
        self.misses += 1
        return False

    def contains(self, addr: int) -> bool:
        """Presence check without disturbing LRU or counters."""
        index, tag = self._index_tag(addr)
        if tag in self._core_sets[index]:
            return True
        return (self._io_sets is not None
                and tag in self._io_sets[index])

    def insert(self, addr: int, partition: str = CORE_PARTITION) -> Optional[int]:
        """Insert the line holding ``addr``; returns the evicted line address
        (or None).  Inserting a line already present refreshes its LRU slot.
        """
        index, tag = self._index_tag(addr)
        if partition == IO_PARTITION and self._io_sets is not None:
            target, capacity = self._io_sets[index], self._io_ways
            # A line cannot live in both partitions.
            self._core_sets[index].pop(tag, None)
        else:
            target, capacity = self._core_sets[index], self._core_ways
            if self._io_sets is not None:
                self._io_sets[index].pop(tag, None)
        if tag in target:
            del target[tag]
            target[tag] = None
            return None
        evicted = None
        if len(target) >= capacity:
            victim = next(iter(target))
            del target[victim]
            self.evictions += 1
            evicted = victim << self._line_shift
        target[tag] = None
        return evicted

    def invalidate(self, addr: int) -> bool:
        """Drop the line holding ``addr`` if present; True if it was.

        Like ``lookup``, inlines ``_index_tag`` — DMA writes invalidate
        every inner level per line, so this runs per DMA'd cache line.
        """
        tag = addr >> self._line_shift
        index = tag % self._num_sets
        cset = self._core_sets[index]
        if tag in cset:
            del cset[tag]
            return True
        if self._io_sets is not None:
            ioset = self._io_sets[index]
            if tag in ioset:
                del ioset[tag]
                return True
        return False

    def flush(self) -> None:
        """Empty the cache (keeps counters)."""
        for cset in self._core_sets:
            cset.clear()
        if self._io_sets is not None:
            for ioset in self._io_sets:
                ioset.clear()

    # -- stats ---------------------------------------------------------------

    @property
    def accesses(self) -> int:
        """Total lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Misses as a fraction of lookups."""
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset_counters(self) -> None:
        """Zero the measurement counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def occupancy(self) -> int:
        """Number of resident lines."""
        total = sum(len(s) for s in self._core_sets)
        if self._io_sets is not None:
            total += sum(len(s) for s in self._io_sets)
        return total

    # -- checkpoint support --------------------------------------------------

    def serialize_state(self) -> dict:
        """Tags per set in LRU order (oldest first) plus counters; the
        insertion order of the dicts *is* the replacement state, so a
        faithful restore just re-inserts in the same order."""
        return {
            "core_sets": [list(cset) for cset in self._core_sets],
            "io_sets": ([list(ioset) for ioset in self._io_sets]
                        if self._io_sets is not None else None),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def deserialize_state(self, state: dict) -> None:
        if len(state["core_sets"]) != self._num_sets:
            raise ValueError(
                f"{self.name}: set count changed "
                f"({len(state['core_sets'])} -> {self._num_sets})")
        if (state["io_sets"] is None) != (self._io_sets is None):
            raise ValueError(
                f"{self.name}: DCA partitioning changed across checkpoint")
        self._core_sets = [{tag: None for tag in tags}
                           for tags in state["core_sets"]]
        if self._io_sets is not None:
            self._io_sets = [{tag: None for tag in tags}
                             for tags in state["io_sets"]]
        self.hits = state["hits"]
        self.misses = state["misses"]
        self.evictions = state["evictions"]

    def __repr__(self) -> str:
        cfg = self.config
        return (f"<SetAssocCache {cfg.name} {cfg.size // 1024}KiB "
                f"{cfg.assoc}-way>")
