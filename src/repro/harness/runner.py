"""Run primitives: build a node, load it, collect results.

Methodology mirrors the paper's §VI.A: the node is warmed up under load,
statistics are reset, a measured window runs, then the wire drains before
results are read.
"""

from __future__ import annotations

import difflib
import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.apps.iperf import IperfServer
from repro.apps.memcached_dpdk import MemcachedDpdk
from repro.apps.memcached_kernel import MemcachedKernel
from repro.apps.rxptx import RxPTx
from repro.apps.testpmd import TestPmd
from repro.apps.touchdrop import TouchDrop
from repro.apps.touchfwd import TouchFwd
from repro.harness.warmup_cache import (
    WarmupCache,
    warmup_cache_from_env,
    warmup_key,
)
from repro.kvstore.store import KvStore
from repro.loadgen.ether_load_gen import (
    SyntheticConfig,
    gbps_for_pps,
    pps_for_gbps,
)
from repro.loadgen.memcached_client import MemcachedClientConfig
from repro.sim.checkpoint import CheckpointError
from repro.sim.invariants import InvariantViolation
from repro.system.config import SystemConfig
from repro.system.node import DpdkNode, KernelNode, WarmupPlan

# app name -> (node class, app class, echoes responses)
APP_REGISTRY: Dict[str, Tuple[type, type, bool]] = {
    "testpmd": (DpdkNode, TestPmd, True),
    "touchfwd": (DpdkNode, TouchFwd, True),
    "touchdrop": (DpdkNode, TouchDrop, False),
    "rxptx": (DpdkNode, RxPTx, True),
    "memcached_dpdk": (DpdkNode, MemcachedDpdk, True),
    "iperf": (KernelNode, IperfServer, True),
    "memcached_kernel": (KernelNode, MemcachedKernel, True),
}


def build_node(config: SystemConfig, app_name: str,
               app_options: Optional[dict] = None, seed: int = 0):
    """Build a ready-to-run Test Node for a registered application.

    Memcached apps get a KvStore created in the node's address space
    automatically.
    """
    if app_name not in APP_REGISTRY:
        close = difflib.get_close_matches(app_name, APP_REGISTRY, n=1)
        suggestion = f" (did you mean {close[0]!r}?)" if close else ""
        raise ValueError(
            f"unknown app {app_name!r}{suggestion}; expected one of "
            f"{sorted(APP_REGISTRY)}")
    node_class, app_class, _echoes = APP_REGISTRY[app_name]
    node = node_class(config, seed=seed)
    options = dict(app_options or {})
    if app_name in ("memcached_dpdk", "memcached_kernel") \
            and "store" not in options:
        options["store"] = KvStore(node.address_space)
    node.install_app(app_class, **options)
    # Catch wiring regressions at build time: every non-external port of
    # the assembled node must be bound before any load is offered.
    node.validate_wiring()
    return node


def _finalize_run(node) -> str:
    """End-of-run bookkeeping shared by every runner entry point: assert
    the registered invariants (final mode), export the trace when
    ``REPRO_TRACE_PATH`` asks for one, and return the trace digest (empty
    string when tracing is off).

    The export path is last-writer-wins: point it at a single run, not a
    sweep.
    """
    node.sim.invariants.check(final=True)
    tracer = node.sim.tracer
    if not tracer.enabled:
        return ""
    trace_path = os.environ.get("REPRO_TRACE_PATH")
    if trace_path:
        tracer.write_jsonl(trace_path)
    return tracer.digest()


def _check_result_sanity(node, name: str, sent: int, delivered: int,
                         drop_breakdown: Dict[str, float],
                         latency_us: Dict[str, float]) -> None:
    """Harness-level cross-checks on the numbers a run reports.  These
    live outside the simulation (they constrain the *result*, not the
    machine state) but honour the same mode switch."""
    if node.sim.invariants.mode == "off":
        return
    fails = []
    if not 0 <= delivered <= sent:
        fails.append(f"delivered {delivered} outside [0, sent {sent}]")
    # The fractional breakdown sums to 1 when any drops occurred, and to
    # exactly 0 for a clean run.
    share = sum(drop_breakdown.values())
    if drop_breakdown and not (share == 0.0 or 0.999 < share < 1.001):
        fails.append(
            f"drop-cause breakdown sums to {share:.6f}, not 0 or 1: "
            f"{drop_breakdown}")
    count = latency_us.get("count", 0)
    if count > delivered:
        fails.append(
            f"latency samples ({count:g}) exceed delivered "
            f"packets ({delivered})")
    if count:
        low = latency_us.get("min", 0.0)
        high = latency_us.get("max", 0.0)
        mean = latency_us.get("mean", 0.0)
        # The running mean accumulates float rounding; tolerate it.
        slack = 1e-9 * max(1.0, abs(high))
        if not (0 <= low <= high
                and low - slack <= mean <= high + slack):
            fails.append(f"latency summary not ordered: {latency_us}")
    if fails:
        raise InvariantViolation(
            [f"harness.{name}: {msg}" for msg in fails],
            tick=node.sim.now, phase="harness")


@dataclass
class FixedLoadResult:
    """Outcome of one fixed-rate run."""

    label: str
    app: str
    packet_size: int
    offered_gbps: float
    delivered_gbps: float
    drop_rate: float
    sent: int
    delivered: int
    drop_breakdown: Dict[str, float] = field(default_factory=dict)
    latency_us: Dict[str, float] = field(default_factory=dict)
    llc_miss_rate: float = 0.0
    dma_leaked_lines: int = 0
    # The node's measured packet service rate during the window (the
    # saturation throughput; equals the MSB when the node is overloaded).
    service_gbps: float = 0.0
    # SHA-256 of the run's exported trace; empty when tracing was off.
    # Equal (config, seed) runs must produce equal digests.
    trace_digest: str = ""

    @property
    def mean_latency_us(self) -> float:
        """Mean round-trip latency in microseconds."""
        return self.latency_us.get("mean", 0.0)

    @classmethod
    def from_dict(cls, data: dict) -> "FixedLoadResult":
        """Rebuild from ``dataclasses.asdict`` output (the shape the
        parallel executor's cache and workers exchange)."""
        return cls(**data)


def _effective_rate(config: SystemConfig, gbps: float,
                    packet_size: int) -> float:
    """Clamp the offered rate by the software load-generator ceiling when
    the platform uses one (the altra/Pktgen client bottleneck, Fig 6)."""
    if config.software_loadgen_max_pps is None:
        return gbps
    pps = pps_for_gbps(gbps, packet_size)
    pps = min(pps, config.software_loadgen_max_pps)
    return gbps_for_pps(pps, packet_size)


#: The canonical warm-up rate (Gbps, before the software-loadgen clamp).
#: Deliberately independent of the measured offered load so every point
#: of a load sweep shares one post-warm-up machine state — the property
#: the warm-up checkpoint cache is built on.
CANONICAL_WARM_GBPS = 8.0


def _fixed_load_plan(config: SystemConfig, packet_size: int, echoes: bool,
                     warmup_us: Optional[float]) -> WarmupPlan:
    """The load-independent warm-up plan for a fixed-rate run."""
    return WarmupPlan(
        min_warm_us=max(warmup_us if warmup_us is not None
                        else config.warmup_us,
                        config.link_delay_us + 100.0),
        warm_packet_target=500,
        packet_size=packet_size,
        warm_rate_gbps=_effective_rate(config, CANONICAL_WARM_GBPS,
                                       packet_size),
        expect_responses=echoes,
    )


def prewarm_fixed_load(config: SystemConfig, app_name: str,
                       packet_size: int,
                       app_options: Optional[dict] = None,
                       warmup_us: Optional[float] = None,
                       seed: int = 0,
                       warmup_cache: Optional[WarmupCache] = None) -> bool:
    """Populate the warm-up checkpoint cache for a fixed-rate run without
    running a measured window.

    Exactly the warm-up block of :func:`run_fixed_load` (same key, same
    plan, same checkpoint metadata), stopped right after the snapshot is
    sealed.  The persistent-worker sweep executor calls this in the
    *parent* before forking workers: the snapshot lands in the shared
    :class:`~repro.harness.warmup_cache.WarmupCache` memo, so every
    forked worker inherits the parsed document through copy-on-write
    memory instead of racing to simulate (or re-read) it per point.

    Returns True when a fresh snapshot was simulated and stored, False
    on a cache hit or when no cache is configured.
    """
    cache = warmup_cache if warmup_cache is not None \
        else warmup_cache_from_env()
    if cache is None:
        return False
    node = build_node(config, app_name, app_options, seed=seed)
    node.attach_loadgen()
    _node_class, _app_class, echoes = APP_REGISTRY[app_name]
    plan = _fixed_load_plan(config, packet_size, echoes, warmup_us)
    key = warmup_key(config, app_name, packet_size, app_options, plan,
                     seed, node.sim.tracer._options_signature())
    if cache.get(key) is not None:
        return False
    node.start()
    node.warmup_and_reset(plan)
    cache.put(key, node.checkpoint(
        extra_meta={"phase": "warmup", "packet_size": packet_size}))
    cache.get(key)   # validated read-back seeds the in-memory memo
    return True


def run_fixed_load(config: SystemConfig, app_name: str, packet_size: int,
                   gbps: float, n_packets: int = 2000,
                   app_options: Optional[dict] = None,
                   warmup_us: Optional[float] = None,
                   seed: int = 0,
                   warmup_cache: Optional[WarmupCache] = None
                   ) -> FixedLoadResult:
    """Load the node at a fixed rate and measure drops/latency.

    Warm-up runs at the canonical (load-independent) rate, drains to
    quiescence, and resets statistics; with ``warmup_cache`` (or the
    ``REPRO_WARMUP_CACHE`` environment variable) set, that post-warm-up
    state is checkpointed once and restored on every later run with the
    same key — bit-identical to warming up from scratch.
    """
    node = build_node(config, app_name, app_options, seed=seed)
    loadgen = node.attach_loadgen()
    _node_class, _app_class, echoes = APP_REGISTRY[app_name]
    effective_gbps = _effective_rate(config, gbps, packet_size)
    plan = _fixed_load_plan(config, packet_size, echoes, warmup_us)
    cache = warmup_cache if warmup_cache is not None \
        else warmup_cache_from_env()
    key = None
    restored = False
    if cache is not None:
        key = warmup_key(config, app_name, packet_size, app_options, plan,
                         seed, node.sim.tracer._options_signature())
        snapshot = cache.get(key)
        if snapshot is not None:
            try:
                node.restore(snapshot)
                restored = True
            except CheckpointError:
                # Schema drift that survived the digest check (a snapshot
                # from a different code version): drop it and warm up from
                # scratch on a rebuilt node (restore may have partially
                # mutated this one).
                cache.discard(key)
                node = build_node(config, app_name, app_options, seed=seed)
                loadgen = node.attach_loadgen()
    if not restored:
        node.start()
        node.warmup_and_reset(plan)
        if cache is not None:
            cache.put(key, node.checkpoint(
                extra_meta={"phase": "warmup", "packet_size": packet_size}))

    # Measured phase — identical code whether the warm-up was simulated
    # or restored from a checkpoint.
    loadgen.start_synthetic(SyntheticConfig(
        packet_size=packet_size,
        rate_gbps=effective_gbps,
        count=None,
        expect_responses=echoes,
    ))
    # Measured window: enough sends for n_packets AND enough processed
    # packets for a stable steady-state service-rate estimate.  The
    # measurement starts from quiescence, so the service-rate clock only
    # starts once the pipeline has ramped — the first packet needs a
    # link flight to even reach the node, and under overload the rings
    # must fill before the app runs back-to-back; counting that dead
    # time would underestimate the node's capacity.
    pps = pps_for_gbps(effective_gbps, packet_size)
    window_us = max(n_packets / pps * 1e6, 300.0)
    ramp_us = config.link_delay_us + 50.0
    node.run_us(ramp_us)
    service_base = node.app.packets_processed
    node.run_us(window_us)
    min_processed = 400
    for _ in range(80):
        if node.app.packets_processed - service_base >= min_processed:
            break
        node.run_us(250.0)
        window_us += 250.0
    processed_in_window = node.app.packets_processed - service_base
    service_gbps = (processed_in_window / (window_us * 1e-6)
                    * packet_size * 8 / 1e9)
    loadgen.stop()
    # Drain: the round trip plus however long the node needs to work
    # through its queued backlog (heavily-overloaded runs hold hundreds of
    # packets in the FIFO and rings).
    node.run_us(2 * config.link_delay_us + 200.0)
    for _ in range(40):
        nic = node.nic
        if (len(nic.rx_fifo) == 0 and nic.rx_ring.completed_count == 0
                and nic.rx_ring.pending_writeback_count == 0
                and nic.tx_ring.occupancy == 0):
            break
        node.run_us(200.0)
    node.run_us(2 * config.link_delay_us + 100.0)
    trace_digest = _finalize_run(node)

    sent = loadgen.tx_packets
    if echoes:
        delivered = loadgen.rx_packets
    else:
        delivered = min(sent, node.app.packets_processed)
    drop_rate = max(0.0, 1.0 - delivered / sent) if sent else 0.0
    breakdown = node.nic.drop_fsm.breakdown()
    latency = loadgen.latency.summary()
    _check_result_sanity(node, "fixed_load", sent, delivered,
                         breakdown, latency)
    return FixedLoadResult(
        label=config.label,
        app=app_name,
        packet_size=packet_size,
        offered_gbps=effective_gbps,
        delivered_gbps=effective_gbps * (1.0 - drop_rate),
        drop_rate=drop_rate,
        sent=sent,
        delivered=delivered,
        drop_breakdown=breakdown,
        latency_us=latency,
        llc_miss_rate=node.hierarchy.llc_miss_rate(),
        dma_leaked_lines=node.hierarchy.dma_leaked_lines,
        service_gbps=service_gbps,
        trace_digest=trace_digest,
    )


@dataclass
class MemcachedRunResult:
    """Outcome of one memcached run."""

    label: str
    kernel: bool
    offered_rps: float
    achieved_rps: float
    drop_rate: float
    requests_sent: int
    responses: int
    latency_us: Dict[str, float] = field(default_factory=dict)
    get_hits: int = 0
    get_misses: int = 0
    drop_breakdown: Dict[str, float] = field(default_factory=dict)
    # SHA-256 of the run's exported trace; empty when tracing was off.
    trace_digest: str = ""

    @property
    def mean_latency_us(self) -> float:
        """Mean round-trip latency in microseconds."""
        return self.latency_us.get("mean", 0.0)

    @property
    def delivered_rps(self) -> float:
        """Offered rate scaled by the delivered fraction."""
        return self.offered_rps * (1.0 - self.drop_rate)

    @classmethod
    def from_dict(cls, data: dict) -> "MemcachedRunResult":
        """Rebuild from ``dataclasses.asdict`` output (the shape the
        parallel executor's cache and workers exchange)."""
        return cls(**data)


#: Canonical memcached warm-up: a fixed comfortable request rate,
#: independent of the measured offered rate (see CANONICAL_WARM_GBPS).
CANONICAL_WARM_REQUESTS = 400
CANONICAL_WARM_RPS = 120_000.0


def _memcached_plan(config: SystemConfig) -> WarmupPlan:
    """The load-independent warm-up plan for a memcached run."""
    return WarmupPlan(
        min_warm_us=(CANONICAL_WARM_REQUESTS / CANONICAL_WARM_RPS * 1e6
                     + 500.0),
        warm_packet_target=CANONICAL_WARM_REQUESTS,
        warm_requests=CANONICAL_WARM_REQUESTS,
        warm_rate_rps=CANONICAL_WARM_RPS,
    )


def prewarm_memcached(config: SystemConfig, kernel: bool,
                      client_config: Optional[MemcachedClientConfig] = None,
                      seed: int = 0,
                      warmup_cache: Optional[WarmupCache] = None) -> bool:
    """Populate the warm-up checkpoint cache for a memcached run.

    The counterpart of :func:`prewarm_fixed_load`: the warm-up block of
    :func:`run_memcached` without the measured request phase.  The warm
    key excludes the measured rate and request count, so the attached
    client here runs at the canonical warm-up rate — any later measured
    rate restores the same snapshot.

    Returns True when a fresh snapshot was simulated and stored, False
    on a cache hit or when no cache is configured.
    """
    cache = warmup_cache if warmup_cache is not None \
        else warmup_cache_from_env()
    if cache is None:
        return False
    app_name = "memcached_kernel" if kernel else "memcached_dpdk"
    base = client_config or MemcachedClientConfig()
    node = build_node(config, app_name, seed=seed)
    client = node.attach_memcached_client(MemcachedClientConfig(
        n_warm_keys=base.n_warm_keys,
        n_requests=CANONICAL_WARM_REQUESTS,
        get_fraction=base.get_fraction,
        size_min=base.size_min,
        size_max=base.size_max,
        size_skew=base.size_skew,
        rate_rps=CANONICAL_WARM_RPS,
        distribution=base.distribution,
    ))
    plan = _memcached_plan(config)
    warm_options = {"client": {
        "n_warm_keys": base.n_warm_keys,
        "get_fraction": base.get_fraction,
        "size_min": base.size_min,
        "size_max": base.size_max,
        "size_skew": base.size_skew,
        "distribution": base.distribution,
    }}
    key = warmup_key(config, app_name, 0, warm_options, plan, seed,
                     node.sim.tracer._options_signature())
    if cache.get(key) is not None:
        return False
    client.preload(node.app.store)
    node.start()
    node.warmup_and_reset(plan)
    cache.put(key, node.checkpoint(
        extra_meta={"phase": "warmup", "kernel": kernel}))
    cache.get(key)   # validated read-back seeds the in-memory memo
    return True


def run_memcached(config: SystemConfig, kernel: bool, rate_rps: float,
                  n_requests: int = 4000,
                  client_config: Optional[MemcachedClientConfig] = None,
                  seed: int = 0,
                  warmup_cache: Optional[WarmupCache] = None
                  ) -> MemcachedRunResult:
    """Load a memcached server (kernel or DPDK) at a fixed request rate."""
    app_name = "memcached_kernel" if kernel else "memcached_dpdk"
    base = client_config or MemcachedClientConfig()

    def make_client_config() -> MemcachedClientConfig:
        return MemcachedClientConfig(
            n_warm_keys=base.n_warm_keys,
            n_requests=n_requests,
            get_fraction=base.get_fraction,
            size_min=base.size_min,
            size_max=base.size_max,
            size_skew=base.size_skew,
            rate_rps=rate_rps,
            distribution=base.distribution,
        )

    node = build_node(config, app_name, seed=seed)
    client = node.attach_memcached_client(make_client_config())
    plan = _memcached_plan(config)
    # Only the warm-relevant client parameters key the snapshot: the
    # measured rate and request count start after the checkpoint moment.
    warm_options = {"client": {
        "n_warm_keys": base.n_warm_keys,
        "get_fraction": base.get_fraction,
        "size_min": base.size_min,
        "size_max": base.size_max,
        "size_skew": base.size_skew,
        "distribution": base.distribution,
    }}
    cache = warmup_cache if warmup_cache is not None \
        else warmup_cache_from_env()
    key = None
    restored = False
    if cache is not None:
        key = warmup_key(config, app_name, 0, warm_options, plan, seed,
                         node.sim.tracer._options_signature())
        snapshot = cache.get(key)
        if snapshot is not None:
            try:
                node.restore(snapshot)
                restored = True
            except CheckpointError:
                cache.discard(key)
                node = build_node(config, app_name, seed=seed)
                client = node.attach_memcached_client(make_client_config())
    if not restored:
        client.preload(node.app.store)   # functional warm-up (5000 keys)
        node.start()
        # Packet-driven warm-up: bring caches/BTB-analogue state to steady
        # state at a comfortable rate before measuring (paper §VI.A).
        node.warmup_and_reset(plan)
        if cache is not None:
            cache.put(key, node.checkpoint(
                extra_meta={"phase": "warmup", "kernel": kernel}))

    # Measured phase — identical code whether the warm-up was simulated
    # or restored from a checkpoint.
    client.start()
    # Run to completion of the request phase, then drain the backlog.
    duration_us = n_requests / rate_rps * 1e6
    node.run_us(duration_us + 2 * config.link_delay_us + 500.0)
    for _ in range(40):
        nic = node.nic
        if (len(nic.rx_fifo) == 0 and nic.rx_ring.completed_count == 0
                and nic.rx_ring.pending_writeback_count == 0
                and nic.tx_ring.occupancy == 0):
            break
        node.run_us(200.0)
    node.run_us(2 * config.link_delay_us + 100.0)
    trace_digest = _finalize_run(node)
    # End-to-end drops under-count in short overloaded runs (the ring and
    # FIFO buffer a bounded backlog that eventually drains); the NIC's own
    # drop counter sees the steady-state loss directly.
    nic_drop_fraction = (node.nic.stat_rx_drops.value
                         / max(client.requests_sent, 1))
    breakdown = node.nic.drop_fsm.breakdown()
    latency = client.latency.summary()
    _check_result_sanity(node, "memcached", client.requests_sent,
                         client.responses_received, breakdown, latency)
    return MemcachedRunResult(
        label=config.label,
        kernel=kernel,
        offered_rps=rate_rps,
        achieved_rps=client.achieved_rps(),
        drop_rate=max(client.drop_rate, min(1.0, nic_drop_fraction)),
        requests_sent=client.requests_sent,
        responses=client.responses_received,
        latency_us=latency,
        get_hits=client.get_hits,
        get_misses=client.get_misses,
        drop_breakdown=breakdown,
        trace_digest=trace_digest,
    )
