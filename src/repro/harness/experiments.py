"""Per-figure experiment definitions.

One function per table/figure of the paper's evaluation.  Each returns
plain data structures (dicts/lists) that the corresponding benchmark
prints; EXPERIMENTS.md records the paper-vs-measured comparison.

Experiment scope knobs: most functions accept ``packet_sizes`` /
``n_packets`` style arguments so the benchmark suite can trade runtime
for resolution; defaults are sized to finish the whole suite in minutes.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.msb import bandwidth_sweep, find_msb
from repro.harness.runner import run_fixed_load, run_memcached
from repro.system.config import SystemConfig
from repro.system.presets import (
    altra,
    gem5_default,
    with_core,
    with_dca,
    with_dram_channels,
    with_frequency,
    with_l1_size,
    with_l2_size,
    with_llc_size,
    with_rob,
)

KIB = 1024
MIB = 1024 * 1024

# The six applications of the sensitivity figures (Figs 10-15) and their
# per-app saturation ceilings / options.
SENSITIVITY_APPS: List[Tuple[str, str, float, Optional[dict]]] = [
    ("testpmd", "TestPMD", 70.0, None),
    ("touchfwd", "TouchFwd", 20.0, None),
    ("iperf", "iperf", 16.0, None),
    ("rxptx-10ns", "RXpTX-10ns", 70.0, {"proc_time_ns": 10.0}),
    ("rxptx-1us", "RXpTX-1us", 70.0, {"proc_time_ns": 1000.0}),
]

SENSITIVITY_SIZES = [128, 256, 512, 1024, 1518]


def _app_name(key: str) -> str:
    return "rxptx" if key.startswith("rxptx") else key


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------

def table1_configs() -> Dict[str, Dict[str, object]]:
    """The simulated and real system configurations side by side."""
    rows = {}
    for config in (gem5_default(), altra()):
        hier = config.hierarchy
        rows[config.label] = {
            "Core freq": f"{config.core.freq_hz / 1e9:.0f}GHz",
            "Superscalar": f"{config.core.width} ways",
            "ROB/IQ entries": f"{config.core.rob_entries}/"
                              f"{config.core.iq_entries}",
            "LQ/SQ entries": f"{config.core.lq_entries}/"
                             f"{config.core.sq_entries}",
            "Branch predictor": config.core.branch_predictor,
            "BTB entries": config.core.btb_entries,
            "L1I/L1D": f"{hier.l1i.size // KIB}KB,{hier.l1i.assoc}/"
                       f"{hier.l1d.size // KIB}KB,{hier.l1d.assoc}",
            "L2": f"{hier.l2.size // MIB}MB,{hier.l2.assoc} ways",
            "L1I/L1D/L2 latency": f"{hier.l1i.latency_cycles}/"
                                  f"{hier.l1d.latency_cycles}/"
                                  f"{hier.l2.latency_cycles}",
            "L1I/L1D/L2 MSHRs": f"{hier.l1i.mshrs}/{hier.l1d.mshrs}/"
                                f"{hier.l2.mshrs}",
            "DRAM channels": hier.dram.channels,
            "DCA/DDIO": "enabled" if hier.dca_enabled else "disabled",
            "Network bandwidth": f"{config.link_bandwidth_bps / 1e9:.0f}Gbps",
            "Network latency": f"{config.link_delay_us:.0f}us",
            "Core type": "O3" if config.core.ooo else "in-order",
        }
    return rows


# ----------------------------------------------------------------------
# Fig 5 — drop-cause breakdown
# ----------------------------------------------------------------------

FIG5_WORKLOADS: List[Tuple[str, str, int, Optional[dict]]] = [
    ("TestPMD-64B", "testpmd", 64, None),
    ("TestPMD-256B", "testpmd", 256, None),
    ("TestPMD-1518B", "testpmd", 1518, None),
    ("TouchFwd-64B", "touchfwd", 64, None),
    ("TouchFwd-256B", "touchfwd", 256, None),
    ("TouchFwd-1518B", "touchfwd", 1518, None),
    ("TouchDrop-64B", "touchdrop", 64, None),
    ("TouchDrop-256B", "touchdrop", 256, None),
    ("TouchDrop-1518B", "touchdrop", 1518, None),
    ("RXpTX-10us", "rxptx", 256, {"proc_time_ns": 10000.0}),
    ("RXpTX-100ns", "rxptx", 256, {"proc_time_ns": 100.0}),
    ("RXpTX-10ns", "rxptx", 256, {"proc_time_ns": 10.0}),
]


def fig5_drop_breakdown(n_packets: int = 2000,
                        config: Optional[SystemConfig] = None
                        ) -> Dict[str, Dict[str, float]]:
    """Drop-cause fractions at the knee rate for each workload.

    "We set the network bandwidth to the knee of the bandwidth vs. packet
    drop rate curve, where we start seeing packet drops."
    """
    config = config or gem5_default()
    out: Dict[str, Dict[str, float]] = {}
    for label, app, size, options in FIG5_WORKLOADS:
        ceiling = 20.0 if app in ("touchfwd", "touchdrop") else 70.0
        if app == "touchdrop":
            # The knee is taken from the forwarding twin; TouchDrop itself
            # has no response stream to measure drops against.
            knee = find_msb(config, "touchfwd", size,
                            max_gbps=ceiling).msb_gbps
        else:
            knee = find_msb(config, app, size, max_gbps=ceiling,
                            app_options=options).msb_gbps
        # Push far enough past the knee that sustained overload defeats
        # the FIFO+ring buffering within the measured window.
        rate = max(knee * 1.3, 0.5)
        result = run_fixed_load(config, app, size, rate,
                                n_packets=max(n_packets, 5000),
                                app_options=options)
        out[label] = dict(result.drop_breakdown)
        out[label]["drop_rate"] = result.drop_rate
        out[label]["knee_gbps"] = knee
    # The two memcached workloads drive with the client personality.
    for label, kernel, probe_rps in (
            ("MemcachedDPDK", False, 900_000.0),
            ("MemcachedKernel", True, 320_000.0)):
        result = run_memcached(config, kernel, probe_rps,
                               n_requests=max(n_packets, 4000))
        out[label] = dict(result.drop_breakdown)
        out[label]["drop_rate"] = result.drop_rate
        out[label]["knee_gbps"] = 0.0
    return out


# ----------------------------------------------------------------------
# Figs 6-9 — bandwidth vs drop rate, gem5 vs altra
# ----------------------------------------------------------------------

def _bw_drop_figure(app: str, app_options: Optional[dict],
                    packet_sizes: Sequence[int],
                    rates: Sequence[float],
                    n_packets: int) -> Dict[str, List[Tuple[float, float]]]:
    series: Dict[str, List[Tuple[float, float]]] = {}
    for config in (altra(), gem5_default()):
        for size in packet_sizes:
            key = f"{size}-{config.label}"
            series[key] = bandwidth_sweep(
                config, app, size, rates_gbps=list(rates),
                n_packets=n_packets, app_options=app_options)
    return series


def fig6_testpmd_bw_drop(packet_sizes: Sequence[int] = (64, 256, 1518),
                         rates: Sequence[float] = (5, 15, 25, 35, 45, 55, 65),
                         n_packets: int = 1200):
    """TestPMD bandwidth vs drop rate, gem5 vs altra."""
    return _bw_drop_figure("testpmd", None, packet_sizes, rates, n_packets)


def fig7_touchfwd_bw_drop(packet_sizes: Sequence[int] = (64, 256, 1518),
                          rates: Sequence[float] = (2, 4, 6, 8, 10, 12, 14),
                          n_packets: int = 1200):
    """TouchFwd bandwidth vs drop rate, gem5 vs altra."""
    return _bw_drop_figure("touchfwd", None, packet_sizes, rates, n_packets)


def fig8_rxptx10ns_bw_drop(packet_sizes: Sequence[int] = (64, 256, 1518),
                           rates: Sequence[float] = (5, 15, 25, 35, 45, 55, 65),
                           n_packets: int = 1200):
    """RXpTX (10ns processing) bandwidth vs drop rate."""
    return _bw_drop_figure("rxptx", {"proc_time_ns": 10.0}, packet_sizes,
                           rates, n_packets)


def fig9_rxptx1us_bw_drop(packet_sizes: Sequence[int] = (64, 256, 1518),
                          rates: Sequence[float] = (2, 6, 10, 15, 25, 40, 55),
                          n_packets: int = 1200):
    """RXpTX (1us processing) bandwidth vs drop rate."""
    return _bw_drop_figure("rxptx", {"proc_time_ns": 1000.0}, packet_sizes,
                           rates, n_packets)


# ----------------------------------------------------------------------
# Figs 10-12 — cache size sensitivity
# ----------------------------------------------------------------------

def _cache_sensitivity(variants: Dict[str, SystemConfig],
                       packet_sizes: Sequence[int],
                       memcached_probe: Dict[str, float]
                       ) -> Dict[str, Dict[str, List[Tuple[int, float]]]]:
    """MSB per app per cache variant, plus memcached RPS."""
    out: Dict[str, Dict[str, List[Tuple[int, float]]]] = {}
    for app_key, app_label, ceiling, options in SENSITIVITY_APPS:
        app = _app_name(app_key)
        per_variant: Dict[str, List[Tuple[int, float]]] = {}
        for variant_label, config in variants.items():
            points = []
            for size in packet_sizes:
                msb = find_msb(config, app, size, max_gbps=ceiling,
                               app_options=options).msb_gbps
                points.append((size, msb))
            per_variant[variant_label] = points
        out[app_label] = per_variant
    # Memcached: requests/second at a probing overload.
    for label, kernel in (("MemcachedDPDK", False),
                          ("MemcachedKernel", True)):
        per_variant = {}
        for variant_label, config in variants.items():
            probe = memcached_probe["kernel" if kernel else "dpdk"]
            result = run_memcached(config, kernel, probe, n_requests=2500)
            krps = result.offered_rps * (1 - result.drop_rate) / 1e3
            per_variant[variant_label] = [(0, krps)]
        out[label] = per_variant
    return out


MEMCACHED_PROBE = {"dpdk": 900_000.0, "kernel": 330_000.0}


def fig10_l1_sensitivity(packet_sizes: Sequence[int] = (128, 512, 1518)):
    """MSB/RPS vs L1 cache size (16KiB - 1MiB)."""
    base = gem5_default()
    variants = {f"{s // KIB}KiB-L1": with_l1_size(base, s)
                for s in (16 * KIB, 128 * KIB, 256 * KIB, 1 * MIB)}
    return _cache_sensitivity(variants, packet_sizes, MEMCACHED_PROBE)


def fig11_l2_sensitivity(packet_sizes: Sequence[int] = (128, 512, 1518)):
    """MSB/RPS vs L2 cache size (256KiB - 8MiB)."""
    base = gem5_default()
    variants = {}
    for size in (256 * KIB, 1 * MIB, 4 * MIB, 8 * MIB):
        name = (f"{size // KIB}KiB-L2" if size < MIB
                else f"{size // MIB}MiB-L2")
        variants[name] = with_l2_size(base, size)
    return _cache_sensitivity(variants, packet_sizes, MEMCACHED_PROBE)


def fig12_llc_sensitivity(packet_sizes: Sequence[int] = (128, 512, 1518)):
    """MSB/RPS vs LLC size (4MiB - 64MiB)."""
    base = gem5_default()
    variants = {f"{s // MIB}MiB-LLC": with_llc_size(base, s)
                for s in (4 * MIB, 16 * MIB, 32 * MIB, 64 * MIB)}
    return _cache_sensitivity(variants, packet_sizes, MEMCACHED_PROBE)


# ----------------------------------------------------------------------
# Fig 13 — DCA policy: processing-time sweep with ring 4096
# ----------------------------------------------------------------------

def fig13_dca_proctime(
        packet_sizes: Sequence[int] = (64, 256, 1518),
        proc_times_ns: Sequence[float] = (10, 100, 300, 500, 700,
                                          1000, 3000, 5000, 10000),
        n_packets: int = 2500) -> Dict[str, List[Tuple[float, float, float]]]:
    """Drop rate and LLC miss rate vs per-burst processing time.

    Ring 4096 entries, LLC fixed at 1MiB, DCA 4/16 ways (256KiB of LLC
    for network data); rate fixed at each size's 10ns MSB.
    """
    base = with_llc_size(gem5_default(), 1 * MIB)
    config = base.variant(
        nic=replace(base.nic, rx_ring_size=4096, tx_ring_size=4096),
        mempool_mbufs=9000)
    # The measured window must overflow the 4096-entry ring for sustained
    # overload to surface as drops rather than buffered backlog.
    n_packets = max(n_packets, 3 * config.nic.rx_ring_size)
    out: Dict[str, List[Tuple[float, float, float]]] = {}
    for size in packet_sizes:
        rate = find_msb(config, "rxptx", size,
                        app_options={"proc_time_ns": 10.0}).msb_gbps
        rows = []
        for proc in proc_times_ns:
            result = run_fixed_load(
                config, "rxptx", size, rate, n_packets=n_packets,
                app_options={"proc_time_ns": float(proc)})
            rows.append((float(proc), result.drop_rate,
                         result.llc_miss_rate))
        out[f"{size}B"] = rows
    return out


# ----------------------------------------------------------------------
# Fig 14 — DCA on/off
# ----------------------------------------------------------------------

def fig14_dca_sensitivity(packet_sizes: Sequence[int] = SENSITIVITY_SIZES):
    """MSB/RPS with DCA enabled vs disabled."""
    base = gem5_default()
    variants = {"ddio-enabled": with_dca(base, True),
                "ddio-disabled": with_dca(base, False)}
    return _cache_sensitivity(variants, packet_sizes, MEMCACHED_PROBE)


# ----------------------------------------------------------------------
# Fig 15 — core frequency
# ----------------------------------------------------------------------

def fig15_frequency(packet_sizes: Sequence[int] = (128, 512, 1518),
                    freqs_ghz: Sequence[float] = (1.0, 2.0, 4.0)):
    """MSB/RPS vs core frequency."""
    base = gem5_default()
    variants = {f"{f:.0f}GHz": with_frequency(base, f * 1e9)
                for f in freqs_ghz}
    return _cache_sensitivity(variants, packet_sizes, MEMCACHED_PROBE)


# ----------------------------------------------------------------------
# Fig 16 — core microarchitecture
# ----------------------------------------------------------------------

def fig16_core_uarch(packet_sizes: Sequence[int] = (128, 1518)):
    """MSB/RPS for out-of-order vs in-order cores."""
    base = gem5_default()
    variants = {"OoO Core": with_core(base, ooo=True),
                "In-Order Core": with_core(base, ooo=False)}
    return _cache_sensitivity(variants, packet_sizes, MEMCACHED_PROBE)


# ----------------------------------------------------------------------
# Fig 17 — memory channels and ROB size
# ----------------------------------------------------------------------

def fig17_channels(packet_sizes: Sequence[int] = (128, 1518),
                   channels: Sequence[int] = (1, 4, 8, 16)
                   ) -> Dict[str, Dict[str, List[Tuple[int, float]]]]:
    """MSB vs number of DRAM channels; DCA disabled so DRAM bandwidth
    utilization is apparent (paper Fig 17a-c)."""
    base = with_dca(gem5_default(), False)
    out: Dict[str, Dict[str, List[Tuple[int, float]]]] = {}
    for app_key, app_label, ceiling, options in [
            ("testpmd", "TestPMD", 70.0, None),
            ("touchfwd", "TouchFwd", 20.0, None),
            ("iperf", "iperf", 16.0, None)]:
        app = _app_name(app_key)
        per_size: Dict[str, List[Tuple[int, float]]] = {}
        for size in packet_sizes:
            points = []
            for ch in channels:
                config = with_dram_channels(base, ch)
                msb = find_msb(config, app, size, max_gbps=ceiling,
                               app_options=options).msb_gbps
                points.append((ch, msb))
            per_size[f"{size}B"] = points
        out[app_label] = per_size
    return out


def fig17_rob(packet_sizes: Sequence[int] = (128, 1518),
              robs: Sequence[int] = (32, 128, 256, 512)
              ) -> Dict[str, Dict[str, List[Tuple[int, float]]]]:
    """MSB vs ROB entries (paper Fig 17d-f)."""
    base = gem5_default()
    out: Dict[str, Dict[str, List[Tuple[int, float]]]] = {}
    for app_key, app_label, ceiling, options in [
            ("testpmd", "TestPMD", 70.0, None),
            ("touchfwd", "TouchFwd", 20.0, None),
            ("iperf", "iperf", 16.0, None)]:
        app = _app_name(app_key)
        per_size: Dict[str, List[Tuple[int, float]]] = {}
        for size in packet_sizes:
            points = []
            for rob in robs:
                config = with_rob(base, rob)
                msb = find_msb(config, app, size, max_gbps=ceiling,
                               app_options=options).msb_gbps
                points.append((rob, msb))
            per_size[f"{size}B"] = points
        out[app_label] = per_size
    return out


# ----------------------------------------------------------------------
# Fig 18 — memcached throughput vs drop rate
# ----------------------------------------------------------------------

def fig18_memcached_rps(
        rps_points: Sequence[float] = (100_000, 200_000, 300_000, 400_000,
                                       500_000, 600_000, 700_000, 800_000),
        n_requests: int = 2500) -> Dict[str, List[Tuple[float, float]]]:
    """Requests/second vs drop rate for both memcached flavours."""
    config = gem5_default()
    out: Dict[str, List[Tuple[float, float]]] = {}
    for label, kernel in (("memcachedKernel", True),
                          ("memcachedDpdk", False)):
        points = []
        for rps in rps_points:
            result = run_memcached(config, kernel, float(rps),
                                   n_requests=n_requests)
            points.append((float(rps) / 1e3, result.drop_rate))
        out[label] = points
    return out


def max_sustainable_rps(kernel: bool,
                        rps_points: Sequence[float] = (
                            100_000, 200_000, 300_000, 400_000, 500_000,
                            600_000, 700_000, 800_000),
                        drop_threshold: float = 0.01,
                        n_requests: int = 2500) -> float:
    """Highest request rate with drop rate within the threshold."""
    config = gem5_default()
    best = 0.0
    for rps in rps_points:
        result = run_memcached(config, kernel, float(rps),
                               n_requests=n_requests)
        if result.drop_rate <= drop_threshold:
            best = float(rps)
        else:
            break
    return best


# ----------------------------------------------------------------------
# Fig 19 — memcached latency vs frequency
# ----------------------------------------------------------------------

def fig19_memcached_latency(
        freqs_ghz: Sequence[float] = (1.0, 2.0, 3.0, 4.0),
        kernel_rps: Sequence[float] = (10_000, 80_000, 120_000, 200_000),
        dpdk_rps: Sequence[float] = (200_000, 400_000, 600_000, 700_000),
        n_requests: int = 2000) -> Dict[str, Dict[str, List[Tuple[float, float, float]]]]:
    """Normalized mean latency + drop rate vs offered RPS per frequency.

    Latencies are normalized to the 3GHz core at the lowest rate, as the
    paper normalizes to a 3GHz core.
    """
    out: Dict[str, Dict[str, List[Tuple[float, float, float]]]] = {}
    for label, kernel, rps_list in (
            ("MemcachedKernel", True, kernel_rps),
            ("MemcachedDPDK", False, dpdk_rps)):
        per_freq: Dict[str, List[Tuple[float, float, float]]] = {}
        baseline_latency: Optional[float] = None
        for freq in freqs_ghz:
            config = with_frequency(gem5_default(), freq * 1e9)
            rows = []
            for rps in rps_list:
                result = run_memcached(config, kernel, float(rps),
                                       n_requests=n_requests)
                rows.append((float(rps) / 1e3, result.mean_latency_us,
                             result.drop_rate))
            per_freq[f"{freq:.0f}GHz"] = rows
        # Normalize to the 3GHz row, lowest rate.
        ref_rows = per_freq.get("3GHz")
        if ref_rows:
            baseline_latency = ref_rows[0][1] or 1.0
            for key, rows in per_freq.items():
                per_freq[key] = [
                    (rps, lat / baseline_latency, drop)
                    for rps, lat, drop in rows]
        out[label] = per_freq
    return out


# ----------------------------------------------------------------------
# Fig 20 — EtherLoadGen vs dual-mode simulation speed
# ----------------------------------------------------------------------

def fig20_loadgen_speedup(freqs_ghz: Sequence[float] = (1.0, 3.0),
                          n_requests: int = 1200,
                          rate_rps: float = 150_000.0
                          ) -> Dict[str, List[Tuple[str, float]]]:
    """Wall-clock speedup of EtherLoadGen over dual-mode simulation."""
    from repro.system.dual_mode import run_dual_mode_comparison
    out: Dict[str, List[Tuple[str, float]]] = {"kernel": [], "dpdk": []}
    for freq in freqs_ghz:
        config = with_frequency(gem5_default(), freq * 1e9)
        for label, kernel in (("kernel", True), ("dpdk", False)):
            result = run_dual_mode_comparison(
                config, kernel=kernel, n_requests=n_requests,
                rate_rps=rate_rps)
            out[label].append((f"{freq:.0f}GHz",
                               result.speedup_fraction * 100.0))
    return out


# ----------------------------------------------------------------------
# Headline: DPDK vs kernel bandwidth
# ----------------------------------------------------------------------

def headline_speedup(packet_size: int = 1518) -> Dict[str, float]:
    """The paper's headline: userspace networking improves gem5's network
    bandwidth ~6.3x over the kernel stack (§I / abstract)."""
    config = gem5_default()
    dpdk = find_msb(config, "testpmd", packet_size).msb_gbps
    kernel = find_msb(config, "iperf", packet_size, max_gbps=16.0).msb_gbps
    return {
        "dpdk_gbps": dpdk,
        "kernel_gbps": kernel,
        "speedup": dpdk / kernel if kernel else float("inf"),
    }
