"""Per-figure experiment definitions.

One function per table/figure of the paper's evaluation.  Each returns
plain data structures (dicts/lists) that the corresponding benchmark
prints; EXPERIMENTS.md records the paper-vs-measured comparison.

Experiment scope knobs: most functions accept ``packet_sizes`` /
``n_packets`` style arguments so the benchmark suite can trade runtime
for resolution; defaults are sized to finish the whole suite in minutes.

Every figure is a sweep of independent simulation points, so each
function also accepts ``jobs`` / ``cache_dir`` / ``executor`` and routes
its points through :class:`repro.harness.parallel.SweepExecutor`: with
``jobs=N`` the whole figure fans out across N worker processes, and with
a cache directory re-runs of unchanged points replay from disk.  The
defaults (``jobs=1``, no cache) are the serial reference path and return
bit-identical results to the parallel one.
"""

from __future__ import annotations

import json as _json
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.msb import sweep_points
from repro.harness.parallel import (
    SweepExecutor,
    fixed_load_point,
    memcached_point,
    msb_point,
)
from repro.system.config import SystemConfig
from repro.system.presets import (
    altra,
    gem5_default,
    with_core,
    with_dca,
    with_dram_channels,
    with_frequency,
    with_l1_size,
    with_l2_size,
    with_llc_size,
    with_rob,
)

KIB = 1024
MIB = 1024 * 1024

# The six applications of the sensitivity figures (Figs 10-15) and their
# per-app saturation ceilings / options.
SENSITIVITY_APPS: List[Tuple[str, str, float, Optional[dict]]] = [
    ("testpmd", "TestPMD", 70.0, None),
    ("touchfwd", "TouchFwd", 20.0, None),
    ("iperf", "iperf", 16.0, None),
    ("rxptx-10ns", "RXpTX-10ns", 70.0, {"proc_time_ns": 10.0}),
    ("rxptx-1us", "RXpTX-1us", 70.0, {"proc_time_ns": 1000.0}),
]

SENSITIVITY_SIZES = [128, 256, 512, 1024, 1518]


def _app_name(key: str) -> str:
    return "rxptx" if key.startswith("rxptx") else key


def _executor(jobs: int, cache_dir, executor) -> SweepExecutor:
    """The executor a figure runs through (caller-supplied or fresh)."""
    return executor or SweepExecutor(jobs=jobs, cache_dir=cache_dir)


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------

def table1_configs() -> Dict[str, Dict[str, object]]:
    """The simulated and real system configurations side by side."""
    rows = {}
    for config in (gem5_default(), altra()):
        hier = config.hierarchy
        rows[config.label] = {
            "Core freq": f"{config.core.freq_hz / 1e9:.0f}GHz",
            "Superscalar": f"{config.core.width} ways",
            "ROB/IQ entries": f"{config.core.rob_entries}/"
                              f"{config.core.iq_entries}",
            "LQ/SQ entries": f"{config.core.lq_entries}/"
                             f"{config.core.sq_entries}",
            "Branch predictor": config.core.branch_predictor,
            "BTB entries": config.core.btb_entries,
            "L1I/L1D": f"{hier.l1i.size // KIB}KB,{hier.l1i.assoc}/"
                       f"{hier.l1d.size // KIB}KB,{hier.l1d.assoc}",
            "L2": f"{hier.l2.size // MIB}MB,{hier.l2.assoc} ways",
            "L1I/L1D/L2 latency": f"{hier.l1i.latency_cycles}/"
                                  f"{hier.l1d.latency_cycles}/"
                                  f"{hier.l2.latency_cycles}",
            "L1I/L1D/L2 MSHRs": f"{hier.l1i.mshrs}/{hier.l1d.mshrs}/"
                                f"{hier.l2.mshrs}",
            "DRAM channels": hier.dram.channels,
            "DCA/DDIO": "enabled" if hier.dca_enabled else "disabled",
            "Network bandwidth": f"{config.link_bandwidth_bps / 1e9:.0f}Gbps",
            "Network latency": f"{config.link_delay_us:.0f}us",
            "Core type": "O3" if config.core.ooo else "in-order",
        }
    return rows


# ----------------------------------------------------------------------
# Fig 5 — drop-cause breakdown
# ----------------------------------------------------------------------

FIG5_WORKLOADS: List[Tuple[str, str, int, Optional[dict]]] = [
    ("TestPMD-64B", "testpmd", 64, None),
    ("TestPMD-256B", "testpmd", 256, None),
    ("TestPMD-1518B", "testpmd", 1518, None),
    ("TouchFwd-64B", "touchfwd", 64, None),
    ("TouchFwd-256B", "touchfwd", 256, None),
    ("TouchFwd-1518B", "touchfwd", 1518, None),
    ("TouchDrop-64B", "touchdrop", 64, None),
    ("TouchDrop-256B", "touchdrop", 256, None),
    ("TouchDrop-1518B", "touchdrop", 1518, None),
    ("RXpTX-10us", "rxptx", 256, {"proc_time_ns": 10000.0}),
    ("RXpTX-100ns", "rxptx", 256, {"proc_time_ns": 100.0}),
    ("RXpTX-10ns", "rxptx", 256, {"proc_time_ns": 10.0}),
]


def fig5_drop_breakdown(n_packets: int = 2000,
                        config: Optional[SystemConfig] = None,
                        jobs: int = 1, cache_dir=None, executor=None
                        ) -> Dict[str, Dict[str, float]]:
    """Drop-cause fractions at the knee rate for each workload.

    "We set the network bandwidth to the knee of the bandwidth vs. packet
    drop rate curve, where we start seeing packet drops."

    Two fan-out batches: all knee searches first (deduplicated — the
    TouchDrop knee is taken from its forwarding twin, as TouchDrop has no
    response stream to measure drops against), then all overload runs.
    """
    config = config or gem5_default()
    ex = _executor(jobs, cache_dir, executor)

    def knee_spec(app: str, size: int, options: Optional[dict]):
        if app == "touchdrop":
            app, options = "touchfwd", None
        ceiling = 20.0 if app in ("touchfwd", "touchdrop") else 70.0
        key = (app, size, _json.dumps(options or {}, sort_keys=True))
        return key, app, options, ceiling

    # Batch 1: unique knee (MSB) searches across all workloads.
    specs: Dict[tuple, tuple] = {}
    for _label, app, size, options in FIG5_WORKLOADS:
        key, knee_app, knee_opts, ceiling = knee_spec(app, size, options)
        specs.setdefault(key, (knee_app, size, knee_opts, ceiling))
    knee_results = ex.run([
        msb_point(config, app, size, max_gbps=ceiling, app_options=options)
        for app, size, options, ceiling in specs.values()])
    knees = {key: result.msb_gbps
             for key, result in zip(specs, knee_results)}

    # Batch 2: one sustained-overload run per workload, pushed far enough
    # past the knee that overload defeats the FIFO+ring buffering within
    # the measured window — plus the two memcached client drives.
    points = []
    for _label, app, size, options in FIG5_WORKLOADS:
        knee = knees[knee_spec(app, size, options)[0]]
        rate = max(knee * 1.3, 0.5)
        points.append(fixed_load_point(config, app, size, rate,
                                       n_packets=max(n_packets, 5000),
                                       app_options=options))
    memcached_drives = (("MemcachedDPDK", False, 900_000.0),
                        ("MemcachedKernel", True, 320_000.0))
    for _label, kernel, probe_rps in memcached_drives:
        points.append(memcached_point(config, kernel, probe_rps,
                                      n_requests=max(n_packets, 4000)))
    results = ex.run(points)

    out: Dict[str, Dict[str, float]] = {}
    for (label, app, size, options), result in zip(FIG5_WORKLOADS, results):
        out[label] = dict(result.drop_breakdown)
        out[label]["drop_rate"] = result.drop_rate
        out[label]["knee_gbps"] = knees[knee_spec(app, size, options)[0]]
    for (label, _kernel, _rps), result in zip(
            memcached_drives, results[len(FIG5_WORKLOADS):]):
        out[label] = dict(result.drop_breakdown)
        out[label]["drop_rate"] = result.drop_rate
        out[label]["knee_gbps"] = 0.0
    return out


# ----------------------------------------------------------------------
# Figs 6-9 — bandwidth vs drop rate, gem5 vs altra
# ----------------------------------------------------------------------

def _bw_drop_figure(app: str, app_options: Optional[dict],
                    packet_sizes: Sequence[int],
                    rates: Sequence[float],
                    n_packets: int,
                    ex: SweepExecutor) -> Dict[str, List[Tuple[float, float]]]:
    """All (platform x size x rate) points of one figure in a single
    fan-out batch, split back into per-series curves afterwards."""
    spans: List[Tuple[str, int, int]] = []   # (series key, start, count)
    all_points = []
    for config in (altra(), gem5_default()):
        for size in packet_sizes:
            pts = sweep_points(config, app, size, rates_gbps=list(rates),
                               n_packets=n_packets,
                               app_options=app_options)
            spans.append((f"{size}-{config.label}", len(all_points),
                          len(pts)))
            all_points.extend(pts)
    results = ex.run(all_points)
    return {key: [(r.offered_gbps, r.drop_rate)
                  for r in results[start:start + count]]
            for key, start, count in spans}


def fig6_testpmd_bw_drop(packet_sizes: Sequence[int] = (64, 256, 1518),
                         rates: Sequence[float] = (5, 15, 25, 35, 45, 55, 65),
                         n_packets: int = 1200, jobs: int = 1,
                         cache_dir=None, executor=None):
    """TestPMD bandwidth vs drop rate, gem5 vs altra."""
    return _bw_drop_figure("testpmd", None, packet_sizes, rates, n_packets,
                           _executor(jobs, cache_dir, executor))


def fig7_touchfwd_bw_drop(packet_sizes: Sequence[int] = (64, 256, 1518),
                          rates: Sequence[float] = (2, 4, 6, 8, 10, 12, 14),
                          n_packets: int = 1200, jobs: int = 1,
                          cache_dir=None, executor=None):
    """TouchFwd bandwidth vs drop rate, gem5 vs altra."""
    return _bw_drop_figure("touchfwd", None, packet_sizes, rates, n_packets,
                           _executor(jobs, cache_dir, executor))


def fig8_rxptx10ns_bw_drop(packet_sizes: Sequence[int] = (64, 256, 1518),
                           rates: Sequence[float] = (5, 15, 25, 35, 45, 55, 65),
                           n_packets: int = 1200, jobs: int = 1,
                           cache_dir=None, executor=None):
    """RXpTX (10ns processing) bandwidth vs drop rate."""
    return _bw_drop_figure("rxptx", {"proc_time_ns": 10.0}, packet_sizes,
                           rates, n_packets,
                           _executor(jobs, cache_dir, executor))


def fig9_rxptx1us_bw_drop(packet_sizes: Sequence[int] = (64, 256, 1518),
                          rates: Sequence[float] = (2, 6, 10, 15, 25, 40, 55),
                          n_packets: int = 1200, jobs: int = 1,
                          cache_dir=None, executor=None):
    """RXpTX (1us processing) bandwidth vs drop rate."""
    return _bw_drop_figure("rxptx", {"proc_time_ns": 1000.0}, packet_sizes,
                           rates, n_packets,
                           _executor(jobs, cache_dir, executor))


# ----------------------------------------------------------------------
# Figs 10-12 — cache size sensitivity
# ----------------------------------------------------------------------

def _cache_sensitivity(variants: Dict[str, SystemConfig],
                       packet_sizes: Sequence[int],
                       memcached_probe: Dict[str, float],
                       ex: Optional[SweepExecutor] = None
                       ) -> Dict[str, Dict[str, List[Tuple[int, float]]]]:
    """MSB per app per cache variant, plus memcached RPS.

    Every (app x variant x size) MSB search and every memcached probe is
    an independent point; the whole figure runs as one fan-out batch.
    """
    ex = ex or SweepExecutor()
    batch = []
    for app_key, _app_label, ceiling, options in SENSITIVITY_APPS:
        app = _app_name(app_key)
        for _variant_label, config in variants.items():
            for size in packet_sizes:
                batch.append(msb_point(config, app, size, max_gbps=ceiling,
                                       app_options=options))
    memcached_flavours = (("MemcachedDPDK", False), ("MemcachedKernel", True))
    for _label, kernel in memcached_flavours:
        probe = memcached_probe["kernel" if kernel else "dpdk"]
        for _variant_label, config in variants.items():
            batch.append(memcached_point(config, kernel, probe,
                                         n_requests=2500))
    results = iter(ex.run(batch))

    out: Dict[str, Dict[str, List[Tuple[int, float]]]] = {}
    for _app_key, app_label, _ceiling, _options in SENSITIVITY_APPS:
        per_variant: Dict[str, List[Tuple[int, float]]] = {}
        for variant_label in variants:
            per_variant[variant_label] = [
                (size, next(results).msb_gbps) for size in packet_sizes]
        out[app_label] = per_variant
    # Memcached: requests/second at a probing overload.
    for label, _kernel in memcached_flavours:
        per_variant = {}
        for variant_label in variants:
            result = next(results)
            krps = result.offered_rps * (1 - result.drop_rate) / 1e3
            per_variant[variant_label] = [(0, krps)]
        out[label] = per_variant
    return out


MEMCACHED_PROBE = {"dpdk": 900_000.0, "kernel": 330_000.0}


def fig10_l1_sensitivity(packet_sizes: Sequence[int] = (128, 512, 1518),
                         jobs: int = 1, cache_dir=None, executor=None):
    """MSB/RPS vs L1 cache size (16KiB - 1MiB)."""
    base = gem5_default()
    variants = {f"{s // KIB}KiB-L1": with_l1_size(base, s)
                for s in (16 * KIB, 128 * KIB, 256 * KIB, 1 * MIB)}
    return _cache_sensitivity(variants, packet_sizes, MEMCACHED_PROBE,
                              _executor(jobs, cache_dir, executor))


def fig11_l2_sensitivity(packet_sizes: Sequence[int] = (128, 512, 1518),
                         jobs: int = 1, cache_dir=None, executor=None):
    """MSB/RPS vs L2 cache size (256KiB - 8MiB)."""
    base = gem5_default()
    variants = {}
    for size in (256 * KIB, 1 * MIB, 4 * MIB, 8 * MIB):
        name = (f"{size // KIB}KiB-L2" if size < MIB
                else f"{size // MIB}MiB-L2")
        variants[name] = with_l2_size(base, size)
    return _cache_sensitivity(variants, packet_sizes, MEMCACHED_PROBE,
                              _executor(jobs, cache_dir, executor))


def fig12_llc_sensitivity(packet_sizes: Sequence[int] = (128, 512, 1518),
                          jobs: int = 1, cache_dir=None, executor=None):
    """MSB/RPS vs LLC size (4MiB - 64MiB)."""
    base = gem5_default()
    variants = {f"{s // MIB}MiB-LLC": with_llc_size(base, s)
                for s in (4 * MIB, 16 * MIB, 32 * MIB, 64 * MIB)}
    return _cache_sensitivity(variants, packet_sizes, MEMCACHED_PROBE,
                              _executor(jobs, cache_dir, executor))


# ----------------------------------------------------------------------
# Fig 13 — DCA policy: processing-time sweep with ring 4096
# ----------------------------------------------------------------------

def fig13_dca_proctime(
        packet_sizes: Sequence[int] = (64, 256, 1518),
        proc_times_ns: Sequence[float] = (10, 100, 300, 500, 700,
                                          1000, 3000, 5000, 10000),
        n_packets: int = 2500, jobs: int = 1, cache_dir=None,
        executor=None) -> Dict[str, List[Tuple[float, float, float]]]:
    """Drop rate and LLC miss rate vs per-burst processing time.

    Ring 4096 entries, LLC fixed at 1MiB, DCA 4/16 ways (256KiB of LLC
    for network data); rate fixed at each size's 10ns MSB.  Two fan-out
    batches: the per-size MSB anchors, then the full size x proc-time
    grid.
    """
    ex = _executor(jobs, cache_dir, executor)
    base = with_llc_size(gem5_default(), 1 * MIB)
    config = base.variant(
        nic=replace(base.nic, rx_ring_size=4096, tx_ring_size=4096),
        mempool_mbufs=9000)
    # The measured window must overflow the 4096-entry ring for sustained
    # overload to surface as drops rather than buffered backlog.
    n_packets = max(n_packets, 3 * config.nic.rx_ring_size)
    anchors = ex.run([
        msb_point(config, "rxptx", size,
                  app_options={"proc_time_ns": 10.0})
        for size in packet_sizes])
    rates = {size: result.msb_gbps
             for size, result in zip(packet_sizes, anchors)}
    grid = [(size, float(proc)) for size in packet_sizes
            for proc in proc_times_ns]
    results = ex.run([
        fixed_load_point(config, "rxptx", size, rates[size],
                         n_packets=n_packets,
                         app_options={"proc_time_ns": proc})
        for size, proc in grid])
    out: Dict[str, List[Tuple[float, float, float]]] = {}
    for (size, proc), result in zip(grid, results):
        out.setdefault(f"{size}B", []).append(
            (proc, result.drop_rate, result.llc_miss_rate))
    return out


# ----------------------------------------------------------------------
# Fig 14 — DCA on/off
# ----------------------------------------------------------------------

def fig14_dca_sensitivity(packet_sizes: Sequence[int] = SENSITIVITY_SIZES,
                          jobs: int = 1, cache_dir=None, executor=None):
    """MSB/RPS with DCA enabled vs disabled."""
    base = gem5_default()
    variants = {"ddio-enabled": with_dca(base, True),
                "ddio-disabled": with_dca(base, False)}
    return _cache_sensitivity(variants, packet_sizes, MEMCACHED_PROBE,
                              _executor(jobs, cache_dir, executor))


# ----------------------------------------------------------------------
# Fig 15 — core frequency
# ----------------------------------------------------------------------

def fig15_frequency(packet_sizes: Sequence[int] = (128, 512, 1518),
                    freqs_ghz: Sequence[float] = (1.0, 2.0, 4.0),
                    jobs: int = 1, cache_dir=None, executor=None):
    """MSB/RPS vs core frequency."""
    base = gem5_default()
    variants = {f"{f:.0f}GHz": with_frequency(base, f * 1e9)
                for f in freqs_ghz}
    return _cache_sensitivity(variants, packet_sizes, MEMCACHED_PROBE,
                              _executor(jobs, cache_dir, executor))


# ----------------------------------------------------------------------
# Fig 16 — core microarchitecture
# ----------------------------------------------------------------------

def fig16_core_uarch(packet_sizes: Sequence[int] = (128, 1518),
                     jobs: int = 1, cache_dir=None, executor=None):
    """MSB/RPS for out-of-order vs in-order cores."""
    base = gem5_default()
    variants = {"OoO Core": with_core(base, ooo=True),
                "In-Order Core": with_core(base, ooo=False)}
    return _cache_sensitivity(variants, packet_sizes, MEMCACHED_PROBE,
                              _executor(jobs, cache_dir, executor))


# ----------------------------------------------------------------------
# Fig 17 — memory channels and ROB size
# ----------------------------------------------------------------------

FIG17_APPS = [("testpmd", "TestPMD", 70.0, None),
              ("touchfwd", "TouchFwd", 20.0, None),
              ("iperf", "iperf", 16.0, None)]


def _fig17_sweep(base: SystemConfig, packet_sizes: Sequence[int],
                 axis: Sequence[int], derive, ex: SweepExecutor
                 ) -> Dict[str, Dict[str, List[Tuple[int, float]]]]:
    """One fan-out batch over (app x size x axis value), where ``derive``
    maps an axis value to a config variant."""
    grid = [(app_label, _app_name(app_key), size, value, ceiling, options)
            for app_key, app_label, ceiling, options in FIG17_APPS
            for size in packet_sizes
            for value in axis]
    results = ex.run([
        msb_point(derive(base, value), app, size, max_gbps=ceiling,
                  app_options=options)
        for _label, app, size, value, ceiling, options in grid])
    out: Dict[str, Dict[str, List[Tuple[int, float]]]] = {}
    for (app_label, _app, size, value, _c, _o), result in zip(grid, results):
        out.setdefault(app_label, {}).setdefault(f"{size}B", []).append(
            (value, result.msb_gbps))
    return out


def fig17_channels(packet_sizes: Sequence[int] = (128, 1518),
                   channels: Sequence[int] = (1, 4, 8, 16),
                   jobs: int = 1, cache_dir=None, executor=None
                   ) -> Dict[str, Dict[str, List[Tuple[int, float]]]]:
    """MSB vs number of DRAM channels; DCA disabled so DRAM bandwidth
    utilization is apparent (paper Fig 17a-c)."""
    return _fig17_sweep(with_dca(gem5_default(), False), packet_sizes,
                        channels, with_dram_channels,
                        _executor(jobs, cache_dir, executor))


def fig17_rob(packet_sizes: Sequence[int] = (128, 1518),
              robs: Sequence[int] = (32, 128, 256, 512),
              jobs: int = 1, cache_dir=None, executor=None
              ) -> Dict[str, Dict[str, List[Tuple[int, float]]]]:
    """MSB vs ROB entries (paper Fig 17d-f)."""
    return _fig17_sweep(gem5_default(), packet_sizes, robs, with_rob,
                        _executor(jobs, cache_dir, executor))


# ----------------------------------------------------------------------
# Fig 18 — memcached throughput vs drop rate
# ----------------------------------------------------------------------

def fig18_memcached_rps(
        rps_points: Sequence[float] = (100_000, 200_000, 300_000, 400_000,
                                       500_000, 600_000, 700_000, 800_000),
        n_requests: int = 2500, jobs: int = 1, cache_dir=None,
        executor=None) -> Dict[str, List[Tuple[float, float]]]:
    """Requests/second vs drop rate for both memcached flavours."""
    ex = _executor(jobs, cache_dir, executor)
    config = gem5_default()
    flavours = (("memcachedKernel", True), ("memcachedDpdk", False))
    grid = [(label, kernel, float(rps)) for label, kernel in flavours
            for rps in rps_points]
    results = ex.run([
        memcached_point(config, kernel, rps, n_requests=n_requests)
        for _label, kernel, rps in grid])
    out: Dict[str, List[Tuple[float, float]]] = {}
    for (label, _kernel, rps), result in zip(grid, results):
        out.setdefault(label, []).append((rps / 1e3, result.drop_rate))
    return out


def max_sustainable_rps(kernel: bool,
                        rps_points: Sequence[float] = (
                            100_000, 200_000, 300_000, 400_000, 500_000,
                            600_000, 700_000, 800_000),
                        drop_threshold: float = 0.01,
                        n_requests: int = 2500, jobs: int = 1,
                        cache_dir=None, executor=None) -> float:
    """Highest request rate with drop rate within the threshold.

    This is a search with an early exit, so points run one at a time (in
    rate order) — but each probe still routes through the executor, so a
    result cache makes repeated searches free.
    """
    ex = _executor(jobs, cache_dir, executor)
    config = gem5_default()
    best = 0.0
    for rps in rps_points:
        result = ex.run([memcached_point(config, kernel, float(rps),
                                         n_requests=n_requests)])[0]
        if result.drop_rate <= drop_threshold:
            best = float(rps)
        else:
            break
    return best


# ----------------------------------------------------------------------
# Fig 19 — memcached latency vs frequency
# ----------------------------------------------------------------------

def fig19_memcached_latency(
        freqs_ghz: Sequence[float] = (1.0, 2.0, 3.0, 4.0),
        kernel_rps: Sequence[float] = (10_000, 80_000, 120_000, 200_000),
        dpdk_rps: Sequence[float] = (200_000, 400_000, 600_000, 700_000),
        n_requests: int = 2000, jobs: int = 1, cache_dir=None,
        executor=None) -> Dict[str, Dict[str, List[Tuple[float, float, float]]]]:
    """Normalized mean latency + drop rate vs offered RPS per frequency.

    Latencies are normalized to the 3GHz core at the lowest rate, as the
    paper normalizes to a 3GHz core.  The full flavour x frequency x rate
    grid is one fan-out batch; normalization happens afterwards.
    """
    ex = _executor(jobs, cache_dir, executor)
    grid = [(label, kernel, freq, float(rps))
            for label, kernel, rps_list in (
                ("MemcachedKernel", True, kernel_rps),
                ("MemcachedDPDK", False, dpdk_rps))
            for freq in freqs_ghz
            for rps in rps_list]
    results = ex.run([
        memcached_point(with_frequency(gem5_default(), freq * 1e9),
                        kernel, rps, n_requests=n_requests)
        for _label, kernel, freq, rps in grid])
    out: Dict[str, Dict[str, List[Tuple[float, float, float]]]] = {}
    for (label, _kernel, freq, rps), result in zip(grid, results):
        out.setdefault(label, {}).setdefault(f"{freq:.0f}GHz", []).append(
            (rps / 1e3, result.mean_latency_us, result.drop_rate))
    for per_freq in out.values():
        # Normalize to the 3GHz row, lowest rate.
        ref_rows = per_freq.get("3GHz")
        if ref_rows:
            baseline_latency = ref_rows[0][1] or 1.0
            for key, rows in per_freq.items():
                per_freq[key] = [
                    (rps, lat / baseline_latency, drop)
                    for rps, lat, drop in rows]
    return out


# ----------------------------------------------------------------------
# Fig 20 — EtherLoadGen vs dual-mode simulation speed
# ----------------------------------------------------------------------

def fig20_loadgen_speedup(freqs_ghz: Sequence[float] = (1.0, 3.0),
                          n_requests: int = 1200,
                          rate_rps: float = 150_000.0
                          ) -> Dict[str, List[Tuple[str, float]]]:
    """Wall-clock speedup of EtherLoadGen over dual-mode simulation.

    Deliberately serial: the figure *measures wall-clock time*, and
    co-scheduled workers would distort exactly the quantity under test.
    """
    from repro.system.dual_mode import run_dual_mode_comparison
    out: Dict[str, List[Tuple[str, float]]] = {"kernel": [], "dpdk": []}
    for freq in freqs_ghz:
        config = with_frequency(gem5_default(), freq * 1e9)
        for label, kernel in (("kernel", True), ("dpdk", False)):
            result = run_dual_mode_comparison(
                config, kernel=kernel, n_requests=n_requests,
                rate_rps=rate_rps)
            out[label].append((f"{freq:.0f}GHz",
                               result.speedup_fraction * 100.0))
    return out


# ----------------------------------------------------------------------
# Headline: DPDK vs kernel bandwidth
# ----------------------------------------------------------------------

def headline_speedup(packet_size: int = 1518, jobs: int = 1,
                     cache_dir=None, executor=None) -> Dict[str, float]:
    """The paper's headline: userspace networking improves gem5's network
    bandwidth ~6.3x over the kernel stack (§I / abstract)."""
    ex = _executor(jobs, cache_dir, executor)
    config = gem5_default()
    dpdk_result, kernel_result = ex.run([
        msb_point(config, "testpmd", packet_size),
        msb_point(config, "iperf", packet_size, max_gbps=16.0)])
    dpdk = dpdk_result.msb_gbps
    kernel = kernel_result.msb_gbps
    return {
        "dpdk_gbps": dpdk,
        "kernel_gbps": kernel,
        "speedup": dpdk / kernel if kernel else float("inf"),
    }
