"""Parallel sweep execution with deterministic replay.

Every figure in the paper is a sweep of *independent* fixed-rate
simulations (app x packet size x offered load x configuration), yet the
harness historically ran each point serially in one process.  This module
fans sweep points out across worker processes — the dist-gem5 observation
(paper §II.B) that independent simulation instances parallelise trivially
— while keeping the property the harness is built on: bit-identical
results for identical inputs.

Three pieces:

:class:`SweepPoint`
    One simulation invocation, described by plain data: a kind
    (``fixed_load`` / ``memcached`` / ``msb``), a :class:`SystemConfig`,
    the application, the load, and a base seed.  The point's *effective*
    seed is derived from the base seed and a canonical label through
    :meth:`repro.sim.rng.DeterministicRng.fork`, so every point owns an
    independent random stream and adding/removing points never perturbs
    the streams of the others (positional ``seed + i`` schemes do).

:class:`ResultCache`
    An on-disk result store keyed by a stable SHA-256 digest of
    ``(schema version, kind, SystemConfig, app, load, n_packets,
    app_options, seed)``.  Re-running an unchanged point is free;
    corrupted entries are detected, discarded, and recomputed.

:class:`SweepExecutor`
    The scheduler.  ``jobs=1`` executes in-process (the reference serial
    path); ``jobs>1`` runs up to ``jobs`` *persistent* worker processes.
    Workers fork once — after the parent has prewarmed any shared
    warm-up checkpoints, so every worker inherits the parsed snapshots
    through copy-on-write memory — and then loop over batches of points
    dispatched through per-worker task queues.  Each point is announced
    with a tiny start marker (the parent's per-point timeout clock);
    outcomes are reported once per batch, amortising result
    serialisation.  A worker that dies without reporting (crash,
    OOM-kill) may take the shared result queue's write lock with it, so
    the executor charges the in-flight point with the crash and rebuilds
    the pool around a fresh queue: the victim is retried on a fresh
    worker, every other unreported point is requeued at its current
    attempt, uncharged.  Once retries are exhausted a crashed point falls back to
    in-process serial execution; exhausted timeouts raise
    :class:`SweepTimeoutError` — a hanging simulation would hang the
    serial fallback too.

Determinism guarantee: for the same list of points, the executor returns
the same results whether ``jobs`` is 1 or N, whether results came from
workers or the cache, and across runs — each simulation is hermetic in
``(config, effective seed)``.

The ``_poison_*`` kinds are failure injection hooks for the test suite
(worker crash, hang, exception); they never run simulations.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import queue as queue_lib
import shutil
import tempfile
import time
import traceback
from collections import deque
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.harness.fabric import (
    FabricRunResult,
    prewarm_fabric,
    run_fabric,
)
from repro.harness.msb import MsbResult, _saturation_warmup_us, find_msb
from repro.harness.runner import (
    FixedLoadResult,
    MemcachedRunResult,
    prewarm_fixed_load,
    prewarm_memcached,
    run_fixed_load,
    run_memcached,
)
from repro.harness.warmup_cache import WARMUP_CACHE_ENV, drop_warmup_cache
from repro.sim.invariants import InvariantViolation
from repro.sim.rng import DeterministicRng
from repro.system.config import SystemConfig

# Bump when the cached payload's semantics change (new result fields with
# different meaning, changed seeding scheme, ...): old entries then miss
# instead of silently replaying stale results.
# 2: results gained ``trace_digest`` and runs assert invariants at
#    completion — a pre-checker cached result is no longer equivalent.
# 3: warm-up methodology changed — runs now warm at a canonical
#    load-independent rate and drain to full quiescence before the
#    measurement reset (checkpointable warm-up), and points differing
#    only in offered load share one RNG stream; all measured results
#    moved.
CACHE_VERSION = 3

KIND_FIXED_LOAD = "fixed_load"
KIND_MEMCACHED = "memcached"
KIND_MSB = "msb"
KIND_FABRIC = "fabric"


# ----------------------------------------------------------------------
# Sweep points
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SweepPoint:
    """One independent simulation invocation.

    ``load`` is the offered rate: Gbps for ``fixed_load``, requests/s for
    ``memcached``, and the search ceiling (max Gbps) for ``msb``.
    ``n_packets`` doubles as ``n_requests`` for memcached points.
    """

    kind: str
    config: Optional[SystemConfig] = None
    app: str = ""
    packet_size: int = 0
    load: float = 0.0
    n_packets: int = 0
    app_options: Optional[Dict[str, Any]] = None
    seed: int = 0

    @property
    def rng_label(self) -> str:
        """The canonical per-point RNG label (stable across grid edits).

        The offered ``load`` is deliberately excluded: points that differ
        only in load share one RNG stream, so a load sweep over one
        configuration passes through identical warm-up state and can
        share a single warm-up checkpoint (see
        :mod:`repro.harness.warmup_cache`).
        """
        opts = json.dumps(self.app_options or {}, sort_keys=True)
        return (f"{self.kind}:{self.app}:{self.packet_size}:"
                f"{self.n_packets}:{opts}")

    @property
    def effective_seed(self) -> int:
        """The seed the simulation actually runs with: an independent
        stream forked from the base seed by the point's label."""
        return DeterministicRng(self.seed).fork(self.rng_label).seed

    def describe(self) -> str:
        """Short human-readable label for logs and cache metadata."""
        cfg = self.config.label if self.config is not None else "-"
        return (f"{self.kind} {self.app or '-'} {self.packet_size}B "
                f"@ {self.load:g} on {cfg} (seed {self.seed})")


def fixed_load_point(config: SystemConfig, app: str, packet_size: int,
                     gbps: float, n_packets: int = 2000,
                     app_options: Optional[dict] = None,
                     seed: int = 0) -> SweepPoint:
    """A :func:`repro.harness.runner.run_fixed_load` invocation."""
    return SweepPoint(kind=KIND_FIXED_LOAD, config=config, app=app,
                      packet_size=packet_size, load=float(gbps),
                      n_packets=n_packets, app_options=app_options,
                      seed=seed)


def memcached_point(config: SystemConfig, kernel: bool, rate_rps: float,
                    n_requests: int = 2500, seed: int = 0) -> SweepPoint:
    """A :func:`repro.harness.runner.run_memcached` invocation."""
    app = "memcached_kernel" if kernel else "memcached_dpdk"
    return SweepPoint(kind=KIND_MEMCACHED, config=config, app=app,
                      load=float(rate_rps), n_packets=n_requests, seed=seed)


def msb_point(config: SystemConfig, app: str, packet_size: int,
              max_gbps: float = 70.0, n_packets: int = 2500,
              app_options: Optional[dict] = None,
              seed: int = 0) -> SweepPoint:
    """A whole :func:`repro.harness.msb.find_msb` search as one point."""
    return SweepPoint(kind=KIND_MSB, config=config, app=app,
                      packet_size=packet_size, load=float(max_gbps),
                      n_packets=n_packets, app_options=app_options,
                      seed=seed)


def fabric_point(config: SystemConfig, preset: str, stack: str,
                 pattern: str = "uniform", load: float = 0.3,
                 n_flows: int = 200, size_cdf: str = "smoke",
                 seed: int = 0) -> SweepPoint:
    """A :func:`repro.harness.fabric.run_fabric` invocation.

    ``app`` carries ``preset:stack``; the measured traffic pattern and
    flow-size CDF travel in ``app_options``.  ``load`` is the offered
    load fraction of host link bandwidth, ``n_packets`` the flow count.
    Points differing only in ``load`` share one RNG stream (and hence
    one warm-up checkpoint) exactly like fixed-load points.
    """
    return SweepPoint(kind=KIND_FABRIC, config=config,
                      app=f"{preset}:{stack}", load=float(load),
                      n_packets=n_flows,
                      app_options={"pattern": pattern,
                                   "size_cdf": size_cdf},
                      seed=seed)


# ----------------------------------------------------------------------
# Point execution and result (de)serialisation
# ----------------------------------------------------------------------

def _run_fixed(point: SweepPoint):
    return run_fixed_load(point.config, point.app, point.packet_size,
                          point.load, n_packets=point.n_packets,
                          app_options=point.app_options,
                          seed=point.effective_seed)


def _run_memcached(point: SweepPoint):
    kernel = point.app == "memcached_kernel"
    return run_memcached(point.config, kernel, point.load,
                         n_requests=point.n_packets,
                         seed=point.effective_seed)


def _run_msb(point: SweepPoint):
    return find_msb(point.config, point.app, point.packet_size,
                    max_gbps=point.load, n_packets=point.n_packets,
                    app_options=point.app_options,
                    seed=point.effective_seed)


def _run_fabric(point: SweepPoint):
    preset, stack = point.app.rsplit(":", 1)
    opts = point.app_options or {}
    return run_fabric(point.config, preset, stack,
                      pattern=opts.get("pattern", "uniform"),
                      load=point.load, n_flows=point.n_packets,
                      size_cdf=opts.get("size_cdf", "smoke"),
                      seed=point.effective_seed)


def _in_worker() -> bool:
    return multiprocessing.parent_process() is not None


def _poison_raise(point: SweepPoint):
    raise RuntimeError("poisoned sweep point: injected exception")


def _poison_hang(point: SweepPoint):
    time.sleep(3600.0)


def _poison_hang_once(point: SweepPoint):
    # Hangs on its first attempt (stamping a flag file first) and
    # completes on every later one — exercises timeout -> clean retry.
    # The flag file path travels in ``app_options["flag"]``.
    flag = Path(point.app_options["flag"])
    if not flag.exists():
        flag.write_text("first attempt")
        time.sleep(3600.0)
    return {"ok": True, "via": "retry", "seed": point.seed}


def _poison_crash(point: SweepPoint):
    # Hard worker death (no exception, no result) in a worker; the serial
    # in-process fallback fails too — the unrecoverable-point case.
    if _in_worker():
        os._exit(17)
    raise RuntimeError("poisoned sweep point: crashes everywhere")


def _poison_child_crash(point: SweepPoint):
    # Dies only inside a worker process; succeeds in-process — exercises
    # the graceful serial fallback after worker death.
    if _in_worker():
        os._exit(17)
    return {"ok": True, "via": "serial-fallback", "seed": point.seed}


def _poison_invariant(point: SweepPoint):
    # A simulation whose invariant checker fired — exercises the
    # violation-verdict path (SweepInvariantError naming the point).
    raise InvariantViolation(
        ["poisoned: injected conservation failure"], tick=42)


_KIND_HANDLERS: Dict[str, Callable[[SweepPoint], Any]] = {
    KIND_FIXED_LOAD: _run_fixed,
    KIND_MEMCACHED: _run_memcached,
    KIND_MSB: _run_msb,
    KIND_FABRIC: _run_fabric,
    "_poison_raise": _poison_raise,
    "_poison_hang": _poison_hang,
    "_poison_hang_once": _poison_hang_once,
    "_poison_crash": _poison_crash,
    "_poison_child_crash": _poison_child_crash,
    "_poison_invariant": _poison_invariant,
}


def execute_point(point: SweepPoint):
    """Run one sweep point in the current process, returning the result
    object (:class:`FixedLoadResult` / :class:`MemcachedRunResult` /
    :class:`MsbResult`)."""
    handler = _KIND_HANDLERS.get(point.kind)
    if handler is None:
        raise ValueError(f"unknown sweep point kind {point.kind!r}; "
                         f"expected one of {sorted(_KIND_HANDLERS)}")
    return handler(point)


_RESULT_TYPES = {
    "FixedLoadResult": FixedLoadResult,
    "MemcachedRunResult": MemcachedRunResult,
    "MsbResult": MsbResult,
    "FabricRunResult": FabricRunResult,
}


def encode_result(result: Any) -> dict:
    """A JSON/pickle-safe payload for a point's result."""
    if isinstance(result, dict):
        return {"result_type": "dict", "data": result}
    name = type(result).__name__
    if name not in _RESULT_TYPES:
        raise TypeError(f"cannot encode result of type {name}")
    return {"result_type": name, "data": asdict(result)}


def decode_result(payload: dict) -> Any:
    """Reconstruct the result object from :func:`encode_result` output.

    Normalises JSON round-trip artefacts (tuples decoded as lists) so a
    cached result compares equal to a freshly computed one.
    """
    name = payload["result_type"]
    data = payload["data"]
    if name == "dict":
        return data
    cls = _RESULT_TYPES.get(name)
    if cls is None:
        raise ValueError(f"unknown result type {name!r}")
    return cls.from_dict(data)


# ----------------------------------------------------------------------
# On-disk result cache
# ----------------------------------------------------------------------

def cache_key(point: SweepPoint) -> str:
    """Stable digest of everything the simulation's outcome depends on."""
    payload = {
        "version": CACHE_VERSION,
        "kind": point.kind,
        "config": (point.config.canonical_dict()
                   if point.config is not None else None),
        "app": point.app,
        "packet_size": point.packet_size,
        "load": point.load,
        "n_packets": point.n_packets,
        "app_options": point.app_options or {},
        "seed": point.seed,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """One JSON file per completed sweep point, named by its cache key.

    Any unreadable, mismatched, or undecodable entry counts as corrupt:
    it is deleted and the point recomputed — a damaged cache can slow a
    sweep down but never change its results.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.corrupt_entries = 0

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """The stored result payload, or None on miss/corruption."""
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            blob = json.loads(path.read_text())
            if blob.get("version") != CACHE_VERSION or blob.get("key") != key:
                raise ValueError("cache entry metadata mismatch")
            payload = blob["result"]
            decode_result(payload)    # validate before trusting
            return payload
        except Exception:
            self.corrupt_entries += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, key: str, payload: dict, point: SweepPoint) -> None:
        """Atomically store one result (write-to-temp then rename)."""
        blob = {"version": CACHE_VERSION, "key": key,
                "point": point.describe(), "result": payload}
        tmp = self.path_for(key).with_suffix(".tmp")
        tmp.write_text(json.dumps(blob, sort_keys=True))
        os.replace(tmp, self.path_for(key))


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------

class SweepPointError(RuntimeError):
    """A sweep point failed permanently (worker error and the serial
    fallback failed too, or the worker raised)."""

    def __init__(self, point: SweepPoint, detail: str) -> None:
        super().__init__(f"sweep point failed: {point.describe()}\n{detail}")
        self.point = point
        self.detail = detail


class SweepTimeoutError(SweepPointError):
    """A sweep point exceeded its per-attempt timeout on every attempt."""


class SweepInvariantError(SweepPointError):
    """A point's simulation violated a registered invariant.

    Distinct from :class:`SweepPointError` so sweep drivers can tell "the
    simulation produced inconsistent state" (a model bug at exactly this
    configuration/load) apart from infrastructure failures — and so the
    offending point's label travels with the verdict instead of a generic
    worker traceback."""


@dataclass
class ExecutorStats:
    """Counters for one executor's lifetime, exposed for tests/reports."""

    cache_hits: int = 0
    cache_misses: int = 0
    cache_corrupt: int = 0
    executed: int = 0          # simulations that actually ran to completion
    deduped: int = 0           # points satisfied by an identical twin
    retries: int = 0
    crashes: int = 0
    timeouts: int = 0
    serial_fallbacks: int = 0
    wall_s: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return dict(asdict(self))


def _persistent_worker_main(task_queue, result_queue,
                            worker_id: int) -> None:
    """Persistent worker: loop over dispatched batches until poisoned.

    Each batch is a list of ``(index, point)`` tasks; ``None`` is the
    shutdown sentinel.  The worker announces every point with a tiny
    ``("start", worker_id, index)`` marker — the parent's per-point
    timeout clock — accumulates outcomes, and reports the whole batch as
    one ``("batch", worker_id, outcomes)`` message, so the (potentially
    large) result payloads cross the queue once per batch rather than
    once per point.  A failing point flushes the outcomes gathered so
    far immediately and abandons the rest of the batch: the parent
    aborts the sweep on any error/invariant verdict, so finishing the
    batch first would only delay it.
    """
    while True:
        batch = task_queue.get()
        if batch is None:
            return
        outcomes = []
        failed = False
        for index, point in batch:
            result_queue.put(("start", worker_id, index))
            try:
                payload = encode_result(execute_point(point))
            except InvariantViolation as exc:
                # The simulation itself is inconsistent: carry the
                # verdict (not a bare traceback) so the driver can name
                # the offending point.
                outcomes.append((index, "invariant", str(exc)))
                failed = True
            except BaseException as exc:   # report, don't kill the sweep
                detail = (f"{type(exc).__name__}: {exc}\n"
                          f"{traceback.format_exc()}")
                outcomes.append((index, "error", detail))
                failed = True
            else:
                outcomes.append((index, "ok", payload))
            if failed:
                break
        result_queue.put(("batch", worker_id, outcomes))


def _warm_signature(point: SweepPoint):
    """A hashable stand-in for the point's warm-up checkpoint key.

    Cheaper than the real :func:`~repro.harness.warmup_cache.warmup_key`
    (which needs a built node for the tracer signature): two points with
    equal signatures share one warm-up snapshot.  Offered load is absent
    by design — that is the property the cache exists for.  ``None``
    means the kind has no warm-up to share (poison hooks).
    """
    if point.config is None or point.kind not in (
            KIND_FIXED_LOAD, KIND_MEMCACHED, KIND_MSB, KIND_FABRIC):
        return None
    return (
        point.kind,
        json.dumps(point.config.canonical_dict(), sort_keys=True,
                   default=repr),
        point.app,
        point.packet_size,
        json.dumps(point.app_options or {}, sort_keys=True),
        point.effective_seed,
    )


def prewarm_point(point: SweepPoint) -> bool:
    """Populate the warm-up checkpoint cache for one sweep point without
    running its measured phase.  Returns True when a warm-up was
    simulated and stored; False on a cache hit, a kind with no warm-up,
    or when no cache is configured (``REPRO_WARMUP_CACHE`` unset)."""
    if point.kind == KIND_FIXED_LOAD:
        return prewarm_fixed_load(
            point.config, point.app, point.packet_size,
            app_options=point.app_options, seed=point.effective_seed)
    if point.kind == KIND_MSB:
        # find_msb's first probe runs with the saturation warm-up window
        # and the point's effective seed; prewarm exactly that key.
        return prewarm_fixed_load(
            point.config, point.app, point.packet_size,
            app_options=point.app_options,
            warmup_us=_saturation_warmup_us(point.config),
            seed=point.effective_seed)
    if point.kind == KIND_MEMCACHED:
        return prewarm_memcached(
            point.config, point.app == "memcached_kernel",
            seed=point.effective_seed)
    if point.kind == KIND_FABRIC:
        preset, stack = point.app.rsplit(":", 1)
        return prewarm_fabric(point.config, preset, stack,
                              seed=point.effective_seed)
    return False


def _default_context():
    # fork is cheap and inherits test-registered state; fall back to the
    # platform default (spawn on macOS/Windows) when unavailable.
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class SweepExecutor:
    """Runs batches of :class:`SweepPoint` with caching and fan-out.

    Parameters
    ----------
    jobs:
        Worker process count.  ``1`` (default) executes in-process —
        the reference serial path the parallel results must match.
    cache_dir:
        Directory for the on-disk result cache; ``None`` disables it.
    timeout_s:
        Per-attempt wall-clock budget for one point in a worker.
    max_retries:
        Extra attempts after the first for crashed or timed-out workers.
    warmup_cache_dir:
        Directory for the shared warm-up checkpoint cache (see
        :mod:`repro.harness.warmup_cache`).  Exported around each
        :meth:`run` so both the in-process path and worker processes
        (which inherit the environment) pick it up.  ``None`` leaves
        the ``REPRO_WARMUP_CACHE`` environment as-is — except with
        ``jobs > 1``, where (when the environment is also unset) the
        executor provisions an *ephemeral* warm-up cache for the run:
        warm-up sharing is what lets persistent workers fork after one
        prewarmed checkpoint instead of each re-simulating it, so the
        parallel mode carries its own.  The ephemeral directory is
        deleted when :meth:`run` returns; restored warm-ups are
        bit-identical to simulated ones, so results are unaffected.
    """

    def __init__(self, jobs: int = 1, cache_dir=None,
                 timeout_s: float = 600.0, max_retries: int = 1,
                 mp_context=None, warmup_cache_dir=None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.jobs = int(jobs)
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.timeout_s = float(timeout_s)
        self.max_retries = int(max_retries)
        self.warmup_cache_dir = (str(warmup_cache_dir)
                                 if warmup_cache_dir else None)
        self._ctx = mp_context or _default_context()
        self.stats = ExecutorStats()

    # -- public API ----------------------------------------------------

    def run(self, points: Sequence[SweepPoint]) -> List[Any]:
        """Execute all points, in order, returning one result each.

        Identical points (same cache key, hence provably the same
        deterministic result) are computed once and shared.
        """
        warm_dir = self.warmup_cache_dir
        ephemeral = None
        if (warm_dir is None and self.jobs > 1
                and not os.environ.get(WARMUP_CACHE_ENV)):
            # Parallel mode carries its own warm-up sharing: workers
            # fork after the parent prewarms one checkpoint per shared
            # warm-up state (see _prewarm) instead of each worker
            # re-simulating it.
            ephemeral = tempfile.mkdtemp(prefix="repro-warm-")
            warm_dir = ephemeral
        if warm_dir is None:
            return self._run(points)
        previous = os.environ.get(WARMUP_CACHE_ENV)
        os.environ[WARMUP_CACHE_ENV] = warm_dir
        try:
            return self._run(points)
        finally:
            if previous is None:
                os.environ.pop(WARMUP_CACHE_ENV, None)
            else:
                os.environ[WARMUP_CACHE_ENV] = previous
            if ephemeral is not None:
                drop_warmup_cache(ephemeral)
                shutil.rmtree(ephemeral, ignore_errors=True)

    def _run(self, points: Sequence[SweepPoint]) -> List[Any]:
        t0 = time.monotonic()
        points = list(points)
        results: List[Optional[dict]] = [None] * len(points)
        keys = [cache_key(p) for p in points]

        # Cache hits first.
        pending: List[int] = []
        for i, key in enumerate(keys):
            payload = self.cache.get(key) if self.cache else None
            if payload is not None:
                self.stats.cache_hits += 1
                results[i] = payload
            else:
                if self.cache:
                    self.stats.cache_misses += 1
                pending.append(i)

        # Dedupe identical pending points: one leader per key.
        leaders: Dict[str, int] = {}
        followers: Dict[int, int] = {}
        unique: List[int] = []
        for i in pending:
            leader = leaders.setdefault(keys[i], i)
            if leader == i:
                unique.append(i)
            else:
                followers[i] = leader
                self.stats.deduped += 1

        if unique:
            if self.jobs == 1 or len(unique) == 1:
                executed = self._run_serial(unique, points)
            else:
                executed = self._run_parallel(unique, points)
            for i, payload in executed.items():
                results[i] = payload
                self.stats.executed += 1
                if self.cache:
                    self.cache.put(keys[i], payload, points[i])
        for i, leader in followers.items():
            results[i] = results[leader]

        if self.cache:
            self.stats.cache_corrupt = self.cache.corrupt_entries
        self.stats.wall_s += time.monotonic() - t0
        return [decode_result(payload) for payload in results]

    # -- serial path ---------------------------------------------------

    def _run_serial(self, indices: List[int],
                    points: List[SweepPoint]) -> Dict[int, dict]:
        out: Dict[int, dict] = {}
        for i in indices:
            out[i] = self._execute_in_process(points[i])
        return out

    def _execute_in_process(self, point: SweepPoint) -> dict:
        try:
            return encode_result(execute_point(point))
        except InvariantViolation as exc:
            raise SweepInvariantError(point, str(exc)) from exc
        except Exception as exc:
            raise SweepPointError(
                point, f"{type(exc).__name__}: {exc}") from exc

    # -- parallel path -------------------------------------------------

    def _prewarm(self, indices: List[int],
                 points: List[SweepPoint]) -> None:
        """Simulate shared warm-up snapshots in the parent, pre-fork.

        Only warm-up states that more than one pending point restores
        are worth producing here (a one-off warm-up costs the same
        either way, and in a worker it runs in parallel).  For shared
        states the parent pays once and every forked worker inherits
        the parsed snapshot through copy-on-write memory — without
        this, each worker re-simulates or re-parses the same warm-up.
        Failures are left for the workers to surface with a proper
        point-naming verdict.
        """
        if not os.environ.get(WARMUP_CACHE_ENV):
            return
        counts: Dict[Any, int] = {}
        for i in indices:
            signature = _warm_signature(points[i])
            if signature is not None:
                counts[signature] = counts.get(signature, 0) + 1
        prewarmed = set()
        for i in indices:
            signature = _warm_signature(points[i])
            if (signature is None or counts[signature] < 2
                    or signature in prewarmed):
                continue
            prewarmed.add(signature)
            try:
                prewarm_point(points[i])
            except Exception:
                pass

    def _run_parallel(self, indices: List[int],
                      points: List[SweepPoint]) -> Dict[int, dict]:
        """Persistent-worker scheduler with timeout, retry, fallback.

        Workers fork after :meth:`_prewarm` and stay alive across
        points; each dispatch hands a worker a batch of points, and the
        worker reports one message per batch (plus a tiny start marker
        per point, which drives the per-point timeout clock).
        """
        self._prewarm(indices, points)
        ctx = self._ctx
        result_queue = ctx.Queue()
        out: Dict[int, dict] = {}
        work = deque((i, 0) for i in indices)           # (index, attempt)
        # worker id -> [proc, task_q, unreported {index: attempt},
        #               in-flight index or None, deadline]
        workers: Dict[int, list] = {}
        next_wid = [0]
        batch_size = max(1, len(indices) // (self.jobs * 2))

        def spawn() -> None:
            wid = next_wid[0]
            next_wid[0] += 1
            task_q = ctx.Queue()
            proc = ctx.Process(target=_persistent_worker_main,
                               args=(task_q, result_queue, wid),
                               daemon=True)
            proc.start()
            workers[wid] = [proc, task_q, {}, None, 0.0]

        def dispatch(wid: int) -> None:
            state = workers[wid]
            batch = []
            while work and len(batch) < batch_size:
                index, attempt = work.popleft()
                if index in out:     # satisfied by a late message
                    continue
                state[2][index] = attempt
                batch.append((index, points[index]))
            if batch:
                state[3] = None
                state[4] = time.monotonic() + self.timeout_s
                state[1].put(batch)

        def kill(wid: int) -> None:
            state = workers.pop(wid)
            proc = state[0]
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5.0)

        def rebuild() -> None:
            # A worker that dies (or is terminated) mid-``put`` can take
            # the result queue's shared write lock with it, blocking
            # every surviving worker's reports forever.  So any abnormal
            # worker exit treats the queue as poisoned: stop the whole
            # pool, requeue its unreported work at the current attempts,
            # and start over with a fresh queue.  Deterministic
            # simulations make re-execution safe, and crashes are rare
            # enough that the redone work is noise.
            nonlocal result_queue
            for state in workers.values():
                if state[0].is_alive():
                    state[0].terminate()
            for state in workers.values():
                state[0].join(timeout=5.0)
            self._drain(result_queue, handle_message)
            for state in workers.values():
                requeue_survivors(state)
            workers.clear()
            result_queue = ctx.Queue()

        def handle_message(kind: str, wid: int, payload: Any) -> None:
            state = workers.get(wid)   # None for late/killed workers
            if kind == "start":
                if state is not None:
                    state[3] = payload
                    state[4] = time.monotonic() + self.timeout_s
                return
            for index, status, data in payload:
                if state is not None:
                    state[2].pop(index, None)
                if status == "ok":
                    out[index] = data
                elif status == "invariant":
                    raise SweepInvariantError(points[index], data)
                else:
                    raise SweepPointError(points[index], data)
            if state is not None:
                state[3] = None

        def requeue_survivors(state: list) -> None:
            for index, attempt in state[2].items():
                if index not in out:
                    work.append((index, attempt))

        def pop_victim(state: list):
            """The task the failure is charged to: the in-flight point
            if known, else the batch's first unreported task."""
            victim = state[3] if state[3] in state[2] \
                else next(iter(state[2]))
            return victim, state[2].pop(victim)

        def shutdown() -> None:
            for state in workers.values():
                try:
                    state[1].put_nowait(None)
                except Exception:
                    pass
            for state in workers.values():
                state[0].join(timeout=0.5)
                if state[0].is_alive():
                    state[0].terminate()
            for state in workers.values():
                state[0].join(timeout=5.0)
            workers.clear()

        try:
            while work or any(state[2] for state in workers.values()):
                while work and len(workers) < self.jobs:
                    spawn()
                for wid in list(workers):
                    if work and not workers[wid][2]:
                        dispatch(wid)

                try:
                    kind, wid, payload = result_queue.get(timeout=0.05)
                except queue_lib.Empty:
                    pass
                else:
                    handle_message(kind, wid, payload)
                    continue

                now = time.monotonic()
                for wid in list(workers):
                    state = workers[wid]
                    if not state[2]:
                        continue       # idle, nothing to account for
                    if not state[0].is_alive():
                        # Dead mid-batch without reporting: give any
                        # buffered message one chance to drain, then
                        # treat what remains as a crash.
                        time.sleep(0.05)
                        self._drain(result_queue, handle_message)
                        if not state[2]:
                            kill(wid)  # it reported everything first
                            continue
                        victim, attempt = pop_victim(state)
                        self.stats.crashes += 1
                        rebuild()
                        if attempt < self.max_retries:
                            self.stats.retries += 1
                            work.append((victim, attempt + 1))
                        else:
                            # Graceful fallback: the pool environment
                            # may be the problem; run the point here.
                            self.stats.serial_fallbacks += 1
                            out[victim] = self._execute_in_process(
                                points[victim])
                        break          # pool rebuilt; rescan fresh
                    elif now > state[4]:
                        victim, attempt = pop_victim(state)
                        self.stats.timeouts += 1
                        rebuild()
                        if attempt < self.max_retries:
                            self.stats.retries += 1
                            work.append((victim, attempt + 1))
                        else:
                            raise SweepTimeoutError(
                                points[victim],
                                f"no result within {self.timeout_s:.1f}s "
                                f"after {attempt + 1} attempt(s)")
                        break          # pool rebuilt; rescan fresh
        finally:
            shutdown()
        return out

    def _drain(self, result_queue, handle_message) -> None:
        """Deliver any queued messages without blocking."""
        while True:
            try:
                kind, wid, payload = result_queue.get_nowait()
            except queue_lib.Empty:
                return
            handle_message(kind, wid, payload)




def run_points(points: Sequence[SweepPoint], jobs: int = 1,
               cache_dir=None, warmup_cache_dir=None,
               executor: Optional[SweepExecutor] = None) -> List[Any]:
    """Convenience wrapper: run points through ``executor`` or a fresh
    one built from ``jobs``/``cache_dir``/``warmup_cache_dir``."""
    ex = executor or SweepExecutor(jobs=jobs, cache_dir=cache_dir,
                                   warmup_cache_dir=warmup_cache_dir)
    return ex.run(points)
