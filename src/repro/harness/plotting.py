"""ASCII rendering of figure-style data.

The benchmark suite prints numeric series; these helpers render them as
terminal scatter/line plots so the *shape* of a reproduced figure (knees,
crossovers, plateaus) is visible at a glance without any plotting
dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

MARKERS = "ox+*#@%&"


def _scale(value: float, lo: float, hi: float, cells: int) -> int:
    if hi <= lo:
        return 0
    pos = (value - lo) / (hi - lo)
    return min(cells - 1, max(0, int(round(pos * (cells - 1)))))


def ascii_plot(series: Dict[str, Sequence[Tuple[float, float]]],
               width: int = 64, height: int = 16,
               x_label: str = "x", y_label: str = "y",
               title: str = "") -> str:
    """Render named (x, y) series on one shared-axis character grid.

    Each series gets a marker from :data:`MARKERS` (cycled); overlapping
    points keep the first-drawn marker.  Returns the multi-line string.
    """
    if not series:
        raise ValueError("nothing to plot")
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("all series are empty")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if y_lo == y_hi:
        y_lo, y_hi = y_lo - 0.5, y_hi + 0.5
    if x_lo == x_hi:
        x_lo, x_hi = x_lo - 0.5, x_hi + 0.5

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, (name, pts) in enumerate(sorted(series.items())):
        marker = MARKERS[index % len(MARKERS)]
        legend.append(f"{marker} {name}")
        for x, y in pts:
            col = _scale(x, x_lo, x_hi, width)
            row = height - 1 - _scale(y, y_lo, y_hi, height)
            if grid[row][col] == " ":
                grid[row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_hi:.3g}"
    bottom_label = f"{y_lo:.3g}"
    pad = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_label.rjust(pad)
        elif row_index == height - 1:
            label = bottom_label.rjust(pad)
        else:
            label = " " * pad
        lines.append(f"{label} |{''.join(row)}|")
    axis = f"{' ' * pad} +{'-' * width}+"
    lines.append(axis)
    lines.append(f"{' ' * pad}  {f'{x_lo:.3g}'.ljust(width - 8)}"
                 f"{f'{x_hi:.3g}'.rjust(8)}")
    lines.append(f"{' ' * pad}  {x_label} -> ({y_label})")
    lines.append("  ".join(legend))
    return "\n".join(lines)


def ascii_bars(values: Dict[str, float], width: int = 50,
               title: str = "") -> str:
    """Horizontal bar chart for figure panels that are bar groups."""
    if not values:
        raise ValueError("nothing to plot")
    peak = max(abs(v) for v in values.values()) or 1.0
    name_pad = max(len(name) for name in values)
    lines: List[str] = []
    if title:
        lines.append(title)
    for name, value in values.items():
        bar = "#" * max(0, int(round(abs(value) / peak * width)))
        lines.append(f"{name.rjust(name_pad)} |{bar} {value:.3g}")
    return "\n".join(lines)
