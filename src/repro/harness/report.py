"""Plain-text rendering of experiment results.

The benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep the formatting consistent.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """A fixed-width table with a title rule."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(title: str, series: Dict[str, List[tuple]],
                  x_label: str = "x", y_label: str = "y") -> str:
    """Multiple named (x, y) series, one block per series — the textual
    equivalent of a figure's line plot."""
    lines = [title, "=" * len(title)]
    for name in sorted(series):
        lines.append(f"[{name}]  ({x_label} -> {y_label})")
        for x, y in series[name]:
            lines.append(f"    {_fmt(x):>10}  {_fmt(y)}")
    return "\n".join(lines)


def format_executor_summary(stats, jobs: int = 1) -> str:
    """One-line account of what a sweep executor actually did.

    ``stats`` is a :class:`repro.harness.parallel.ExecutorStats`.  Cache
    counters only appear when a cache was in play, and failure counters
    only when something failed, so the common all-clean case stays short.
    """
    parts = [f"{stats.executed} simulated"]
    if jobs > 1:
        parts.append(f"{jobs} jobs")
    if stats.cache_hits or stats.cache_misses:
        parts.append(f"{stats.cache_hits} cached")
    if stats.deduped:
        parts.append(f"{stats.deduped} deduped")
    if stats.cache_corrupt:
        parts.append(f"{stats.cache_corrupt} corrupt cache entries dropped")
    for name in ("retries", "crashes", "timeouts", "serial_fallbacks"):
        count = getattr(stats, name)
        if count:
            parts.append(f"{count} {name.replace('_', ' ')}")
    return f"[sweep: {', '.join(parts)} in {stats.wall_s:.1f}s]"


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)
