"""Fabric run primitives: build a fabric, offer flows, collect results.

The fabric counterpart of :mod:`repro.harness.runner`: the same
warm-up / checkpoint-restore / measured-window / drain shape, applied to
a whole switch fabric instead of a single node.  The warm-up plan is
deliberately *load- and pattern-independent* (a canonical trickle of
uniform traffic), so every point of a fabric load sweep shares one
post-warm-up snapshot through the warm-up cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional

from repro.harness.runner import _finalize_run
from repro.harness.warmup_cache import (
    WarmupCache,
    warmup_cache_from_env,
    warmup_key,
)
from repro.loadgen.flowgen import (
    FlowGenConfig,
    FlowTrafficGenerator,
    resolve_size_cdf,
)
from repro.net.fabric import Fabric, FabricConfig, build_fabric
from repro.sim.checkpoint import CheckpointError
from repro.sim.invariants import InvariantViolation
from repro.sim.simobject import Simulation
from repro.system.config import SystemConfig
from repro.system.presets import FABRIC_PRESETS


def host_service_ns(config: SystemConfig, stack: str) -> float:
    """Per-frame host service cost derived from the platform's measured
    per-packet cycle costs (:class:`repro.cpu.kernels.KernelCosts`).

    DPDK hosts pay the PMD per-packet cost plus amortized mempool
    get/put and an RX-burst share; kernel hosts pay the softirq
    per-packet path, an skb allocation, and amortized interrupt +
    syscall entry (NAPI batch of 8).  This keeps the paper's stack
    contrast — tens of ns vs most of a microsecond per packet — without
    simulating 16 full microarchitectural nodes.
    """
    costs = config.costs
    freq_hz = config.core.freq_hz
    if stack == "dpdk":
        cycles = (costs.pmd_per_packet_cycles
                  + costs.mempool_get_put_cycles
                  + costs.pmd_rx_burst_cycles / 8.0)
    elif stack == "kernel":
        cycles = (costs.softirq_per_packet_cycles
                  + costs.skb_alloc_cycles
                  + costs.interrupt_cycles / 8.0
                  + costs.syscall_cycles / 8.0)
    else:
        raise ValueError(f"unknown stack {stack!r}")
    return cycles / freq_hz * 1e9


@dataclass(frozen=True)
class FabricWarmupPlan:
    """The load-independent warm-up phase for a fabric run.

    A short burst of uniform traffic at a canonical low load exercises
    every tier of the fabric (ECMP spreads the warm flows across the
    core), then the fabric drains to quiescence and resets statistics —
    the state :meth:`repro.net.fabric.Fabric.checkpoint` captures.
    """

    warm_flows: int = 32
    warm_load: float = 0.15
    warm_pattern: str = "uniform"
    warm_size_cdf: str = "smoke"
    drain_chunk_us: float = 200.0
    max_drain_chunks: int = 400


@dataclass
class FabricRunResult:
    """Outcome of one flow-level fabric run."""

    label: str
    preset: str
    stack: str
    pattern: str
    offered_load: float
    n_flows: int
    flows_started: int
    flows_completed: int
    frames_sent: int
    frames_delivered: int
    drop_rate: float
    #: FCT percentiles in microseconds (count/mean/p50/p95/p99/p999/...).
    fct_us: Dict[str, float] = field(default_factory=dict)
    #: Fraction of total drops by cause (sums to 1, or empty when clean).
    drop_breakdown: Dict[str, float] = field(default_factory=dict)
    #: Window drop counts by switch name and cause (nonzero only).
    per_switch_drops: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: SHA-256 over the sorted flow completion records — the
    #: determinism anchor (tracer-independent).
    flow_digest: str = ""
    #: SHA-256 of the exported trace; empty when tracing was off.
    trace_digest: str = ""

    @classmethod
    def from_dict(cls, data: dict) -> "FabricRunResult":
        """Rebuild from ``dataclasses.asdict`` output (the shape the
        parallel executor's cache and workers exchange)."""
        return cls(**data)


def fabric_config_for(config: SystemConfig, preset: str,
                      stack: str) -> FabricConfig:
    """Resolve a named fabric preset against a platform config: the
    preset supplies the geometry, the platform supplies link parameters
    and the per-frame host service cost for the chosen stack."""
    try:
        make: Callable[..., FabricConfig] = FABRIC_PRESETS[preset]
    except KeyError:
        raise ValueError(
            f"unknown fabric preset {preset!r}; expected one of "
            f"{sorted(FABRIC_PRESETS)}") from None
    fab_cfg = make(stack=stack)
    if fab_cfg.host_service_ns == 0.0:
        fab_cfg = replace(fab_cfg,
                          host_service_ns=host_service_ns(config, stack))
    return fab_cfg


def build_fabric_rig(config: SystemConfig, preset: str, stack: str,
                     seed: int = 0, shard_plan=None,
                     shard_id: int = 0) -> Fabric:
    """Build a fabric plus its attached flow generator, validated.

    With a ``shard_plan`` (:class:`repro.dist.shard.ShardPlan`), only the
    components owned by ``shard_id`` are instantiated — remote ones
    become stubs, boundary links become channel halves — and the flow
    generator, which still synthesizes the complete deterministic
    schedule, injects only the flows whose source host is local.
    """
    fab_cfg = fabric_config_for(config, preset, stack)
    sim = Simulation(seed=seed)
    label = f"fabric.{preset}.{stack}"
    fabric = build_fabric(sim, fab_cfg, name=label,
                          shard_plan=shard_plan, shard_id=shard_id)
    flow_filter = None
    if shard_plan is not None:
        flow_filter = (
            lambda flow: shard_plan.host_shard(flow.src) == shard_id)
    generator = FlowTrafficGenerator(
        sim, "flowgen", fabric.hosts, fabric.host_groups(),
        fab_cfg.link_bandwidth_bps, flow_filter=flow_filter)
    fabric.attach_generator(generator)
    fabric.validate_wiring()
    return fabric


def _run_phase(fabric: Fabric, chunk_us: float = 50.0,
               max_chunks: int = 4000) -> None:
    """Advance in fixed chunks until the generator has injected every
    flow and the fabric has drained."""
    generator = fabric.generator
    for _ in range(max_chunks):
        if not generator.active and fabric.quiescent():
            return
        fabric.run_us(chunk_us)
    raise CheckpointError(
        f"{fabric.label}: flow phase failed to drain after "
        f"{max_chunks} chunks of {chunk_us}us")


def _warm_key(config: SystemConfig, fabric: Fabric, preset: str, stack: str,
              plan: FabricWarmupPlan, seed: int) -> str:
    app_options = {"fabric": fabric.config.canonical_dict()}
    return warmup_key(config, f"fabric:{preset}:{stack}", 0, app_options,
                      plan, seed, fabric.sim.tracer._options_signature())


def _warm_gen_config(plan: FabricWarmupPlan) -> FlowGenConfig:
    return FlowGenConfig(pattern=plan.warm_pattern, load=plan.warm_load,
                         n_flows=plan.warm_flows,
                         size_cdf=plan.warm_size_cdf)


def prewarm_fabric(config: SystemConfig, preset: str, stack: str,
                   seed: int = 0,
                   warmup_cache: Optional[WarmupCache] = None) -> bool:
    """Populate the warm-up checkpoint cache for a fabric run.

    Exactly the warm-up block of :func:`run_fabric` (same key, same
    plan), stopped after the snapshot is sealed.  The persistent-worker
    sweep executor calls this in the parent before forking, so workers
    inherit the parsed snapshot through copy-on-write memory.

    Returns True when a fresh snapshot was simulated and stored, False
    on a cache hit or when no cache is configured.
    """
    cache = warmup_cache if warmup_cache is not None \
        else warmup_cache_from_env()
    if cache is None:
        return False
    fabric = build_fabric_rig(config, preset, stack, seed=seed)
    plan = FabricWarmupPlan()
    key = _warm_key(config, fabric, preset, stack, plan, seed)
    if cache.get(key) is not None:
        return False
    fabric.generator.start(_warm_gen_config(plan))
    _run_phase(fabric)
    fabric.drain_to_quiescence(chunk_us=plan.drain_chunk_us,
                               max_chunks=plan.max_drain_chunks)
    fabric.reset_measurement()
    cache.put(key, fabric.checkpoint(extra_meta={"phase": "warmup"}))
    cache.get(key)   # validated read-back seeds the in-memory memo
    return True


def run_fabric(config: SystemConfig, preset: str, stack: str,
               pattern: str = "uniform", load: float = 0.3,
               n_flows: int = 200, size_cdf: str = "smoke",
               seed: int = 0,
               warmup_cache: Optional[WarmupCache] = None
               ) -> FabricRunResult:
    """Run one open-loop flow phase through a fabric and measure FCTs.

    Warm-up runs a canonical uniform trickle, drains, and resets
    statistics; with ``warmup_cache`` (or ``REPRO_WARMUP_CACHE``) set,
    that state is checkpointed once and restored on every later run
    with the same key — bit-identical to warming up from scratch, and
    shared across patterns and loads.
    """
    fabric = build_fabric_rig(config, preset, stack, seed=seed)
    plan = FabricWarmupPlan()
    cache = warmup_cache if warmup_cache is not None \
        else warmup_cache_from_env()
    key = None
    restored = False
    if cache is not None:
        key = _warm_key(config, fabric, preset, stack, plan, seed)
        snapshot = cache.get(key)
        if snapshot is not None:
            try:
                fabric.restore(snapshot)
                restored = True
            except CheckpointError:
                # Schema drift that survived the digest check: drop the
                # entry and warm up from scratch on a rebuilt fabric.
                cache.discard(key)
                fabric = build_fabric_rig(config, preset, stack, seed=seed)
    if not restored:
        fabric.generator.start(_warm_gen_config(plan))
        _run_phase(fabric)
        fabric.drain_to_quiescence(chunk_us=plan.drain_chunk_us,
                                   max_chunks=plan.max_drain_chunks)
        fabric.reset_measurement()
        if cache is not None:
            cache.put(key, fabric.checkpoint(extra_meta={"phase": "warmup"}))

    # Measured phase — identical code whether the warm-up was simulated
    # or restored from a checkpoint.
    generator = fabric.generator
    resolve_size_cdf(size_cdf)   # fail fast on unknown names
    generator.start(FlowGenConfig(pattern=pattern, load=load,
                                  n_flows=n_flows, size_cdf=size_cdf))
    _run_phase(fabric)
    fabric.drain_to_quiescence(chunk_us=plan.drain_chunk_us,
                               max_chunks=plan.max_drain_chunks)
    trace_digest = _finalize_run(fabric)

    sent = fabric.frames_sent()
    delivered = fabric.frames_delivered()
    drop_counts = fabric.drop_breakdown()
    total_drops = sum(drop_counts.values())
    breakdown = ({cause: count / total_drops
                  for cause, count in sorted(drop_counts.items())}
                 if total_drops else {})
    result = FabricRunResult(
        label=config.label,
        preset=preset,
        stack=stack,
        pattern=pattern,
        offered_load=load,
        n_flows=n_flows,
        flows_started=generator.flows_started,
        flows_completed=generator.flows_completed,
        frames_sent=sent,
        frames_delivered=delivered,
        drop_rate=(total_drops / sent) if sent else 0.0,
        fct_us=generator.fct_summary(),
        drop_breakdown=breakdown,
        per_switch_drops=fabric.per_switch_drops(),
        flow_digest=generator.flow_digest(),
        trace_digest=trace_digest,
    )
    _check_fabric_sanity(fabric, result)
    return result


def _check_fabric_sanity(fabric: Fabric, result: FabricRunResult) -> None:
    """Harness-level cross-checks on the reported numbers (the fabric's
    internal conservation laws are the invariant registry's job)."""
    if fabric.sim.invariants.mode == "off":
        return
    fails = []
    if result.flows_completed > result.flows_started:
        fails.append(f"completed {result.flows_completed} flows but only "
                     f"{result.flows_started} started")
    if not 0 <= result.frames_delivered <= result.frames_sent:
        fails.append(f"delivered {result.frames_delivered} outside "
                     f"[0, sent {result.frames_sent}]")
    share = sum(result.drop_breakdown.values())
    if result.drop_breakdown and not 0.999 < share < 1.001:
        fails.append(f"drop-cause breakdown sums to {share:.6f}, not 1: "
                     f"{result.drop_breakdown}")
    count = result.fct_us.get("count", 0)
    if count != result.flows_completed:
        fails.append(f"FCT samples ({count:g}) != completed flows "
                     f"({result.flows_completed})")
    if fails:
        raise InvariantViolation(
            [f"harness.fabric: {msg}" for msg in fails],
            tick=fabric.sim.now, phase="harness")


def run_fabric_sharded(config: SystemConfig, preset: str, stack: str,
                       pattern: str = "uniform", load: float = 0.3,
                       n_flows: int = 200, size_cdf: str = "smoke",
                       seed: int = 0, shards: int = 2,
                       warmup_cache: Optional[WarmupCache] = None
                       ) -> FabricRunResult:
    """Same contract as :func:`run_fabric`, simulated across ``shards``
    processes — see :mod:`repro.dist.shard`.  The flow digest is
    bit-identical to the single-process run.  Imported lazily because
    the dist layer builds on this module.
    """
    from repro.dist.shard import run_fabric_sharded as _impl
    return _impl(config, preset, stack, pattern=pattern, load=load,
                 n_flows=n_flows, size_cdf=size_cdf, seed=seed,
                 shards=shards, warmup_cache=warmup_cache)
