"""Experiment harness.

Run primitives (fixed-load runs, bandwidth ramps, memcached request
sweeps), the maximum-sustainable-bandwidth search, per-figure experiment
functions covering every table and figure in the paper's evaluation, the
parallel sweep executor with its deterministic-replay result cache, and
plain-text report rendering.
"""

from repro.harness.runner import (
    APP_REGISTRY,
    FixedLoadResult,
    MemcachedRunResult,
    build_node,
    run_fixed_load,
    run_memcached,
)
from repro.harness.fabric import (
    FabricRunResult,
    run_fabric,
    run_fabric_sharded,
)
from repro.harness.msb import MsbResult, bandwidth_sweep, find_msb
from repro.harness.parallel import (
    ResultCache,
    SweepExecutor,
    SweepPoint,
    SweepPointError,
    SweepTimeoutError,
    fixed_load_point,
    memcached_point,
    msb_point,
    run_points,
)
from repro.harness.report import (
    format_executor_summary,
    format_series,
    format_table,
)

__all__ = [
    "APP_REGISTRY",
    "FixedLoadResult",
    "MemcachedRunResult",
    "build_node",
    "run_fixed_load",
    "run_memcached",
    "FabricRunResult",
    "run_fabric",
    "run_fabric_sharded",
    "MsbResult",
    "bandwidth_sweep",
    "find_msb",
    "ResultCache",
    "SweepExecutor",
    "SweepPoint",
    "SweepPointError",
    "SweepTimeoutError",
    "fixed_load_point",
    "memcached_point",
    "msb_point",
    "run_points",
    "format_executor_summary",
    "format_series",
    "format_table",
]
