"""Experiment harness.

Run primitives (fixed-load runs, bandwidth ramps, memcached request
sweeps), the maximum-sustainable-bandwidth search, per-figure experiment
functions covering every table and figure in the paper's evaluation, and
plain-text report rendering.
"""

from repro.harness.runner import (
    APP_REGISTRY,
    FixedLoadResult,
    MemcachedRunResult,
    build_node,
    run_fixed_load,
    run_memcached,
)
from repro.harness.msb import MsbResult, bandwidth_sweep, find_msb
from repro.harness.report import format_series, format_table

__all__ = [
    "APP_REGISTRY",
    "FixedLoadResult",
    "MemcachedRunResult",
    "build_node",
    "run_fixed_load",
    "run_memcached",
    "MsbResult",
    "bandwidth_sweep",
    "find_msb",
    "format_series",
    "format_table",
]
