"""On-disk warm-up checkpoint cache for sweeps.

The paper's methodology warms every simulation up under load before the
measured window (§VI.A) — and a sweep re-pays that warm-up at every
point.  But the harness warms up at a *canonical, load-independent* rate
and drains to quiescence before resetting statistics, so every point of
a single-configuration load sweep passes through byte-identical post-
warm-up machine state.  This cache stores that state once, as a sealed
:mod:`repro.sim.checkpoint` document, and every subsequent point
restores it instead of re-simulating the warm-up.

Keying: a SHA-256 digest over everything the post-warm-up state depends
on — the result-cache schema version, the checkpoint format, the full
canonical :class:`~repro.system.config.SystemConfig`, the application
and its options, the packet size, the :class:`~repro.system.node.WarmupPlan`,
the *effective* seed, and the tracer configuration.  The offered load is
deliberately absent: that is the whole point.

Failure policy mirrors :class:`repro.harness.parallel.ResultCache`: any
unreadable, version-mismatched, or digest-mismatched entry counts as
corrupt, is deleted, and the warm-up is re-simulated — a damaged cache
can slow a sweep down but never change its results.  Writes are atomic
(temp file + ``os.replace``), so sweep workers racing to produce the
same snapshot never leave a torn file.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, Optional

from repro.sim.checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.system.config import SystemConfig
from repro.system.node import WarmupPlan

#: Environment variable through which sweep workers (and the CLI's
#: ``--warmup-cache`` flag) point runs at a shared cache directory.
WARMUP_CACHE_ENV = "REPRO_WARMUP_CACHE"

#: Version of the warm-up *keying* scheme (what state a key promises to
#: describe).  Bump together with methodology changes so stale snapshots
#: miss instead of silently seeding a run with different machine state.
WARMUP_KEY_VERSION = 1


def warmup_key(config: SystemConfig, app: str, packet_size: int,
               app_options: Optional[Dict[str, Any]], plan: WarmupPlan,
               seed: int, tracer_signature: Dict[str, Any]) -> str:
    """Stable digest of everything the post-warm-up state depends on."""
    options = {k: v for k, v in (app_options or {}).items()
               if k != "store"}   # the store is node-internal state
    payload = {
        "key_version": WARMUP_KEY_VERSION,
        "checkpoint_format": CHECKPOINT_FORMAT,
        "config": config.canonical_dict(),
        "app": app,
        "packet_size": packet_size,
        "app_options": options,
        "plan": asdict(plan),
        "seed": seed,
        "tracer": tracer_signature,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


class WarmupCache:
    """One sealed checkpoint file per warm-up state, named by its key.

    Entries are additionally memoized in memory: within one process a
    warm-up snapshot is parsed (and digest-verified) from disk at most
    once.  Only a *validated disk read* populates the memo — a plain
    :meth:`put` does not — so corruption injected into the file before
    the first read is still detected.  The persistent-worker sweep
    executor leans on the memo: the parent *prewarms* it before forking
    workers, so every worker inherits the already-loaded snapshots
    through copy-on-write fork memory instead of re-reading (and
    re-verifying) them per sweep point.

    Checkpoint documents are treated as immutable once sealed; restore
    paths only read them, so sharing one dict across runs is safe.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.saves = 0
        self.corrupt_entries = 0
        self._memo: Dict[str, dict] = {}

    def path_for(self, key: str) -> Path:
        return self.root / f"warmup-{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """The stored checkpoint document, or None on miss.

        A corrupt entry (unreadable file, schema drift, digest mismatch)
        is deleted and reported as a miss, so the caller falls back to
        simulating the warm-up and then overwrites the entry.
        """
        memoized = self._memo.get(key)
        if memoized is not None:
            self.hits += 1
            return memoized
        path = self.path_for(key)
        if not path.exists():
            self.misses += 1
            return None
        try:
            document = load_checkpoint(str(path))
        except CheckpointError:
            self.corrupt_entries += 1
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        self._memo[key] = document
        return document

    def put(self, key: str, document: dict) -> None:
        """Atomically store one sealed checkpoint.

        Deliberately does *not* memoize: the memo only ever holds
        copies that passed the on-disk digest check, so tests (and
        operators) that corrupt an entry behind the cache's back still
        see the corruption detected on the next read."""
        save_checkpoint(document, str(self.path_for(key)))
        self.saves += 1

    def discard(self, key: str) -> None:
        """Drop an entry that failed to restore (schema drift survives
        the digest check when the writer was a different code version)."""
        self._memo.pop(key, None)
        try:
            self.path_for(key).unlink()
        except OSError:
            pass


#: Per-directory singletons handed out by :func:`warmup_cache_from_env`,
#: so repeated harness calls in one process (and forked sweep workers)
#: share a single in-memory memo per cache directory.
_caches_by_root: Dict[str, WarmupCache] = {}


def drop_warmup_cache(root) -> None:
    """Evict the per-directory singleton (and its memo) for ``root``.

    Callers that provision ephemeral cache directories use this to free
    the memoized snapshots when the directory is deleted."""
    _caches_by_root.pop(str(Path(root).resolve()), None)


def warmup_cache_from_env() -> Optional[WarmupCache]:
    """The cache named by ``REPRO_WARMUP_CACHE``, or None when unset.

    This is how sweep worker processes find the shared cache: the
    executor/CLI exports the variable and every
    :func:`repro.harness.runner.run_fixed_load` /
    :func:`~repro.harness.runner.run_memcached` call picks it up.
    Returns one :class:`WarmupCache` instance per directory so the
    in-memory memo is shared across calls.
    """
    root = os.environ.get(WARMUP_CACHE_ENV)
    if not root:
        return None
    resolved = str(Path(root).resolve())
    cache = _caches_by_root.get(resolved)
    if cache is None:
        cache = WarmupCache(root)
        _caches_by_root[resolved] = cache
    return cache
