"""Maximum sustainable bandwidth (MSB) search.

"We define MSB as the network bandwidth at the point on the bandwidth
versus packet drop graph where the drop rate exceeds 1%." (paper §VII.C)

At the knee, offered load equals the node's service capacity, so the MSB
is measured directly as *delivered throughput under saturation*: a first
run overloads the node and reads its steady-state service rate; a second
run at a mild overload of that estimate refines it (heavy overload can
distort capacity through permanently-full rings and larger cache
footprints).  ``bandwidth_sweep`` produces the full bandwidth-vs-drop
curves of Figs 6-9 from independent fixed-rate runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.harness.runner import run_fixed_load
from repro.loadgen.ether_load_gen import gbps_for_pps
from repro.system.config import SystemConfig

DROP_THRESHOLD = 0.01
REFINE_OVERLOAD = 1.2


def _saturation_warmup_us(config: SystemConfig) -> float:
    """Warm-up for saturation runs: the first packet only reaches the node
    after the link's one-way delay, and the rings/FIFO need time to reach
    their saturated steady state after that."""
    return config.link_delay_us + 150.0


@dataclass
class MsbResult:
    """The located knee plus any curve points gathered on the way."""

    label: str
    app: str
    packet_size: int
    msb_gbps: float
    curve: List[Tuple[float, float]] = field(default_factory=list)
    # (offered_gbps, drop_rate) points

    def drop_at(self, gbps: float) -> Optional[float]:
        """Drop rate of the curve point nearest ``gbps``."""
        if not self.curve:
            return None
        return min(self.curve, key=lambda pt: abs(pt[0] - gbps))[1]

    @classmethod
    def from_dict(cls, data: dict) -> "MsbResult":
        """Rebuild from ``dataclasses.asdict`` output (tolerating the
        JSON round trip, which decodes curve tuples as lists)."""
        data = dict(data)
        data["curve"] = [tuple(pt) for pt in data.get("curve", [])]
        return cls(**data)


def _clamped_ceiling(config: SystemConfig, packet_size: int,
                     gbps: float) -> float:
    """Respect a software load generator's pps ceiling (altra client)."""
    if config.software_loadgen_max_pps is None:
        return gbps
    ceiling = gbps_for_pps(config.software_loadgen_max_pps, packet_size)
    return min(gbps, ceiling)


def find_msb(config: SystemConfig, app_name: str, packet_size: int,
             max_gbps: float = 70.0, n_packets: int = 2500,
             app_options: Optional[dict] = None,
             seed: int = 0) -> MsbResult:
    """Two-run saturation measurement of the MSB."""
    if app_name == "touchdrop":
        raise ValueError(
            "MSB is undefined for TouchDrop (drop rate is always 100%; "
            "the paper excludes it for the same reason, §VII)")
    max_gbps = _clamped_ceiling(config, packet_size, max_gbps)
    curve: List[Tuple[float, float]] = []

    warmup_us = _saturation_warmup_us(config)
    first = run_fixed_load(config, app_name, packet_size, max_gbps,
                           n_packets=n_packets, app_options=app_options,
                           warmup_us=warmup_us, seed=seed)
    curve.append((first.offered_gbps, first.drop_rate))
    if first.drop_rate <= DROP_THRESHOLD:
        # The node sustains the ceiling itself (or the software client is
        # the bottleneck, the altra small-packet case).
        return MsbResult(label=config.label, app=app_name,
                         packet_size=packet_size,
                         msb_gbps=first.offered_gbps, curve=curve)

    estimate = first.service_gbps
    refine_rate = min(max_gbps, max(estimate * REFINE_OVERLOAD,
                                    max_gbps / 100.0))
    second = run_fixed_load(config, app_name, packet_size, refine_rate,
                            n_packets=n_packets, app_options=app_options,
                            warmup_us=warmup_us, seed=seed + 1)
    curve.append((second.offered_gbps, second.drop_rate))
    if second.drop_rate <= DROP_THRESHOLD:
        msb = second.offered_gbps
    else:
        msb = second.service_gbps
    return MsbResult(label=config.label, app=app_name,
                     packet_size=packet_size, msb_gbps=msb, curve=curve)


def sweep_rates(config: SystemConfig, packet_size: int,
                rates_gbps: List[float]) -> List[float]:
    """The effective per-point rates of a sweep: each offered rate is
    clamped by the software-client ceiling, and consecutive duplicates
    collapse — the curve simply ends at the ceiling (as altra's does in
    Fig 6)."""
    rates: List[float] = []
    for gbps in rates_gbps:
        clamped = _clamped_ceiling(config, packet_size, gbps)
        if rates and abs(clamped - rates[-1]) < 1e-9:
            continue
        rates.append(clamped)
    return rates


def sweep_points(config: SystemConfig, app_name: str, packet_size: int,
                 rates_gbps: List[float], n_packets: int = 1500,
                 app_options: Optional[dict] = None, seed: int = 0):
    """The independent :class:`~repro.harness.parallel.SweepPoint` list
    for one bandwidth-vs-drop curve."""
    from repro.harness.parallel import fixed_load_point
    return [fixed_load_point(config, app_name, packet_size, rate,
                             n_packets=n_packets, app_options=app_options,
                             seed=seed)
            for rate in sweep_rates(config, packet_size, rates_gbps)]


def bandwidth_sweep(config: SystemConfig, app_name: str, packet_size: int,
                    rates_gbps: List[float], n_packets: int = 1500,
                    app_options: Optional[dict] = None,
                    seed: int = 0, jobs: int = 1, cache_dir=None,
                    executor=None) -> List[Tuple[float, float]]:
    """The bandwidth-vs-drop-rate curve (Figs 6-9): one independent
    fixed-rate run per point.  Returns (offered_gbps, drop_rate) pairs.

    Points route through a :class:`~repro.harness.parallel.SweepExecutor`
    (``jobs=1`` by default — the serial reference path), so ``jobs``/
    ``cache_dir`` fan the sweep out across processes and replay cached
    points for free.
    """
    from repro.harness.parallel import SweepExecutor
    points = sweep_points(config, app_name, packet_size, rates_gbps,
                          n_packets=n_packets, app_options=app_options,
                          seed=seed)
    ex = executor or SweepExecutor(jobs=jobs, cache_dir=cache_dir)
    results = ex.run(points)
    return [(r.offered_gbps, r.drop_rate) for r in results]
