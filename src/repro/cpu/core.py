"""Core model base class and work description.

A :class:`Work` is the memory/compute footprint of one unit of application
work (one packet, one request): address lists for instruction fetches,
independent loads, stores, and a *dependent* load chain that no amount of
out-of-order machinery can overlap (pointer chasing, e.g. the KV store's
hash-bucket walk).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.mem.hierarchy import LEVEL_L1, MemoryHierarchy
from repro.sim.ports import KIND_CLOCK, KIND_MEM, RequestPort


@dataclass(frozen=True)
class CoreConfig:
    """Microarchitectural parameters (Table I)."""

    freq_hz: float = 3e9
    ooo: bool = True
    width: int = 4                  # superscalar ways
    rob_entries: int = 128
    iq_entries: int = 120
    lq_entries: int = 68
    sq_entries: int = 72
    int_regs: int = 256
    fp_regs: int = 256
    btb_entries: int = 8192
    branch_predictor: str = "BiModeBP"
    # Average instructions between independent memory accesses in the hot
    # loops; ROB/insts_per_access bounds discoverable memory-level
    # parallelism.
    insts_per_access: int = 8
    # Relative pipeline efficiency vs the reference model.  >1 models a
    # real core outperforming its simulated counterpart — the paper
    # attributes altra's edge on core-bound workloads to "the superior
    # performance of a real Neoverse N1 core compared to its simulated
    # counterpart in gem5" (§VII.B).
    efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.freq_hz <= 0:
            raise ValueError("frequency must be positive")
        if self.width < 1 or self.rob_entries < 1:
            raise ValueError("width and ROB must be at least 1")
        if self.efficiency <= 0:
            raise ValueError("efficiency must be positive")

    @property
    def period_ns(self) -> float:
        """Clock period in nanoseconds."""
        return 1e9 / self.freq_hz


@dataclass
class Work:
    """The footprint of one unit of work.

    ``compute_cycles`` are *retired* cycles on the reference out-of-order
    pipeline.  Two knobs encode kernel-level ILP properties:

    - ``max_mlp`` caps how many of this kernel's misses the OoO core can
      overlap (tight byte-processing loops discover less MLP than the
      ROB-wide limit allows);
    - ``inorder_penalty`` is the CPI multiplier an in-order pipeline pays
      on this kernel's compute (dependent-chain-heavy loops degrade far
      more than straight-line driver code).
    """

    compute_cycles: int = 0
    ifetch: Sequence[int] = field(default_factory=tuple)
    reads: Sequence[int] = field(default_factory=tuple)
    writes: Sequence[int] = field(default_factory=tuple)
    dependent_reads: Sequence[int] = field(default_factory=tuple)
    max_mlp: Optional[int] = None
    inorder_penalty: float = 2.0

    @property
    def access_count(self) -> int:
        """Total memory accesses described by this work unit."""
        return (len(self.ifetch) + len(self.reads) + len(self.writes)
                + len(self.dependent_reads))


class CoreModel:
    """Base: owns the hierarchy, counts instructions and busy time."""

    #: In a run of consecutive cache lines, the stream prefetcher covers
    #: lines after the first two at this ratio (2 of every 3): a covered
    #: line's latency collapses to an L2-hit-equivalent cost even when the
    #: data comes from DRAM.  DRAM bandwidth is still consumed.
    PREFETCH_MIN_RUN = 2
    PREFETCH_DUTY = 3   # of each DUTY lines in a run, DUTY-1 are covered

    def __init__(self, config: CoreConfig, hierarchy: MemoryHierarchy,
                 clock=None, name: str = "core") -> None:
        self.config = config
        self.hierarchy = hierarchy
        self.name = name
        self.busy_ns = 0.0
        self.work_units = 0
        self.accesses = 0
        self.l1_hits = 0
        self.prefetch_covered = 0
        self.mem_port = RequestPort(self, "mem_port", KIND_MEM)
        self.mem_port.bind(hierarchy.cpu_side)
        self.clock_port = RequestPort(
            self, "clock_port", KIND_CLOCK,
            hint="give the core a time source: make_core(..., "
                 "clock=ClockDomain(sim)) or core.set_clock(domain)")
        # Simulated-time source; the owning topology binds a ClockDomain
        # here so DRAM queueing is judged against real time.  ``None``
        # (standalone/calibration use) pins time at zero.
        self.clock = None
        if clock is not None:
            self.set_clock(clock)

    def set_clock(self, clock) -> None:
        """Join ``clock``'s domain (an object exposing ``now_ns()``)."""
        self.clock = clock
        self.clock_port.bind(clock.port)

    def _covered_by_prefetch(self, reads: Sequence[int]) -> set:
        """Line addresses in sequential runs that the stream prefetcher
        hides (hardware prefetchers key on ascending line strides)."""
        covered = set()
        prev_line = None
        run_len = 0
        for addr in reads:
            line = addr & ~63
            if prev_line is not None and line == prev_line + 64:
                run_len += 1
                if (run_len >= self.PREFETCH_MIN_RUN
                        and run_len % self.PREFETCH_DUTY != 0):
                    covered.add(addr)
            else:
                run_len = 0
            prev_line = line
        return covered

    def _prefetched_cost_ns(self) -> float:
        """Latency of a prefetch-covered line: the pipeline sees roughly
        an L2 hit."""
        cfg = self.hierarchy.config
        return (cfg.l1d.latency_cycles
                + cfg.l2.latency_cycles) * self.config.period_ns

    def execute(self, work: Work, now_ns: Optional[float] = None) -> float:
        """Run one work unit; returns elapsed nanoseconds.

        ``now_ns`` defaults to the wired ``clock`` (the node's simulated
        time) so DRAM queueing delays are computed against real time.
        """
        if now_ns is None:
            now_ns = self.clock.now_ns() if self.clock is not None else 0.0
        elapsed = self._time_work(work, now_ns)
        self.busy_ns += elapsed
        self.work_units += 1
        self.accesses += work.access_count
        return elapsed

    def _time_work(self, work: Work, now_ns: float) -> float:
        raise NotImplementedError

    def _probe(self, addr: int, now_ns: float, is_instr: bool = False,
               is_write: bool = False) -> float:
        """Access latency in ns; tracks L1 hit counts for the subclasses."""
        result = self.hierarchy.core_access(
            addr, now_ns, is_instr=is_instr, is_write=is_write)
        if result.level == LEVEL_L1:
            self.l1_hits += 1
        return result.cycles * self.config.period_ns + result.dram_ns

    def reset_counters(self) -> None:
        """Zero the measurement counters."""
        self.busy_ns = 0.0
        self.work_units = 0
        self.accesses = 0
        self.l1_hits = 0
        self.prefetch_covered = 0

    # -- checkpoint support --------------------------------------------------

    def serialize_state(self) -> dict:
        return {
            "busy_ns": self.busy_ns,
            "work_units": self.work_units,
            "accesses": self.accesses,
            "l1_hits": self.l1_hits,
            "prefetch_covered": self.prefetch_covered,
        }

    def deserialize_state(self, state: dict) -> None:
        self.busy_ns = state["busy_ns"]
        self.work_units = state["work_units"]
        self.accesses = state["accesses"]
        self.l1_hits = state["l1_hits"]
        self.prefetch_covered = state["prefetch_covered"]

    def invariant_failures(self):
        """Core accounting sanity; a list of messages, empty when OK.
        All counters here reset together in ``reset_counters`` so their
        relations hold at any instant."""
        fails = []
        if self.busy_ns < 0:
            fails.append(f"negative busy time {self.busy_ns}ns")
        if not 0 <= self.l1_hits <= self.accesses:
            fails.append(
                f"L1 hits ({self.l1_hits}) outside [0, accesses "
                f"({self.accesses})]")
        if self.prefetch_covered > self.accesses:
            fails.append(
                f"prefetch-covered lines ({self.prefetch_covered}) exceed "
                f"total accesses ({self.accesses})")
        if self.work_units and self.accesses and self.busy_ns <= 0:
            fails.append(
                f"{self.work_units} work units with {self.accesses} "
                f"accesses accumulated no busy time")
        return fails
