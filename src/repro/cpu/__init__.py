"""CPU timing models.

Abstract core models that execute per-packet *work kernels* (instruction
fetch, loads, stores, compute cycles) against a :class:`MemoryHierarchy`.
Two microarchitectures are provided, matching the paper's Fig 16 sweep:

- :class:`OutOfOrderCore` — overlaps independent misses up to an
  MLP limit derived from ROB size, load-queue size and MSHRs;
- :class:`InOrderCore` — serializes every memory access.

Cache hit latencies are cycle counts in the core clock domain, so the
frequency sweeps (Fig 15, Fig 19) change both compute and cache-hit time
while DRAM time stays constant — exactly the core-bound vs IO-bound
transition the paper characterizes.
"""

from repro.cpu.core import CoreConfig, CoreModel, Work
from repro.cpu.ooo import OutOfOrderCore
from repro.cpu.inorder import InOrderCore
from repro.cpu.kernels import (
    KernelCosts,
    lines_covering,
    touch_lines,
)

__all__ = [
    "CoreConfig",
    "CoreModel",
    "Work",
    "OutOfOrderCore",
    "InOrderCore",
    "KernelCosts",
    "lines_covering",
    "touch_lines",
]


def make_core(config, hierarchy, clock=None, name="core"):
    """Build the right core model for ``config.ooo``.

    ``clock`` is the :class:`~repro.sim.ports.ClockDomain` the core joins
    (or any object with ``now_ns()``); omit it for standalone timing use.
    """
    if config.ooo:
        return OutOfOrderCore(config, hierarchy, clock=clock, name=name)
    return InOrderCore(config, hierarchy, clock=clock, name=name)
