"""Shared work-kernel helpers and software-stack cost constants.

The applications (repro.apps) build :class:`~repro.cpu.core.Work` objects
from these helpers.  :class:`KernelCosts` gathers the per-operation cycle
costs of the two software stacks; the defaults are calibrated so the
headline magnitudes land near the paper's (kernel stack ~10Gbps at 1518B,
DPDK ~24Gbps at 128B on the Table I out-of-order core at 3GHz).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

LINE_SIZE = 64


def lines_covering(base: int, nbytes: int, line_size: int = LINE_SIZE) -> List[int]:
    """Line addresses covering [base, base+nbytes)."""
    if nbytes <= 0:
        return []
    first = base // line_size
    last = (base + nbytes - 1) // line_size
    return [line * line_size for line in range(first, last + 1)]


def touch_lines(base: int, nbytes: int, stride: int = LINE_SIZE) -> List[int]:
    """Addresses touching every ``stride`` bytes of a buffer (a payload
    touch loop as in TouchFwd/TouchDrop)."""
    if nbytes <= 0:
        return []
    return [base + off for off in range(0, nbytes, stride)]


@dataclass(frozen=True)
class KernelCosts:
    """Cycle costs of software-stack operations.

    DPDK side: the poll-mode driver costs reflect "run-to-completion"
    processing — no syscalls, no interrupts, no copies (paper §II.A).

    Kernel side: the costs the paper names as the kernel stack's overheads —
    "frequent system calls and context switches ... frequent buffer copies
    within the kernel software stack and between kernel and userspace
    buffers ... extended latency associated with interrupt processing".
    """

    # ---- DPDK poll-mode driver ------------------------------------------
    pmd_rx_burst_cycles: int = 60        # fixed cost per rte_eth_rx_burst
    pmd_tx_burst_cycles: int = 60        # fixed cost per rte_eth_tx_burst
    pmd_per_packet_cycles: int = 60      # mbuf + descriptor bookkeeping
    pmd_empty_poll_cycles: int = 40      # a poll that returns zero packets
    mempool_get_put_cycles: int = 20     # per mbuf alloc/free pair

    # ---- Linux kernel stack ---------------------------------------------
    syscall_cycles: int = 1400           # one user<->kernel crossing pair
    context_switch_cycles: int = 2600    # scheduler switch on wakeup
    interrupt_cycles: int = 3200         # hard IRQ entry/exit + handler
    softirq_per_packet_cycles: int = 1500  # NET_RX protocol processing
    skb_alloc_cycles: int = 350          # sk_buff allocate + init
    copy_cycles_per_line: int = 6        # copy bandwidth: cycles per 64B line
    socket_dequeue_cycles: int = 500     # socket buffer handoff

    # ---- Batching --------------------------------------------------------
    # NAPI and interrupt coalescing amortize interrupt + syscall costs over
    # a batch of packets at high rates.
    kernel_batch_size: int = 16

    # ---- Application-side constants --------------------------------------
    app_base_cycles: int = 30            # minimal per-packet app logic
    memcached_request_cycles: int = 4600  # parse + hash + respond logic
    # The kernel-stack memcached additionally runs libevent dispatch and
    # its connection state machine per request; the DPDK KVS has none of
    # that (run-to-completion, no event loop).
    memcached_event_loop_cycles: int = 7400
    iperf_per_segment_cycles: int = 260  # TCP segment bookkeeping
    tcp_ack_cycles: int = 1100           # in-kernel ACK generation (no
                                         # syscall, no user copy)

    def __post_init__(self) -> None:
        if self.kernel_batch_size < 1:
            raise ValueError("kernel batch size must be >= 1")
