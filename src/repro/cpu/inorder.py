"""In-order core timing model.

Every memory access serializes behind the previous one — the pipeline
blocks on the first use of a missing load, and a scalar in-order front end
cannot run ahead to find independent misses.  Compute cycles are likewise
serial with the accesses.  This is the pessimistic end of the Fig 16
comparison, where the paper sees up to 8x lower MSB than the O3 core for
deep network functions.
"""

from __future__ import annotations

from repro.cpu.core import CoreConfig, CoreModel, Work
from repro.mem.hierarchy import LEVEL_L1


class InOrderCore(CoreModel):
    """Fully serialized access timing."""

    def __init__(self, config: CoreConfig, hierarchy,
                 clock=None, name: str = "core") -> None:
        super().__init__(config, hierarchy, clock=clock, name=name)

    def _time_work(self, work: Work, now_ns: float) -> float:
        period = self.config.period_ns
        hierarchy = self.hierarchy
        # The kernel's in-order CPI penalty: an in-order pipeline cannot
        # reorder around dependences, so the same retired instruction
        # stream takes a kernel-dependent factor more cycles.
        total_ns = (work.compute_cycles * work.inorder_penalty
                    * period / self.config.efficiency)
        for addr in work.ifetch:
            result = hierarchy.core_access(addr, now_ns, is_instr=True)
            if result.level == LEVEL_L1:
                self.l1_hits += 1
            total_ns += result.cycles * period + result.dram_ns
        covered = self._covered_by_prefetch(work.reads)
        prefetched_ns = self._prefetched_cost_ns()
        for addr in work.reads:
            result = hierarchy.core_access(addr, now_ns)
            if result.level == LEVEL_L1:
                self.l1_hits += 1
                total_ns += result.cycles * period
            elif addr in covered:
                self.prefetch_covered += 1
                total_ns += min(prefetched_ns,
                                result.cycles * period + result.dram_ns)
            else:
                total_ns += result.cycles * period + result.dram_ns
        for addr in work.writes:
            result = hierarchy.core_access(addr, now_ns, is_write=True)
            if result.level == LEVEL_L1:
                self.l1_hits += 1
            total_ns += result.cycles * period + result.dram_ns
        for addr in work.dependent_reads:
            result = hierarchy.core_access(addr, now_ns)
            if result.level == LEVEL_L1:
                self.l1_hits += 1
            total_ns += result.cycles * period + result.dram_ns
        return total_ns
