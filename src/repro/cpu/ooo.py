"""Out-of-order core timing model.

Models the three effects the paper's sensitivity study exercises:

- *Issue bandwidth*: instructions (compute + one per memory access) retire
  at ``width`` per cycle.
- *Memory-level parallelism*: independent accesses that miss the L1 overlap
  up to an MLP limit of ``min(ROB/insts_per_access, LQ, outer MSHRs)`` —
  "improvements in memory-level parallelism with larger ROB sizes"
  (paper Fig 17d-f discussion).
- *True dependences*: ``dependent_reads`` form a serial chain that no ROB
  can hide (hash-bucket walks in the KV store).
"""

from __future__ import annotations

from repro.cpu.core import CoreConfig, CoreModel, Work
from repro.mem.hierarchy import LEVEL_L1, MemoryHierarchy


class OutOfOrderCore(CoreModel):
    """ROB/MSHR-limited overlap of independent misses."""

    #: Front-end fetch-ahead: how many outstanding instruction-line misses
    #: the fetch unit (with next-line prefetch) overlaps.
    FETCH_OVERLAP = 2

    def __init__(self, config: CoreConfig, hierarchy: MemoryHierarchy,
                 clock=None, name: str = "core") -> None:
        if not config.ooo:
            raise ValueError("OutOfOrderCore requires config.ooo=True")
        super().__init__(config, hierarchy, clock=clock, name=name)
        self._mlp_limit = self._compute_mlp_limit()

    def _compute_mlp_limit(self) -> int:
        cfg = self.config
        rob_window = cfg.rob_entries // max(1, cfg.insts_per_access)
        outer_mshrs = self.hierarchy.config.l2.mshrs
        return max(1, min(rob_window, cfg.lq_entries, outer_mshrs))

    @property
    def mlp_limit(self) -> int:
        """Maximum overlapped outstanding misses."""
        return self._mlp_limit

    def _time_work(self, work: Work, now_ns: float) -> float:
        cfg = self.config
        period = cfg.period_ns
        # Bound method hoisted out of the per-address loops below; this
        # method runs once per simulated burst packet.
        core_access = self.hierarchy.core_access

        # Issue/retire bandwidth: every access occupies one issue slot.
        issue_cycles = work.compute_cycles + (
            work.access_count + cfg.width - 1) // cfg.width
        issue_ns = issue_cycles * period / cfg.efficiency

        # Instruction-fetch misses stall the front end: no ROB can hide
        # an instruction that has not been fetched.  Next-line prefetch
        # gives a small overlap factor.
        fetch_stall_ns = 0.0
        for addr in work.ifetch:
            result = core_access(addr, now_ns, is_instr=True)
            if result.level == LEVEL_L1:
                self.l1_hits += 1
            else:
                fetch_stall_ns += (result.cycles * period
                                   + result.dram_ns) / self.FETCH_OVERLAP

        # Independent data accesses: L1 hits are absorbed by the pipeline;
        # the rest overlap up to the MLP limit.  Stream-prefetched lines in
        # sequential runs cost an L2-hit equivalent.
        covered = self._covered_by_prefetch(work.reads)
        prefetched_ns = self._prefetched_cost_ns()
        miss_ns_total = 0.0
        for addr in work.reads:
            result = core_access(addr, now_ns)
            if result.level == LEVEL_L1:
                self.l1_hits += 1
            elif addr in covered:
                self.prefetch_covered += 1
                miss_ns_total += min(prefetched_ns,
                                     result.cycles * period
                                     + result.dram_ns)
            else:
                miss_ns_total += result.cycles * period + result.dram_ns
        for addr in work.writes:
            result = core_access(addr, now_ns, is_write=True)
            if result.level == LEVEL_L1:
                self.l1_hits += 1
            else:
                # Stores retire from the SQ; they stall only through
                # bandwidth, modelled at half weight.
                miss_ns_total += (result.cycles * period + result.dram_ns) / 2
        mlp = self._mlp_limit
        if work.max_mlp is not None:
            mlp = max(1, min(mlp, work.max_mlp))
        stall_ns = miss_ns_total / mlp

        # Dependent chain: fully serial, including L1 hit latency.
        dep_ns = 0.0
        for addr in work.dependent_reads:
            result = core_access(addr, now_ns)
            if result.level == LEVEL_L1:
                self.l1_hits += 1
            dep_ns += result.cycles * period + result.dram_ns

        return issue_ns + fetch_stall_ns + stall_ns + dep_ns
