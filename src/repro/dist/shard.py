"""Shard one fabric simulation across OS processes.

SimBricks (PAPERS.md) couples independent component simulators through
latency-tolerant message channels with synchronized virtual time.  This
module is that composition for the reproduction's switch fabrics:

- :func:`plan_fabric_shards` partitions a :class:`FabricConfig`'s
  topology into ``n`` shards (pods or leaves stay whole; cores and
  spines stripe round-robin);
- each shard process builds only its slice of the fabric (remote
  components become stubs, boundary links become
  :class:`~repro.sim.channel.ChannelHalf` ends — see
  :meth:`repro.net.fabric.Fabric._link`) and runs its own
  :class:`~repro.sim.event_queue.EventQueue`;
- a coordinator in the parent drives the same warm-up / measure / drain
  phase structure as :func:`repro.harness.fabric.run_fabric`, while the
  shards exchange per-epoch frame batches over multiprocessing queues
  under the conservative quantum bound (quantum <= min link latency);
- per-shard results merge into one :class:`FabricRunResult` whose flow
  digest is **bit-identical** to the single-process run — the
  equivalence the cross-process suite pins for the whole 12-case
  scenario matrix.

Determinism argument (docs/sharding.md has the long form): every shard
runs a full replica of the flow generator — same seed, same fork
labels, same RNG draws — and injects only the flows whose source host
it owns.  Phase boundaries are evaluated at the same absolute ticks as
the single-process chunk loop, channel delivery ticks reproduce
:class:`~repro.nic.phy.EtherLink` arithmetic exactly, and epoch
injection is sorted ``(deliver_at, channel, seq)``, so each shard's
event sequence is the exact projection of the single-process one.

Failure semantics: a shard that dies mid-epoch is detected by the
coordinator's liveness poll (and, as a backstop, by its peers' bounded
channel-receive timeout); everything is torn down — terminate, join
with timeout, kill stragglers — and a :class:`ShardCrashError` naming
the shard is raised.  No deadlocked peers, no orphan processes.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_lib
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

from repro.harness.fabric import (
    FabricRunResult,
    FabricWarmupPlan,
    _finalize_run,
    _warm_gen_config,
    build_fabric_rig,
    fabric_config_for,
    run_fabric,
)
from repro.loadgen.flowgen import (
    FlowGenConfig,
    FlowRecord,
    fct_summary_from,
    flow_digest_from,
    resolve_size_cdf,
)
from repro.net.fabric import FabricConfig
from repro.sim.channel import ChannelError, ChannelGroup
from repro.sim.checkpoint import CheckpointError
from repro.sim.invariants import InvariantViolation
from repro.sim.ticks import us_to_ticks
from repro.system.config import SystemConfig

# Phase-loop geometry: must mirror repro.harness.fabric._run_phase and
# Fabric.drain_to_quiescence so sharded runs evaluate their done
# conditions at the same absolute ticks as the single-process path.
# The equivalence suite pins any drift.
_PHASE_CHUNK_US = 50.0
_PHASE_MAX_CHUNKS = 4000

#: How long a shard waits for a peer's epoch batch before declaring the
#: peer dead (backstop — the coordinator's liveness poll usually fires
#: first).
_PEER_TIMEOUT_S = 60.0
#: How long the coordinator waits for one command response from a live
#: shard before giving up on it.
_CMD_TIMEOUT_S = 300.0


class ShardCrashError(RuntimeError):
    """A shard process died (or stopped responding) mid-run."""

    def __init__(self, shard_id: int, message: str) -> None:
        super().__init__(message)
        self.shard_id = shard_id


@dataclass(frozen=True)
class ShardPlan:
    """Who owns what: host index -> shard, logical switch name -> shard.

    Logical switch names are the builder names with the fabric label
    stripped (``pod0.edge1``, ``core3``, ``leaf2``, ``spine0``), so one
    plan applies to any fabric label.
    """

    n_shards: int
    hosts: Tuple[int, ...]
    switches: Dict[str, int]

    def host_shard(self, host_id: int) -> int:
        return self.hosts[host_id]

    def switch_shard(self, logical_name: str) -> int:
        try:
            return self.switches[logical_name]
        except KeyError:
            raise ChannelError(
                f"shard plan has no owner for switch {logical_name!r}; "
                f"plan and builder are out of sync") from None


def plan_fabric_shards(config: FabricConfig, n_shards: int) -> ShardPlan:
    """Partition a fabric topology into ``n_shards`` shards.

    Heuristics (see docs/sharding.md): keep the densest connectivity
    inside a shard and cut only the long links.  Fat-trees keep each pod
    whole (host <-> edge <-> agg traffic never crosses a boundary) and
    stripe core switches round-robin; leaf-spines keep each leaf with
    its hosts and stripe the spines.  Requires the pod/leaf count to
    divide evenly so shards are balanced.
    """
    if n_shards < 1:
        raise ValueError("shard count must be at least 1")
    switches: Dict[str, int] = {}
    if config.topology == "fat_tree":
        k = config.k
        if n_shards > k or k % n_shards:
            raise ValueError(
                f"cannot shard a k={k} fat-tree into {n_shards} shards: "
                f"the shard count must divide the pod count {k}")
        half = k // 2
        pod_owner = [p * n_shards // k for p in range(k)]
        for p in range(k):
            for i in range(half):
                switches[f"pod{p}.edge{i}"] = pod_owner[p]
            for j in range(half):
                switches[f"pod{p}.agg{j}"] = pod_owner[p]
        for c in range(half * half):
            switches[f"core{c}"] = c % n_shards
        hosts_per_pod = half * half
        hosts = tuple(pod_owner[h // hosts_per_pod]
                      for h in range(config.n_hosts))
    else:
        leaves, spines, per_leaf = (config.leaves, config.spines,
                                    config.hosts_per_leaf)
        if n_shards > leaves or leaves % n_shards:
            raise ValueError(
                f"cannot shard a {leaves}-leaf fabric into {n_shards} "
                f"shards: the shard count must divide the leaf count")
        leaf_owner = [li * n_shards // leaves for li in range(leaves)]
        for li in range(leaves):
            switches[f"leaf{li}"] = leaf_owner[li]
        for s in range(spines):
            switches[f"spine{s}"] = s % n_shards
        hosts = tuple(leaf_owner[h // per_leaf]
                      for h in range(leaves * per_leaf))
    return ShardPlan(n_shards=n_shards, hosts=hosts, switches=switches)


def _mp_context():
    # fork is cheap and inherits imported modules; fall back to the
    # platform default (spawn on macOS/Windows) when unavailable.
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _status(fabric) -> dict:
    return {
        "now": fabric.sim.now,
        "active": bool(fabric.generator.active),
        "quiescent": fabric.quiescent(),
        "ready": fabric._checkpoint_ready(),
    }


def _shard_worker(shard_id: int, plan: ShardPlan, config: SystemConfig,
                  preset: str, stack: str, seed: int,
                  cmd_q, resp_q, send_qs: Dict[int, object],
                  recv_qs: Dict[int, object],
                  crash: Optional[Tuple[int, int]]) -> None:
    """One shard process: build the slice, serve coordinator commands,
    exchange epoch batches with peer shards."""
    try:
        fabric = build_fabric_rig(config, preset, stack, seed=seed,
                                  shard_plan=plan, shard_id=shard_id)
        group = ChannelGroup(fabric.sim, fabric.channels)
        neighbors = group.neighbors()

        def exchange(epoch: int, horizon: int, outgoing):
            if crash is not None and crash == (shard_id, epoch):
                # Test hook: die without a word, mid-epoch, with peers
                # waiting on our batch.
                os._exit(23)
            for peer in neighbors:
                send_qs[peer].put((epoch, shard_id, outgoing.get(peer, [])))
            incoming = []
            for peer in neighbors:
                deadline = time.monotonic() + _PEER_TIMEOUT_S
                while True:
                    try:
                        msg = recv_qs[peer].get(timeout=0.2)
                        break
                    except queue_lib.Empty:
                        if time.monotonic() > deadline:
                            raise ShardCrashError(
                                peer,
                                f"shard {shard_id}: no epoch-{epoch} "
                                f"batch from peer shard {peer} within "
                                f"{_PEER_TIMEOUT_S:.0f}s") from None
                got_epoch, src, batches = msg
                if got_epoch != epoch:
                    raise ChannelError(
                        f"shard {shard_id}: expected epoch {epoch} from "
                        f"shard {src}, got {got_epoch} (sync skew)")
                incoming.extend(batches)
            return incoming

        while True:
            cmd = cmd_q.get()
            op = cmd[0]
            if op == "advance":
                group.advance(cmd[1], exchange)
                resp_q.put(("ok", shard_id, _status(fabric)))
            elif op == "start":
                # Realign the idle clock first: run(until) freezes `now`
                # at the last local event, and the schedule about to be
                # synthesized is stamped with the current tick.
                fabric.sim.events.advance_to(cmd[2])
                fabric.generator.start(FlowGenConfig(**cmd[1]))
                resp_q.put(("ok", shard_id, _status(fabric)))
            elif op == "reset":
                fabric.reset_measurement()
                resp_q.put(("ok", shard_id, _status(fabric)))
            elif op == "finalize":
                _finalize_run(fabric)
                gen = fabric.generator
                resp_q.put(("ok", shard_id, {
                    "records": [r.as_tuple() for r in gen._records],
                    "window_started": gen.flows_started,
                    "frames_sent": fabric.frames_sent(),
                    "frames_delivered": fabric.frames_delivered(),
                    "drop_counts": fabric.drop_breakdown(),
                    "per_switch_drops": fabric.per_switch_drops(),
                    "now": fabric.sim.now,
                }))
            elif op == "stop":
                return
            else:
                raise RuntimeError(f"unknown shard command {op!r}")
    except BaseException as exc:  # report, then die quietly
        try:
            resp_q.put(("error", shard_id,
                        f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass


class _ShardCoordinator:
    """Parent-side driver: owns the worker processes and the queues,
    mirrors the single-process phase loops at the same absolute ticks."""

    def __init__(self, plan: ShardPlan, config: SystemConfig, preset: str,
                 stack: str, seed: int,
                 crash: Optional[Tuple[int, int]] = None) -> None:
        self.plan = plan
        self.now = 0
        self.warm_plan = FabricWarmupPlan()
        self._chunk_ticks = us_to_ticks(_PHASE_CHUNK_US)
        self._drain_ticks = us_to_ticks(self.warm_plan.drain_chunk_us)
        ctx = _mp_context()
        n = plan.n_shards
        self.cmd_qs = [ctx.Queue() for _ in range(n)]
        self.resp_qs = [ctx.Queue() for _ in range(n)]
        self.data_qs = {(i, j): ctx.Queue()
                        for i in range(n) for j in range(n) if i != j}
        self.procs = []
        for i in range(n):
            send_qs = {j: self.data_qs[(i, j)] for j in range(n) if j != i}
            recv_qs = {j: self.data_qs[(j, i)] for j in range(n) if j != i}
            proc = ctx.Process(
                target=_shard_worker, name=f"repro-shard-{i}", daemon=True,
                args=(i, plan, config, preset, stack, seed,
                      self.cmd_qs[i], self.resp_qs[i], send_qs, recv_qs,
                      crash))
            proc.start()
            self.procs.append(proc)

    # -- plumbing ------------------------------------------------------------

    def _collect(self, shard_id: int) -> dict:
        deadline = time.monotonic() + _CMD_TIMEOUT_S
        while True:
            try:
                kind, sid, payload = self.resp_qs[shard_id].get(timeout=0.05)
            except queue_lib.Empty:
                for j, proc in enumerate(self.procs):
                    if not proc.is_alive():
                        raise ShardCrashError(
                            j, f"shard {j} (pid {proc.pid}) died mid-run "
                               f"with exit code {proc.exitcode}") from None
                if time.monotonic() > deadline:
                    raise ShardCrashError(
                        shard_id,
                        f"shard {shard_id} sent no response within "
                        f"{_CMD_TIMEOUT_S:.0f}s") from None
                continue
            if kind == "error":
                raise ShardCrashError(sid, f"shard {sid} failed: {payload}")
            return payload

    def broadcast(self, cmd: tuple) -> List[dict]:
        for q in self.cmd_qs:
            q.put(cmd)
        return [self._collect(i) for i in range(self.plan.n_shards)]

    def _advance(self, target: int) -> List[dict]:
        statuses = self.broadcast(("advance", target))
        # max() over shard clocks reproduces the single queue's `now`: a
        # shard whose queue drained mid-chunk froze early, exactly like
        # run(until) on the one global queue would have.
        self.now = max(self.now, max(s["now"] for s in statuses))
        return statuses

    # -- the run shape of run_fabric, spread over the shards -----------------

    def run_phase(self, gen_cfg: FlowGenConfig, label: str) -> None:
        statuses = self.broadcast(("start", asdict(gen_cfg), self.now))
        for _ in range(_PHASE_MAX_CHUNKS):
            if (not any(s["active"] for s in statuses)
                    and all(s["quiescent"] for s in statuses)):
                break
            statuses = self._advance(self.now + self._chunk_ticks)
        else:
            raise CheckpointError(
                f"sharded fabric: {label} phase failed to drain after "
                f"{_PHASE_MAX_CHUNKS} chunks of {_PHASE_CHUNK_US}us")
        for _ in range(self.warm_plan.max_drain_chunks):
            if all(s["ready"] for s in statuses):
                return
            statuses = self._advance(self.now + self._drain_ticks)
        raise CheckpointError(
            f"sharded fabric: {label} drain failed to reach quiescence "
            f"after {self.warm_plan.max_drain_chunks} chunks of "
            f"{self.warm_plan.drain_chunk_us}us")

    def reset_measurement(self) -> None:
        self.broadcast(("reset",))

    def finalize(self) -> List[dict]:
        return self.broadcast(("finalize",))

    def shutdown(self) -> None:
        """Best-effort orderly stop, then guaranteed teardown."""
        for i, proc in enumerate(self.procs):
            if proc.is_alive():
                try:
                    self.cmd_qs[i].put(("stop",))
                except Exception:
                    pass
        for q in self.cmd_qs:
            q.cancel_join_thread()
        for proc in self.procs:
            # Short first join: a shard blocked waiting on a dead peer's
            # epoch batch never sees the stop command; terminate it.
            proc.join(timeout=1.0)
        for proc in self.procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self.procs:
            proc.join(timeout=5.0)
        for proc in self.procs:
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5.0)
        all_queues = (list(self.cmd_qs) + list(self.resp_qs)
                      + list(self.data_qs.values()))
        for q in all_queues:
            try:
                q.close()
            except Exception:
                pass


def _merge_results(payloads: List[dict], config: SystemConfig, preset: str,
                   stack: str, pattern: str, load: float, n_flows: int
                   ) -> FabricRunResult:
    """Fold per-shard finalize payloads into one FabricRunResult, using
    the same digest/summary code paths as the live generator."""
    records = [FlowRecord(*tuple(t))
               for payload in payloads for t in payload["records"]]
    started = sum(p["window_started"] for p in payloads)
    sent = sum(p["frames_sent"] for p in payloads)
    delivered = sum(p["frames_delivered"] for p in payloads)
    drop_counts: Dict[str, int] = {}
    for payload in payloads:
        for cause, count in payload["drop_counts"].items():
            drop_counts[cause] = drop_counts.get(cause, 0) + count
    per_switch: Dict[str, Dict[str, int]] = {}
    for payload in payloads:
        per_switch.update(payload["per_switch_drops"])
    total_drops = sum(drop_counts.values())
    breakdown = ({cause: count / total_drops
                  for cause, count in sorted(drop_counts.items())}
                 if total_drops else {})
    return FabricRunResult(
        label=config.label,
        preset=preset,
        stack=stack,
        pattern=pattern,
        offered_load=load,
        n_flows=n_flows,
        flows_started=started,
        flows_completed=len(records),
        frames_sent=sent,
        frames_delivered=delivered,
        drop_rate=(total_drops / sent) if sent else 0.0,
        fct_us=fct_summary_from(records),
        drop_breakdown=breakdown,
        per_switch_drops=per_switch,
        flow_digest=flow_digest_from(started,
                                     (r.as_tuple() for r in records)),
        trace_digest="",
    )


def _check_merged_sanity(result: FabricRunResult, final_tick: int) -> None:
    """The cross-checks of ``_check_fabric_sanity``, on merged numbers
    (each shard's internal conservation laws already ran in-process
    during finalize)."""
    fails = []
    if result.flows_completed > result.flows_started:
        fails.append(f"completed {result.flows_completed} flows but only "
                     f"{result.flows_started} started")
    if not 0 <= result.frames_delivered <= result.frames_sent:
        fails.append(f"delivered {result.frames_delivered} outside "
                     f"[0, sent {result.frames_sent}]")
    share = sum(result.drop_breakdown.values())
    if result.drop_breakdown and not 0.999 < share < 1.001:
        fails.append(f"drop-cause breakdown sums to {share:.6f}, not 1: "
                     f"{result.drop_breakdown}")
    count = result.fct_us.get("count", 0)
    if count != result.flows_completed:
        fails.append(f"FCT samples ({count:g}) != completed flows "
                     f"({result.flows_completed})")
    if fails:
        raise InvariantViolation(
            [f"dist.shard: {msg}" for msg in fails],
            tick=final_tick, phase="harness")


def run_fabric_sharded(config: SystemConfig, preset: str, stack: str,
                       pattern: str = "uniform", load: float = 0.3,
                       n_flows: int = 200, size_cdf: str = "smoke",
                       seed: int = 0, shards: int = 2,
                       warmup_cache=None,
                       _crash: Optional[Tuple[int, int]] = None
                       ) -> FabricRunResult:
    """Run one fabric flow phase split over ``shards`` processes.

    Same contract as :func:`repro.harness.fabric.run_fabric` — same
    warm-up plan, same phase shape, bit-identical flow digest — with the
    simulation partitioned per :func:`plan_fabric_shards`.  The warm-up
    checkpoint cache is not used in sharded mode (warm-up is simulated
    in the shards every run); ``warmup_cache`` only applies to the
    ``shards <= 1`` fallback, which delegates to :func:`run_fabric`.

    ``_crash`` is a failure-injection hook for the crash-path tests:
    ``(shard_id, epoch)`` makes that shard exit mid-epoch.
    """
    if shards <= 1:
        return run_fabric(config, preset, stack, pattern=pattern, load=load,
                          n_flows=n_flows, size_cdf=size_cdf, seed=seed,
                          warmup_cache=warmup_cache)
    fab_cfg = fabric_config_for(config, preset, stack)
    plan = plan_fabric_shards(fab_cfg, shards)
    resolve_size_cdf(size_cdf)   # fail fast on unknown names
    coordinator = _ShardCoordinator(plan, config, preset, stack, seed,
                                    crash=_crash)
    try:
        coordinator.run_phase(_warm_gen_config(coordinator.warm_plan),
                              "warm-up")
        coordinator.reset_measurement()
        coordinator.run_phase(
            FlowGenConfig(pattern=pattern, load=load, n_flows=n_flows,
                          size_cdf=size_cdf),
            "measured")
        payloads = coordinator.finalize()
    finally:
        coordinator.shutdown()
    result = _merge_results(payloads, config, preset, stack, pattern,
                            load, n_flows)
    _check_merged_sanity(result, coordinator.now)
    return result
