"""Cross-process simulation sharding (SimBricks-style composition).

One fabric simulation split into shards, each with its own event queue
in its own OS process, coupled through the latency-tolerant link
channels of :mod:`repro.sim.channel`.  See :mod:`repro.dist.shard` and
``docs/sharding.md``.
"""

from repro.dist.shard import (
    ShardCrashError,
    ShardPlan,
    plan_fabric_shards,
    run_fabric_sharded,
)

__all__ = [
    "ShardCrashError",
    "ShardPlan",
    "plan_fabric_shards",
    "run_fabric_sharded",
]
