"""IPv4 and UDP header encoding.

The memcached workloads encapsulate payloads in "a Memcached UDP header, a
request header containing metadata, and an Ethernet II frame header"
(paper §VI.A).  These helpers provide the IPv4/UDP layers of that stack with
real, checksummed on-wire encodings so pcap traces written by the tooling
are valid captures.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.net.packet import (
    ETHER_CRC_LEN,
    ETHER_HEADER_LEN,
    ETHERTYPE_IPV4,
    MacAddress,
    Packet,
)

IPV4_HEADER_LEN = 20
UDP_HEADER_LEN = 8


def _ones_complement_sum(data: bytes) -> int:
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack(">H", data):
        total += word
        total = (total & 0xFFFF) + (total >> 16)
    return total


def internet_checksum(data: bytes) -> int:
    """RFC 1071 Internet checksum."""
    return (~_ones_complement_sum(data)) & 0xFFFF


@dataclass
class Ipv4Header:
    """A minimal (option-less) IPv4 header."""

    src_ip: int
    dst_ip: int
    total_length: int
    protocol: int = 17          # UDP
    ttl: int = 64
    identification: int = 0

    def to_bytes(self) -> bytes:
        """Serialize to the on-wire byte encoding."""
        version_ihl = (4 << 4) | 5
        header = struct.pack(
            ">BBHHHBBH4s4s",
            version_ihl, 0, self.total_length, self.identification,
            0, self.ttl, self.protocol, 0,
            self.src_ip.to_bytes(4, "big"), self.dst_ip.to_bytes(4, "big"),
        )
        checksum = internet_checksum(header)
        return header[:10] + struct.pack(">H", checksum) + header[12:]

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Ipv4Header":
        """Parse from the on-wire byte encoding."""
        if len(raw) < IPV4_HEADER_LEN:
            raise ValueError(f"truncated IPv4 header: {len(raw)}B")
        (version_ihl, _tos, total_length, identification, _frag, ttl,
         protocol, checksum, src, dst) = struct.unpack(
            ">BBHHHBBH4s4s", raw[:IPV4_HEADER_LEN])
        if version_ihl >> 4 != 4:
            raise ValueError("not an IPv4 header")
        if internet_checksum(raw[:IPV4_HEADER_LEN]) != 0:
            raise ValueError("IPv4 header checksum mismatch")
        return cls(
            src_ip=int.from_bytes(src, "big"),
            dst_ip=int.from_bytes(dst, "big"),
            total_length=total_length,
            protocol=protocol,
            ttl=ttl,
            identification=identification,
        )


@dataclass
class UdpHeader:
    """A UDP header; checksum 0 (not computed) as permitted for IPv4 UDP."""

    src_port: int
    dst_port: int
    length: int

    def to_bytes(self) -> bytes:
        """Serialize to the on-wire byte encoding."""
        return struct.pack(">HHHH", self.src_port, self.dst_port,
                           self.length, 0)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "UdpHeader":
        """Parse from the on-wire byte encoding."""
        if len(raw) < UDP_HEADER_LEN:
            raise ValueError(f"truncated UDP header: {len(raw)}B")
        src_port, dst_port, length, _checksum = struct.unpack(
            ">HHHH", raw[:UDP_HEADER_LEN])
        return cls(src_port=src_port, dst_port=dst_port, length=length)


def build_udp_frame(
    src_mac: MacAddress,
    dst_mac: MacAddress,
    src_ip: int,
    dst_ip: int,
    src_port: int,
    dst_port: int,
    payload: bytes,
    identification: int = 0,
) -> Packet:
    """Assemble Ethernet/IPv4/UDP around ``payload``."""
    udp = UdpHeader(src_port, dst_port, UDP_HEADER_LEN + len(payload))
    ip = Ipv4Header(
        src_ip=src_ip, dst_ip=dst_ip,
        total_length=IPV4_HEADER_LEN + UDP_HEADER_LEN + len(payload),
        identification=identification,
    )
    data = ip.to_bytes() + udp.to_bytes() + payload
    wire_len = ETHER_HEADER_LEN + len(data) + ETHER_CRC_LEN
    wire_len = max(wire_len, 64)
    return Packet(wire_len=min(wire_len, 1518), dst=dst_mac, src=src_mac,
                  ethertype=ETHERTYPE_IPV4, data=data)


def parse_udp_frame(packet: Packet):
    """Split a UDP-over-IPv4 packet into (Ipv4Header, UdpHeader, payload).

    Raises ValueError if the packet does not carry parsable UDP/IPv4 data.
    """
    if packet.ethertype != ETHERTYPE_IPV4:
        raise ValueError(f"not IPv4: ethertype {packet.ethertype:#x}")
    if packet.data is None:
        raise ValueError("packet carries no byte payload")
    ip = Ipv4Header.from_bytes(packet.data)
    if ip.protocol != 17:
        raise ValueError(f"not UDP: protocol {ip.protocol}")
    rest = packet.data[IPV4_HEADER_LEN:]
    udp = UdpHeader.from_bytes(rest)
    # The UDP length field counts the 8-byte header plus payload.
    payload = rest[UDP_HEADER_LEN:udp.length]
    return ip, udp, payload
