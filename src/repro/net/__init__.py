"""Network packet substrate.

Frames, protocol headers (Ethernet II, IPv4, UDP) and a PCAP file
reader/writer.  EtherLoadGen's trace mode (paper §IV) replays standard PCAP
files; its synthetic mode builds plain Ethernet frames — both come from here.
"""

from repro.net.packet import (
    ETHER_HEADER_LEN,
    ETHER_MIN_FRAME,
    ETHER_MAX_FRAME,
    ETHERTYPE_IPV4,
    ETHERTYPE_EXPERIMENTAL,
    MacAddress,
    Packet,
)
from repro.net.headers import (
    IPV4_HEADER_LEN,
    UDP_HEADER_LEN,
    Ipv4Header,
    UdpHeader,
    build_udp_frame,
    parse_udp_frame,
)
from repro.net.pcap import PcapReader, PcapRecord, PcapWriter
from repro.net.fabric import (
    DROP_CAUSES,
    FabricConfig,
    FabricHost,
    OutputQueuedSwitch,
    SwitchConfig,
    build_fabric,
    build_fat_tree,
    build_leaf_spine,
    ecmp_hash,
    ecmp_select,
)

__all__ = [
    "DROP_CAUSES",
    "FabricConfig",
    "FabricHost",
    "OutputQueuedSwitch",
    "SwitchConfig",
    "build_fabric",
    "build_fat_tree",
    "build_leaf_spine",
    "ecmp_hash",
    "ecmp_select",
    "ETHER_HEADER_LEN",
    "ETHER_MIN_FRAME",
    "ETHER_MAX_FRAME",
    "ETHERTYPE_IPV4",
    "ETHERTYPE_EXPERIMENTAL",
    "MacAddress",
    "Packet",
    "IPV4_HEADER_LEN",
    "UDP_HEADER_LEN",
    "Ipv4Header",
    "UdpHeader",
    "build_udp_frame",
    "parse_udp_frame",
    "PcapReader",
    "PcapRecord",
    "PcapWriter",
]
