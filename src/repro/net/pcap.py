"""PCAP file reading and writing.

EtherLoadGen's trace mode "is based on the standard Packet CAPture (PCAP)
files which can be generated and analyzed by, for example,
tcpdump/wireshark from real traffic" (paper §IV).  This module implements
the classic libpcap file format (magic ``0xa1b2c3d4`` for microsecond
resolution, ``0xa1b23c4d`` for nanosecond) in both byte orders, so traces
written here open in wireshark and traces captured by tcpdump replay here.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterator, List, Union

PCAP_MAGIC_US = 0xA1B2C3D4
PCAP_MAGIC_NS = 0xA1B23C4D
LINKTYPE_ETHERNET = 1

_GLOBAL_HEADER = struct.Struct("IHHiIII")   # endianness applied at use
_RECORD_HEADER = struct.Struct("IIII")


@dataclass
class PcapRecord:
    """One captured frame: timestamp in nanoseconds plus raw bytes."""

    ts_ns: int
    data: bytes

    @property
    def wire_len(self) -> int:
        """Captured frame length in bytes."""
        return len(self.data)


class PcapWriter:
    """Writes classic pcap files (nanosecond resolution, host-independent
    little-endian encoding)."""

    def __init__(self, path: Union[str, Path], snaplen: int = 65535) -> None:
        self.path = Path(path)
        self.snaplen = snaplen
        self._fh: BinaryIO = open(self.path, "wb")
        header = struct.pack(
            "<IHHiIII", PCAP_MAGIC_NS, 2, 4, 0, 0, snaplen,
            LINKTYPE_ETHERNET)
        self._fh.write(header)
        self.records_written = 0

    def write(self, ts_ns: int, data: bytes) -> None:
        """Append one frame captured at ``ts_ns`` nanoseconds."""
        if self._fh.closed:
            raise ValueError("writer is closed")
        captured = data[: self.snaplen]
        sec, nsec = divmod(ts_ns, 10**9)
        self._fh.write(struct.pack("<IIII", sec, nsec,
                                   len(captured), len(data)))
        self._fh.write(captured)
        self.records_written += 1

    def close(self) -> None:
        """Flush and close the underlying file."""
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class PcapReader:
    """Reads classic pcap files in either byte order and either timestamp
    resolution; yields :class:`PcapRecord` with nanosecond timestamps."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        raw = self.path.read_bytes()
        if len(raw) < 24:
            raise ValueError(f"{self.path} is too short to be a pcap file")
        magic_le = struct.unpack("<I", raw[:4])[0]
        magic_be = struct.unpack(">I", raw[:4])[0]
        if magic_le in (PCAP_MAGIC_US, PCAP_MAGIC_NS):
            self._endian = "<"
            magic = magic_le
        elif magic_be in (PCAP_MAGIC_US, PCAP_MAGIC_NS):
            self._endian = ">"
            magic = magic_be
        else:
            raise ValueError(
                f"{self.path}: bad pcap magic {raw[:4].hex()}")
        self._ts_scale = 1 if magic == PCAP_MAGIC_NS else 1000
        (_magic, self.version_major, self.version_minor, _tz, _sigfigs,
         self.snaplen, self.linktype) = struct.unpack(
            self._endian + "IHHiIII", raw[:24])
        self._raw = raw

    def __iter__(self) -> Iterator[PcapRecord]:
        offset = 24
        raw = self._raw
        rec = struct.Struct(self._endian + "IIII")
        while offset + rec.size <= len(raw):
            sec, frac, incl_len, _orig_len = rec.unpack_from(raw, offset)
            offset += rec.size
            if offset + incl_len > len(raw):
                raise ValueError(f"{self.path}: truncated record at {offset}")
            data = raw[offset:offset + incl_len]
            offset += incl_len
            yield PcapRecord(ts_ns=sec * 10**9 + frac * self._ts_scale,
                             data=data)

    def read_all(self) -> List[PcapRecord]:
        """Read every record into a list."""
        return list(self)
