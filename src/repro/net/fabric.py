"""Multi-node switch fabrics: output-queued switches and topologies.

The paper's setup is one host behind one load generator; datacenter
evaluation needs many hosts behind a switch fabric.  This module adds:

- :class:`OutputQueuedSwitch`: a store-and-forward switch SimObject
  with one bounded FIFO per output port, ECMP hashing on the flow
  5-tuple across equal-cost uplinks, and per-cause drop accounting
  wired into the invariant registry;
- :class:`FabricHost`: a lightweight flow endpoint whose DPDK/kernel
  personality is a per-frame service cost derived from the measured
  per-packet cycle costs of the full single-node models;
- declarative :func:`build_fat_tree` / :func:`build_leaf_spine`
  builders on top of :class:`~repro.system.topology.Topology`, wired
  entirely through typed ports and :class:`~repro.nic.phy.EtherLink`;
- :class:`Fabric`: the container with drain / checkpoint / restore
  mirroring :class:`repro.system.node._BaseNode`, so the warm-up cache
  and the sweep executor treat a 20-switch fat-tree exactly like a
  single node.

Timing model: a frame that arrives on an input port is forwarded after
``forward_latency_ns``, then serialized onto the chosen output at port
rate (the output FIFO drains at line rate).  Because departures are
spaced at least one serialization time apart, the attached
:class:`EtherLink` never queues behind itself — congestion shows up in
the switch FIFOs, where it is counted and bounded, not on the wire.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.loadgen.flowgen import Flow, FlowTrafficGenerator
from repro.net.packet import (
    ETHER_CRC_LEN,
    ETHER_HEADER_LEN,
    ETHER_MIN_FRAME,
    ETHERTYPE_EXPERIMENTAL,
    MacAddress,
    Packet,
)
from repro.nic.phy import EtherLink, EtherPort
from repro.sim.channel import ChannelHalf
from repro.sim.checkpoint import CheckpointError, seal, verify
from repro.sim.event_queue import EventPool, batching_enabled
from repro.sim.simobject import SimObject, Simulation
from repro.sim.ticks import ns_to_ticks, us_to_ticks

# Drop-cause taxonomy (see docs/fabrics.md): every lost frame is charged
# to exactly one cause, and conservation invariants close over them.
DROP_SWITCH_QUEUE = "switch-queue-full"
DROP_SWITCH_NO_ROUTE = "switch-no-route"
DROP_HOST_QUEUE = "host-queue-full"
DROP_CAUSES = (DROP_SWITCH_QUEUE, DROP_SWITCH_NO_ROUTE, DROP_HOST_QUEUE)

#: Locally-administered MAC prefix for fabric hosts: host ``h`` is
#: ``02:00:00:00:xx:xx`` with ``h`` in the low bytes.
FABRIC_MAC_BASE = 0x02_00_00_00_00_00


def host_mac(host_id: int) -> MacAddress:
    return MacAddress(FABRIC_MAC_BASE + host_id)


def ecmp_hash(five_tuple: Sequence, salt: str = "") -> int:
    """Deterministic 64-bit hash of a flow 5-tuple.

    SHA-256 based (never Python's salted ``hash()``), so path choice is
    stable across processes and runs; ``salt`` decorrelates hash
    functions between switch tiers so one unlucky flow pairing does not
    collide on every level of the fabric.
    """
    blob = salt + "|" + "|".join(str(x) for x in five_tuple)
    return int.from_bytes(
        hashlib.sha256(blob.encode("utf-8")).digest()[:8], "big")


def ecmp_select(five_tuple: Sequence, choices: Sequence[int],
                salt: str = "") -> int:
    """Pick one of ``choices`` for the flow — permutation-stable: the
    result depends on the *set* of candidates, not their order."""
    ordered = sorted(choices)
    return ordered[ecmp_hash(five_tuple, salt) % len(ordered)]


def packet_five_tuple(packet: Packet) -> Tuple:
    """The hash input for a frame: flow 5-tuple when present, else the
    MAC pair (so non-flow traffic still ECMPs deterministically)."""
    meta = packet.meta
    if "flow5" in meta:
        return meta["flow5"]
    return (packet.src.value, packet.dst.value, packet.ethertype)


@dataclass(frozen=True)
class SwitchConfig:
    """Geometry and timing of one output-queued switch."""

    radix: int = 4
    queue_capacity: int = 64           # frames per output FIFO
    forward_latency_ns: float = 500.0  # lookup + crossbar traversal
    bandwidth_bits_per_sec: float = 100e9

    def __post_init__(self) -> None:
        if self.radix < 2:
            raise ValueError("switch radix must be at least 2")
        if self.queue_capacity < 1:
            raise ValueError("output queue capacity must be at least 1")
        if self.bandwidth_bits_per_sec <= 0:
            raise ValueError("switch port bandwidth must be positive")


class OutputQueuedSwitch(SimObject):
    """Store-and-forward switch with per-output bounded FIFOs.

    Forwarding is table-driven: :meth:`add_route` maps a destination
    MAC to one or more equal-cost output ports, :meth:`set_default_route`
    supplies the up-ports used for everything non-local, and multi-port
    routes are resolved by ECMP on the 5-tuple (salted with the switch
    name).  A frame that finds its output FIFO full is dropped and
    charged to :data:`DROP_SWITCH_QUEUE`; a frame with no route is
    charged to :data:`DROP_SWITCH_NO_ROUTE`.  The switch's conservation
    law (``rx == tx + drops + queued``) is registered as a strict
    invariant over lifetime counters.
    """

    def __init__(self, sim: Simulation, name: str,
                 config: SwitchConfig) -> None:
        super().__init__(sim, name)
        self.config = config
        self.forward_latency_ticks = ns_to_ticks(config.forward_latency_ns)
        self.ports: List[EtherPort] = []
        for i in range(config.radix):
            port = EtherPort(f"{name}.p{i}", self._receiver(i), owner=self)
            # Numbered attributes so ports_of()/Topology DOT see them.
            setattr(self, f"p{i}", port)
            self.ports.append(port)
        self._routes: Dict[int, Tuple[int, ...]] = {}
        self._default_route: Tuple[int, ...] = ()
        self._queued = [0] * config.radix
        self._free_at = [0] * config.radix
        # Lifetime counters (never reset) close the conservation law;
        # the stat counters below are the per-measurement window view.
        self._rx = 0
        self._tx = 0
        self._drops = {DROP_SWITCH_QUEUE: 0, DROP_SWITCH_NO_ROUTE: 0}
        self.stat_rx = self.stats.counter("rx_frames", "frames received")
        self.stat_tx = self.stats.counter("tx_frames", "frames forwarded")
        self.stat_drops = {
            DROP_SWITCH_QUEUE: self.stats.counter(
                "drop.queue_full", "frames dropped: output FIFO full"),
            DROP_SWITCH_NO_ROUTE: self.stats.counter(
                "drop.no_route", "frames dropped: no route for dst"),
        }
        self.stat_queue_peak = self.stats.counter(
            "queue_peak", "deepest output FIFO occupancy seen")
        self._event_pools = batching_enabled()
        self._depart_pool = EventPool(self._depart_pooled, f"{name}.depart")
        self._register_invariants()

    def _receiver(self, index: int) -> Callable[[Packet], None]:
        def on_receive(packet: Packet, _index: int = index) -> None:
            self._on_receive(_index, packet)
        return on_receive

    def _register_invariants(self) -> None:
        switch = self

        def conservation(final: bool):
            fails = []
            queued = 0
            for i, depth in enumerate(switch._queued):
                queued += depth
                if depth < 0:
                    fails.append(f"output {i}: negative queue depth {depth}")
                elif depth > switch.config.queue_capacity:
                    fails.append(
                        f"output {i}: queue depth {depth} exceeds capacity "
                        f"{switch.config.queue_capacity}")
            dropped = sum(switch._drops.values())
            if switch._rx != switch._tx + dropped + queued:
                fails.append(
                    f"received {switch._rx} != forwarded {switch._tx} + "
                    f"dropped {dropped} + queued {queued}")
            return fails

        self.sim.invariants.register(f"{self.name}.conservation",
                                     conservation, strict=True)

    # -- routing -------------------------------------------------------------

    def add_route(self, dst: MacAddress, out_ports: Sequence[int]) -> None:
        """Route ``dst`` over the given equal-cost output ports."""
        for p in out_ports:
            if not 0 <= p < self.config.radix:
                raise ValueError(f"{self.name}: no output port {p}")
        self._routes[dst.value] = tuple(out_ports)

    def set_default_route(self, out_ports: Sequence[int]) -> None:
        """ECMP up-ports for destinations with no specific route."""
        for p in out_ports:
            if not 0 <= p < self.config.radix:
                raise ValueError(f"{self.name}: no output port {p}")
        self._default_route = tuple(out_ports)

    def route_for(self, packet: Packet) -> Optional[int]:
        """The output port this frame would take (None = no route)."""
        outs = self._routes.get(packet.dst.value, self._default_route)
        if not outs:
            return None
        if len(outs) == 1:
            return outs[0]
        return ecmp_select(packet_five_tuple(packet), outs, salt=self.name)

    # -- datapath ------------------------------------------------------------

    def serialization_ticks(self, packet: Packet) -> int:
        wire_bits = (packet.wire_len + 20) * 8
        return round(wire_bits * 1e12 / self.config.bandwidth_bits_per_sec)

    def _on_receive(self, in_port: int, packet: Packet) -> None:
        self._rx += 1
        self.stat_rx.inc()
        out = self.route_for(packet)
        if out is None:
            self._drop(packet, DROP_SWITCH_NO_ROUTE)
            return
        if self._queued[out] >= self.config.queue_capacity:
            self._drop(packet, DROP_SWITCH_QUEUE, out=out)
            return
        self._queued[out] += 1
        if self._queued[out] > self.stat_queue_peak.value:
            self.stat_queue_peak.inc(
                self._queued[out] - self.stat_queue_peak.value)
        start = max(self.now + self.forward_latency_ticks,
                    self._free_at[out])
        finish = start + self.serialization_ticks(packet)
        self._free_at[out] = finish
        if self._event_pools:
            self._depart_pool.schedule_at(self.sim.events, finish,
                                          (out, packet))
            return

        def _depart(o=out, p=packet):
            self._depart(o, p)

        self.sim.events.call_at(finish, _depart, name=f"{self.name}.depart")

    def _depart_pooled(self, payload) -> None:
        out, packet = payload
        self._depart(out, packet)

    def _depart(self, out: int, packet: Packet) -> None:
        self._queued[out] -= 1
        self._tx += 1
        self.stat_tx.inc()
        self.ports[out].send(packet)

    def _drop(self, packet: Packet, cause: str, out: Optional[int] = None) -> None:
        self._drops[cause] += 1
        self.stat_drops[cause].inc()
        if self.sim.tracer.enabled:
            self.trace("fabric", "drop", cause=cause, out=out,
                       dst=str(packet.dst))

    # -- introspection -------------------------------------------------------

    @property
    def occupancy(self) -> int:
        """Frames currently queued across all outputs."""
        return sum(self._queued)

    def drop_counts(self) -> Dict[str, int]:
        """Per-cause drops in the current measurement window."""
        return {cause: counter.value
                for cause, counter in self.stat_drops.items()
                if counter.value}

    # -- checkpoint support --------------------------------------------------

    def serialize_state(self) -> dict:
        if self.occupancy:
            raise CheckpointError(
                f"switch {self.name} has {self.occupancy} frames queued; "
                f"checkpoints require a drained fabric")
        return {
            "free_at": list(self._free_at),
            "rx": self._rx,
            "tx": self._tx,
            "drops": dict(self._drops),
            "port_counters": [[p.frames_sent, p.frames_received]
                              for p in self.ports],
        }

    def deserialize_state(self, state: dict) -> None:
        self._free_at = list(state["free_at"])
        self._rx = state["rx"]
        self._tx = state["tx"]
        self._drops = {DROP_SWITCH_QUEUE: 0, DROP_SWITCH_NO_ROUTE: 0}
        self._drops.update(state["drops"])
        self._queued = [0] * self.config.radix
        for port, (sent, received) in zip(self.ports,
                                          state["port_counters"]):
            port.frames_sent = sent
            port.frames_received = received


class FabricHost(SimObject):
    """A flow endpoint at a fabric leaf.

    Much lighter than the full single-node models: the DPDK or kernel
    personality is collapsed into ``service_ticks`` per received frame
    (derived from the per-packet cycle costs in
    :class:`repro.cpu.kernels.KernelCosts`), with a bounded RX queue in
    front of the service loop — so a kernel host saturates and drops
    (:data:`DROP_HOST_QUEUE`) at offered loads a DPDK host absorbs,
    preserving the paper's stack contrast at fabric scale.

    Sending a flow segments it into MTU frames and hands them to the
    Ethernet port; the attached link's serialization horizon paces them
    at line rate.  The destination host counts segments and reports the
    flow's completion to the generator when the last one is serviced.
    """

    def __init__(self, sim: Simulation, name: str, host_id: int, group: int,
                 service_ticks: int, queue_capacity: int = 256,
                 mtu_bytes: int = 1518) -> None:
        super().__init__(sim, name)
        self.host_id = host_id
        self.group = group
        self.mac = host_mac(host_id)
        self.service_ticks = max(1, int(service_ticks))
        self.queue_capacity = queue_capacity
        self.mtu_bytes = mtu_bytes
        self.port = EtherPort(f"{name}.port", self._on_receive, owner=self)
        self.peer_macs: List[MacAddress] = []
        self.on_flow_complete: Optional[Callable[[dict, int], None]] = None
        self._rx_queued = 0
        self._svc_free_at = 0
        self._flow_rx: Dict[int, int] = {}
        self._tx_frames = 0
        self._rx_frames = 0
        self._processed = 0
        self._dropped = 0
        self.stat_tx = self.stats.counter("tx_frames", "frames sent")
        self.stat_rx = self.stats.counter("rx_frames", "frames received")
        self.stat_processed = self.stats.counter(
            "processed", "frames fully serviced by the stack")
        self.stat_drop_queue = self.stats.counter(
            "drop.queue_full", "frames dropped: host RX queue overrun")
        self._event_pools = batching_enabled()
        self._service_pool = EventPool(self._service_pooled,
                                       f"{name}.service")
        self._register_invariants()

    def _register_invariants(self) -> None:
        host = self

        def conservation(final: bool):
            fails = []
            if not 0 <= host._rx_queued <= host.queue_capacity:
                fails.append(f"RX queue depth {host._rx_queued} outside "
                             f"[0, {host.queue_capacity}]")
            if host._rx_frames != (host._processed + host._dropped
                                   + host._rx_queued):
                fails.append(
                    f"received {host._rx_frames} != processed "
                    f"{host._processed} + dropped {host._dropped} + "
                    f"queued {host._rx_queued}")
            return fails

        self.sim.invariants.register(f"{self.name}.conservation",
                                     conservation, strict=True)

    def set_peers(self, macs: Sequence[MacAddress]) -> None:
        """Host-index -> MAC resolution table (set by the builder)."""
        self.peer_macs = list(macs)

    # -- transmit ------------------------------------------------------------

    def send_flow(self, flow: Flow) -> None:
        """Segment a flow into frames and queue them on the port.

        All segments are handed to the link at once; its serialization
        horizon spaces them at line rate, which models a host NIC
        draining a ready TX ring.
        """
        dst_mac = self.peer_macs[flow.dst]
        payload_per_frame = self.mtu_bytes - ETHER_HEADER_LEN - ETHER_CRC_LEN
        nsegs = max(1, -(-flow.size_bytes // payload_per_frame))
        remaining = flow.size_bytes
        for seg in range(nsegs):
            chunk = min(remaining, payload_per_frame)
            remaining -= chunk
            wire_len = max(ETHER_MIN_FRAME,
                           chunk + ETHER_HEADER_LEN + ETHER_CRC_LEN)
            packet = Packet(
                wire_len, dst=dst_mac, src=self.mac,
                ethertype=ETHERTYPE_EXPERIMENTAL,
                meta={
                    "flow": flow.flow_id,
                    "flow5": flow.five_tuple,
                    "src": flow.src,
                    "dst": flow.dst,
                    "size": flow.size_bytes,
                    "start": flow.start_tick,
                    "nsegs": nsegs,
                    "seg": seg,
                })
            self._tx_frames += 1
            self.stat_tx.inc()
            self.port.send(packet)

    # -- receive -------------------------------------------------------------

    def _on_receive(self, packet: Packet) -> None:
        self._rx_frames += 1
        self.stat_rx.inc()
        if self._rx_queued >= self.queue_capacity:
            self._dropped += 1
            self.stat_drop_queue.inc()
            return
        self._rx_queued += 1
        start = max(self.now, self._svc_free_at)
        finish = start + self.service_ticks
        self._svc_free_at = finish
        if self._event_pools:
            self._service_pool.schedule_at(self.sim.events, finish, packet)
            return

        def _service(p=packet):
            self._service(p)

        self.sim.events.call_at(finish, _service, name=f"{self.name}.service")

    def _service_pooled(self, packet: Packet) -> None:
        self._service(packet)

    def _service(self, packet: Packet) -> None:
        self._rx_queued -= 1
        self._processed += 1
        self.stat_processed.inc()
        meta = packet.meta
        flow_id = meta.get("flow")
        if flow_id is None:
            return
        got = self._flow_rx.get(flow_id, 0) + 1
        if got >= meta["nsegs"]:
            self._flow_rx.pop(flow_id, None)
            if self.on_flow_complete is not None:
                self.on_flow_complete(meta, self.now)
        else:
            self._flow_rx[flow_id] = got

    # -- introspection -------------------------------------------------------

    def quiescent(self) -> bool:
        return self._rx_queued == 0

    def drop_counts(self) -> Dict[str, int]:
        value = self.stat_drop_queue.value
        return {DROP_HOST_QUEUE: value} if value else {}

    # -- checkpoint support --------------------------------------------------

    def serialize_state(self) -> dict:
        if self._rx_queued:
            raise CheckpointError(
                f"host {self.name} has {self._rx_queued} frames awaiting "
                f"service; checkpoints require a drained fabric")
        return {
            "svc_free_at": self._svc_free_at,
            "tx": self._tx_frames,
            "rx": self._rx_frames,
            "processed": self._processed,
            "dropped": self._dropped,
            "port_frames_sent": self.port.frames_sent,
            "port_frames_received": self.port.frames_received,
            # Flows that will never complete (a segment was dropped)
            # keep their partial counts across a checkpoint.
            "flow_rx": {str(k): v for k, v in self._flow_rx.items()},
        }

    def deserialize_state(self, state: dict) -> None:
        self.port.frames_sent = state["port_frames_sent"]
        self.port.frames_received = state["port_frames_received"]
        self._svc_free_at = state["svc_free_at"]
        self._tx_frames = state["tx"]
        self._rx_frames = state["rx"]
        self._processed = state["processed"]
        self._dropped = state["dropped"]
        self._flow_rx = {int(k): v for k, v in state["flow_rx"].items()}
        self._rx_queued = 0


@dataclass(frozen=True)
class FabricConfig:
    """Declarative description of one switch fabric.

    ``topology`` selects the builder: ``"fat_tree"`` uses ``k`` (even;
    ``k**3 / 4`` hosts, ``5 * k**2 / 4`` switches), ``"leaf_spine"``
    uses ``leaves`` x ``spines`` with ``hosts_per_leaf`` hosts each.
    ``host_service_ns`` is the per-frame stack cost; the harness derives
    it from the :class:`~repro.cpu.kernels.KernelCosts` of the platform
    config when left at 0.
    """

    topology: str = "fat_tree"
    k: int = 4
    leaves: int = 4
    spines: int = 2
    hosts_per_leaf: int = 4
    stack: str = "dpdk"
    link_bandwidth_bps: float = 100e9
    link_delay_ns: float = 1000.0
    queue_capacity: int = 64
    forward_latency_ns: float = 500.0
    host_service_ns: float = 0.0
    host_queue_capacity: int = 256
    mtu_bytes: int = 1518

    def __post_init__(self) -> None:
        if self.topology not in ("fat_tree", "leaf_spine"):
            raise ValueError(
                f"unknown fabric topology {self.topology!r}; choose "
                f"'fat_tree' or 'leaf_spine'")
        if self.topology == "fat_tree" and (self.k < 2 or self.k % 2):
            raise ValueError("fat-tree k must be an even number >= 2")
        if self.stack not in ("dpdk", "kernel"):
            raise ValueError(f"unknown stack {self.stack!r}")

    def canonical_dict(self) -> dict:
        return asdict(self)

    @property
    def n_hosts(self) -> int:
        if self.topology == "fat_tree":
            return self.k ** 3 // 4
        return self.leaves * self.hosts_per_leaf


class _RemotePort:
    """Name-and-owner placeholder for a port that lives in another shard."""

    __slots__ = ("name", "shard")

    def __init__(self, name: str, shard: int) -> None:
        self.name = name
        self.shard = shard


class _RemoteHostStub:
    """Placeholder for a host owned by another shard.

    Keeps host indexing, group membership and MAC resolution identical
    to the single-process build (the replicated flow generator and the
    routing tables need all of those), while costing nothing to
    simulate: it owns no SimObject, no ports, no events.
    """

    def __init__(self, name: str, host_id: int, group: int,
                 shard: int) -> None:
        self.name = name
        self.host_id = host_id
        self.group = group
        self.shard = shard
        self.mac = host_mac(host_id)
        self.port = _RemotePort(f"{name}.port", shard)
        self.on_flow_complete = None

    def set_peers(self, macs: Sequence[MacAddress]) -> None:
        pass


class _RemoteSwitchStub:
    """Placeholder for a switch owned by another shard.

    Exposes just enough surface for the builders to wire and route
    around it — a ports list and no-op route installation."""

    def __init__(self, name: str, radix: int, shard: int) -> None:
        self.name = name
        self.shard = shard
        self.ports = [_RemotePort(f"{name}.p{i}", shard)
                      for i in range(radix)]

    def add_route(self, dst: MacAddress, out_ports: Sequence[int]) -> None:
        pass

    def set_default_route(self, out_ports: Sequence[int]) -> None:
        pass


class Fabric:
    """A built fabric: hosts + switches + links + the wiring graph.

    Mirrors the :class:`repro.system.node._BaseNode` control surface —
    ``run_us`` / ``drain_to_quiescence`` / ``reset_measurement`` /
    ``checkpoint`` / ``restore`` — so the warm-up cache, the sweep
    executor and the CLI drive a fabric exactly like a single node.

    With a ``shard_plan`` (see :mod:`repro.dist.shard`) the builders
    construct only this shard's slice of the topology: remote hosts and
    switches become lightweight stubs (indexing and routing stay
    byte-identical to the full build), and every link whose far endpoint
    is remote becomes a :class:`~repro.sim.channel.ChannelHalf` under
    the same link name — the SimBricks-style boundary the shard runner
    synchronizes over.  ``hosts`` / ``switches`` keep full-topology
    indexing (stubs included); ``local_hosts`` / ``local_switches`` are
    the simulated subset every aggregate below reads.
    """

    def __init__(self, sim: Simulation, config: FabricConfig,
                 label: str, shard_plan=None, shard_id: int = 0) -> None:
        self.sim = sim
        self.config = config
        self.label = label
        self.shard_plan = shard_plan
        self.shard_id = shard_id
        from repro.system.topology import Topology
        self.topology = Topology(label)
        self.hosts: List[FabricHost] = []
        self.switches: List[OutputQueuedSwitch] = []
        self.local_hosts: List[FabricHost] = []
        self.local_switches: List[OutputQueuedSwitch] = []
        self.links: List[EtherLink] = []
        self.channels: List[ChannelHalf] = []
        self.generator: Optional[FlowTrafficGenerator] = None

    # -- construction helpers (used by the builders) -------------------------

    def _host_owner(self, host_id: int) -> int:
        if self.shard_plan is None:
            return self.shard_id
        return self.shard_plan.host_shard(host_id)

    def _switch_owner(self, full_name: str) -> int:
        if self.shard_plan is None:
            return self.shard_id
        logical = full_name[len(self.label) + 1:]
        return self.shard_plan.switch_shard(logical)

    def _add_host(self, host: FabricHost) -> FabricHost:
        self.hosts.append(host)
        self.local_hosts.append(host)
        self.topology.add(host.name, host)
        return host

    def _add_switch(self, switch: OutputQueuedSwitch) -> OutputQueuedSwitch:
        self.switches.append(switch)
        self.local_switches.append(switch)
        self.topology.add(switch.name, switch)
        return switch

    def _switch(self, name: str, radix: int):
        """Build a switch — real when this shard owns it, stub otherwise."""
        owner = self._switch_owner(name)
        if owner != self.shard_id:
            stub = _RemoteSwitchStub(name, radix, owner)
            self.switches.append(stub)
            return stub
        return self._add_switch(OutputQueuedSwitch(
            self.sim, name, _switch_config(self.config, radix)))

    def _link(self, name: str, a: EtherPort, b: EtherPort):
        """Wire two ports: an :class:`EtherLink` when both endpoints are
        local, a :class:`ChannelHalf` when exactly one is, nothing when
        the link lies entirely in other shards."""
        a_remote = isinstance(a, _RemotePort)
        b_remote = isinstance(b, _RemotePort)
        if a_remote and b_remote:
            return None
        if not a_remote and not b_remote:
            link = EtherLink(
                self.sim, name,
                bandwidth_bits_per_sec=self.config.link_bandwidth_bps,
                delay_ticks=ns_to_ticks(self.config.link_delay_ns))
            link.connect(a, b)
            self.links.append(link)
            self.topology.add(name, link)
            return link
        local_port, remote_port = (b, a) if a_remote else (a, b)
        half = ChannelHalf(
            self.sim, name, peer_shard=remote_port.shard,
            bandwidth_bits_per_sec=self.config.link_bandwidth_bps,
            delay_ticks=ns_to_ticks(self.config.link_delay_ns))
        half.attach(local_port)
        self.channels.append(half)
        self.topology.add(name, half)
        return half

    def _finish_build(self) -> None:
        macs = [h.mac for h in self.hosts]
        for h in self.hosts:
            h.set_peers(macs)
        self._register_invariants()

    def _register_invariants(self) -> None:
        fabric = self

        def flow_conservation(final: bool):
            # Exact only once every FIFO and wire has drained, so it
            # asserts at final check time at quiescence.  Sharded, the
            # law closes over the channel boundary: frames entering this
            # shard (local sends + channel ingress) equal frames leaving
            # it (serviced + dropped + channel egress).
            if not final or not fabric.quiescent():
                return None
            sent = sum(h._tx_frames for h in fabric.local_hosts)
            processed = sum(h._processed for h in fabric.local_hosts)
            host_drops = sum(h._dropped for h in fabric.local_hosts)
            switch_drops = sum(sum(s._drops.values())
                               for s in fabric.local_switches)
            ch_in = sum(c.frames_in for c in fabric.channels)
            ch_out = sum(c.frames_out for c in fabric.channels)
            if sent + ch_in != processed + host_drops + switch_drops + ch_out:
                return [
                    f"sent {sent} + channel-in {ch_in} != processed "
                    f"{processed} + host drops {host_drops} + switch drops "
                    f"{switch_drops} + channel-out {ch_out}"]
            return None

        self.sim.invariants.register(f"{self.label}.flow-conservation",
                                     flow_conservation)

    def attach_generator(self, generator: FlowTrafficGenerator) -> None:
        if self.generator is not None:
            raise RuntimeError(f"{self.label} already has a generator")
        self.generator = generator
        self.topology.add("flowgen", generator)
        for host in self.local_hosts:
            host.on_flow_complete = generator.flow_completed

    # -- introspection -------------------------------------------------------

    def host_groups(self) -> List[int]:
        return [h.group for h in self.hosts]

    def validate_wiring(self) -> None:
        self.topology.validate()

    def wiring_dot(self) -> str:
        return self.topology.to_dot()

    def quiescent(self) -> bool:
        """No frame anywhere: switch FIFOs, host RX queues, wires, and
        (sharded) the channel boundary this shard is responsible for."""
        return (all(s.occupancy == 0 for s in self.local_switches)
                and all(h.quiescent() for h in self.local_hosts)
                and all(count == 0
                        for link in self.links
                        for count in link._in_flight.values())
                and all(half.in_flight == 0 for half in self.channels))

    def per_switch_drops(self) -> Dict[str, Dict[str, int]]:
        """Window drop counts by switch name and cause (nonzero only)."""
        out = {}
        for s in self.local_switches:
            counts = s.drop_counts()
            if counts:
                out[s.name] = counts
        return out

    def drop_breakdown(self) -> Dict[str, int]:
        """Window drop counts aggregated by cause across the fabric."""
        totals: Dict[str, int] = {}
        for s in self.local_switches:
            for cause, n in s.drop_counts().items():
                totals[cause] = totals.get(cause, 0) + n
        for h in self.local_hosts:
            for cause, n in h.drop_counts().items():
                totals[cause] = totals.get(cause, 0) + n
        return totals

    def frames_sent(self) -> int:
        return sum(h.stat_tx.value for h in self.local_hosts)

    def frames_delivered(self) -> int:
        return sum(h.stat_processed.value for h in self.local_hosts)

    # -- simulation control --------------------------------------------------

    def run_us(self, microseconds: float) -> int:
        return self.sim.run(until=self.sim.now + us_to_ticks(microseconds))

    def drain_to_quiescence(self, chunk_us: float = 200.0,
                            max_chunks: int = 400) -> None:
        for _ in range(max_chunks):
            if self._checkpoint_ready():
                return
            self.run_us(chunk_us)
        raise CheckpointError(
            f"{self.label}: fabric failed to reach quiescence after "
            f"{max_chunks} drain chunks of {chunk_us}us")

    def _checkpoint_ready(self) -> bool:
        if not self.quiescent():
            return False
        if self.generator is not None and self.generator.active:
            return False
        _registered, unregistered = self.sim.named_event_status()
        return not unregistered

    def reset_measurement(self) -> None:
        self.sim.reset_stats()

    # -- checkpoint / restore ------------------------------------------------

    def checkpoint(self, extra_meta: Optional[dict] = None) -> dict:
        """Sealed snapshot of the whole fabric (drain first)."""
        if not self._checkpoint_ready():
            _registered, unregistered = self.sim.named_event_status()
            detail = []
            if not self.quiescent():
                detail.append("frames are still in flight")
            if unregistered:
                detail.append(
                    "anonymous one-shot events pending: "
                    + ", ".join(sorted(e.name for e in unregistered)))
            raise CheckpointError(
                f"{self.label}: fabric is not checkpoint-ready "
                f"({'; '.join(detail) or 'generator still active'})")
        labels = [label for label, _comp in self.topology.components()]
        meta = {
            "label": self.label,
            "app": "fabric",
            "seed": self.sim.rng.seed,
            "components": labels,
        }
        if extra_meta:
            meta.update(extra_meta)
        objects = {}
        for label, component in self.topology.components():
            try:
                objects[label] = component.serialize_state()
            except CheckpointError:
                raise
            except Exception as exc:
                raise CheckpointError(
                    f"{self.label}: serializing {label!r} failed: "
                    f"{exc}") from exc
        return seal({
            "meta": meta,
            "sim": self.sim.serialize_state(),
            "objects": objects,
        })

    def restore(self, doc: dict) -> None:
        """Restore into a freshly built, never-run fabric."""
        doc = verify(doc)
        meta = doc["meta"]
        if meta["label"] != self.label:
            raise CheckpointError(
                f"checkpoint is for fabric {meta['label']!r}, "
                f"not {self.label!r}")
        labels = [label for label, _comp in self.topology.components()]
        if meta["components"] != labels:
            raise CheckpointError(
                f"topology mismatch: checkpoint has {meta['components']}, "
                f"fabric has {labels}")
        if meta["seed"] != self.sim.rng.seed:
            raise CheckpointError(
                f"checkpoint was taken with seed {meta['seed']}, "
                f"fabric was built with seed {self.sim.rng.seed}")
        for label, component in self.topology.components():
            try:
                component.deserialize_state(doc["objects"][label])
            except CheckpointError:
                raise
            except Exception as exc:
                raise CheckpointError(
                    f"{self.label}: restoring {label!r} failed: "
                    f"{exc}") from exc
        self.sim.deserialize_state(doc["sim"])


def _switch_config(config: FabricConfig, radix: int) -> SwitchConfig:
    return SwitchConfig(
        radix=radix,
        queue_capacity=config.queue_capacity,
        forward_latency_ns=config.forward_latency_ns,
        bandwidth_bits_per_sec=config.link_bandwidth_bps)


def _make_host(fabric: Fabric, sim: Simulation, config: FabricConfig,
               name: str, host_id: int, group: int):
    owner = fabric._host_owner(host_id)
    if owner != fabric.shard_id:
        stub = _RemoteHostStub(name, host_id, group, owner)
        fabric.hosts.append(stub)
        return stub
    service_ticks = ns_to_ticks(config.host_service_ns or 1.0)
    return fabric._add_host(FabricHost(
        sim, name, host_id, group,
        service_ticks=service_ticks,
        queue_capacity=config.host_queue_capacity,
        mtu_bytes=config.mtu_bytes))


def build_fat_tree(sim: Simulation, config: FabricConfig,
                   name: str = "fabric", shard_plan=None,
                   shard_id: int = 0) -> Fabric:
    """A K-ary fat-tree: ``k`` pods of ``k/2`` edge + ``k/2`` aggregation
    switches, ``(k/2)^2`` core switches, ``k^3/4`` hosts.

    Port convention on edge and aggregation switches: ports
    ``0 .. k/2-1`` face down, ``k/2 .. k-1`` face up.  Core switch ``c``
    (``c = j*(k/2) + m`` for aggregation column ``j``) uses port ``p``
    for pod ``p``.  Routing is the canonical two-level scheme: exact
    routes downward, ECMP over all up-ports otherwise.
    """
    k = config.k
    half = k // 2
    hosts_per_pod = half * half
    fabric = Fabric(sim, config, name, shard_plan=shard_plan,
                    shard_id=shard_id)

    edges = [[fabric._switch(f"{name}.pod{p}.edge{i}", k)
              for i in range(half)] for p in range(k)]
    aggs = [[fabric._switch(f"{name}.pod{p}.agg{j}", k)
             for j in range(half)] for p in range(k)]
    cores = [fabric._switch(f"{name}.core{c}", k)
             for c in range(half * half)]

    hosts = []
    for h in range(config.n_hosts):
        pod = h // hosts_per_pod
        hosts.append(_make_host(fabric, sim, config,
                                f"{name}.h{h}", h, group=pod))

    # Host <-> edge links.
    for h, host in enumerate(hosts):
        pod = h // hosts_per_pod
        in_pod = h % hosts_per_pod
        edge = edges[pod][in_pod // half]
        port = in_pod % half
        fabric._link(f"{name}.link.h{h}", host.port, edge.ports[port])

    # Edge <-> aggregation links (full mesh within the pod).
    for p in range(k):
        for i in range(half):
            for j in range(half):
                fabric._link(f"{name}.link.p{p}e{i}a{j}",
                             edges[p][i].ports[half + j],
                             aggs[p][j].ports[i])

    # Aggregation <-> core links: column j serves cores j*half .. +half.
    for p in range(k):
        for j in range(half):
            for m in range(half):
                core = cores[j * half + m]
                fabric._link(f"{name}.link.c{j * half + m}p{p}",
                             aggs[p][j].ports[half + m],
                             core.ports[p])

    up = tuple(range(half, k))
    for h, host in enumerate(hosts):
        pod = h // hosts_per_pod
        in_pod = h % hosts_per_pod
        edge_i = in_pod // half
        edge_port = in_pod % half
        edges[pod][edge_i].add_route(host.mac, (edge_port,))
        for j in range(half):
            aggs[pod][j].add_route(host.mac, (edge_i,))
        for core in cores:
            core.add_route(host.mac, (pod,))
    for p in range(k):
        for i in range(half):
            edges[p][i].set_default_route(up)
        for j in range(half):
            aggs[p][j].set_default_route(up)

    fabric._finish_build()
    return fabric


def build_leaf_spine(sim: Simulation, config: FabricConfig,
                     name: str = "fabric", shard_plan=None,
                     shard_id: int = 0) -> Fabric:
    """A two-tier leaf-spine: every leaf connects to every spine.

    Leaf ``l`` uses ports ``0 .. hosts_per_leaf-1`` for its hosts and
    ``hosts_per_leaf .. +spines-1`` as up-ports; spine ``s`` uses port
    ``l`` for leaf ``l``.  With the default 4 hosts x 2 spines per leaf
    the fabric is 2:1 oversubscribed — the scenario matrix's bounded-
    drop cases live here.
    """
    leaves_n, spines_n, per_leaf = (config.leaves, config.spines,
                                    config.hosts_per_leaf)
    fabric = Fabric(sim, config, name, shard_plan=shard_plan,
                    shard_id=shard_id)

    leaves = [fabric._switch(f"{name}.leaf{li}", per_leaf + spines_n)
              for li in range(leaves_n)]
    spines = [fabric._switch(f"{name}.spine{s}", leaves_n)
              for s in range(spines_n)]

    hosts = []
    for h in range(leaves_n * per_leaf):
        hosts.append(_make_host(fabric, sim, config,
                                f"{name}.h{h}", h, group=h // per_leaf))

    for h, host in enumerate(hosts):
        leaf = leaves[h // per_leaf]
        fabric._link(f"{name}.link.h{h}", host.port,
                     leaf.ports[h % per_leaf])
    for li in range(leaves_n):
        for s in range(spines_n):
            fabric._link(f"{name}.link.l{li}s{s}",
                         leaves[li].ports[per_leaf + s],
                         spines[s].ports[li])

    up = tuple(range(per_leaf, per_leaf + spines_n))
    for h, host in enumerate(hosts):
        leaf_i = h // per_leaf
        leaves[leaf_i].add_route(host.mac, (h % per_leaf,))
        for spine in spines:
            spine.add_route(host.mac, (leaf_i,))
    for leaf in leaves:
        leaf.set_default_route(up)

    fabric._finish_build()
    return fabric


def build_fabric(sim: Simulation, config: FabricConfig,
                 name: str = "fabric", shard_plan=None,
                 shard_id: int = 0) -> Fabric:
    """Builder dispatch on :attr:`FabricConfig.topology`.

    ``shard_plan`` / ``shard_id`` (see
    :func:`repro.dist.shard.plan_fabric_shards`) build only one shard's
    slice, with cross-shard links as channel halves."""
    if config.topology == "fat_tree":
        return build_fat_tree(sim, config, name=name,
                              shard_plan=shard_plan, shard_id=shard_id)
    return build_leaf_spine(sim, config, name=name,
                            shard_plan=shard_plan, shard_id=shard_id)
