"""Ethernet frames as they travel the simulated wire.

A :class:`Packet` is the unit moved between EtherLoadGen, Ethernet links and
the NIC model.  Synthetic-mode packets usually carry no byte payload (only a
wire length) to keep multi-million-packet simulations fast; trace-mode and
key-value-store packets carry real bytes that the applications parse.

Per the paper (§IV), the load generator writes a timestamp into each
outgoing packet "at a configurable offset" and compares it against the
current tick on the way back; we carry that timestamp in ``ts_tx`` alongside
an explicit ``ts_offset`` so the byte-level encoding can be exercised too.
"""

from __future__ import annotations

import itertools
import struct
from dataclasses import dataclass
from typing import Dict, Optional

ETHER_HEADER_LEN = 14       # dst(6) + src(6) + ethertype/len(2)
ETHER_CRC_LEN = 4
ETHER_MIN_FRAME = 64        # including CRC
ETHER_MAX_FRAME = 1518      # including CRC (standard MTU frame)

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_EXPERIMENTAL = 0x88B5   # used for synthetic loadgen frames

_packet_ids = itertools.count()


@dataclass(frozen=True)
class MacAddress:
    """A 48-bit MAC address."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < (1 << 48):
            raise ValueError(f"MAC out of range: {self.value:#x}")

    @classmethod
    def parse(cls, text: str) -> "MacAddress":
        """Parse ``aa:bb:cc:dd:ee:ff`` notation."""
        parts = text.split(":")
        if len(parts) != 6:
            raise ValueError(f"bad MAC {text!r}")
        return cls(int("".join(f"{int(p, 16):02x}" for p in parts), 16))

    @classmethod
    def from_bytes(cls, raw: bytes) -> "MacAddress":
        """Parse from the on-wire byte encoding."""
        if len(raw) != 6:
            raise ValueError(f"MAC needs 6 bytes, got {len(raw)}")
        return cls(int.from_bytes(raw, "big"))

    def to_bytes(self) -> bytes:
        """Serialize to the on-wire byte encoding."""
        return self.value.to_bytes(6, "big")

    def __str__(self) -> str:
        raw = self.to_bytes()
        return ":".join(f"{b:02x}" for b in raw)


BROADCAST_MAC = MacAddress((1 << 48) - 1)


class Packet:
    """An Ethernet frame on the simulated wire.

    ``wire_len`` includes the Ethernet header and CRC (the length that
    occupies wire bandwidth and NIC FIFO space).  ``data`` is the optional
    payload after the 14-byte Ethernet header; when absent the packet is a
    pure timing token.

    Hand-written rather than a dataclass so the fields can live in
    ``__slots__`` — packets are the single most-allocated object in a run
    and the per-instance dict dominated their footprint.  The constructor
    signature, validation and equality semantics match the previous
    dataclass exactly.
    """

    __slots__ = ("wire_len", "dst", "src", "ethertype", "data", "ts_tx",
                 "ts_offset", "request_id", "meta", "packet_id")

    def __init__(self, wire_len: int,
                 dst: MacAddress = BROADCAST_MAC,
                 src: MacAddress = BROADCAST_MAC,
                 ethertype: int = ETHERTYPE_EXPERIMENTAL,
                 data: Optional[bytes] = None,
                 ts_tx: Optional[int] = None,
                 ts_offset: int = 0,
                 request_id: Optional[int] = None,
                 meta: Optional[Dict[str, object]] = None,
                 packet_id: Optional[int] = None) -> None:
        if wire_len < ETHER_MIN_FRAME:
            raise ValueError(
                f"frame of {wire_len}B below Ethernet minimum "
                f"{ETHER_MIN_FRAME}B")
        if wire_len > ETHER_MAX_FRAME:
            raise ValueError(
                f"frame of {wire_len}B above Ethernet maximum "
                f"{ETHER_MAX_FRAME}B")
        self.wire_len = wire_len
        self.dst = dst
        self.src = src
        self.ethertype = ethertype
        self.data = data
        self.ts_tx = ts_tx              # loadgen departure tick
        self.ts_offset = ts_offset      # byte offset of the timestamp field
        self.request_id = request_id
        self.meta = {} if meta is None else meta
        self.packet_id = (next(_packet_ids) if packet_id is None
                          else packet_id)

    def __eq__(self, other) -> bool:
        if other.__class__ is not Packet:
            return NotImplemented
        return (self.wire_len, self.dst, self.src, self.ethertype,
                self.data, self.ts_tx, self.ts_offset, self.request_id,
                self.meta, self.packet_id) == \
               (other.wire_len, other.dst, other.src, other.ethertype,
                other.data, other.ts_tx, other.ts_offset, other.request_id,
                other.meta, other.packet_id)

    __hash__ = None   # mutable, like the dataclass it replaces

    @property
    def payload_len(self) -> int:
        """Bytes after the Ethernet header, excluding CRC."""
        return self.wire_len - ETHER_HEADER_LEN - ETHER_CRC_LEN

    def response_to(self, wire_len: Optional[int] = None) -> "Packet":
        """Build a reply frame: MACs swapped, timestamp echoed.

        This is what macswap forwarding and request/response servers do;
        echoing ``ts_tx`` and ``request_id`` lets EtherLoadGen match the
        response to its request for RTT measurement.
        """
        return Packet(
            wire_len=wire_len if wire_len is not None else self.wire_len,
            dst=self.src,
            src=self.dst,
            ethertype=self.ethertype,
            data=self.data,
            ts_tx=self.ts_tx,
            ts_offset=self.ts_offset,
            request_id=self.request_id,
            meta=dict(self.meta),
        )

    def to_bytes(self) -> bytes:
        """Serialize to real frame bytes (without CRC).

        Used by the pcap path and by protocol-carrying packets; the timestamp
        (if any) is embedded at ``ts_offset`` within the payload as an 8-byte
        big-endian tick count, exactly as the hardware loadgen model does.
        """
        payload = bytearray(self.data if self.data is not None
                            else bytes(self.payload_len))
        if self.ts_tx is not None:
            end = self.ts_offset + 8
            if end > len(payload):
                payload.extend(bytes(end - len(payload)))
            struct.pack_into(">Q", payload, self.ts_offset, self.ts_tx)
        header = (self.dst.to_bytes() + self.src.to_bytes()
                  + struct.pack(">H", self.ethertype))
        return bytes(header) + bytes(payload)

    @classmethod
    def from_bytes(cls, raw: bytes, has_timestamp: bool = False,
                   ts_offset: int = 0) -> "Packet":
        """Parse frame bytes produced by :meth:`to_bytes` or a pcap trace."""
        if len(raw) < ETHER_HEADER_LEN:
            raise ValueError(f"truncated frame: {len(raw)}B")
        dst = MacAddress.from_bytes(raw[0:6])
        src = MacAddress.from_bytes(raw[6:12])
        ethertype = struct.unpack(">H", raw[12:14])[0]
        payload = raw[ETHER_HEADER_LEN:]
        wire_len = max(len(raw) + ETHER_CRC_LEN, ETHER_MIN_FRAME)
        ts_tx = None
        if has_timestamp and len(payload) >= ts_offset + 8:
            ts_tx = struct.unpack_from(">Q", payload, ts_offset)[0]
        return cls(wire_len=min(wire_len, ETHER_MAX_FRAME), dst=dst, src=src,
                   ethertype=ethertype, data=bytes(payload), ts_tx=ts_tx,
                   ts_offset=ts_offset)

    def __repr__(self) -> str:
        return (f"<Packet #{self.packet_id} {self.wire_len}B "
                f"{self.src}->{self.dst} type={self.ethertype:#06x}>")
