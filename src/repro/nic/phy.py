"""Ethernet ports and links.

An :class:`EtherLink` is the direct cable between two :class:`EtherPort`
endpoints (Test Node NIC on one side, EtherLoadGen or a Drive Node NIC on
the other — Fig 1).  The link serializes frames at line rate and delivers
them after the configured propagation latency (Table I: 100Gbps, 200us).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.packet import Packet
from repro.sim.checkpoint import CheckpointError
from repro.sim.event_queue import EventPool, batching_enabled
from repro.sim.ports import PacketPort
from repro.sim.simobject import SimObject, Simulation


class EtherPort(PacketPort):
    """One end of a link: owned by a device that can receive frames.

    A packet-kind :class:`~repro.sim.ports.Port`: two EtherPorts bind
    peer-to-peer through the :class:`EtherLink` (which supplies the
    binding's bandwidth/latency metadata), and the typed-port checks
    reject wiring mistakes — binding a port twice, or to something that
    is not a packet endpoint — at build time.
    """

    def __init__(self, name: str, on_receive: Callable[[Packet], None],
                 owner=None) -> None:
        super().__init__(owner, name, external=True)
        self.name = name
        self.on_receive = on_receive
        self.link: Optional["EtherLink"] = None
        self.frames_sent = 0
        self.frames_received = 0

    @property
    def full_name(self) -> str:
        # EtherPort names have always been fully qualified ("nic0.port");
        # keep them as-is rather than re-prefixing with the owner.
        return self.name

    def send(self, packet: Packet) -> None:
        """Transmit toward the peer port."""
        if self.link is None:
            raise RuntimeError(f"port {self.name} is not connected")
        self.frames_sent += 1
        self.link.transmit(self, packet)

    def deliver(self, packet: Packet) -> None:
        """Hand a received frame to the owning device."""
        self.frames_received += 1
        self.on_receive(packet)


class EtherLink(SimObject):
    """Full-duplex point-to-point Ethernet cable."""

    def __init__(self, sim: Simulation, name: str,
                 bandwidth_bits_per_sec: float = 100e9,
                 delay_ticks: int = 0) -> None:
        super().__init__(sim, name)
        if bandwidth_bits_per_sec <= 0:
            raise ValueError("link bandwidth must be positive")
        if delay_ticks < 0:
            raise ValueError("link delay cannot be negative")
        self.bandwidth_bits_per_sec = bandwidth_bits_per_sec
        self.delay_ticks = delay_ticks
        self._port_a: Optional[EtherPort] = None
        self._port_b: Optional[EtherPort] = None
        # Independent serialization horizon per direction (full duplex).
        self._tx_free_at = {"a": 0, "b": 0}
        # Frames accepted for transmission but not yet delivered, per
        # direction.  Lifetime accounting: lets the link-conservation
        # invariant hold exactly at any instant.
        self._in_flight = {"a": 0, "b": 0}
        self._sent = {"a": 0, "b": 0}
        self._delivered = {"a": 0, "b": 0}
        self.stat_frames = self.stats.counter("frames", "frames carried")
        self.stat_bytes = self.stats.counter("bytes", "bytes carried")
        # Pooled per-frame delivery events (see EventPool): same firing
        # order as the closure-per-frame reference path, no allocation.
        self._event_pools = batching_enabled()
        self._deliver_pool = EventPool(self._deliver_pooled,
                                       f"{name}.deliver")

    def connect(self, port_a: EtherPort, port_b: EtherPort) -> None:
        """Attach the two endpoint ports to this link.

        This is a typed-port binding: direction/kind are validated, the
        link's bandwidth and propagation delay become the binding's
        metadata, and the wire's frame-conservation invariant is
        registered against the connection.
        """
        if self._port_a is not None or self._port_b is not None:
            raise RuntimeError(f"{self.name} is already connected")
        port_a.bind(port_b, link=self,
                    bandwidth_bits_per_sec=self.bandwidth_bits_per_sec,
                    delay_ticks=self.delay_ticks)
        self._port_a, self._port_b = port_a, port_b
        port_a.link = self
        port_b.link = self
        self._register_invariants()

    def _register_invariants(self) -> None:
        """The wire loses nothing: every frame the link accepts is either
        still serializing/propagating or has been delivered to the peer.

        The equality is over the link's *own* lifetime counters, not the
        port counters: unit tests legitimately call ``port.deliver()``
        out-of-band, and a port may be driven by several sources.  The
        port counters are coupled by inequalities instead — out-of-band
        traffic can only add to them."""
        link = self

        def conservation(final: bool):
            fails = []
            for direction, src, dst in (("a", link._port_a, link._port_b),
                                        ("b", link._port_b, link._port_a)):
                sent = link._sent[direction]
                delivered = link._delivered[direction]
                in_flight = link._in_flight[direction]
                if in_flight < 0:
                    fails.append(f"direction {direction}: negative "
                                 f"in-flight count {in_flight}")
                if sent != delivered + in_flight:
                    fails.append(
                        f"direction {direction}: accepted {sent} frames "
                        f"but delivered {delivered} with {in_flight} "
                        f"in flight")
                if src.frames_sent < sent:
                    fails.append(
                        f"{src.name} sent {src.frames_sent} frames but "
                        f"the link carried {sent} from it")
                if dst.frames_received < delivered:
                    fails.append(
                        f"{dst.name} received {dst.frames_received} frames "
                        f"but the link delivered {delivered} to it")
            return fails

        self.sim.invariants.register(
            f"{self.name}.frame-conservation", conservation, strict=True)

    def serialization_ticks(self, packet: Packet) -> int:
        # Wire bits include 8B preamble + 12B inter-frame gap.
        """Wire time of one frame at line rate."""
        wire_bits = (packet.wire_len + 20) * 8
        return round(wire_bits * 1e12 / self.bandwidth_bits_per_sec)

    def transmit(self, src_port: EtherPort, packet: Packet) -> None:
        """Serialize the frame at line rate, then deliver after the
        propagation delay."""
        if src_port is self._port_a:
            direction, dst = "a", self._port_b
        elif src_port is self._port_b:
            direction, dst = "b", self._port_a
        else:
            raise ValueError(f"{src_port.name} is not attached to {self.name}")
        if dst is None:
            raise RuntimeError(f"{self.name} has a dangling end")
        start = max(self.now, self._tx_free_at[direction])
        finish = start + self.serialization_ticks(packet)
        self._tx_free_at[direction] = finish
        self.stat_frames.inc()
        self.stat_bytes.inc(packet.wire_len)
        self._sent[direction] += 1
        self._in_flight[direction] += 1
        deliver_at = finish + self.delay_ticks

        if self._event_pools:
            self._deliver_pool.schedule_at(self.sim.events, deliver_at,
                                           (packet, dst, direction))
            return

        def _deliver(p=packet, d=dst, direc=direction):
            self._in_flight[direc] -= 1
            self._delivered[direc] += 1
            d.deliver(p)

        self.sim.events.call_at(deliver_at, _deliver,
                                name=f"{self.name}.deliver")

    def _deliver_pooled(self, payload) -> None:
        packet, dst, direction = payload
        self._in_flight[direction] -= 1
        self._delivered[direction] += 1
        dst.deliver(packet)

    # -- checkpoint support --------------------------------------------------

    def serialize_state(self) -> dict:
        """Busy horizons and lifetime frame counters; frames still on the
        wire would need their payloads serialized, so quiescence first."""
        if any(self._in_flight.values()):
            raise CheckpointError(
                f"link {self.name} has frames in flight "
                f"({self._in_flight}); checkpoints require a quiescent "
                f"(drained) node")
        return {
            "tx_free_at": dict(self._tx_free_at),
            "sent": dict(self._sent),
            "delivered": dict(self._delivered),
        }

    def deserialize_state(self, state: dict) -> None:
        self._tx_free_at = {"a": state["tx_free_at"]["a"],
                            "b": state["tx_free_at"]["b"]}
        self._sent = {"a": state["sent"]["a"], "b": state["sent"]["b"]}
        self._delivered = {"a": state["delivered"]["a"],
                           "b": state["delivered"]["b"]}
