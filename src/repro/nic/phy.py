"""Ethernet ports and links.

An :class:`EtherLink` is the direct cable between two :class:`EtherPort`
endpoints (Test Node NIC on one side, EtherLoadGen or a Drive Node NIC on
the other — Fig 1).  The link serializes frames at line rate and delivers
them after the configured propagation latency (Table I: 100Gbps, 200us).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.packet import Packet
from repro.sim.simobject import SimObject, Simulation


class EtherPort:
    """One end of a link: owned by a device that can receive frames."""

    def __init__(self, name: str, on_receive: Callable[[Packet], None]) -> None:
        self.name = name
        self.on_receive = on_receive
        self.link: Optional["EtherLink"] = None
        self.frames_sent = 0
        self.frames_received = 0

    def send(self, packet: Packet) -> None:
        """Transmit toward the peer port."""
        if self.link is None:
            raise RuntimeError(f"port {self.name} is not connected")
        self.frames_sent += 1
        self.link.transmit(self, packet)

    def deliver(self, packet: Packet) -> None:
        """Hand a received frame to the owning device."""
        self.frames_received += 1
        self.on_receive(packet)


class EtherLink(SimObject):
    """Full-duplex point-to-point Ethernet cable."""

    def __init__(self, sim: Simulation, name: str,
                 bandwidth_bits_per_sec: float = 100e9,
                 delay_ticks: int = 0) -> None:
        super().__init__(sim, name)
        if bandwidth_bits_per_sec <= 0:
            raise ValueError("link bandwidth must be positive")
        if delay_ticks < 0:
            raise ValueError("link delay cannot be negative")
        self.bandwidth_bits_per_sec = bandwidth_bits_per_sec
        self.delay_ticks = delay_ticks
        self._port_a: Optional[EtherPort] = None
        self._port_b: Optional[EtherPort] = None
        # Independent serialization horizon per direction (full duplex).
        self._tx_free_at = {"a": 0, "b": 0}
        self.stat_frames = self.stats.counter("frames", "frames carried")
        self.stat_bytes = self.stats.counter("bytes", "bytes carried")

    def connect(self, port_a: EtherPort, port_b: EtherPort) -> None:
        """Attach the two endpoint ports to this link."""
        if self._port_a is not None or self._port_b is not None:
            raise RuntimeError(f"{self.name} is already connected")
        self._port_a, self._port_b = port_a, port_b
        port_a.link = self
        port_b.link = self

    def serialization_ticks(self, packet: Packet) -> int:
        # Wire bits include 8B preamble + 12B inter-frame gap.
        """Wire time of one frame at line rate."""
        wire_bits = (packet.wire_len + 20) * 8
        return round(wire_bits * 1e12 / self.bandwidth_bits_per_sec)

    def transmit(self, src_port: EtherPort, packet: Packet) -> None:
        """Serialize the frame at line rate, then deliver after the
        propagation delay."""
        if src_port is self._port_a:
            direction, dst = "a", self._port_b
        elif src_port is self._port_b:
            direction, dst = "b", self._port_a
        else:
            raise ValueError(f"{src_port.name} is not attached to {self.name}")
        if dst is None:
            raise RuntimeError(f"{self.name} has a dangling end")
        start = max(self.now, self._tx_free_at[direction])
        finish = start + self.serialization_ticks(packet)
        self._tx_free_at[direction] = finish
        self.stat_frames.inc()
        self.stat_bytes.inc(packet.wire_len)
        deliver_at = finish + self.delay_ticks
        self.sim.events.call_at(
            deliver_at, lambda p=packet, d=dst: d.deliver(p),
            name=f"{self.name}.deliver")
