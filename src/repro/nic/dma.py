"""The NIC's DMA engine.

Moves packet bytes between the NIC FIFOs and host memory over the I/O bus
(the link "that loosely models a PCIe bus between the NIC and CPU",
§VII.B).  The bus is full-duplex: inbound (RX writes, descriptor
writebacks) and outbound (TX reads) directions have independent bandwidth,
as PCIe lanes do.  Each transfer occupies its direction for a fixed
per-packet setup plus the larger of the bus serialization time and the
memory-side time (line writes into the LLC with DCA, or DRAM without);
the bus's fixed propagation latency delays *completion* but does not
serialize the engine — transfers pipeline behind one another.

This engine is the component the paper identifies as gem5's large-packet
bottleneck: "at large packet sizes, gem5's DMA engine is the bottleneck"
(§I), and it is where the DmaDrop cause originates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.kernels import LINE_SIZE, lines_covering
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.xbar import BandwidthServer
from repro.sim.ports import (
    KIND_BUS,
    KIND_DMA,
    KIND_MEM,
    RequestPort,
    ResponsePort,
)
from repro.sim.ticks import TICKS_PER_NS


@dataclass(frozen=True)
class DmaConfig:
    """DMA engine parameters."""

    setup_ns: float = 15.0        # per-packet descriptor/doorbell handling
    mem_parallelism: int = 4      # outstanding line transactions
    desc_bytes: int = 16          # descriptor size moved per packet

    def __post_init__(self) -> None:
        if self.setup_ns < 0:
            raise ValueError("setup time cannot be negative")
        if self.mem_parallelism < 1:
            raise ValueError("memory parallelism must be >= 1")


class DmaEngine:
    """Pipelined, full-duplex packet DMA."""

    def __init__(self, config: DmaConfig, iobus_rx: BandwidthServer,
                 hierarchy: MemoryHierarchy,
                 iobus_tx: BandwidthServer = None,
                 name: str = "dma") -> None:
        self.config = config
        self.name = name
        self.iobus_rx = iobus_rx
        self.iobus_tx = iobus_tx if iobus_tx is not None else BandwidthServer(
            f"{iobus_rx.name}.tx", iobus_rx.bytes_per_sec,
            iobus_rx.latency_ticks)
        self.hierarchy = hierarchy
        # The device (NIC) binds its dma_port here; the engine itself is a
        # requestor toward the memory hierarchy and both bus directions.
        self.device_side = ResponsePort(self, "device_side", KIND_DMA)
        self.mem_port = RequestPort(self, "mem_port", KIND_MEM)
        self.mem_port.bind(hierarchy.dma_side)
        self.bus_rx_port = RequestPort(self, "bus_rx_port", KIND_BUS)
        self.bus_rx_port.bind(self.iobus_rx.device_side,
                              bytes_per_sec=self.iobus_rx.bytes_per_sec,
                              latency_ticks=self.iobus_rx.latency_ticks)
        self.bus_tx_port = RequestPort(self, "bus_tx_port", KIND_BUS)
        self.bus_tx_port.bind(self.iobus_tx.device_side,
                              bytes_per_sec=self.iobus_tx.bytes_per_sec,
                              latency_ticks=self.iobus_tx.latency_ticks)
        self._rx_busy_until = 0
        self._tx_busy_until = 0
        self.packets_written = 0
        self.packets_read = 0
        self.bytes_written = 0
        self.bytes_read = 0
        # Line-granular counters mirroring what the engine pushed into the
        # memory hierarchy; the DMA byte-conservation invariant checks them
        # against the hierarchy's own dma_lines_written/read.
        self.lines_written = 0
        self.lines_read = 0
        self.desc_lines_written = 0

    @property
    def busy_until(self) -> int:
        """When the engine could accept new work in *either* direction."""
        return min(self._rx_busy_until, self._tx_busy_until)

    @property
    def rx_busy_until(self) -> int:
        """Tick the inbound DMA direction frees up."""
        return self._rx_busy_until

    @property
    def tx_busy_until(self) -> int:
        """Tick the outbound DMA direction frees up."""
        return self._tx_busy_until

    def _memory_ns(self, base_addr: int, nbytes: int, write: bool,
                   now_ns: float) -> float:
        """Aggregate memory-side time for the packet's lines, overlapped up
        to ``mem_parallelism`` outstanding transactions."""
        total = 0.0
        if write:
            for line in lines_covering(base_addr, nbytes):
                total += self.hierarchy.dma_write_line(line, now_ns)
                self.lines_written += 1
        else:
            for line in lines_covering(base_addr, nbytes):
                total += self.hierarchy.dma_read_line(line, now_ns)
                self.lines_read += 1
        return total / self.config.mem_parallelism

    def write_packet(self, now: int, buffer_addr: int, nbytes: int) -> int:
        """DMA a received packet into host memory; returns the completion
        tick (data visible to the CPU).  The inbound direction is occupied
        for the serialization time only; propagation latency pipelines."""
        start = max(now, self._rx_busy_until)
        now_ns = start / TICKS_PER_NS
        bus_bytes = nbytes + self.config.desc_bytes
        busy_ticks = self.iobus_rx.occupancy_ticks(bus_bytes)
        self.iobus_rx.bytes_moved += bus_bytes
        self.iobus_rx.transfers += 1
        mem_ns = self._memory_ns(buffer_addr, nbytes, True, now_ns)
        occupancy_ns = self.config.setup_ns + max(
            busy_ticks / TICKS_PER_NS, mem_ns)
        self._rx_busy_until = start + round(occupancy_ns * TICKS_PER_NS)
        self.packets_written += 1
        self.bytes_written += nbytes
        return self._rx_busy_until + self.iobus_rx.latency_ticks

    def read_packet(self, now: int, buffer_addr: int, nbytes: int) -> int:
        """DMA a transmit packet out of host memory; returns the tick the
        frame is ready in the NIC TX FIFO."""
        start = max(now, self._tx_busy_until)
        now_ns = start / TICKS_PER_NS
        bus_bytes = nbytes + self.config.desc_bytes
        busy_ticks = self.iobus_tx.occupancy_ticks(bus_bytes)
        self.iobus_tx.bytes_moved += bus_bytes
        self.iobus_tx.transfers += 1
        mem_ns = self._memory_ns(buffer_addr, nbytes, False, now_ns)
        occupancy_ns = self.config.setup_ns + max(
            busy_ticks / TICKS_PER_NS, mem_ns)
        self._tx_busy_until = start + round(occupancy_ns * TICKS_PER_NS)
        self.packets_read += 1
        self.bytes_read += nbytes
        return self._tx_busy_until + self.iobus_tx.latency_ticks

    def writeback_descriptors(self, now: int, count: int,
                              desc_addrs=()) -> int:
        """DMA a descriptor-cache writeback batch; returns finish tick.

        ``desc_addrs`` are the descriptors' memory addresses so their lines
        land in the hierarchy like any other inbound DMA (the driver's next
        poll reads them).
        """
        if count <= 0:
            return max(now, self._rx_busy_until)
        start = max(now, self._rx_busy_until)
        now_ns = start / TICKS_PER_NS
        lines_seen = set()
        for addr in desc_addrs:
            line = addr - (addr % LINE_SIZE)
            if line not in lines_seen:
                lines_seen.add(line)
                self.hierarchy.dma_write_line(line, now_ns)
                self.desc_lines_written += 1
        nbytes = count * self.config.desc_bytes
        busy_ticks = self.iobus_rx.occupancy_ticks(nbytes)
        self.iobus_rx.bytes_moved += nbytes
        self.iobus_rx.transfers += 1
        self._rx_busy_until = start + busy_ticks
        return self._rx_busy_until + self.iobus_rx.latency_ticks

    def reset_counters(self) -> None:
        """Zero the measurement counters."""
        self.packets_written = 0
        self.packets_read = 0
        self.bytes_written = 0
        self.bytes_read = 0
        self.lines_written = 0
        self.lines_read = 0
        self.desc_lines_written = 0

    # -- checkpoint support --------------------------------------------------

    def serialize_state(self) -> dict:
        return {
            "rx_busy_until": self._rx_busy_until,
            "tx_busy_until": self._tx_busy_until,
            "packets_written": self.packets_written,
            "packets_read": self.packets_read,
            "bytes_written": self.bytes_written,
            "bytes_read": self.bytes_read,
            "lines_written": self.lines_written,
            "lines_read": self.lines_read,
            "desc_lines_written": self.desc_lines_written,
        }

    def deserialize_state(self, state: dict) -> None:
        self._rx_busy_until = state["rx_busy_until"]
        self._tx_busy_until = state["tx_busy_until"]
        self.packets_written = state["packets_written"]
        self.packets_read = state["packets_read"]
        self.bytes_written = state["bytes_written"]
        self.bytes_read = state["bytes_read"]
        self.lines_written = state["lines_written"]
        self.lines_read = state["lines_read"]
        self.desc_lines_written = state["desc_lines_written"]

    def invariant_failures(self):
        """Byte/line conservation between this engine and the memory
        hierarchy it writes through; empty list when consistent.

        Holds exactly only when this engine is the hierarchy's sole DMA
        client and both sides' counters were reset back-to-back — the
        node's ``reset_measurement`` guarantees that adjacency.
        """
        fails = []
        h = self.hierarchy
        pushed = self.lines_written + self.desc_lines_written
        if h.dma_lines_written != pushed:
            fails.append(
                f"hierarchy saw {h.dma_lines_written} DMA line writes but "
                f"engine issued {pushed} "
                f"({self.lines_written} packet + "
                f"{self.desc_lines_written} descriptor)")
        if h.dma_lines_read != self.lines_read:
            fails.append(
                f"hierarchy saw {h.dma_lines_read} DMA line reads but "
                f"engine issued {self.lines_read}")
        # A packet of N bytes covers between ceil(N/64) and ceil(N/64)+1
        # cache lines depending on alignment.
        if self.lines_written * LINE_SIZE < self.bytes_written:
            fails.append(
                f"{self.lines_written} written lines cannot carry "
                f"{self.bytes_written} packet bytes")
        if self.lines_read * LINE_SIZE < self.bytes_read:
            fails.append(
                f"{self.lines_read} read lines cannot carry "
                f"{self.bytes_read} packet bytes")
        if self.lines_written > self.bytes_written // LINE_SIZE \
                + self.packets_written:
            fails.append(
                f"{self.lines_written} written lines exceeds the maximum "
                f"for {self.packets_written} packets totalling "
                f"{self.bytes_written}B")
        if self.lines_read > self.bytes_read // LINE_SIZE \
                + self.packets_read:
            fails.append(
                f"{self.lines_read} read lines exceeds the maximum for "
                f"{self.packets_read} packets totalling {self.bytes_read}B")
        return fails
