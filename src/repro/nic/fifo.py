"""NIC on-chip packet FIFOs.

"As soon as a packet is received, the NIC enqueues it in an on-chip SRAM
buffer referred to as RX FIFO" (paper §VII.A).  Capacity is in bytes, like
the real 8254x's 48KB packet buffer; a frame that does not fit is dropped
at the wire.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.net.packet import Packet
from repro.sim.checkpoint import CheckpointError


class PacketByteFifo:
    """A byte-capacity-bounded FIFO of packets."""

    def __init__(self, capacity_bytes: int, name: str = "fifo") -> None:
        if capacity_bytes <= 0:
            raise ValueError("FIFO capacity must be positive")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self._queue: Deque[Packet] = deque()
        self._bytes = 0
        self.enqueued = 0
        self.dequeued = 0
        self.rejected = 0

    @property
    def occupancy_bytes(self) -> int:
        """Bytes of packet data currently held."""
        return self._bytes

    @property
    def free_bytes(self) -> int:
        """Capacity remaining in bytes."""
        return self.capacity_bytes - self._bytes

    def __len__(self) -> int:
        return len(self._queue)

    def fits(self, packet: Packet) -> bool:
        """True if the packet fits in the remaining capacity."""
        return packet.wire_len <= self.free_bytes

    @property
    def full_for_min_frame(self) -> bool:
        """True when even a minimum-size frame would not fit — the
        'FIFO full' condition the drop FSM samples."""
        return self.free_bytes < 64

    def try_enqueue(self, packet: Packet) -> bool:
        """Enqueue if there is room; returns False (and counts a
        rejection) otherwise."""
        if not self.fits(packet):
            self.rejected += 1
            return False
        self._queue.append(packet)
        self._bytes += packet.wire_len
        self.enqueued += 1
        return True

    def peek(self) -> Optional[Packet]:
        """The oldest item without removing it (None if empty)."""
        return self._queue[0] if self._queue else None

    def dequeue(self) -> Packet:
        """Remove and return the oldest item."""
        if not self._queue:
            raise IndexError("dequeue from empty FIFO")
        packet = self._queue.popleft()
        self._bytes -= packet.wire_len
        self.dequeued += 1
        return packet

    def requeue_front(self, packet: Packet) -> None:
        """Put a just-dequeued packet back at the head (a consumer that
        could not make progress).  Capacity is not re-checked: the packet
        occupied this space a moment ago."""
        self._queue.appendleft(packet)
        self._bytes += packet.wire_len
        self.dequeued -= 1

    def clear(self) -> None:
        """Drop all held packets.  Counts them as dequeued so the
        conservation law ``enqueued == dequeued + len(fifo)`` keeps
        holding across a clear."""
        self.dequeued += len(self._queue)
        self._queue.clear()
        self._bytes = 0

    # -- checkpoint support --------------------------------------------------

    def serialize_state(self) -> dict:
        """Lifetime counters only; packets in flight cannot be serialized,
        so a non-empty FIFO means the node was not drained first."""
        if self._queue:
            raise CheckpointError(
                f"FIFO {self.name} holds {len(self._queue)} packets; "
                f"checkpoints require a quiescent (drained) node")
        return {"enqueued": self.enqueued, "dequeued": self.dequeued,
                "rejected": self.rejected}

    def deserialize_state(self, state: dict) -> None:
        self.enqueued = state["enqueued"]
        self.dequeued = state["dequeued"]
        self.rejected = state["rejected"]

    def invariant_failures(self):
        """Conservation self-checks; a list of messages, empty when OK.

        These hold *exactly at any instant*: ``enqueued``/``dequeued``
        are lifetime counters never touched by a stats reset
        (``requeue_front`` un-counts its dequeue, ``clear`` counts its
        evictions).
        """
        fails = []
        if self.enqueued != self.dequeued + len(self._queue):
            fails.append(
                f"enqueued ({self.enqueued}) != dequeued ({self.dequeued}) "
                f"+ held ({len(self._queue)})")
        held_bytes = sum(p.wire_len for p in self._queue)
        if self._bytes != held_bytes:
            fails.append(
                f"byte accounting ({self._bytes}) != held packet bytes "
                f"({held_bytes})")
        if not 0 <= self._bytes <= self.capacity_bytes:
            fails.append(
                f"occupancy {self._bytes}B outside [0, "
                f"{self.capacity_bytes}]B")
        return fails
