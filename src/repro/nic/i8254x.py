"""The i8254x-style NIC device model.

gem5's NIC "loosely models the Intel 8254x NIC series" (§II.B); this is the
equivalent model with the paper's extensions applied:

- configurable descriptor-cache writeback threshold (§III.A.3),
- implemented Interrupt Mask Register read/write (§III.A.5, IMS/IMC),
- PCI quirks handled by the :mod:`repro.pci` layer (§III.A.1-2).

:class:`NicQuirks` can re-introduce each baseline limitation so tests can
demonstrate the before/after behaviour: an unimplemented IMR prevents a
poll-mode driver from launching, and the broken PMD writeback threshold
degenerates to full-descriptor-cache batching.

The RX data path follows the paper's Fig 3 life cycle; drop causes are
classified by the Fig 4 FSM at every packet reception.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.mem.address import AddressSpace
from repro.nic.descriptors import RxRing, TxRing
from repro.nic.dma import DmaConfig, DmaEngine
from repro.nic.drop_fsm import DropCause, DropClassifier
from repro.nic.fifo import PacketByteFifo
from repro.nic.phy import EtherPort
from repro.net.packet import Packet
from repro.pci.config_space import PciQuirks
from repro.pci.device import PciDevice
from repro.sim.event_queue import EventPool, batching_enabled
from repro.sim.ports import KIND_DMA, KIND_DRIVER, RequestPort, ResponsePort
from repro.sim.simobject import SimObject, Simulation
from repro.sim.ticks import us_to_ticks

INTEL_VENDOR_ID = 0x8086
E1000_DEVICE_ID = 0x100E

# Register offsets (subset of the 8254x map).
REG_CTRL = 0x0000
REG_STATUS = 0x0008
REG_ICR = 0x00C0    # interrupt cause read (read-clears)
REG_ITR = 0x00C4    # interrupt throttling
REG_IMS = 0x00D0    # interrupt mask set/read
REG_IMC = 0x00D8    # interrupt mask clear
REG_RDT = 0x2818    # RX descriptor tail
REG_TDT = 0x3818    # TX descriptor tail

ICR_RXT0 = 1 << 7   # receiver timer / RX descriptor written back
ICR_TXDW = 1 << 0   # transmit descriptor written back


@dataclass(frozen=True)
class NicQuirks:
    """Baseline-gem5 NIC limitations, individually re-enablable."""

    imr_implemented: bool = True
    # When False, a PMD cannot program the writeback threshold and the NIC
    # only writes back once the whole descriptor cache is used.
    pmd_writeback_threshold_works: bool = True

    @classmethod
    def baseline_gem5(cls) -> "NicQuirks":
        """The mainline-gem5 behaviour, before the paper's fixes."""
        return cls(imr_implemented=False,
                   pmd_writeback_threshold_works=False)


@dataclass(frozen=True)
class NicConfig:
    """NIC geometry and timing."""

    rx_fifo_bytes: int = 48 * 1024
    tx_fifo_bytes: int = 48 * 1024
    # e1000-class default ring sizes (256 descriptors); Fig 13 overrides
    # the RX ring to 4096 explicitly.
    rx_ring_size: int = 256
    tx_ring_size: int = 256
    writeback_threshold: int = 8
    desc_cache_size: int = 64
    # Descriptor writeback timer (the 8254x RDTR mechanism): a partially
    # filled descriptor cache is flushed after this delay so low-rate
    # traffic is not held hostage to the batch threshold.
    writeback_timer_us: float = 2.0
    # Interrupt throttling (the 8254x ITR register): minimum spacing
    # between posted interrupts; causes raised inside the window coalesce
    # into one delivery at its end.  0 disables throttling.
    itr_us: float = 0.0
    dma: DmaConfig = field(default_factory=DmaConfig)
    quirks: NicQuirks = field(default_factory=NicQuirks)


class I8254xNic(SimObject, PciDevice):
    """The NIC simulation object.

    The owning node wires up ``rx_buffer_source`` (returns the host buffer
    address for the next received packet — the driver's posted buffer) and
    optionally ``rx_notify`` (called on descriptor writeback, used by the
    interrupt-driven kernel driver; a PMD polls the ring instead).
    """

    def __init__(self, sim: Simulation, name: str, config: NicConfig,
                 dma_engine: DmaEngine, address_space: AddressSpace,
                 pci_quirks: PciQuirks = PciQuirks()) -> None:
        SimObject.__init__(self, sim, name)
        PciDevice.__init__(self, INTEL_VENDOR_ID, E1000_DEVICE_ID, pci_quirks)
        self.nic_config = config
        self.dma = dma_engine
        self.rx_fifo = PacketByteFifo(config.rx_fifo_bytes,
                                      name=f"{name}.rx_fifo")
        self.tx_fifo = PacketByteFifo(config.tx_fifo_bytes,
                                      name=f"{name}.tx_fifo")
        rx_region = address_space.allocate(
            f"{name}.rx_ring", config.rx_ring_size * 16)
        tx_region = address_space.allocate(
            f"{name}.tx_ring", config.tx_ring_size * 16)
        self.rx_ring = RxRing(config.rx_ring_size, rx_region,
                              writeback_threshold=config.writeback_threshold,
                              desc_cache_size=config.desc_cache_size)
        # Set by a PMD attaching to a NIC with the baseline-gem5 quirk:
        # "the threshold registers ... are not properly set, and thus the
        # NIC starts writing back the descriptors when all of them are
        # used" (§III.A.3).
        self._wb_timer_disabled = False
        self.tx_ring = TxRing(config.tx_ring_size, tx_region)
        self.drop_fsm = DropClassifier()
        self.port = EtherPort(f"{name}.port", self._on_wire_rx, owner=self)
        # Typed wiring: the NIC is a requestor toward its DMA engine, and
        # serves exactly one driver (PMD or kernel) on driver_side.
        self.dma_port = RequestPort(self, "dma_port", KIND_DMA)
        self.dma_port.bind(dma_engine.device_side)
        self.driver_side = ResponsePort(
            self, "driver_side", KIND_DRIVER,
            hint="attach a driver to this NIC (E1000Pmd for DPDK, "
                 "InterruptNicDriver for the kernel stack)")

        # Driver hooks (set by the driver when it binds driver_side).
        self.rx_buffer_source: Optional[Callable[[Packet], int]] = None
        self.rx_notify: Optional[Callable[[int], None]] = None
        self.tx_complete_notify: Optional[Callable[[Packet], None]] = None

        # Interrupt state.
        self._ims = 0
        self._icr = 0

        # DMA service state: RX and TX directions are independent (the
        # underlying engine models a full-duplex I/O bus).
        self._rx_service_event = self.make_event(self._rx_service,
                                                 "rx_dma_service")
        self._tx_service_event = self.make_event(self._tx_service,
                                                 "tx_dma_service")
        self._wb_timer_event = self.make_event(self._wb_timer_fired,
                                               "wb_timer")
        # Interrupt throttling (ITR) state.
        self._itr_ticks = us_to_ticks(config.itr_us) if config.itr_us else 0
        self._itr_event = self.make_event(self._itr_window_closed, "itr")
        self._itr_pending = 0
        self._last_notify_tick = -(1 << 62)

        # Pooled one-shot completion events for the per-packet DMA paths.
        # Recycled events with precomputed names replace a fresh
        # Event + closure + f-string allocation per packet; scheduling
        # still goes through EventQueue.schedule, so firing order (and
        # trace digests) is identical to the unpooled reference path
        # (REPRO_EVENT_BATCH=0).
        self._event_pools = batching_enabled()
        self._rx_done_pool = EventPool(self._after_rx_dma,
                                       f"{name}.rx_dma_done")
        self._tx_done_pool = EventPool(self._after_tx_dma,
                                       f"{name}.tx_dma_done")
        self._rx_wb_pool = EventPool(self._notify_rx,
                                     f"{name}.rx_writeback")

        # Statistics.
        self.stat_rx_packets = self.stats.counter("rxPackets")
        self.stat_rx_bytes = self.stats.counter("rxBytes")
        self.stat_tx_packets = self.stats.counter("txPackets")
        self.stat_tx_bytes = self.stats.counter("txBytes")
        self.stat_rx_drops = self.stats.counter("rxDrops")
        self.stat_dma_drops = self.stats.counter("dmaDrops")
        self.stat_core_drops = self.stats.counter("coreDrops")
        self.stat_tx_drops = self.stats.counter("txDrops")
        self.stat_wire_rx = self.stats.counter("wireRxPackets")
        self.stat_buffer_starved = self.stats.counter(
            "rxBufferStarved", "RX DMA stalls for lack of posted buffers")

        # Lifetime accounting (never reset): the invariant layer's view of
        # the datapath.  The stat counters above reset at the measurement
        # boundary; these do not, so conservation equalities over them are
        # exact at any instant.
        self.total_wire_rx = 0
        self.total_rx_drops = 0
        self.total_tx_fifo_drops = 0
        self._tx_dma_in_flight = 0
        self._register_invariants()

    def _register_invariants(self) -> None:
        """Packet conservation along the Fig 3 RX lifecycle and the TX
        path, plus drop-cause accounting (Fig 4 FSM vs. the stat
        counters) and DMA byte conservation."""
        reg = self.sim.invariants
        nic = self

        def rx_conservation(final: bool):
            fails = []
            if nic.port.frames_received != nic.total_wire_rx:
                fails.append(
                    f"port delivered {nic.port.frames_received} frames but "
                    f"NIC observed {nic.total_wire_rx}")
            held = len(nic.rx_fifo)
            if nic.total_wire_rx != (nic.rx_fifo.enqueued
                                     + nic.total_rx_drops):
                fails.append(
                    f"wire rx {nic.total_wire_rx} != fifo-accepted "
                    f"{nic.rx_fifo.enqueued} + dropped "
                    f"{nic.total_rx_drops} (fifo holds {held})")
            if nic.rx_fifo.dequeued != nic.rx_ring.filled_total:
                fails.append(
                    f"fifo released {nic.rx_fifo.dequeued} packets but "
                    f"ring filled {nic.rx_ring.filled_total}")
            return fails

        def tx_conservation(final: bool):
            fails = []
            consumed = nic.tx_ring.consumed_total
            landed = nic.tx_fifo.enqueued + nic.total_tx_fifo_drops
            if consumed != landed + nic._tx_dma_in_flight:
                fails.append(
                    f"tx ring released {consumed} packets but "
                    f"{nic.tx_fifo.enqueued} reached the TX FIFO, "
                    f"{nic.total_tx_fifo_drops} overflowed it and "
                    f"{nic._tx_dma_in_flight} are in DMA flight")
            if nic.port.frames_sent != nic.tx_fifo.dequeued:
                fails.append(
                    f"TX FIFO released {nic.tx_fifo.dequeued} frames but "
                    f"port sent {nic.port.frames_sent}")
            return fails

        def fifo_fast(fifo, label):
            def check(final: bool):
                if final:
                    return [f"{label}: {msg}"
                            for msg in fifo.invariant_failures()]
                # Per-event subset: integer compares only (the full check
                # walks held packets, too slow for every event).
                if fifo.enqueued != fifo.dequeued + len(fifo):
                    return [f"{label}: enqueued {fifo.enqueued} != "
                            f"dequeued {fifo.dequeued} + held {len(fifo)}"]
                if not 0 <= fifo.occupancy_bytes <= fifo.capacity_bytes:
                    return [f"{label}: occupancy {fifo.occupancy_bytes}B "
                            f"out of range"]
                return None
            return check

        def drop_cause_accounting(final: bool):
            fails = []
            fsm_total = nic.drop_fsm.total_drops
            if nic.stat_rx_drops.value != fsm_total:
                fails.append(
                    f"rxDrops stat {nic.stat_rx_drops.value} != drop-FSM "
                    f"total {fsm_total}")
            if nic.rx_fifo.rejected != fsm_total:
                fails.append(
                    f"RX FIFO rejected {nic.rx_fifo.rejected} != drop-FSM "
                    f"total {fsm_total}")
            by_cause = (nic.stat_dma_drops.value + nic.stat_core_drops.value
                        + nic.stat_tx_drops.value)
            if by_cause != nic.stat_rx_drops.value:
                fails.append(
                    f"per-cause drop stats sum to {by_cause} but rxDrops "
                    f"is {nic.stat_rx_drops.value}")
            return fails

        reg.register(f"{self.name}.rx-conservation", rx_conservation,
                     strict=True)
        reg.register(f"{self.name}.tx-conservation", tx_conservation,
                     strict=True)
        reg.register(f"{self.name}.rx-fifo",
                     fifo_fast(self.rx_fifo, "rx_fifo"), strict=True)
        reg.register(f"{self.name}.tx-fifo",
                     fifo_fast(self.tx_fifo, "tx_fifo"), strict=True)
        reg.register(f"{self.name}.rx-ring",
                     lambda final: self.rx_ring.invariant_failures(),
                     strict=True)
        reg.register(f"{self.name}.tx-ring",
                     lambda final: self.tx_ring.invariant_failures(),
                     strict=True)
        reg.register(f"{self.name}.drop-cause-accounting",
                     drop_cause_accounting, strict=True)
        reg.register(f"{self.name}.dma-byte-conservation",
                     lambda final: self.dma.invariant_failures())

    # ------------------------------------------------------------------
    # Register file (MMIO)
    # ------------------------------------------------------------------

    def read_reg(self, offset: int) -> int:
        """Read a device register (MMIO)."""
        if offset in (REG_IMS, REG_IMC):
            if not self.nic_config.quirks.imr_implemented:
                # Baseline gem5: the register exists but its read method is
                # not implemented — reads return 0 (§III.A.5).
                return 0
            return self._ims
        if offset == REG_ICR:
            value = self._icr
            self._icr = 0   # read-to-clear
            return value
        if offset == REG_STATUS:
            return 0x2      # link up
        return 0

    def write_reg(self, offset: int, value: int) -> None:
        """Write a device register (MMIO)."""
        if offset == REG_IMS:
            if self.nic_config.quirks.imr_implemented:
                self._ims |= value
            return
        if offset == REG_IMC:
            if self.nic_config.quirks.imr_implemented:
                self._ims &= ~value
            return
        if offset in (REG_RDT, REG_TDT, REG_CTRL, REG_ITR):
            return  # doorbells modelled through the ring objects directly
        raise ValueError(f"write to unmodelled register {offset:#x}")

    def device_interrupts_masked(self) -> bool:
        """Device-level interrupt mask state (IMS empty)."""
        return self._ims == 0

    def interrupt_mask_operational(self) -> bool:
        """Can a driver actually program the mask?  (The PMD launch check.)"""
        probe = ICR_RXT0 | ICR_TXDW
        before = self._ims
        self.write_reg(REG_IMS, probe)
        works = (self.read_reg(REG_IMS) & probe) == probe
        self.write_reg(REG_IMC, probe)
        if self.nic_config.quirks.imr_implemented:
            self._ims = before
        return works

    # ------------------------------------------------------------------
    # Wire RX (Fig 3 step 1 + Fig 4 FSM)
    # ------------------------------------------------------------------

    def _on_wire_rx(self, packet: Packet) -> None:
        self.stat_wire_rx.inc()
        self.total_wire_rx += 1
        accepted = self.rx_fifo.try_enqueue(packet)
        state = self.drop_fsm.on_packet_rx(
            rx_fifo_full=not accepted or self.rx_fifo.full_for_min_frame,
            rx_ring_full=self.rx_ring.full,
            tx_ring_full=self.tx_ring.full,
            dropped=not accepted,
        )
        if self.sim.tracer.enabled:
            cause = (self.drop_fsm.classify(state).value
                     if not accepted else None)
            self.trace("nic", "wire_rx", bytes=packet.wire_len,
                       accepted=accepted, cause=cause)
        if not accepted:
            self.stat_rx_drops.inc()
            self.total_rx_drops += 1
            counts = self.drop_fsm.counts
            self.stat_dma_drops.value = counts[DropCause.DMA]
            self.stat_core_drops.value = counts[DropCause.CORE]
            self.stat_tx_drops.value = counts[DropCause.TX]
            return
        self._kick_service()

    # ------------------------------------------------------------------
    # DMA service loop (Fig 3 steps 2-4)
    # ------------------------------------------------------------------

    def _kick_service(self) -> None:
        self._kick_rx()
        self._kick_tx()

    def _kick_rx(self) -> None:
        if self._rx_service_event.scheduled or not self._rx_work_ready():
            return
        when = max(self.now, self.dma.rx_busy_until)
        self.schedule(self._rx_service_event, when)

    def _kick_tx(self) -> None:
        if self._tx_service_event.scheduled or not self._tx_work_ready():
            return
        when = max(self.now, self.dma.tx_busy_until)
        self.schedule(self._tx_service_event, when)

    def _rx_work_ready(self) -> bool:
        return (len(self.rx_fifo) > 0
                and not self.rx_ring.full
                and self.rx_buffer_source is not None)

    def _tx_work_ready(self) -> bool:
        return self.tx_ring.occupancy > 0 and self.tx_fifo.free_bytes >= 1518

    def _rx_service(self) -> None:
        """DMA one received packet from the RX FIFO into host memory."""
        if not self._rx_work_ready():
            return
        now = self.now
        packet = self.rx_fifo.dequeue()
        buffer_addr = self.rx_buffer_source(packet)
        if buffer_addr is None:
            # Buffer starvation: the driver has no packet buffer to post.
            # The frame stays at the head of the FIFO; service resumes
            # when buffers return (rx_replenish kicks us).
            self.rx_fifo.requeue_front(packet)
            self.stat_buffer_starved.inc()
            return
        self.rx_ring.fill(buffer_addr, packet)
        finish = self.dma.write_packet(now, buffer_addr, packet.wire_len)
        self.stat_rx_packets.inc()
        self.stat_rx_bytes.inc(packet.wire_len)
        if self.sim.tracer.enabled:
            self.trace("dma", "rx_write", bytes=packet.wire_len,
                       addr=buffer_addr, finish=finish)
        # Writeback decision is evaluated once the data DMA lands.
        if self._event_pools:
            self._rx_done_pool.schedule_at(self.sim.events, finish)
        else:
            self.sim.events.call_at(finish, self._after_rx_dma,
                                    name=f"{self.name}.rx_dma_done")
        self._kick_rx()

    def _after_rx_dma(self, _payload=None) -> None:
        if self.rx_ring.writeback_due:
            self._do_writeback(self.now)
        elif (self.rx_ring.pending_writeback_count
                and not self._wb_timer_disabled
                and not self._wb_timer_event.scheduled):
            self.schedule_after(
                self._wb_timer_event,
                us_to_ticks(self.nic_config.writeback_timer_us))
        self._kick_rx()

    def _wb_timer_fired(self) -> None:
        if self.rx_ring.pending_writeback_count:
            self._do_writeback(self.now)

    def _do_writeback(self, now: int) -> None:
        batch = self.rx_ring.writeback()
        if not batch:
            return
        desc_addrs = [self.rx_ring.desc_addr(desc.index) for desc in batch]
        finish = self.dma.writeback_descriptors(now, len(batch), desc_addrs)
        if self.sim.tracer.enabled:
            self.trace("nic", "writeback", count=len(batch), finish=finish)
        if self.rx_notify is not None:
            count = len(batch)
            if self._event_pools:
                self._rx_wb_pool.schedule_at(self.sim.events, finish, count)
            else:
                self.sim.events.call_at(
                    finish, lambda c=count: self._notify_rx(c),
                    name=f"{self.name}.rx_writeback")

    def _notify_rx(self, count: int) -> None:
        if self._itr_ticks:
            # ITR: coalesce causes raised inside the throttling window.
            if self.now - self._last_notify_tick < self._itr_ticks:
                self._itr_pending += count
                if not self._itr_event.scheduled:
                    self.schedule(
                        self._itr_event,
                        self._last_notify_tick + self._itr_ticks)
                return
        self._deliver_rx_notify(count)

    def _itr_window_closed(self) -> None:
        pending, self._itr_pending = self._itr_pending, 0
        if pending:
            self._deliver_rx_notify(pending)

    def _deliver_rx_notify(self, count: int) -> None:
        self._last_notify_tick = self.now
        self._icr |= ICR_RXT0
        if self._ims & ICR_RXT0:
            self.post_interrupt()
        if self.rx_notify is not None:
            self.rx_notify(count)

    def _tx_service(self) -> None:
        """DMA one transmit packet out of the TX ring toward the wire."""
        if not self._tx_work_ready():
            return
        now = self.now
        buffer_addr, packet = self.tx_ring.consume()
        self._tx_dma_in_flight += 1
        finish = self.dma.read_packet(now, buffer_addr, packet.wire_len)
        if self.sim.tracer.enabled:
            self.trace("dma", "tx_read", bytes=packet.wire_len,
                       addr=buffer_addr, finish=finish)
        if self._event_pools:
            self._tx_done_pool.schedule_at(self.sim.events, finish, packet)
        else:
            self.sim.events.call_at(
                finish, lambda p=packet: self._after_tx_dma(p),
                name=f"{self.name}.tx_dma_done")
        self._kick_tx()

    def _after_tx_dma(self, packet: Packet) -> None:
        self._tx_dma_in_flight -= 1
        if self.tx_fifo.try_enqueue(packet):
            # Drain immediately onto the wire; the link serializes.
            self.tx_fifo.dequeue()
            self.port.send(packet)
            self.stat_tx_packets.inc()
            self.stat_tx_bytes.inc(packet.wire_len)
            if self.sim.tracer.enabled:
                self.trace("nic", "tx_wire", bytes=packet.wire_len)
            if self.tx_complete_notify is not None:
                self.tx_complete_notify(packet)
        else:
            # The TX FIFO had no room for the DMA-read frame (cannot
            # happen while _tx_work_ready gates on free space, but the
            # conservation layer must account for every packet).
            self.total_tx_fifo_drops += 1
        self._kick_tx()

    # ------------------------------------------------------------------
    # Driver-side doorbells
    # ------------------------------------------------------------------

    def tx_enqueue(self, buffer_addr: int, packet: Packet) -> bool:
        """Driver posts one packet; kicks the DMA engine (TDT doorbell)."""
        ok = self.tx_ring.enqueue(buffer_addr, packet)
        if ok:
            self._kick_service()
        return ok

    def rx_replenish(self, count: int = 1) -> None:
        """Driver returns buffers to the NIC (RDT doorbell)."""
        self.rx_ring.replenish(count)
        if self._rx_work_ready():
            self._kick_service()

    def on_stats_reset(self) -> None:
        """Clear measurement counters after a stats reset."""
        self.drop_fsm.reset()
        self.rx_fifo.rejected = 0
        self.stat_wire_rx.reset()

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------

    def serialize_state(self) -> dict:
        """Register file, interrupt/ITR state, lifetime counters, and the
        nested FIFO/ring/FSM state.  The nested serializers raise if any
        packet is still held, so quiescence is enforced transitively."""
        return {
            "ims": self._ims,
            "icr": self._icr,
            "itr_pending": self._itr_pending,
            "last_notify_tick": self._last_notify_tick,
            "wb_timer_disabled": self._wb_timer_disabled,
            "total_wire_rx": self.total_wire_rx,
            "total_rx_drops": self.total_rx_drops,
            "total_tx_fifo_drops": self.total_tx_fifo_drops,
            "tx_dma_in_flight": self._tx_dma_in_flight,
            "port_frames_sent": self.port.frames_sent,
            "port_frames_received": self.port.frames_received,
            "rx_fifo": self.rx_fifo.serialize_state(),
            "tx_fifo": self.tx_fifo.serialize_state(),
            "rx_ring": self.rx_ring.serialize_state(),
            "tx_ring": self.tx_ring.serialize_state(),
            "drop_fsm": self.drop_fsm.serialize_state(),
        }

    def deserialize_state(self, state: dict) -> None:
        self._ims = state["ims"]
        self._icr = state["icr"]
        self._itr_pending = state["itr_pending"]
        self._last_notify_tick = state["last_notify_tick"]
        self._wb_timer_disabled = state["wb_timer_disabled"]
        self.total_wire_rx = state["total_wire_rx"]
        self.total_rx_drops = state["total_rx_drops"]
        self.total_tx_fifo_drops = state["total_tx_fifo_drops"]
        self._tx_dma_in_flight = state["tx_dma_in_flight"]
        self.port.frames_sent = state["port_frames_sent"]
        self.port.frames_received = state["port_frames_received"]
        self.rx_fifo.deserialize_state(state["rx_fifo"])
        self.tx_fifo.deserialize_state(state["tx_fifo"])
        self.rx_ring.deserialize_state(state["rx_ring"])
        self.tx_ring.deserialize_state(state["tx_ring"])
        self.drop_fsm.deserialize_state(state["drop_fsm"])
