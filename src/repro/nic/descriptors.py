"""Descriptor rings and the NIC's on-chip descriptor cache.

"NIC devices keep a handful of available descriptors ... on an on-chip
cache which is called descriptor cache ... The NIC gradually writes back
the descriptor cache to the CPU memory (using DMA), and then the CPU is
notified of received packets."  The paper's fix (§III.A.3) is making the
writeback threshold a parameter, because with a polling-mode driver the
kernel never programs the threshold registers and the baseline NIC model
degenerates to writing back only when *all* descriptors are used — DMAing
packets "in large batches (32 to 64 packets), which causes unrealistic
pressure on the CPU memory subsystem".

An :class:`RxRing` tracks descriptors through three ownership stages:

    driver-posted (NIC may fill) -> filled (awaiting writeback) -> completed

A :class:`TxRing` tracks packets queued by the driver until the NIC's DMA
engine reads and transmits them.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.mem.address import Region
from repro.net.packet import Packet
from repro.sim.checkpoint import CheckpointError

DESC_SIZE = 16   # legacy e1000 descriptor: 16 bytes


class RxDescriptor:
    """A filled RX descriptor: which buffer holds which packet.

    Slotted (one instance per received packet) with dataclass-style
    equality for tests that compare descriptors structurally.
    """

    __slots__ = ("index", "buffer_addr", "packet")

    def __init__(self, index: int, buffer_addr: int,
                 packet: Packet) -> None:
        self.index = index
        self.buffer_addr = buffer_addr
        self.packet = packet

    def __eq__(self, other) -> bool:
        if other.__class__ is not RxDescriptor:
            return NotImplemented
        return (self.index, self.buffer_addr, self.packet) == \
               (other.index, other.buffer_addr, other.packet)

    __hash__ = None

    def __repr__(self) -> str:
        return (f"RxDescriptor(index={self.index!r}, "
                f"buffer_addr={self.buffer_addr!r}, "
                f"packet={self.packet!r})")


class DescriptorRing:
    """Shared geometry for RX/TX rings: ring memory + descriptor addresses."""

    def __init__(self, size: int, region: Region) -> None:
        if size <= 0:
            raise ValueError("ring size must be positive")
        if region.size < size * DESC_SIZE:
            raise ValueError(
                f"region {region.name} ({region.size}B) too small for "
                f"{size} descriptors")
        self.size = size
        self.region = region
        # Rings are addressed through their backing region, so the region
        # name doubles as the ring's label in the wiring graph.
        self.name = region.name

    def desc_addr(self, index: int) -> int:
        """Memory address of descriptor ``index`` (for cache modelling)."""
        return self.region.addr((index % self.size) * DESC_SIZE)


class RxRing(DescriptorRing):
    """The receive ring with descriptor-cache writeback semantics."""

    def __init__(self, size: int, region: Region,
                 writeback_threshold: int = 8,
                 desc_cache_size: int = 64) -> None:
        super().__init__(size, region)
        if writeback_threshold < 1:
            raise ValueError("writeback threshold must be >= 1")
        self.writeback_threshold = min(writeback_threshold, size)
        self.desc_cache_size = min(desc_cache_size, size)
        self._posted = size          # descriptors the NIC may fill
        self._fill_cursor = 0        # next descriptor index the NIC fills
        self._pending_wb: Deque[RxDescriptor] = deque()  # in descriptor cache
        self._completed: Deque[RxDescriptor] = deque()   # visible to driver
        self.filled_total = 0
        self.harvested_total = 0
        self.writebacks = 0

    # -- NIC side -------------------------------------------------------------

    @property
    def nic_free_descriptors(self) -> int:
        """Descriptors the NIC can still fill before stalling."""
        return self._posted

    @property
    def full(self) -> bool:
        """RX ring full from the NIC's perspective (drop-FSM input)."""
        return self._posted == 0

    def fill(self, buffer_addr: int, packet: Packet) -> RxDescriptor:
        """NIC consumed one posted descriptor for a received packet."""
        if self._posted == 0:
            raise RuntimeError("fill on a full RX ring")
        desc = RxDescriptor(index=self._fill_cursor, buffer_addr=buffer_addr,
                            packet=packet)
        self._fill_cursor = (self._fill_cursor + 1) % self.size
        self._posted -= 1
        self._pending_wb.append(desc)
        self.filled_total += 1
        return desc

    @property
    def writeback_due(self) -> bool:
        """Should the NIC write the descriptor cache back now?"""
        if not self._pending_wb:
            return False
        return (len(self._pending_wb) >= self.writeback_threshold
                or len(self._pending_wb) >= self.desc_cache_size)

    def writeback(self) -> List[RxDescriptor]:
        """Flush the descriptor cache: completed descriptors become visible
        to the driver.  Returns the batch (for DMA cost accounting)."""
        batch = list(self._pending_wb)
        self._pending_wb.clear()
        self._completed.extend(batch)
        if batch:
            self.writebacks += 1
        return batch

    # -- driver side ------------------------------------------------------------

    @property
    def completed_count(self) -> int:
        """Descriptors written back and visible to the driver."""
        return len(self._completed)

    @property
    def pending_writeback_count(self) -> int:
        """Filled descriptors still in the descriptor cache."""
        return len(self._pending_wb)

    def harvest(self, max_count: int) -> List[RxDescriptor]:
        """Driver collects up to ``max_count`` completed descriptors
        (an rx_burst)."""
        if max_count < 0:
            raise ValueError("negative harvest count")
        batch: List[RxDescriptor] = []
        while self._completed and len(batch) < max_count:
            batch.append(self._completed.popleft())
        self.harvested_total += len(batch)
        return batch

    def replenish(self, count: int = 1) -> None:
        """Driver posts ``count`` fresh buffers for the NIC to fill."""
        in_flight = (self._posted + len(self._pending_wb)
                     + len(self._completed))
        if in_flight + count > self.size:
            raise RuntimeError(
                f"replenish({count}) would exceed ring size {self.size}")
        self._posted += count

    # -- checkpoint support --------------------------------------------------

    def serialize_state(self) -> dict:
        """Cursor/counter state.  Descriptors in the descriptor cache or
        awaiting harvest reference live packets, so a quiescent ring has
        both queues empty."""
        if self._pending_wb or self._completed:
            raise CheckpointError(
                f"RX ring {self.name} holds {len(self._pending_wb)} cached "
                f"+ {len(self._completed)} completed descriptors; "
                f"checkpoints require a quiescent (drained) node")
        return {
            "posted": self._posted,
            "fill_cursor": self._fill_cursor,
            "filled_total": self.filled_total,
            "harvested_total": self.harvested_total,
            "writebacks": self.writebacks,
            "writeback_threshold": self.writeback_threshold,
        }

    def deserialize_state(self, state: dict) -> None:
        self._posted = state["posted"]
        self._fill_cursor = state["fill_cursor"]
        self.filled_total = state["filled_total"]
        self.harvested_total = state["harvested_total"]
        self.writebacks = state["writebacks"]
        # Mutated at runtime by the PMD's writeback quirk path.
        self.writeback_threshold = state["writeback_threshold"]

    def invariant_failures(self):
        """Descriptor conservation: every filled descriptor is either in
        the descriptor cache, visible to the driver, or harvested.  All
        counters are lifetime (never reset), so this is exact at any
        instant."""
        fails = []
        retained = len(self._pending_wb) + len(self._completed)
        if self.filled_total != self.harvested_total + retained:
            fails.append(
                f"filled {self.filled_total} != harvested "
                f"{self.harvested_total} + cached "
                f"{len(self._pending_wb)} + completed "
                f"{len(self._completed)}")
        if not 0 <= self._posted <= self.size:
            fails.append(
                f"posted descriptor count {self._posted} outside "
                f"[0, {self.size}]")
        if self._posted + retained > self.size:
            fails.append(
                f"posted ({self._posted}) + in-flight ({retained}) "
                f"descriptors exceed ring size {self.size}")
        return fails


class TxRing(DescriptorRing):
    """The transmit ring: driver enqueues, NIC DMA-reads and drains."""

    def __init__(self, size: int, region: Region) -> None:
        super().__init__(size, region)
        self._queue: Deque[tuple] = deque()   # (buffer_addr, packet)
        self._tail = 0
        self.enqueued_total = 0
        self.consumed_total = 0

    @property
    def occupancy(self) -> int:
        """Entries currently queued."""
        return len(self._queue)

    @property
    def free_slots(self) -> int:
        """Ring slots still available to the driver."""
        return self.size - len(self._queue)

    @property
    def full(self) -> bool:
        """True when no further item can be accepted."""
        return len(self._queue) >= self.size

    def enqueue(self, buffer_addr: int, packet: Packet) -> bool:
        """Driver posts a packet for transmission; False if the ring is
        full (the driver's tx_burst returns fewer than asked)."""
        if self.full:
            return False
        self._queue.append((buffer_addr, packet))
        self._tail = (self._tail + 1) % self.size
        self.enqueued_total += 1
        return True

    def peek(self) -> Optional[tuple]:
        """The oldest item without removing it (None if empty)."""
        return self._queue[0] if self._queue else None

    def consume(self) -> tuple:
        """NIC takes the next packet for DMA read + transmit."""
        if not self._queue:
            raise IndexError("consume from empty TX ring")
        self.consumed_total += 1
        return self._queue.popleft()

    # -- checkpoint support --------------------------------------------------

    def serialize_state(self) -> dict:
        if self._queue:
            raise CheckpointError(
                f"TX ring {self.name} holds {len(self._queue)} queued "
                f"packets; checkpoints require a quiescent (drained) node")
        return {"tail": self._tail, "enqueued_total": self.enqueued_total,
                "consumed_total": self.consumed_total}

    def deserialize_state(self, state: dict) -> None:
        self._tail = state["tail"]
        self.enqueued_total = state["enqueued_total"]
        self.consumed_total = state["consumed_total"]

    def invariant_failures(self):
        """TX descriptor conservation over lifetime counters."""
        fails = []
        if self.enqueued_total != self.consumed_total + len(self._queue):
            fails.append(
                f"enqueued {self.enqueued_total} != consumed "
                f"{self.consumed_total} + queued {len(self._queue)}")
        if len(self._queue) > self.size:
            fails.append(
                f"occupancy {len(self._queue)} exceeds ring size "
                f"{self.size}")
        return fails
