"""NIC hardware model.

An i8254x-style NIC (the Intel 8254x series gem5's IGbE model loosely
follows) extended exactly as the paper describes (§III.A.3-5):

- a descriptor cache with a *configurable writeback threshold* so a polling
  mode driver is not forced into 32-64 packet DMA batches;
- an implemented Interrupt Mask Register (IMS/IMC/IMR semantics);
- correct operation with both an interrupt-driven kernel driver and a
  userspace polling driver.

Packet-drop causes are classified by the Fig 4 finite-state machine into
DmaDrop / CoreDrop / TxDrop.
"""

from repro.nic.drop_fsm import DropCause, DropClassifier
from repro.nic.fifo import PacketByteFifo
from repro.nic.descriptors import DescriptorRing, RxRing, TxRing
from repro.nic.dma import DmaConfig, DmaEngine
from repro.nic.phy import EtherLink, EtherPort
from repro.nic.i8254x import I8254xNic, NicConfig, NicQuirks

__all__ = [
    "DropCause",
    "DropClassifier",
    "PacketByteFifo",
    "DescriptorRing",
    "RxRing",
    "TxRing",
    "DmaConfig",
    "DmaEngine",
    "EtherLink",
    "EtherPort",
    "I8254xNic",
    "NicConfig",
    "NicQuirks",
]
