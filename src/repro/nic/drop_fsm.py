"""The packet-drop classification FSM (paper Fig 4).

Each state is a three-bit tuple ``(rx_fifo_full, rx_ring_full,
tx_ring_full)``.  Transitions happen at every packet reception.  The gray
(dropping) states attribute the drop:

- RX FIFO full while both rings have space        -> **DmaDrop** — the DMA
  engine cannot replenish the descriptor cache / drain the FIFO fast enough;
- RX FIFO full and RX ring full (TX ring not)     -> **CoreDrop** — the core
  is too slow to drain the RX ring, which halted the DMA engine;
- RX FIFO full and both rings full                -> **TxDrop** — TX DMA
  reads cannot keep up, stalling the core, which backs up the RX ring.

When the FIFO is no longer full, the next reception transitions back to the
proper intermediate state.
"""

from __future__ import annotations

import enum
from typing import Dict, Tuple

State = Tuple[bool, bool, bool]


class DropCause(enum.Enum):
    """Why a packet was dropped at the NIC."""

    DMA = "DmaDrop"
    CORE = "CoreDrop"
    TX = "TxDrop"


class DropClassifier:
    """Tracks the Fig 4 FSM and the three drop counters."""

    def __init__(self) -> None:
        self.state: State = (False, False, False)
        self.counts: Dict[DropCause, int] = {cause: 0 for cause in DropCause}
        self.transitions = 0

    def on_packet_rx(self, rx_fifo_full: bool, rx_ring_full: bool,
                     tx_ring_full: bool, dropped: bool) -> State:
        """Advance the FSM at a packet reception.

        ``dropped`` is whether this packet was actually dropped (the FIFO
        had no room for it).  Returns the new state.
        """
        new_state: State = (rx_fifo_full, rx_ring_full, tx_ring_full)
        self.transitions += 1
        if dropped:
            cause = self.classify(new_state)
            self.counts[cause] += 1
        self.state = new_state
        return new_state

    @staticmethod
    def classify(state: State) -> DropCause:
        """Map a dropping (gray) state to its cause per Fig 4."""
        rx_fifo_full, rx_ring_full, tx_ring_full = state
        if not rx_fifo_full:
            raise ValueError(
                "only states with a full RX FIFO drop packets")
        if rx_ring_full and tx_ring_full:      # state 1,1,1
            return DropCause.TX
        if rx_ring_full:                       # state 1,1,0
            return DropCause.CORE
        return DropCause.DMA                   # state 1,0,x

    @property
    def total_drops(self) -> int:
        """Sum of all classified drops."""
        return sum(self.counts.values())

    def breakdown(self) -> Dict[str, float]:
        """Fractional drop breakdown, as plotted in Fig 5."""
        total = self.total_drops
        if total == 0:
            return {cause.value: 0.0 for cause in DropCause}
        return {cause.value: self.counts[cause] / total
                for cause in DropCause}

    def reset(self) -> None:
        """Reset to the initial (empty) state."""
        self.counts = {cause: 0 for cause in DropCause}
        self.transitions = 0

    # -- checkpoint support --------------------------------------------------

    def serialize_state(self) -> dict:
        """The FSM position survives a stats reset, so it must survive a
        checkpoint too."""
        return {
            "state": list(self.state),
            "counts": {cause.value: self.counts[cause]
                       for cause in DropCause},
            "transitions": self.transitions,
        }

    def deserialize_state(self, state: dict) -> None:
        fifo_full, rx_full, tx_full = state["state"]
        self.state = (bool(fifo_full), bool(rx_full), bool(tx_full))
        self.counts = {cause: state["counts"][cause.value]
                       for cause in DropCause}
        self.transitions = state["transitions"]
