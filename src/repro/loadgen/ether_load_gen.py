"""The EtherLoadGen simulation object (paper §IV).

A hardware traffic generator with one Ethernet port.  Unlike a simulated
Drive Node, it introduces no client-side queuing and no measurement
perturbation: packets depart exactly on schedule and every returning
packet's timestamp is matched against the current tick.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.loadgen.distributions import make_inter_arrival
from repro.loadgen.latency import LatencyTracker
from repro.net.headers import build_udp_frame
from repro.net.packet import (
    ETHER_MAX_FRAME,
    ETHER_MIN_FRAME,
    MacAddress,
    Packet,
)
from repro.net.pcap import PcapRecord
from repro.nic.phy import EtherPort
from repro.sim.checkpoint import CheckpointError
from repro.sim.simobject import SimObject, Simulation
from repro.sim.ticks import TICKS_PER_SEC, ns_to_ticks

DEFAULT_SRC_MAC = MacAddress.parse("02:00:00:00:00:01")
DEFAULT_DST_MAC = MacAddress.parse("02:00:00:00:00:02")


def pps_for_gbps(gbps: float, wire_len: int) -> float:
    """Packets/second for a target *goodput* bandwidth (frame bits only,
    matching how the paper reports network throughput)."""
    if gbps <= 0:
        raise ValueError("bandwidth must be positive")
    return gbps * 1e9 / (wire_len * 8)


def gbps_for_pps(pps: float, wire_len: int) -> float:
    """Goodput bandwidth for a packet rate and frame size."""
    return pps * wire_len * 8 / 1e9


@dataclass(frozen=True)
class SyntheticConfig:
    """Synthetic-mode parameters.

    ``protocol``: "ethernet" sends plain Ethernet frames (the paper's
    supported synthetic protocol); "udp" wraps the payload in IPv4/UDP
    headers — the connection-less extension §IV says "can be supported
    with minimal effort".
    """

    packet_size: int = 64              # wire length incl. CRC
    rate_gbps: float = 10.0
    distribution: str = "fixed"
    count: Optional[int] = 10000       # packets to send (None = unbounded)
    ts_offset: int = 0                 # byte offset of embedded timestamp
    expect_responses: bool = True      # forwarding app echoes packets back
    protocol: str = "ethernet"         # "ethernet" | "udp"

    def __post_init__(self) -> None:
        if not ETHER_MIN_FRAME <= self.packet_size <= ETHER_MAX_FRAME:
            raise ValueError(
                f"packet size {self.packet_size} outside "
                f"[{ETHER_MIN_FRAME}, {ETHER_MAX_FRAME}]")
        if self.protocol not in ("ethernet", "udp"):
            raise ValueError(f"unknown synthetic protocol {self.protocol!r}")
        if self.protocol == "udp" and self.packet_size < 64:
            raise ValueError("udp frames need at least 64 wire bytes")

    @property
    def rate_pps(self) -> float:
        """Configured rate expressed in packets/second."""
        return pps_for_gbps(self.rate_gbps, self.packet_size)


@dataclass(frozen=True)
class TraceConfig:
    """Trace-replay parameters."""

    records: Sequence[PcapRecord] = ()
    use_trace_timestamps: bool = True
    rate_gbps: Optional[float] = None   # override pacing when not None
    rewrite_dst: bool = True            # patch dst MAC to the test node's
    expect_responses: bool = True

    def __post_init__(self) -> None:
        if not self.records:
            raise ValueError("trace mode needs at least one record")
        if not self.use_trace_timestamps and self.rate_gbps is None:
            raise ValueError(
                "need either trace timestamps or an explicit rate")


@dataclass(frozen=True)
class RampConfig:
    """Bandwidth-test mode: step the rate up and find the MSB knee."""

    packet_size: int = 64
    start_gbps: float = 1.0
    step_gbps: float = 1.0
    num_steps: int = 16
    packets_per_step: int = 1000
    distribution: str = "fixed"
    expect_responses: bool = True

    def __post_init__(self) -> None:
        if self.num_steps < 1 or self.packets_per_step < 1:
            raise ValueError("ramp needs at least one step and packet")
        if self.start_gbps <= 0 or self.step_gbps <= 0:
            raise ValueError("ramp rates must be positive")

    def step_rate(self, step: int) -> float:
        """Offered rate of ramp step ``step`` in Gbps."""
        return self.start_gbps + step * self.step_gbps


@dataclass
class RampStepResult:
    """Outcome of one ramp step."""

    gbps_offered: float
    sent: int
    received: int

    @property
    def drop_rate(self) -> float:
        """Fraction of offered packets that were lost."""
        if self.sent == 0:
            return 0.0
        return max(0.0, 1.0 - self.received / self.sent)


class EtherLoadGen(SimObject):
    """Hardware load generator with a single Ethernet port."""

    def __init__(self, sim: Simulation, name: str,
                 dst_mac: MacAddress = DEFAULT_DST_MAC,
                 src_mac: MacAddress = DEFAULT_SRC_MAC) -> None:
        super().__init__(sim, name)
        self.dst_mac = dst_mac
        self.src_mac = src_mac
        self.port = EtherPort(f"{name}.port", self._on_rx, owner=self)
        self.latency = LatencyTracker(name)
        self.tx_packets = 0
        self.tx_bytes = 0
        self.rx_packets = 0
        self.rx_bytes = 0
        self._seq = 0
        self._sending = False
        self._send_event = self.make_event(self._send_next, "send")
        # Synthetic / trace iteration state.
        self._synth: Optional[SyntheticConfig] = None
        self._trace: Optional[TraceConfig] = None
        self._trace_index = 0
        self._trace_base_tick = 0
        self._inter_arrival = None
        self._remaining: Optional[int] = None
        # Ramp state.
        self._ramp: Optional[RampConfig] = None
        self._ramp_step = -1
        self._step_sent: List[int] = []
        self._step_received: List[int] = []
        self.first_tx_tick: Optional[int] = None
        self.last_tx_tick: Optional[int] = None
        # Measurement epoch: bumped on stats reset so responses to packets
        # sent before the reset (still in flight) are not miscounted.
        self._epoch = 0
        self.stale_rx = 0
        # Lifetime accounting (never reset): exact inputs for the
        # end-to-end packet-conservation invariant.
        self.total_tx_packets = 0
        self.total_rx_packets = 0
        self._register_invariants()

    def _register_invariants(self) -> None:
        """The generator's own books must agree with its port's."""
        gen = self

        def port_accounting(final: bool):
            fails = []
            if gen.port.frames_sent != gen.total_tx_packets:
                fails.append(
                    f"port sent {gen.port.frames_sent} frames but "
                    f"generator emitted {gen.total_tx_packets}")
            if gen.port.frames_received != gen.total_rx_packets:
                fails.append(
                    f"port received {gen.port.frames_received} frames but "
                    f"generator counted {gen.total_rx_packets}")
            epoch_rx = gen.rx_packets + gen.stale_rx
            if epoch_rx > gen.total_rx_packets:
                fails.append(
                    f"epoch rx ({gen.rx_packets}) + stale rx "
                    f"({gen.stale_rx}) exceeds lifetime rx "
                    f"({gen.total_rx_packets})")
            return fails

        self.sim.invariants.register(
            f"{self.name}.port-accounting", port_accounting, strict=True)

    # ------------------------------------------------------------------
    # Mode start/stop
    # ------------------------------------------------------------------

    def start_synthetic(self, config: SyntheticConfig, when: int = 0) -> None:
        """Begin synthetic-mode generation at tick ``when`` (or now)."""
        self._ensure_idle()
        self._synth = config
        self._remaining = config.count
        self._inter_arrival = make_inter_arrival(
            config.distribution, config.rate_pps,
            self.sim.rng.fork(f"{self.name}.synth"))
        self._sending = True
        self.schedule(self._send_event, max(when, self.now))

    def start_trace(self, config: TraceConfig, when: int = 0) -> None:
        """Begin trace replay at tick ``when`` (or now)."""
        self._ensure_idle()
        self._trace = config
        self._trace_index = 0
        start = max(when, self.now)
        self._trace_base_tick = start
        if config.rate_gbps is not None and not config.use_trace_timestamps:
            mean_size = sum(r.wire_len for r in config.records) / len(
                config.records)
            self._inter_arrival = make_inter_arrival(
                "fixed", pps_for_gbps(config.rate_gbps, max(64, int(mean_size))),
                self.sim.rng.fork(f"{self.name}.trace"))
        self._sending = True
        self.schedule(self._send_event, start)

    def start_ramp(self, config: RampConfig, when: int = 0) -> None:
        """Begin bandwidth-test mode at tick ``when`` (or now)."""
        self._ensure_idle()
        self._ramp = config
        self._ramp_step = 0
        self._step_sent = [0] * config.num_steps
        self._step_received = [0] * config.num_steps
        self._remaining = config.packets_per_step
        self._inter_arrival = make_inter_arrival(
            config.distribution,
            pps_for_gbps(config.step_rate(0), config.packet_size),
            self.sim.rng.fork(f"{self.name}.ramp"))
        self._sending = True
        self.schedule(self._send_event, max(when, self.now))

    def stop(self) -> None:
        """Stop operation; pending events are cancelled."""
        self._sending = False
        if self._send_event.scheduled:
            self.deschedule(self._send_event)

    def _ensure_idle(self) -> None:
        if self._sending:
            raise RuntimeError(f"{self.name} is already generating traffic")

    @property
    def active(self) -> bool:
        """True while traffic generation is in progress."""
        return self._sending

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------

    def _send_next(self) -> None:
        if not self._sending:
            return
        if self._trace is not None:
            self._send_trace_packet()
        else:
            self._send_synthetic_packet()

    def _build_packet(self, size: int, step: Optional[int]) -> Packet:
        if self._synth is not None and self._synth.protocol == "udp":
            # Ethernet(14) + IPv4(20) + UDP(8) + payload + CRC(4) = size.
            payload_len = max(0, size - 14 - 20 - 8 - 4)
            packet = build_udp_frame(
                src_mac=self.src_mac, dst_mac=self.dst_mac,
                src_ip=0x0A000001, dst_ip=0x0A000002,
                src_port=7001, dst_port=7000,
                payload=bytes(payload_len),
                identification=self._seq & 0xFFFF)
            packet.ts_tx = self.now
            packet.request_id = self._seq
        else:
            packet = Packet(
                wire_len=size,
                dst=self.dst_mac,
                src=self.src_mac,
                ts_tx=self.now,
                ts_offset=(self._synth.ts_offset if self._synth else 0),
                request_id=self._seq,
            )
        packet.meta["epoch"] = self._epoch
        if step is not None:
            packet.meta["ramp_step"] = step
        self._seq += 1
        return packet

    def _emit(self, packet: Packet) -> None:
        self.tx_packets += 1
        self.tx_bytes += packet.wire_len
        self.total_tx_packets += 1
        if self.first_tx_tick is None:
            self.first_tx_tick = self.now
        self.last_tx_tick = self.now
        if self.sim.tracer.enabled:
            self.trace("loadgen", "tx", bytes=packet.wire_len,
                       request_id=packet.request_id)
        self.port.send(packet)

    def _send_synthetic_packet(self) -> None:
        if self._ramp is not None:
            self._send_ramp_packet()
            return
        config = self._synth
        packet = self._build_packet(config.packet_size, None)
        self._emit(packet)
        if self._remaining is not None:
            self._remaining -= 1
            if self._remaining <= 0:
                self._sending = False
                return
        self.schedule_after(self._send_event,
                            self._inter_arrival.next_gap_ticks())

    def _send_ramp_packet(self) -> None:
        config = self._ramp
        packet = self._build_packet(config.packet_size, self._ramp_step)
        self._emit(packet)
        self._step_sent[self._ramp_step] += 1
        self._remaining -= 1
        if self._remaining <= 0:
            self._ramp_step += 1
            if self._ramp_step >= config.num_steps:
                self._sending = False
                return
            self._remaining = config.packets_per_step
            self._inter_arrival = make_inter_arrival(
                config.distribution,
                pps_for_gbps(config.step_rate(self._ramp_step),
                             config.packet_size),
                self.sim.rng.fork(f"{self.name}.ramp{self._ramp_step}"))
        self.schedule_after(self._send_event,
                            self._inter_arrival.next_gap_ticks())

    def _send_trace_packet(self) -> None:
        config = self._trace
        record = config.records[self._trace_index]
        packet = Packet.from_bytes(record.data)
        if config.rewrite_dst:
            # "It then modifies the destination physical address in the
            # packet's Ethernet header to match the one in the simulated
            # system." (§IV)
            packet.dst = self.dst_mac
        packet.ts_tx = self.now
        packet.request_id = self._seq
        packet.meta["epoch"] = self._epoch
        self._seq += 1
        self._emit(packet)
        self._trace_index += 1
        if self._trace_index >= len(config.records):
            self._sending = False
            return
        if config.use_trace_timestamps:
            prev_ns = config.records[self._trace_index - 1].ts_ns
            next_ns = config.records[self._trace_index].ts_ns
            gap = max(1, ns_to_ticks(next_ns - prev_ns))
        else:
            gap = self._inter_arrival.next_gap_ticks()
        self.schedule_after(self._send_event, gap)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------

    def _on_rx(self, packet: Packet) -> None:
        self.total_rx_packets += 1
        if self.sim.tracer.enabled:
            self.trace("loadgen", "rx", bytes=packet.wire_len,
                       request_id=packet.request_id,
                       stale=packet.meta.get("epoch") != self._epoch)
        if packet.meta.get("epoch") != self._epoch:
            self.stale_rx += 1
            return
        self.rx_packets += 1
        self.rx_bytes += packet.wire_len
        if packet.ts_tx is not None:
            self.latency.record(packet.ts_tx, self.now)
        step = packet.meta.get("ramp_step")
        if step is not None and self._step_received:
            if 0 <= step < len(self._step_received):
                self._step_received[step] += 1

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    @property
    def drop_rate(self) -> float:
        """End-to-end drop fraction (sent but never returned)."""
        if self.tx_packets == 0:
            return 0.0
        return max(0.0, 1.0 - self.rx_packets / self.tx_packets)

    def offered_gbps(self) -> float:
        """Average offered load over the generation interval."""
        if (self.first_tx_tick is None or self.last_tx_tick is None
                or self.tx_packets < 2):
            return 0.0
        elapsed = self.last_tx_tick - self.first_tx_tick
        if elapsed <= 0:
            return 0.0
        return self.tx_bytes * 8 * TICKS_PER_SEC / elapsed / 1e9

    def ramp_results(self) -> List[RampStepResult]:
        """Per-step outcomes of bandwidth-test mode."""
        if self._ramp is None:
            raise RuntimeError("not in bandwidth-test mode")
        return [
            RampStepResult(
                gbps_offered=self._ramp.step_rate(step),
                sent=self._step_sent[step],
                received=self._step_received[step])
            for step in range(self._ramp.num_steps)
        ]

    def msb_gbps(self, drop_threshold: float = 0.01) -> float:
        """Maximum sustainable bandwidth: highest offered rate whose drop
        rate stays at or below ``drop_threshold`` (paper §VII.C defines MSB
        as the point where drops exceed 1%)."""
        best = 0.0
        for result in self.ramp_results():
            if result.sent == 0:
                continue
            if result.drop_rate <= drop_threshold:
                best = max(best, result.gbps_offered)
            else:
                break
        return best

    def on_stats_reset(self) -> None:
        """Clear measurement counters after a stats reset."""
        self.latency.reset()
        self.tx_packets = 0
        self.tx_bytes = 0
        self.rx_packets = 0
        self.rx_bytes = 0
        self.first_tx_tick = None
        self.last_tx_tick = None
        self._epoch += 1

    # -- checkpoint support ------------------------------------------------

    def serialize_state(self) -> dict:
        """Counters, epoch, and sequence state.  The generator must be
        stopped: mode configs and the inter-arrival sampler are rebuilt by
        the next ``start_*`` call, so an in-progress generation phase
        cannot be captured faithfully."""
        if self._sending or self._send_event.scheduled:
            raise CheckpointError(
                f"{self.name} is actively generating traffic; "
                f"checkpoints require a stopped (drained) load generator")
        return {
            "seq": self._seq,
            "epoch": self._epoch,
            "stale_rx": self.stale_rx,
            "total_tx_packets": self.total_tx_packets,
            "total_rx_packets": self.total_rx_packets,
            "tx_packets": self.tx_packets,
            "tx_bytes": self.tx_bytes,
            "rx_packets": self.rx_packets,
            "rx_bytes": self.rx_bytes,
            "first_tx_tick": self.first_tx_tick,
            "last_tx_tick": self.last_tx_tick,
            "remaining": self._remaining,
            "trace_index": self._trace_index,
            "trace_base_tick": self._trace_base_tick,
            "ramp_step": self._ramp_step,
            "step_sent": list(self._step_sent),
            "step_received": list(self._step_received),
            "latency": self.latency.serialize_state(),
            "port": {"frames_sent": self.port.frames_sent,
                     "frames_received": self.port.frames_received},
        }

    def deserialize_state(self, state: dict) -> None:
        self._seq = state["seq"]
        self._epoch = state["epoch"]
        self.stale_rx = state["stale_rx"]
        self.total_tx_packets = state["total_tx_packets"]
        self.total_rx_packets = state["total_rx_packets"]
        self.tx_packets = state["tx_packets"]
        self.tx_bytes = state["tx_bytes"]
        self.rx_packets = state["rx_packets"]
        self.rx_bytes = state["rx_bytes"]
        self.first_tx_tick = state["first_tx_tick"]
        self.last_tx_tick = state["last_tx_tick"]
        self._remaining = state["remaining"]
        self._trace_index = state["trace_index"]
        self._trace_base_tick = state["trace_base_tick"]
        self._ramp_step = state["ramp_step"]
        self._step_sent = list(state["step_sent"])
        self._step_received = list(state["step_received"])
        self.latency.deserialize_state(state["latency"])
        self.port.frames_sent = state["port"]["frames_sent"]
        self.port.frames_received = state["port"]["frames_received"]
