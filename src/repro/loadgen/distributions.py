"""Packet inter-arrival time distributions.

EtherLoadGen's synthetic mode sends "packets based on a set of configurable
parameters such as packet rate, packet inter-arrival time distribution,
packet size, and protocol" (§IV).  All distributions are parameterized by
mean rate in packets/second and produce integer tick gaps.
"""

from __future__ import annotations

from repro.sim.rng import DeterministicRng
from repro.sim.ticks import TICKS_PER_SEC


class FixedInterArrival:
    """Constant-rate (deterministic) spacing."""

    def __init__(self, rate_pps: float) -> None:
        if rate_pps <= 0:
            raise ValueError("rate must be positive")
        self.rate_pps = rate_pps
        self._gap = TICKS_PER_SEC / rate_pps
        self._acc = 0.0

    def next_gap_ticks(self) -> int:
        # Accumulate the fractional part so long runs hit the exact rate.
        """Ticks until the next packet departure."""
        self._acc += self._gap
        gap = int(self._acc)
        self._acc -= gap
        return gap


class ExponentialInterArrival:
    """Poisson arrivals (exponential gaps) — an open-loop client."""

    def __init__(self, rate_pps: float, rng: DeterministicRng) -> None:
        if rate_pps <= 0:
            raise ValueError("rate must be positive")
        self.rate_pps = rate_pps
        self._rng = rng

    def next_gap_ticks(self) -> int:
        """Ticks until the next packet departure."""
        gap_s = self._rng.expovariate(self.rate_pps)
        return max(1, round(gap_s * TICKS_PER_SEC))


class UniformInterArrival:
    """Uniform jitter around the mean gap (+/- ``jitter`` fraction)."""

    def __init__(self, rate_pps: float, rng: DeterministicRng,
                 jitter: float = 0.5) -> None:
        if rate_pps <= 0:
            raise ValueError("rate must be positive")
        if not 0 <= jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")
        self.rate_pps = rate_pps
        self._rng = rng
        mean_gap = TICKS_PER_SEC / rate_pps
        self._lo = mean_gap * (1 - jitter)
        self._hi = mean_gap * (1 + jitter)

    def next_gap_ticks(self) -> int:
        """Ticks until the next packet departure."""
        return max(1, round(self._rng.uniform(self._lo, self._hi)))


def make_inter_arrival(kind: str, rate_pps: float, rng: DeterministicRng):
    """Factory by distribution name."""
    if kind == "fixed":
        return FixedInterArrival(rate_pps)
    if kind == "exponential":
        return ExponentialInterArrival(rate_pps, rng)
    if kind == "uniform":
        return UniformInterArrival(rate_pps, rng)
    raise ValueError(f"unknown inter-arrival distribution {kind!r}")
