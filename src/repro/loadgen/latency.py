"""Per-packet latency accounting.

"EtherLoadGen reports mean, median, standard deviation, and tail latency
of network packets in the statistics file.  It also produces a packet drop
percentage and a histogram of packet forwarding latency." (§IV)
"""

from __future__ import annotations

from typing import Dict

from repro.sim.stats import Distribution, Histogram
from repro.sim.ticks import ticks_to_us


class LatencyTracker:
    """Round-trip latency distribution plus forwarding-latency histogram."""

    def __init__(self, name: str, histogram_max_us: float = 2000.0,
                 nbuckets: int = 64) -> None:
        self.name = name
        self.rtt_us = Distribution(f"{name}.rtt_us",
                                   "per-packet round-trip latency")
        self.histogram = Histogram(f"{name}.rtt_hist_us", 0.0,
                                   histogram_max_us, nbuckets,
                                   "forwarding latency histogram")

    def record(self, sent_tick: int, received_tick: int) -> float:
        """Record one RTT; returns the latency in microseconds."""
        if received_tick < sent_tick:
            raise ValueError(
                f"response at {received_tick} precedes send at {sent_tick}")
        rtt_us = ticks_to_us(received_tick - sent_tick)
        self.rtt_us.sample(rtt_us)
        self.histogram.sample(rtt_us)
        return rtt_us

    def summary(self) -> Dict[str, float]:
        """The statistics-file summary (mean/median/stddev/tails)."""
        return self.rtt_us.summary()

    def reset(self) -> None:
        """Reset to the initial (empty) state."""
        self.rtt_us.reset()
        self.histogram.reset()

    # -- checkpoint support ------------------------------------------------

    def serialize_state(self) -> dict:
        return {
            "rtt_us": self.rtt_us.serialize_state(),
            "histogram": self.histogram.serialize_state(),
        }

    def deserialize_state(self, state: dict) -> None:
        self.rtt_us.deserialize_state(state["rtt_us"])
        self.histogram.deserialize_state(state["histogram"])
