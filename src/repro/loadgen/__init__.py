"""The hardware load generator model (paper §IV).

``EtherLoadGen`` has a single Ethernet port that connects directly to the
NIC of a simulated Test Node — no Drive Node simulation needed.  It
supports:

- **synthetic mode**: configurable packet rate, size, and inter-arrival
  distribution, with a timestamp embedded in each outgoing packet for
  per-packet round-trip latency measurement;
- **trace mode**: replay of standard PCAP files (tcpdump / dpdk-pdump
  captures), rewriting the destination MAC to the simulated system's and
  pacing either by trace timestamps or a fixed rate;
- **bandwidth-test mode**: a stepped rate ramp that finds the maximum
  sustainable bandwidth (the knee of the bandwidth-vs-drop curve);
- a memcached client personality that replays GET/SET mixes and tracks a
  map of outstanding requests by request ID.
"""

from repro.loadgen.distributions import (
    ExponentialInterArrival,
    FixedInterArrival,
    UniformInterArrival,
    make_inter_arrival,
)
from repro.loadgen.latency import LatencyTracker
from repro.loadgen.ether_load_gen import (
    EtherLoadGen,
    RampConfig,
    RampStepResult,
    SyntheticConfig,
    TraceConfig,
)
from repro.loadgen.memcached_client import MemcachedClient, MemcachedClientConfig
from repro.loadgen.flowgen import (
    SIZE_CDFS,
    Flow,
    FlowGenConfig,
    FlowSizeCdf,
    FlowTrafficGenerator,
    plan_flows,
    read_flow_trace,
    resolve_size_cdf,
    write_flow_trace,
)

__all__ = [
    "SIZE_CDFS",
    "Flow",
    "FlowGenConfig",
    "FlowSizeCdf",
    "FlowTrafficGenerator",
    "plan_flows",
    "read_flow_trace",
    "resolve_size_cdf",
    "write_flow_trace",
    "ExponentialInterArrival",
    "FixedInterArrival",
    "UniformInterArrival",
    "make_inter_arrival",
    "LatencyTracker",
    "EtherLoadGen",
    "RampConfig",
    "RampStepResult",
    "SyntheticConfig",
    "TraceConfig",
    "MemcachedClient",
    "MemcachedClientConfig",
]
