"""Memcached client personality for EtherLoadGen.

"We have enabled EtherLoadGen to send GET and SET requests to the
memcached server, with configurable sizes for keys and values ... To keep
track of per-request latency, the hardware EtherLoadGen model tracks a map
of outstanding requests using the request ID field in the Memcached
request packet." (paper §IV, §VI.A)

The client generates the paper's workload: keys/values with Zipfian sizes
(min=10, max=100, skew=0.5), 5000 warm keys, 10000 measured requests at a
GET/SET ratio of 80%.  Warm-up can be *functional* (direct store
population, mirroring the paper's functional-CPU warm-up phase) or
packet-driven.  The client can also export its request stream as a PCAP
trace (the dpdk-pdump integration of §IV) for EtherLoadGen's trace mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.kvstore.protocol import (
    GetRequest,
    GetResponse,
    SetRequest,
    SetResponse,
    decode_response,
    encode_request,
)
from repro.kvstore.zipf import ZipfianGenerator
from repro.loadgen.distributions import make_inter_arrival
from repro.loadgen.latency import LatencyTracker
from repro.net.headers import build_udp_frame, parse_udp_frame
from repro.net.packet import MacAddress, Packet
from repro.net.pcap import PcapWriter
from repro.nic.phy import EtherPort
from repro.sim.checkpoint import CheckpointError
from repro.sim.simobject import SimObject, Simulation
from repro.sim.ticks import TICKS_PER_SEC

CLIENT_IP = 0x0A000001    # 10.0.0.1
SERVER_IP = 0x0A000002    # 10.0.0.2
MEMCACHED_PORT = 11211
CLIENT_PORT = 40000


@dataclass(frozen=True)
class MemcachedClientConfig:
    """The paper's memcached workload parameters (§VI.A)."""

    n_warm_keys: int = 5000
    n_requests: int = 10000
    get_fraction: float = 0.80
    size_min: int = 10
    size_max: int = 100
    size_skew: float = 0.5
    rate_rps: float = 200_000.0
    distribution: str = "fixed"

    def __post_init__(self) -> None:
        if not 0.0 <= self.get_fraction <= 1.0:
            raise ValueError("get fraction must be in [0, 1]")
        if self.n_warm_keys < 1 or self.n_requests < 1:
            raise ValueError("need at least one key and one request")
        if self.rate_rps <= 0:
            raise ValueError("request rate must be positive")


class MemcachedClient(SimObject):
    """Open-loop memcached request generator with outstanding-request map."""

    def __init__(self, sim: Simulation, name: str,
                 config: MemcachedClientConfig,
                 dst_mac: MacAddress, src_mac: MacAddress) -> None:
        super().__init__(sim, name)
        self.config = config
        self.dst_mac = dst_mac
        self.src_mac = src_mac
        self.port = EtherPort(f"{name}.port", self._on_rx, owner=self)
        self.latency = LatencyTracker(name)
        rng = sim.rng.fork(f"{name}.workload")
        self._rng = rng
        self._size_gen = ZipfianGenerator(
            config.size_min, config.size_max, config.size_skew, rng)
        self._keys: List[bytes] = [
            self._make_key(i) for i in range(config.n_warm_keys)]
        self._values: Dict[bytes, bytes] = {
            key: bytes(self._size_gen.sample()) for key in self._keys}
        self.outstanding: Dict[int, Tuple[int, str]] = {}
        self._next_request_id = 1
        self._sent = 0
        self._warm_remaining = 0
        self._inter_arrival = None
        self._send_event = self.make_event(self._send_next, "send")
        self._sending = False
        # Results.
        self.requests_sent = 0
        self.responses_received = 0
        self.get_hits = 0
        self.get_misses = 0
        self.sets_acked = 0
        self.first_tx_tick: Optional[int] = None
        self.last_tx_tick: Optional[int] = None

    def _make_key(self, index: int) -> bytes:
        """Unique key with a Zipf-distributed length: the 8-digit index
        prefix guarantees uniqueness even after truncation (lengths are
        at least 10 per the paper's min=10)."""
        key_len = max(self._size_gen.sample(), 10)
        base = f"{index:08d}-k".encode()
        if len(base) >= key_len:
            return base[:key_len]
        return base + b"x" * (key_len - len(base))

    # ------------------------------------------------------------------
    # Warm-up
    # ------------------------------------------------------------------

    def preload(self, store) -> int:
        """Functional warm-up: populate the server's KvStore directly,
        mirroring the paper's functional-CPU warm-up phase.  Returns the
        number of keys loaded."""
        for key in self._keys:
            store.set(key, self._values[key])
        return len(self._keys)

    # ------------------------------------------------------------------
    # Request generation
    # ------------------------------------------------------------------

    def _next_request(self):
        key = self._rng.choice(self._keys)
        if self._rng.bernoulli(self.config.get_fraction):
            return GetRequest(request_id=self._next_request_id, key=key)
        value = bytes(self._size_gen.sample())
        return SetRequest(request_id=self._next_request_id, key=key,
                          value=value)

    def _frame_for(self, request) -> Packet:
        payload = encode_request(request)
        packet = build_udp_frame(
            src_mac=self.src_mac, dst_mac=self.dst_mac,
            src_ip=CLIENT_IP, dst_ip=SERVER_IP,
            src_port=CLIENT_PORT, dst_port=MEMCACHED_PORT,
            payload=payload, identification=request.request_id & 0xFFFF)
        packet.request_id = request.request_id
        return packet

    def start(self, when: int = 0) -> None:
        """Begin the measured request phase."""
        if self._sending:
            raise RuntimeError(f"{self.name} is already running")
        self._sending = True
        self._warm_remaining = 0
        self._inter_arrival = make_inter_arrival(
            self.config.distribution, self.config.rate_rps,
            self.sim.rng.fork(f"{self.name}.arrivals"))
        self.schedule(self._send_event, max(when, self.now))

    def run_warmup(self, n_requests: int, rate_rps: float,
                   when: int = 0) -> None:
        """Send ``n_requests`` warm-up requests (not measured) to bring the
        server's microarchitectural state to steady state — the packet
        analogue of the paper's warm-up phase."""
        if self._sending:
            raise RuntimeError(f"{self.name} is already running")
        if n_requests < 1 or rate_rps <= 0:
            raise ValueError("warm-up needs positive count and rate")
        self._sending = True
        self._warm_remaining = n_requests
        self._inter_arrival = make_inter_arrival(
            self.config.distribution, rate_rps,
            self.sim.rng.fork(f"{self.name}.warmup"))
        self.schedule(self._send_event, max(when, self.now))

    def reset_measurements(self) -> None:
        """Clear measured counters/latency after a warm-up phase."""
        self.latency.reset()
        self.requests_sent = 0
        self.responses_received = 0
        self.get_hits = 0
        self.get_misses = 0
        self.sets_acked = 0
        self.first_tx_tick = None
        self.last_tx_tick = None
        self._sent = 0

    def stop(self) -> None:
        """Stop operation; pending events are cancelled."""
        self._sending = False
        if self._send_event.scheduled:
            self.deschedule(self._send_event)

    @property
    def active(self) -> bool:
        """True while traffic generation is in progress."""
        return self._sending

    def _send_next(self) -> None:
        if not self._sending:
            return
        warm = self._warm_remaining > 0
        request = self._next_request()
        kind = "get" if isinstance(request, GetRequest) else "set"
        if warm:
            kind = f"warm-{kind}"
        self.outstanding[request.request_id] = (self.now, kind)
        self._next_request_id += 1
        packet = self._frame_for(request)
        if warm:
            self._warm_remaining -= 1
            self.port.send(packet)
            if self._warm_remaining == 0:
                self._sending = False
                return
        else:
            if self.first_tx_tick is None:
                self.first_tx_tick = self.now
            self.last_tx_tick = self.now
            self.requests_sent += 1
            self.port.send(packet)
            self._sent += 1
            if self._sent >= self.config.n_requests:
                self._sending = False
                return
        self.schedule_after(self._send_event,
                            self._inter_arrival.next_gap_ticks())

    # ------------------------------------------------------------------
    # Response path
    # ------------------------------------------------------------------

    def _on_rx(self, packet: Packet) -> None:
        try:
            _ip, _udp, payload = parse_udp_frame(packet)
            response = decode_response(payload)
        except ValueError:
            return   # not a memcached response; ignore
        request_id = packet.request_id
        if request_id is None or request_id not in self.outstanding:
            # Fall back to the in-band ID (truncated to 16 bits on wire).
            request_id = self._match_truncated(response.request_id)
            if request_id is None:
                return
        sent_tick, kind = self.outstanding.pop(request_id)
        if kind.startswith("warm-"):
            return   # warm-up traffic is not measured
        self.responses_received += 1
        self.latency.record(sent_tick, self.now)
        if isinstance(response, GetResponse):
            if response.hit:
                self.get_hits += 1
            else:
                self.get_misses += 1
        elif isinstance(response, SetResponse):
            self.sets_acked += 1

    def _match_truncated(self, wire_id: int) -> Optional[int]:
        for full_id in self.outstanding:
            if full_id & 0xFFFF == wire_id:
                return full_id
        return None

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    @property
    def drop_rate(self) -> float:
        """Fraction of offered packets that were lost."""
        if self.requests_sent == 0:
            return 0.0
        return max(0.0, 1.0 - self.responses_received / self.requests_sent)

    def achieved_rps(self) -> float:
        """Measured request rate over the send interval."""
        if (self.first_tx_tick is None or self.last_tx_tick is None
                or self.requests_sent < 2):
            return 0.0
        elapsed = self.last_tx_tick - self.first_tx_tick
        if elapsed <= 0:
            return 0.0
        return self.requests_sent * TICKS_PER_SEC / elapsed

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------

    def serialize_state(self) -> dict:
        """Workload-RNG position, outstanding-request map, and counters.

        The key/value tables themselves are NOT serialized: they are a
        pure function of the workload RNG's initial state, so a restored
        client rebuilds them in ``__init__`` and this method only has to
        reposition the RNG.  The client must be stopped (the inter-arrival
        sampler is rebuilt by the next ``start``/``run_warmup`` call)."""
        if self._sending or self._send_event.scheduled:
            raise CheckpointError(
                f"{self.name} is actively sending requests; "
                f"checkpoints require a stopped (drained) client")
        return {
            "workload_rng": self._rng.getstate(),
            "outstanding": [[request_id, sent_tick, kind]
                            for request_id, (sent_tick, kind)
                            in sorted(self.outstanding.items())],
            "next_request_id": self._next_request_id,
            "sent": self._sent,
            "warm_remaining": self._warm_remaining,
            "requests_sent": self.requests_sent,
            "responses_received": self.responses_received,
            "get_hits": self.get_hits,
            "get_misses": self.get_misses,
            "sets_acked": self.sets_acked,
            "first_tx_tick": self.first_tx_tick,
            "last_tx_tick": self.last_tx_tick,
            "latency": self.latency.serialize_state(),
            "port": {"frames_sent": self.port.frames_sent,
                     "frames_received": self.port.frames_received},
        }

    def deserialize_state(self, state: dict) -> None:
        self._rng.setstate(state["workload_rng"])
        self.outstanding = {request_id: (sent_tick, kind)
                            for request_id, sent_tick, kind
                            in state["outstanding"]}
        self._next_request_id = state["next_request_id"]
        self._sent = state["sent"]
        self._warm_remaining = state["warm_remaining"]
        self.requests_sent = state["requests_sent"]
        self.responses_received = state["responses_received"]
        self.get_hits = state["get_hits"]
        self.get_misses = state["get_misses"]
        self.sets_acked = state["sets_acked"]
        self.first_tx_tick = state["first_tx_tick"]
        self.last_tx_tick = state["last_tx_tick"]
        self.latency.deserialize_state(state["latency"])
        self.port.frames_sent = state["port"]["frames_sent"]
        self.port.frames_received = state["port"]["frames_received"]

    # ------------------------------------------------------------------
    # Trace export (the dpdk-pdump integration)
    # ------------------------------------------------------------------

    def write_trace(self, path: Union[str, Path],
                    n_requests: Optional[int] = None,
                    rate_rps: Optional[float] = None) -> int:
        """Write the request stream as a PCAP trace for trace-mode replay.

        Timestamps are spaced at ``rate_rps`` (default: the configured
        rate).  Returns the number of records written.
        """
        count = n_requests if n_requests is not None else self.config.n_requests
        rate = rate_rps if rate_rps is not None else self.config.rate_rps
        gap_ns = int(1e9 / rate)
        written = 0
        with PcapWriter(path) as writer:
            ts_ns = 0
            for _ in range(count):
                request = self._next_request()
                self._next_request_id += 1
                packet = self._frame_for(request)
                writer.write(ts_ns, packet.to_bytes())
                ts_ns += gap_ns
                written += 1
        return written
