"""Flow-level traffic generation for multi-node fabrics.

A datacenter workload is a stream of *flows* — (src host, dst host,
size) triples with open-loop Poisson arrivals — not a fixed packet rate
into one NIC.  This module provides the three pieces the fabric runs
need:

- :class:`FlowSizeCdf`: empirical flow-size distributions sampled by
  inverse transform, with the classic WebSearch (DCTCP) and DataMining
  (VL2) CDFs built in plus a tiny ``smoke`` CDF for tests;
- endpoint-pattern helpers (``uniform`` / ``hotspot`` / ``incast``)
  with an intra-group (pod / leaf) load fraction;
- :class:`FlowTrafficGenerator`: a SimObject that starts flows into a
  fabric at a Poisson rate derived from the offered load, collects
  per-flow completion times into a stats distribution, and exposes a
  deterministic ``flow_digest`` over the completion records.

The on-disk flow trace format follows the cross-DC generator this is
modeled on: first line is the flow count, then one line per flow of
``<src> <dst> 3 <dst port> <size bytes> <start time s>``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.loadgen.distributions import ExponentialInterArrival
from repro.sim.checkpoint import CheckpointError
from repro.sim.rng import DeterministicRng
from repro.sim.simobject import SimObject, Simulation
from repro.sim.stats import Distribution
from repro.sim.ticks import TICKS_PER_SEC, ticks_to_us

FLOW_PROTO_TCPISH = 3  # protocol column in the trace format
DEFAULT_DST_PORT = 9000
SRC_PORT_LO = 49152
SRC_PORT_HI = 65535

PATTERNS = ("uniform", "hotspot", "incast")


class FlowSizeCdf:
    """An empirical flow-size CDF sampled by inverse transform.

    ``points`` is a list of ``(size_bytes, cum_prob)`` pairs with sizes
    strictly increasing and probabilities non-decreasing, ending at 1.0.
    Sampling interpolates linearly in size between adjacent points; a
    draw at or below the first point's probability returns the first
    size (the CDF's left edge is a point mass, matching the published
    distributions' "N% of flows are <= the minimum size" shape).
    """

    def __init__(self, points: Sequence[Tuple[float, float]],
                 name: str = "custom") -> None:
        pts = [(float(s), float(p)) for s, p in points]
        if not pts:
            raise ValueError("a flow-size CDF needs at least one point")
        last_s, last_p = 0.0, 0.0
        for s, p in pts:
            if s <= last_s:
                raise ValueError(
                    f"CDF sizes must be strictly increasing ({s} after "
                    f"{last_s})")
            if p < last_p or not 0.0 < p <= 1.0:
                raise ValueError(
                    f"CDF probabilities must be non-decreasing in (0, 1] "
                    f"(got {p} after {last_p})")
            last_s, last_p = s, p
        if abs(last_p - 1.0) > 1e-9:
            raise ValueError(f"CDF must end at probability 1.0, not {last_p}")
        self.name = name
        self.points: List[Tuple[float, float]] = pts

    def sample(self, rng: DeterministicRng) -> int:
        """Draw one flow size in bytes (always >= 1)."""
        u = rng.random()
        prev_s, prev_p = self.points[0]
        if u <= prev_p:
            return max(1, int(round(prev_s)))
        for s, p in self.points[1:]:
            if u <= p:
                if p == prev_p:  # vertical step: take the upper size
                    return max(1, int(round(s)))
                frac = (u - prev_p) / (p - prev_p)
                return max(1, int(round(prev_s + frac * (s - prev_s))))
            prev_s, prev_p = s, p
        return max(1, int(round(self.points[-1][0])))

    def mean(self) -> float:
        """Analytic mean of the interpolated distribution, in bytes."""
        s0, p0 = self.points[0]
        total = s0 * p0  # point mass at the left edge
        prev_s, prev_p = s0, p0
        for s, p in self.points[1:]:
            # linear in u between the points -> mean of the segment is
            # the midpoint size, weighted by its probability mass
            total += (p - prev_p) * (prev_s + s) / 2.0
            prev_s, prev_p = s, p
        return total

    def to_lines(self) -> List[str]:
        return [f"{int(s)} {p:.6f}" for s, p in self.points]

    @classmethod
    def from_lines(cls, lines: Iterable[str],
                   name: str = "custom") -> "FlowSizeCdf":
        points = []
        for line in lines:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            size_s, prob_s = line.split()[:2]
            points.append((float(size_s), float(prob_s)))
        return cls(points, name=name)

    def __repr__(self) -> str:
        return f"<FlowSizeCdf {self.name} ({len(self.points)} points)>"


# Web-search (DCTCP) style: half the flows are short queries, a heavy
# tail of multi-MB responses carries most of the bytes.
WEBSEARCH_CDF = FlowSizeCdf([
    (10_000, 0.15),
    (20_000, 0.20),
    (30_000, 0.30),
    (50_000, 0.40),
    (80_000, 0.53),
    (200_000, 0.60),
    (1_000_000, 0.70),
    (2_000_000, 0.80),
    (5_000_000, 0.90),
    (10_000_000, 0.97),
    (30_000_000, 1.00),
], name="websearch")

# Data-mining (VL2) style: most flows are tiny, the tail reaches 1GB.
DATAMINING_CDF = FlowSizeCdf([
    (100, 0.50),
    (300, 0.60),
    (1_000, 0.70),
    (2_000, 0.75),
    (10_000, 0.80),
    (100_000, 0.85),
    (1_000_000, 0.90),
    (10_000_000, 0.95),
    (100_000_000, 0.98),
    (1_000_000_000, 1.00),
], name="datamining")

# Tiny CDF for tests and CI smoke runs: 1-3 MTU-sized frames per flow,
# so scenario matrices finish in milliseconds of simulated time.
SMOKE_CDF = FlowSizeCdf([
    (256, 0.30),
    (1_024, 0.60),
    (2_048, 0.85),
    (4_096, 1.00),
], name="smoke")

SIZE_CDFS = {
    "websearch": WEBSEARCH_CDF,
    "datamining": DATAMINING_CDF,
    "smoke": SMOKE_CDF,
}


def resolve_size_cdf(cdf) -> FlowSizeCdf:
    """Accept a registry name or an explicit :class:`FlowSizeCdf`."""
    if isinstance(cdf, FlowSizeCdf):
        return cdf
    try:
        return SIZE_CDFS[cdf]
    except KeyError:
        raise ValueError(
            f"unknown flow-size CDF {cdf!r}; choose from "
            f"{sorted(SIZE_CDFS)} or pass a FlowSizeCdf") from None


@dataclass(frozen=True)
class Flow:
    """One flow: who talks to whom, how much, starting when."""

    flow_id: int
    src: int                 # source host index
    dst: int                 # destination host index
    size_bytes: int
    start_tick: int
    src_port: int = SRC_PORT_LO
    dst_port: int = DEFAULT_DST_PORT
    proto: int = FLOW_PROTO_TCPISH

    @property
    def five_tuple(self) -> Tuple[int, int, int, int, int]:
        return (self.src, self.dst, self.proto, self.src_port, self.dst_port)


@dataclass(frozen=True)
class FlowGenConfig:
    """One generation phase: pattern, offered load, and flow count.

    ``load`` is the offered fraction of the aggregate host line rate;
    the Poisson flow arrival rate is ``load * n_hosts * link_rate /
    mean_flow_bits``.  ``intra_group_fraction`` is the probability that
    a uniform-pattern destination shares the source's group (pod for
    fat-trees, leaf for leaf-spine).
    """

    pattern: str = "uniform"
    load: float = 0.3
    n_flows: int = 100
    size_cdf: str = "smoke"
    intra_group_fraction: float = 0.5
    hotspot_fraction: float = 0.6    # fraction of hotspot flows at the sink
    hotspot_hosts: int = 1
    incast_fanin: int = 0            # 0 -> all other hosts fan in

    def __post_init__(self) -> None:
        if self.pattern not in PATTERNS:
            raise ValueError(
                f"unknown traffic pattern {self.pattern!r}; choose from "
                f"{PATTERNS}")
        if not 0.0 < self.load:
            raise ValueError("offered load must be positive")
        if self.n_flows <= 0:
            raise ValueError("n_flows must be positive")
        if not 0.0 <= self.intra_group_fraction <= 1.0:
            raise ValueError("intra_group_fraction must be in [0, 1]")


def pick_endpoints(rng: DeterministicRng, groups: Sequence[int],
                   config: FlowGenConfig) -> Tuple[int, int]:
    """Choose (src, dst) host indices for one flow under the pattern."""
    n = len(groups)
    if n < 2:
        raise ValueError("need at least two hosts to generate flows")
    if config.pattern == "incast":
        dst = 0
        others = [h for h in range(n) if h != dst]
        if config.incast_fanin > 0:
            others = others[:config.incast_fanin]
        return rng.choice(others), dst
    if config.pattern == "hotspot" and rng.bernoulli(config.hotspot_fraction):
        hot = list(range(min(config.hotspot_hosts, n - 1)))
        dst = rng.choice(hot)
        src = rng.choice([h for h in range(n) if h != dst])
        return src, dst
    # uniform (also the hotspot background traffic)
    src = rng.randint(0, n - 1)
    same = [h for h in range(n) if h != src and groups[h] == groups[src]]
    if same and rng.bernoulli(config.intra_group_fraction):
        return src, rng.choice(same)
    other = [h for h in range(n) if h != src and groups[h] != groups[src]]
    if not other:
        other = [h for h in range(n) if h != src]
    return src, rng.choice(other)


def _synthesize(rng: DeterministicRng, groups: Sequence[int],
                link_bandwidth_bps: float, config: FlowGenConfig,
                first_flow_id: int, start_tick: int) -> List[Flow]:
    """Draw a full phase of flows from one forked RNG stream.

    Shared by the live generator (which schedules them one arrival at a
    time) and :func:`plan_flows` (which writes them to a trace file), so
    the two agree bit-for-bit for a given seed and fork label.
    """
    cdf = resolve_size_cdf(config.size_cdf)
    rate_fps = (config.load * len(groups) * link_bandwidth_bps
                / (8.0 * cdf.mean()))
    gaps = ExponentialInterArrival(rate_fps, rng)
    flows = []
    tick = start_tick
    for i in range(config.n_flows):
        tick += gaps.next_gap_ticks()
        src, dst = pick_endpoints(rng, groups, config)
        size = cdf.sample(rng)
        sport = rng.randint(SRC_PORT_LO, SRC_PORT_HI)
        flows.append(Flow(flow_id=first_flow_id + i, src=src, dst=dst,
                          size_bytes=size, start_tick=tick,
                          src_port=sport))
    return flows


def plan_flows(config: FlowGenConfig, groups: Sequence[int],
               link_bandwidth_bps: float, seed: int = 0) -> List[Flow]:
    """Synthesize a flow schedule offline (for trace files / the CLI)."""
    rng = DeterministicRng(seed).fork("flowgen.plan.0")
    return _synthesize(rng, groups, link_bandwidth_bps, config,
                       first_flow_id=0, start_tick=0)


def write_flow_trace(flows: Sequence[Flow]) -> str:
    """Render flows in the cross-DC trace format (count, then rows)."""
    lines = [str(len(flows))]
    for f in flows:
        start_s = f.start_tick / TICKS_PER_SEC
        lines.append(f"{f.src} {f.dst} {f.proto} {f.dst_port} "
                     f"{f.size_bytes} {start_s:.9f}")
    return "\n".join(lines) + "\n"


def read_flow_trace(text: str) -> List[Flow]:
    """Parse a trace produced by :func:`write_flow_trace`."""
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if not lines:
        return []
    count = int(lines[0])
    rows = lines[1:]
    if len(rows) != count:
        raise ValueError(
            f"trace header says {count} flows but {len(rows)} rows follow")
    flows = []
    for i, row in enumerate(rows):
        src_s, dst_s, proto_s, dport_s, size_s, start_s = row.split()
        flows.append(Flow(
            flow_id=i, src=int(src_s), dst=int(dst_s), proto=int(proto_s),
            dst_port=int(dport_s), size_bytes=int(size_s),
            start_tick=int(round(float(start_s) * TICKS_PER_SEC))))
    return flows


@dataclass
class FlowRecord:
    """Completion record for one flow (the digest input)."""

    flow_id: int
    src: int
    dst: int
    size_bytes: int
    start_tick: int
    end_tick: int

    @property
    def fct_us(self) -> float:
        return ticks_to_us(self.end_tick - self.start_tick)

    def as_tuple(self) -> Tuple[int, int, int, int, int, int]:
        return (self.flow_id, self.src, self.dst, self.size_bytes,
                self.start_tick, self.end_tick)


def flow_digest_from(window_started: int, record_tuples: Iterable[Tuple]
                     ) -> str:
    """SHA-256 over a window's completion records (sorted).

    The one digest definition both the live generator and the sharded
    runner's merge use, so a merged multi-process window hashes
    identically to the single-process window it reproduces.
    """
    payload = {
        "started": window_started,
        "records": sorted(tuple(t) for t in record_tuples),
    }
    blob = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def fct_summary_from(records: Iterable[FlowRecord]) -> dict:
    """FCT percentile summary rebuilt from completion records.

    Samples are fed in ``(end_tick, flow_id)`` order — the order the
    completions fired in a single event queue — so the summary of a
    cross-shard merge matches the live generator's bit for bit.
    """
    dist = Distribution("fct_us")
    for r in sorted(records, key=lambda r: (r.end_tick, r.flow_id)):
        dist.sample(r.fct_us)
    summary = dict(dist.summary())
    if dist.count:
        summary["p50"] = dist.percentile(50.0)
        summary["p999"] = dist.percentile(99.9)
    return summary


class FlowTrafficGenerator(SimObject):
    """Open-loop flow source driving a set of fabric hosts.

    Each :meth:`start` forks a fresh child RNG from the simulation
    stream under a phase-numbered label (``<name>.flows.<k>``), so the
    warm-up phase and the measured phase draw independent flow
    schedules while staying fully reproducible from the root seed.
    Hosts report back through :meth:`flow_completed`; the completion
    records feed an exact FCT distribution and the deterministic
    :meth:`flow_digest` the scenario tests and golden fixtures pin.
    """

    def __init__(self, sim: Simulation, name: str, hosts: Sequence,
                 groups: Sequence[int], link_bandwidth_bps: float,
                 flow_filter: Optional[Callable[[Flow], bool]] = None
                 ) -> None:
        super().__init__(sim, name)
        if len(hosts) != len(groups):
            raise ValueError("one group id per host required")
        self.hosts = list(hosts)
        self.groups = list(groups)
        self.link_bandwidth_bps = link_bandwidth_bps
        #: Injection predicate for sharded runs: every shard's replica
        #: synthesizes the identical full schedule (same RNG draws) but
        #: injects only the flows whose source host it owns.
        self._flow_filter = flow_filter
        self.active = False
        self._config: Optional[FlowGenConfig] = None
        self._pending: List[Flow] = []
        self._cursor = 0
        self._starts = 0          # phases started (fork-label counter)
        self._next_flow_id = 0    # per-simulation deterministic flow ids
        self._records: List[FlowRecord] = []
        self._window_started = 0
        self.stat_started = self.stats.counter("flows_started",
                                               "flows injected")
        self.stat_completed = self.stats.counter("flows_completed",
                                                 "flows fully received")
        self.fct_us = self.stats.distribution("fct_us",
                                              "flow completion time (us)")
        self._arrival = self.make_event(self._on_arrival, "arrival")

    # -- generation ----------------------------------------------------------

    def start(self, config: FlowGenConfig) -> None:
        """Begin one open-loop phase of ``config.n_flows`` flows."""
        if self.active:
            raise RuntimeError(f"{self.name} is already generating")
        rng = self.sim.rng.fork(f"{self.name}.flows.{self._starts}")
        self._starts += 1
        self._config = config
        self._pending = _synthesize(rng, self.groups,
                                    self.link_bandwidth_bps, config,
                                    first_flow_id=self._next_flow_id,
                                    start_tick=self.now)
        # Flow ids advance by the FULL schedule before any locality
        # filter, so replicas in different shards stay id-aligned.
        self._next_flow_id += len(self._pending)
        if self._flow_filter is not None:
            self._pending = [f for f in self._pending
                             if self._flow_filter(f)]
        self._cursor = 0
        self.trace("flowgen", "start", pattern=config.pattern,
                   load=config.load, n_flows=config.n_flows)
        if not self._pending:
            # This shard owns none of the phase's sources: the phase is
            # over before it starts (peers still run theirs).
            self.trace("flowgen", "done")
            return
        self.active = True
        self.schedule(self._arrival, self._pending[0].start_tick)

    def _on_arrival(self) -> None:
        flow = self._pending[self._cursor]
        self._cursor += 1
        self.stat_started.inc()
        self._window_started += 1
        self.hosts[flow.src].send_flow(flow)
        if self._cursor < len(self._pending):
            self.schedule(self._arrival, self._pending[self._cursor].start_tick)
        else:
            self.active = False
            self._pending = []
            self._cursor = 0
            self.trace("flowgen", "done")

    def flow_completed(self, meta: dict, end_tick: int) -> None:
        """Called by the destination host when a flow's last frame has
        been serviced."""
        self.stat_completed.inc()
        self.fct_us.sample(ticks_to_us(end_tick - meta["start"]))
        self._records.append(FlowRecord(
            flow_id=meta["flow"], src=meta["src"], dst=meta["dst"],
            size_bytes=meta["size"], start_tick=meta["start"],
            end_tick=end_tick))

    # -- results -------------------------------------------------------------

    @property
    def flows_started(self) -> int:
        return self._window_started

    @property
    def flows_completed(self) -> int:
        return len(self._records)

    def fct_summary(self) -> dict:
        """FCT percentiles for the stats digest (all values in us)."""
        summary = dict(self.fct_us.summary())
        if self.fct_us.count:
            summary["p50"] = self.fct_us.percentile(50.0)
            summary["p999"] = self.fct_us.percentile(99.9)
        return summary

    def flow_digest(self) -> str:
        """SHA-256 over the sorted completion records of this window.

        Independent of the tracer (which is off by default), wall
        clocks, and the global packet-id counter — the determinism
        anchor for reruns, goldens, and restore-equivalence.
        """
        return flow_digest_from(self._window_started,
                                (r.as_tuple() for r in self._records))

    def on_stats_reset(self) -> None:
        self._records = []
        self._window_started = 0

    # -- checkpoint support --------------------------------------------------

    def serialize_state(self) -> dict:
        if self.active:
            raise CheckpointError(
                f"{self.name} is mid-phase ({len(self._pending) - self._cursor}"
                f" flows unstarted); checkpoints require a finished phase")
        return {
            "starts": self._starts,
            "next_flow_id": self._next_flow_id,
            "window_started": self._window_started,
            "records": [r.as_tuple() for r in self._records],
        }

    def deserialize_state(self, state: dict) -> None:
        self._starts = state["starts"]
        self._next_flow_id = state["next_flow_id"]
        self._window_started = state["window_started"]
        self._records = [FlowRecord(*row) for row in state["records"]]
        self.active = False
        self._pending = []
        self._cursor = 0
