"""The ``uio_pci_generic`` driver model.

"uio_pci_generic driver in Linux enables a userspace application to
directly access the address space of a PCI device.  DPDK uses this driver
to ... implement a Polling Mode Driver.  Mainline gem5 does not enable the
uio_pci_generic driver during boot as the PCI Command Register is not fully
implemented" (paper §III.A.1).

The real driver refuses to bind a device whose interrupt-disable bit it
cannot operate — that is exactly the failure this model reproduces when the
device carries baseline-gem5 quirks.
"""

from __future__ import annotations

from repro.pci.config_space import CMD_BUS_MASTER, CMD_INTX_DISABLE, COMMAND_OFFSET
from repro.pci.device import PciDevice

DRIVER_NAME = "uio_pci_generic"


class UioBindError(RuntimeError):
    """Raised when the UIO driver cannot bind a device."""


class UioPciGeneric:
    """Binds PCI devices for userspace I/O."""

    def __init__(self) -> None:
        self.bound: list = []

    def bind(self, device: PciDevice) -> None:
        """Bind ``device``: disable its legacy interrupt and enable bus
        mastering, as the kernel driver does.

        Raises :class:`UioBindError` if the device's Command Register does
        not implement the interrupt-disable bit (the mainline-gem5 case).
        """
        if device.driver_name is not None:
            raise UioBindError(
                f"{device!r} is already bound to {device.driver_name}")
        command = device.read_config(COMMAND_OFFSET, 2)
        device.write_config(COMMAND_OFFSET, 2,
                            command | CMD_INTX_DISABLE | CMD_BUS_MASTER)
        if not device.read_config(COMMAND_OFFSET, 2) & CMD_INTX_DISABLE:
            raise UioBindError(
                "PCI Command Register does not implement the interrupt "
                "disable bit (bit 10); cannot operate the device from "
                "userspace — this is the mainline-gem5 limitation the "
                "paper fixes (§III.A.1)")
        device.bind_driver(DRIVER_NAME)
        self.bound.append(device)

    def unbind(self, device: PciDevice) -> None:
        """Release a device from this driver."""
        if device not in self.bound:
            raise UioBindError(f"{device!r} is not bound to {DRIVER_NAME}")
        command = device.read_config(COMMAND_OFFSET, 2)
        device.write_config(COMMAND_OFFSET, 2, command & ~CMD_INTX_DISABLE)
        device.unbind_driver()
        self.bound.remove(device)
