"""PCI subsystem.

Implements the two gem5 PCI-model gaps the paper closes (§III.A.1-2):

1. the Command Register's bit-10 *interrupt disable* bit, which the Linux
   kernel must be able to set for ``uio_pci_generic`` to bind a device, and
2. byte-granular (8-bit) accesses to the Command Register, which DPDK uses
   to read/write the register's upper half at config-space offset 0x05.

Both fixes are individually toggleable (``PciQuirks``) so the baseline
gem5 failure modes can be reproduced and tested against.
"""

from repro.pci.config_space import (
    COMMAND_OFFSET,
    CMD_BUS_MASTER,
    CMD_INTX_DISABLE,
    CMD_IO_SPACE,
    CMD_MEM_SPACE,
    PciConfigSpace,
    PciQuirks,
)
from repro.pci.device import PciDevice
from repro.pci.bus import PciBus
from repro.pci.uio import UioBindError, UioPciGeneric

__all__ = [
    "COMMAND_OFFSET",
    "CMD_BUS_MASTER",
    "CMD_INTX_DISABLE",
    "CMD_IO_SPACE",
    "CMD_MEM_SPACE",
    "PciConfigSpace",
    "PciQuirks",
    "PciDevice",
    "PciBus",
    "UioBindError",
    "UioPciGeneric",
]
