"""A PCI bus: attachment, BDF addressing and enumeration."""

from __future__ import annotations

import re
from typing import Dict, List

from repro.pci.device import PciDevice

_BDF_PATTERN = re.compile(r"^[0-9a-f]{2}:[0-9a-f]{2}\.[0-7]$")


class PciBus:
    """Holds devices at ``bus:device.function`` addresses."""

    def __init__(self) -> None:
        self._devices: Dict[str, PciDevice] = {}

    def attach(self, bdf: str, device: PciDevice) -> PciDevice:
        """Attach ``device`` at ``bdf`` (e.g. ``"00:02.0"``)."""
        if not _BDF_PATTERN.match(bdf):
            raise ValueError(f"malformed BDF {bdf!r}")
        if bdf in self._devices:
            raise ValueError(f"BDF {bdf} already occupied")
        if device.bdf is not None:
            raise ValueError(f"{device!r} already attached at {device.bdf}")
        self._devices[bdf] = device
        device.bdf = bdf
        return device

    def device(self, bdf: str) -> PciDevice:
        """Look up the device at a BDF address."""
        if bdf not in self._devices:
            raise KeyError(f"no device at {bdf}")
        return self._devices[bdf]

    def enumerate(self) -> List[PciDevice]:
        """Devices in BDF order — what ``lspci`` (or DPDK's EAL scan)
        walks."""
        return [self._devices[bdf] for bdf in sorted(self._devices)]

    def find(self, vendor_id: int, device_id: int) -> List[PciDevice]:
        """All devices matching a (vendor, device) ID pair."""
        return [dev for dev in self.enumerate()
                if dev.config_space.vendor_id == vendor_id
                and dev.config_space.device_id == device_id]

    def __len__(self) -> int:
        return len(self._devices)
