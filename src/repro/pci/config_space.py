"""PCI configuration space.

Fig 2 of the paper shows the first 8 bytes: Device ID / Vendor ID at offset
0x00, Status / Command at 0x04.  The 16-bit Command Register at offset 0x04
carries bit 10, the *interrupt disable* bit; the paper's first gem5 change
is implementing that bit, and its second is allowing 8-bit accesses to the
register (DPDK reads/writes the upper command byte at offset 0x05).

:class:`PciQuirks` reproduces baseline gem5's limitations so both the fixed
and broken behaviours are testable.
"""

from __future__ import annotations

from dataclasses import dataclass

CONFIG_SPACE_SIZE = 256

VENDOR_ID_OFFSET = 0x00
DEVICE_ID_OFFSET = 0x02
COMMAND_OFFSET = 0x04
STATUS_OFFSET = 0x06
REVISION_OFFSET = 0x08
CLASS_CODE_OFFSET = 0x09
BAR0_OFFSET = 0x10
BAR_COUNT = 6
INTERRUPT_LINE_OFFSET = 0x3C
INTERRUPT_PIN_OFFSET = 0x3D

# Command register bits.
CMD_IO_SPACE = 1 << 0
CMD_MEM_SPACE = 1 << 1
CMD_BUS_MASTER = 1 << 2
CMD_SPECIAL_CYCLES = 1 << 3
CMD_MWI_ENABLE = 1 << 4
CMD_VGA_SNOOP = 1 << 5
CMD_PARITY_ERR = 1 << 6
CMD_SERR_ENABLE = 1 << 8
CMD_FAST_B2B = 1 << 9
CMD_INTX_DISABLE = 1 << 10

# Bits 0-9: what baseline gem5 implements; bit 10 is the paper's addition.
_BASELINE_CMD_MASK = 0x03FF
_FIXED_CMD_MASK = 0x07FF


@dataclass(frozen=True)
class PciQuirks:
    """Feature switches reproducing baseline-gem5 vs fixed behaviour.

    With both False this models mainline gem5 before the paper's changes:
    the interrupt-disable bit reads as zero and cannot be set, and 8-bit
    accesses that touch the Command Register are silently ignored.
    """

    interrupt_disable_implemented: bool = True
    byte_granular_command_access: bool = True

    @classmethod
    def baseline_gem5(cls) -> "PciQuirks":
        """The mainline-gem5 behaviour, before the paper's fixes."""
        return cls(interrupt_disable_implemented=False,
                   byte_granular_command_access=False)

    @classmethod
    def fixed(cls) -> "PciQuirks":
        """The paper's fixed behaviour (all changes applied)."""
        return cls()


class PciConfigSpace:
    """A 256-byte type-0 configuration space."""

    def __init__(self, vendor_id: int, device_id: int,
                 quirks: PciQuirks = PciQuirks()) -> None:
        if not 0 <= vendor_id <= 0xFFFF or not 0 <= device_id <= 0xFFFF:
            raise ValueError("vendor/device IDs are 16-bit")
        self.quirks = quirks
        self._data = bytearray(CONFIG_SPACE_SIZE)
        self._write16_raw(VENDOR_ID_OFFSET, vendor_id)
        self._write16_raw(DEVICE_ID_OFFSET, device_id)
        self.ignored_writes = 0   # byte writes dropped by the baseline quirk

    # -- raw helpers ---------------------------------------------------------

    def _write16_raw(self, offset: int, value: int) -> None:
        self._data[offset] = value & 0xFF
        self._data[offset + 1] = (value >> 8) & 0xFF

    def _read16_raw(self, offset: int) -> int:
        return self._data[offset] | (self._data[offset + 1] << 8)

    # -- typed accessors ------------------------------------------------------

    @property
    def vendor_id(self) -> int:
        """The 16-bit vendor identifier."""
        return self._read16_raw(VENDOR_ID_OFFSET)

    @property
    def device_id(self) -> int:
        """The 16-bit device identifier."""
        return self._read16_raw(DEVICE_ID_OFFSET)

    @property
    def command(self) -> int:
        """The 16-bit Command Register value."""
        return self._read16_raw(COMMAND_OFFSET)

    @property
    def interrupts_disabled(self) -> bool:
        """State of the Command Register's bit-10."""
        return bool(self.command & CMD_INTX_DISABLE)

    @property
    def bus_master_enabled(self) -> bool:
        """State of the Command Register's bus-master bit."""
        return bool(self.command & CMD_BUS_MASTER)

    def _command_mask(self) -> int:
        if self.quirks.interrupt_disable_implemented:
            return _FIXED_CMD_MASK
        return _BASELINE_CMD_MASK

    # -- config-space read/write (the gem5 readConfig/writeConfig path) ------

    def read(self, offset: int, size: int) -> int:
        """Read ``size`` bytes (1, 2 or 4) little-endian at ``offset``."""
        self._check_access(offset, size)
        if (not self.quirks.byte_granular_command_access and size == 1
                and offset in (COMMAND_OFFSET, COMMAND_OFFSET + 1)):
            # Baseline gem5 ignores sub-word Command accesses: reads return
            # zero, which is how DPDK "cannot properly read ... the upper
            # half of the Command Register".
            return 0
        return int.from_bytes(self._data[offset:offset + size], "little")

    def write(self, offset: int, size: int, value: int) -> None:
        """Write ``size`` bytes little-endian at ``offset``.

        The Command Register is write-masked; other writable registers are
        stored verbatim (read-only ID fields are protected).
        """
        self._check_access(offset, size)
        if value < 0 or value >= (1 << (8 * size)):
            raise ValueError(f"value {value:#x} does not fit {size} bytes")
        span = range(offset, offset + size)
        touches_command = any(
            off in (COMMAND_OFFSET, COMMAND_OFFSET + 1) for off in span)
        if touches_command and size == 1 \
                and not self.quirks.byte_granular_command_access:
            self.ignored_writes += 1
            return
        for i, off in enumerate(span):
            byte = (value >> (8 * i)) & 0xFF
            if off in (VENDOR_ID_OFFSET, VENDOR_ID_OFFSET + 1,
                       DEVICE_ID_OFFSET, DEVICE_ID_OFFSET + 1):
                continue  # read-only
            if off == COMMAND_OFFSET:
                mask = self._command_mask() & 0xFF
                self._data[off] = byte & mask
            elif off == COMMAND_OFFSET + 1:
                mask = (self._command_mask() >> 8) & 0xFF
                self._data[off] = byte & mask
            else:
                self._data[off] = byte

    def _check_access(self, offset: int, size: int) -> None:
        if size not in (1, 2, 4):
            raise ValueError(f"PCI config access size must be 1/2/4, got {size}")
        if offset % size:
            raise ValueError(
                f"unaligned config access: offset {offset:#x} size {size}")
        if offset < 0 or offset + size > CONFIG_SPACE_SIZE:
            raise ValueError(f"config offset {offset:#x} out of range")

    # -- BARs -----------------------------------------------------------------

    def set_bar(self, index: int, base: int) -> None:
        """Program a base address register."""
        if not 0 <= index < BAR_COUNT:
            raise ValueError(f"BAR index {index} out of range")
        offset = BAR0_OFFSET + 4 * index
        for i in range(4):
            self._data[offset + i] = (base >> (8 * i)) & 0xFF

    def bar(self, index: int) -> int:
        """Read a base address register."""
        if not 0 <= index < BAR_COUNT:
            raise ValueError(f"BAR index {index} out of range")
        offset = BAR0_OFFSET + 4 * index
        return int.from_bytes(self._data[offset:offset + 4], "little")
