"""PCI device base class.

A device owns a config space, a BDF address once attached to a bus, and an
INTx line.  ``post_interrupt`` honours the Command Register's interrupt
disable bit — that is the mechanism the paper's fix enables: once Linux can
set bit 10, ``uio_pci_generic`` can mask legacy interrupts and a polling
driver can own the device.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.pci.config_space import PciConfigSpace, PciQuirks


class PciDevice:
    """Base class for PCI function models."""

    def __init__(self, vendor_id: int, device_id: int,
                 quirks: PciQuirks = PciQuirks()) -> None:
        self.config_space = PciConfigSpace(vendor_id, device_id, quirks)
        self.bdf: Optional[str] = None
        self.interrupt_handler: Optional[Callable[[], None]] = None
        self.interrupts_posted = 0
        self.interrupts_suppressed = 0
        self.driver_name: Optional[str] = None

    # -- config access (gem5's readConfig/writeConfig) -----------------------

    def read_config(self, offset: int, size: int) -> int:
        """Config-space read (the gem5 readConfig path)."""
        return self.config_space.read(offset, size)

    def write_config(self, offset: int, size: int, value: int) -> None:
        """Config-space write (the gem5 writeConfig path)."""
        self.config_space.write(offset, size, value)

    # -- interrupts -----------------------------------------------------------

    def post_interrupt(self) -> bool:
        """Raise INTx if permitted; returns True if delivered."""
        if self.config_space.interrupts_disabled:
            self.interrupts_suppressed += 1
            return False
        if self.device_interrupts_masked():
            self.interrupts_suppressed += 1
            return False
        self.interrupts_posted += 1
        if self.interrupt_handler is not None:
            self.interrupt_handler()
        return True

    def device_interrupts_masked(self) -> bool:
        """Device-specific interrupt masking (e.g. a NIC's IMR/IMC);
        subclasses override."""
        return False

    # -- driver binding --------------------------------------------------------

    def bind_driver(self, name: str) -> None:
        """Record the driver now owning this device."""
        self.driver_name = name

    def unbind_driver(self) -> None:
        """Release the owning driver."""
        self.driver_name = None

    def __repr__(self) -> str:
        cs = self.config_space
        return (f"<{type(self).__name__} {self.bdf or 'unattached'} "
                f"{cs.vendor_id:04x}:{cs.device_id:04x}>")
