"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.dpdk.ring import RteRing
from repro.mem.cache import CacheConfig, SetAssocCache
from repro.net.headers import build_udp_frame, parse_udp_frame
from repro.net.packet import MacAddress, Packet
from repro.nic.drop_fsm import DropClassifier
from repro.nic.fifo import PacketByteFifo
from repro.sim.event_queue import Event, EventQueue
from repro.sim.stats import Distribution, Histogram

MAC_A = MacAddress.parse("02:00:00:00:00:01")
MAC_B = MacAddress.parse("02:00:00:00:00:02")


# ----------------------------------------------------------------------
# Event queue: time never goes backwards; every live event fires once.
# ----------------------------------------------------------------------

@given(st.lists(st.integers(min_value=0, max_value=10_000),
                min_size=1, max_size=200))
@settings(max_examples=50)
def test_event_queue_time_monotone(ticks):
    queue = EventQueue()
    observed = []
    for when in ticks:
        queue.schedule(Event(lambda: observed.append(queue.now)), when)
    queue.run()
    assert observed == sorted(observed)
    assert len(observed) == len(ticks)


@given(st.lists(st.tuples(st.integers(0, 1000), st.booleans()),
                min_size=1, max_size=100))
@settings(max_examples=50)
def test_event_queue_cancelled_never_fire(entries):
    queue = EventQueue()
    fired = []
    cancelled = 0
    for when, cancel in entries:
        event = Event(lambda w=when: fired.append(w))
        queue.schedule(event, when)
        if cancel:
            queue.deschedule(event)
            cancelled += 1
    queue.run()
    assert len(fired) == len(entries) - cancelled


# ----------------------------------------------------------------------
# Cache: occupancy never exceeds capacity; a just-inserted line hits.
# ----------------------------------------------------------------------

@given(st.lists(st.integers(min_value=0, max_value=1 << 20),
                min_size=1, max_size=500))
@settings(max_examples=50)
def test_cache_occupancy_bounded(addresses):
    cache = SetAssocCache(CacheConfig(name="c", size=4096, assoc=4,
                                      latency_cycles=1))
    capacity = 4096 // 64
    for addr in addresses:
        cache.insert(addr)
        assert cache.occupancy() <= capacity
        assert cache.contains(addr)


@given(st.lists(st.integers(min_value=0, max_value=1 << 18),
                min_size=1, max_size=300),
       st.integers(min_value=1, max_value=3))
@settings(max_examples=30)
def test_cache_io_partition_isolation(addresses, io_ways):
    """Core insertions never push out io-partition lines and vice versa."""
    cache = SetAssocCache(CacheConfig(name="c", size=4096, assoc=4,
                                      latency_cycles=1,
                                      reserved_io_ways=io_ways))
    io_line = 0x40
    cache.insert(io_line, partition="io")
    for addr in addresses:
        if cache.line_addr(addr) == io_line:
            continue
        cache.insert(addr)   # core partition only
    assert cache.contains(io_line)


# ----------------------------------------------------------------------
# FIFO: byte accounting is exact under arbitrary interleaving.
# ----------------------------------------------------------------------

@given(st.lists(st.tuples(st.integers(64, 1518), st.booleans()),
                min_size=1, max_size=200))
@settings(max_examples=50)
def test_fifo_byte_accounting(ops):
    fifo = PacketByteFifo(16 * 1024)
    expected = []
    for size, dequeue in ops:
        if dequeue and expected:
            fifo.dequeue()
            expected.pop(0)
        else:
            if fifo.try_enqueue(Packet(wire_len=size)):
                expected.append(size)
        assert fifo.occupancy_bytes == sum(expected)
        assert 0 <= fifo.occupancy_bytes <= fifo.capacity_bytes
        assert len(fifo) == len(expected)


# ----------------------------------------------------------------------
# rte_ring: conservation and FIFO order for any burst pattern.
# ----------------------------------------------------------------------

@given(st.lists(st.integers(min_value=1, max_value=16), min_size=1,
                max_size=100))
@settings(max_examples=50)
def test_ring_conserves_items(bursts):
    ring = RteRing("r", 64)
    produced, consumed = 0, []
    for burst in bursts:
        items = list(range(produced, produced + burst))
        produced += ring.enqueue_burst(items)
        consumed.extend(ring.dequeue_burst(burst // 2 + 1))
    consumed.extend(ring.dequeue_burst(64))
    assert consumed == list(range(produced))


# ----------------------------------------------------------------------
# Drop FSM: counters always sum to total; classification is total.
# ----------------------------------------------------------------------

@given(st.lists(st.tuples(st.booleans(), st.booleans(), st.booleans()),
                min_size=1, max_size=300))
@settings(max_examples=50)
def test_drop_fsm_counter_conservation(states):
    fsm = DropClassifier()
    drops = 0
    for fifo_full, rx_full, tx_full in states:
        dropped = fifo_full   # drop iff the FIFO cannot take the frame
        fsm.on_packet_rx(fifo_full, rx_full, tx_full, dropped=dropped)
        if dropped:
            drops += 1
    assert fsm.total_drops == drops
    assert sum(fsm.counts.values()) == drops
    if drops:
        assert abs(sum(fsm.breakdown().values()) - 1.0) < 1e-9


# ----------------------------------------------------------------------
# Statistics: distribution invariants.
# ----------------------------------------------------------------------

@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=2, max_size=300))
@settings(max_examples=50)
def test_distribution_invariants(samples):
    dist = Distribution("d")
    for x in samples:
        dist.sample(x)
    # One ulp of slack: summing identical floats can round the mean just
    # past the extremes.
    slack = 1e-9 * max(1.0, abs(dist.mean))
    assert dist.minimum <= dist.median <= dist.maximum
    assert dist.minimum - slack <= dist.mean <= dist.maximum + slack
    assert dist.stddev >= 0
    assert dist.percentile(25) <= dist.percentile(75)


@given(st.lists(st.floats(min_value=-100, max_value=1100,
                          allow_nan=False), min_size=1, max_size=300))
@settings(max_examples=50)
def test_histogram_conserves_samples(samples):
    hist = Histogram("h", 0.0, 1000.0, nbuckets=16)
    for x in samples:
        hist.sample(x)
    assert hist.count == len(samples)


# ----------------------------------------------------------------------
# Packet framing: UDP frames round-trip for arbitrary payloads.
# ----------------------------------------------------------------------

@given(st.binary(min_size=0, max_size=1400),
       st.integers(0, 0xFFFFFFFF), st.integers(0, 0xFFFFFFFF),
       st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
@settings(max_examples=100)
def test_udp_frame_round_trip(payload, src_ip, dst_ip, sport, dport):
    packet = build_udp_frame(MAC_A, MAC_B, src_ip, dst_ip, sport, dport,
                             payload)
    ip, udp, parsed = parse_udp_frame(packet)
    assert parsed == payload
    assert ip.src_ip == src_ip
    assert ip.dst_ip == dst_ip
    assert udp.src_port == sport
    assert udp.dst_port == dport
    assert 64 <= packet.wire_len <= 1518


@given(st.integers(64, 1518))
@settings(max_examples=50)
def test_packet_serialization_round_trip(size):
    packet = Packet(wire_len=size, src=MAC_A, dst=MAC_B)
    parsed = Packet.from_bytes(packet.to_bytes())
    assert parsed.wire_len == size
    assert parsed.src == MAC_A
