"""Unit tests for the stream-prefetcher model and core clocking."""

from repro.cpu import InOrderCore, OutOfOrderCore
from repro.cpu.core import CoreConfig, Work
from repro.mem.hierarchy import MemoryHierarchy


def ooo():
    return OutOfOrderCore(CoreConfig(), MemoryHierarchy())


def inorder():
    return InOrderCore(CoreConfig(ooo=False), MemoryHierarchy())


class TestCoverageDetection:
    def test_short_runs_not_covered(self):
        core = ooo()
        assert core._covered_by_prefetch([0, 64]) == set()

    def test_long_run_partially_covered(self):
        core = ooo()
        lines = [i * 64 for i in range(24)]
        covered = core._covered_by_prefetch(lines)
        # First two lines always demand misses; roughly 2/3 covered after.
        assert lines[0] not in covered
        assert lines[1] not in covered
        assert 10 <= len(covered) <= 16

    def test_non_consecutive_never_covered(self):
        core = ooo()
        scattered = [0, 4096, 128, 64 * 100, 7]
        assert core._covered_by_prefetch(scattered) == set()

    def test_descending_never_covered(self):
        core = ooo()
        lines = [i * 64 for i in reversed(range(16))]
        assert core._covered_by_prefetch(lines) == set()

    def test_run_reset_after_gap(self):
        core = ooo()
        lines = [0, 64, 128, 192, 100_000, 100_064]
        covered = core._covered_by_prefetch(lines)
        assert 100_000 not in covered
        assert 100_064 not in covered


class TestPrefetchTiming:
    def test_sequential_dram_stream_cheaper_than_scattered(self):
        seq_core, scat_core = ooo(), ooo()
        base = 0x400000
        seq = [base + i * 64 for i in range(24)]
        scattered = [base + i * 8192 for i in range(24)]
        t_seq = seq_core.execute(Work(reads=seq))
        t_scat = scat_core.execute(Work(reads=scattered))
        assert t_seq < t_scat * 0.8
        assert seq_core.prefetch_covered > 0
        assert scat_core.prefetch_covered == 0

    def test_prefetch_helps_inorder_too(self):
        seq_core, scat_core = inorder(), inorder()
        base = 0x400000
        seq = [base + i * 64 for i in range(24)]
        scattered = [base + i * 8192 for i in range(24)]
        assert seq_core.execute(Work(reads=seq)) < \
            scat_core.execute(Work(reads=scattered)) * 0.7

    def test_covered_cost_never_exceeds_real(self):
        """A covered L1-adjacent hit must not be up-charged."""
        core = ooo()
        lines = [0x500000 + i * 64 for i in range(24)]
        core.execute(Work(reads=list(lines)))   # warm: now all in L1/L2
        warm = core.execute(Work(reads=list(lines)))
        # All warm accesses hit L1; total stays near issue cost.
        assert warm < 24 * 2 * core.config.period_ns + 10.0

    def test_counter_reset(self):
        core = ooo()
        core.execute(Work(reads=[0x600000 + i * 64 for i in range(12)]))
        core.reset_counters()
        assert core.prefetch_covered == 0


class TestCoreClock:
    def test_clock_used_when_wired(self):
        from repro.sim.ports import CallbackClock

        core = ooo()
        called = []
        core.set_clock(CallbackClock(lambda: called.append(1) or 5000.0))
        core.execute(Work(reads=[0x700000]))
        assert called

    def test_explicit_now_overrides_clock(self):
        from repro.sim.ports import CallbackClock

        core = ooo()
        core.set_clock(CallbackClock(
            lambda: (_ for _ in ()).throw(AssertionError)))
        core.execute(Work(reads=[0x700000]), now_ns=123.0)   # no raise

    def test_dram_demand_load_pays_fabric_latency(self):
        hier = MemoryHierarchy()
        result = hier.core_access(0x800000, now_ns=1e9)
        assert result.dram_ns >= hier.config.core_dram_extra_ns
