"""Unit tests for inter-arrival distributions."""

import pytest

from repro.loadgen.distributions import (
    ExponentialInterArrival,
    FixedInterArrival,
    UniformInterArrival,
    make_inter_arrival,
)
from repro.sim.rng import DeterministicRng
from repro.sim.ticks import TICKS_PER_SEC


class TestFixed:
    def test_exact_long_run_rate(self):
        gen = FixedInterArrival(3e6)   # 3 Mpps: gap is fractional ticks
        total = sum(gen.next_gap_ticks() for _ in range(30000))
        achieved = 30000 / (total / TICKS_PER_SEC)
        assert achieved == pytest.approx(3e6, rel=1e-4)

    def test_gaps_near_mean(self):
        gen = FixedInterArrival(1e6)
        gaps = [gen.next_gap_ticks() for _ in range(100)]
        assert all(abs(g - 1_000_000) <= 1 for g in gaps)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            FixedInterArrival(0)


class TestExponential:
    def test_mean_rate(self):
        gen = ExponentialInterArrival(1e6, DeterministicRng(1))
        gaps = [gen.next_gap_ticks() for _ in range(20000)]
        mean = sum(gaps) / len(gaps)
        assert mean == pytest.approx(1_000_000, rel=0.05)

    def test_gaps_vary(self):
        gen = ExponentialInterArrival(1e6, DeterministicRng(1))
        gaps = {gen.next_gap_ticks() for _ in range(100)}
        assert len(gaps) > 50

    def test_gaps_positive(self):
        gen = ExponentialInterArrival(1e9, DeterministicRng(1))
        assert all(gen.next_gap_ticks() >= 1 for _ in range(1000))


class TestUniform:
    def test_bounds(self):
        gen = UniformInterArrival(1e6, DeterministicRng(1), jitter=0.5)
        for _ in range(1000):
            gap = gen.next_gap_ticks()
            assert 500_000 <= gap <= 1_500_000

    def test_jitter_validated(self):
        with pytest.raises(ValueError):
            UniformInterArrival(1e6, DeterministicRng(1), jitter=1.5)


class TestFactory:
    def test_all_kinds(self):
        rng = DeterministicRng(1)
        assert isinstance(make_inter_arrival("fixed", 1e6, rng),
                          FixedInterArrival)
        assert isinstance(make_inter_arrival("exponential", 1e6, rng),
                          ExponentialInterArrival)
        assert isinstance(make_inter_arrival("uniform", 1e6, rng),
                          UniformInterArrival)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_inter_arrival("pareto", 1e6, DeterministicRng(1))
