"""Unit tests for the core timing models."""

import pytest

from repro.cpu import InOrderCore, OutOfOrderCore, make_core
from repro.cpu.core import CoreConfig, Work
from repro.mem.hierarchy import MemoryHierarchy


@pytest.fixture
def hierarchy():
    return MemoryHierarchy()


def ooo(hierarchy, **overrides):
    return OutOfOrderCore(CoreConfig(**overrides), hierarchy)


def inorder(hierarchy, **overrides):
    overrides.setdefault("ooo", False)
    return InOrderCore(CoreConfig(**overrides), hierarchy)


class TestFactory:
    def test_make_core_dispatch(self, hierarchy):
        assert isinstance(make_core(CoreConfig(ooo=True), hierarchy),
                          OutOfOrderCore)
        assert isinstance(make_core(CoreConfig(ooo=False), hierarchy),
                          InOrderCore)

    def test_ooo_class_requires_ooo_config(self, hierarchy):
        with pytest.raises(ValueError):
            OutOfOrderCore(CoreConfig(ooo=False), hierarchy)


class TestConfig:
    def test_period(self):
        assert CoreConfig(freq_hz=1e9).period_ns == pytest.approx(1.0)
        assert CoreConfig(freq_hz=4e9).period_ns == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            CoreConfig(freq_hz=0)
        with pytest.raises(ValueError):
            CoreConfig(rob_entries=0)
        with pytest.raises(ValueError):
            CoreConfig(efficiency=0)


class TestComputeTiming:
    def test_pure_compute_scales_with_frequency(self, hierarchy):
        slow = ooo(hierarchy, freq_hz=1e9)
        fast = ooo(hierarchy, freq_hz=4e9)
        work = Work(compute_cycles=400)
        assert slow.execute(work) == pytest.approx(4 * fast.execute(work))

    def test_efficiency_divides_compute(self, hierarchy):
        base = ooo(hierarchy)
        better = ooo(hierarchy, efficiency=2.0)
        work = Work(compute_cycles=1000)
        assert better.execute(work) == pytest.approx(base.execute(work) / 2)

    def test_busy_time_accumulates(self, hierarchy):
        core = ooo(hierarchy)
        core.execute(Work(compute_cycles=300))
        core.execute(Work(compute_cycles=300))
        assert core.work_units == 2
        assert core.busy_ns == pytest.approx(200.0)


class TestMemoryTiming:
    def test_l1_hits_nearly_free_on_ooo(self, hierarchy):
        core = ooo(hierarchy)
        addrs = [0x1000 + i * 64 for i in range(8)]
        core.execute(Work(reads=addrs))        # warm
        warm = core.execute(Work(reads=addrs))
        nothing = core.execute(Work())
        # Warm L1 hits cost only issue bandwidth.
        assert warm - nothing < 8 * 2 * core.config.period_ns

    def test_l1_hits_serialized_on_inorder(self, hierarchy):
        core = inorder(hierarchy)
        addrs = [0x1000 + i * 64 for i in range(8)]
        core.execute(Work(reads=addrs))        # warm
        warm = core.execute(Work(reads=addrs))
        # Each hit pays its 2-cycle L1 latency serially.
        assert warm >= 8 * 2 * core.config.period_ns

    def test_ooo_overlaps_misses(self):
        hier_a, hier_b = MemoryHierarchy(), MemoryHierarchy()
        fast = ooo(hier_a)
        slow = inorder(hier_b)
        addrs = [0x100000 + i * 4096 for i in range(16)]
        t_ooo = fast.execute(Work(reads=list(addrs)))
        t_ino = slow.execute(Work(reads=list(addrs)))
        assert t_ooo < t_ino / 2

    def test_dependent_reads_serialize_even_on_ooo(self, hierarchy):
        core = ooo(hierarchy)
        addrs = [0x200000 + i * 4096 for i in range(8)]
        t_indep = core.execute(Work(reads=list(addrs)))
        core2 = ooo(MemoryHierarchy())
        t_dep = core2.execute(Work(dependent_reads=list(addrs)))
        assert t_dep > t_indep

    def test_max_mlp_caps_overlap(self):
        addrs = [0x300000 + i * 4096 for i in range(16)]
        wide = ooo(MemoryHierarchy())
        narrow = ooo(MemoryHierarchy())
        t_wide = wide.execute(Work(reads=list(addrs)))
        t_narrow = narrow.execute(Work(reads=list(addrs), max_mlp=1))
        assert t_narrow > t_wide

    def test_l1_hit_counter(self, hierarchy):
        core = ooo(hierarchy)
        core.execute(Work(reads=[0x1000]))
        core.execute(Work(reads=[0x1000]))
        assert core.l1_hits == 1


class TestMlpLimit:
    def test_rob_bounds_mlp(self, hierarchy):
        small = ooo(hierarchy, rob_entries=16, insts_per_access=8)
        big = ooo(MemoryHierarchy(), rob_entries=128, insts_per_access=8)
        assert small.mlp_limit == 2
        assert big.mlp_limit > small.mlp_limit

    def test_mshrs_bound_mlp(self, hierarchy):
        core = ooo(hierarchy, rob_entries=10000)
        assert core.mlp_limit <= hierarchy.config.l2.mshrs

    def test_mlp_at_least_one(self, hierarchy):
        core = ooo(hierarchy, rob_entries=1, insts_per_access=64)
        assert core.mlp_limit == 1


class TestInOrderPenalty:
    def test_penalty_multiplies_compute(self, hierarchy):
        core = inorder(hierarchy)
        base = core.execute(Work(compute_cycles=300, inorder_penalty=1.0))
        heavy = core.execute(Work(compute_cycles=300, inorder_penalty=6.0))
        assert heavy == pytest.approx(6 * base)

    def test_penalty_ignored_by_ooo(self, hierarchy):
        core = ooo(hierarchy)
        a = core.execute(Work(compute_cycles=300, inorder_penalty=1.0))
        b = core.execute(Work(compute_cycles=300, inorder_penalty=6.0))
        assert a == pytest.approx(b)


class TestCounters:
    def test_reset(self, hierarchy):
        core = ooo(hierarchy)
        core.execute(Work(compute_cycles=10, reads=[0x40]))
        core.reset_counters()
        assert core.busy_ns == 0
        assert core.work_units == 0
        assert core.accesses == 0
