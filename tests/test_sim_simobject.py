"""Unit tests for SimObject/Simulation plumbing."""

import pytest

from repro.sim.simobject import SimObject, Simulation


class Ticker(SimObject):
    """Fires an event every `period` ticks, counting fires."""

    def __init__(self, sim, name, period):
        super().__init__(sim, name)
        self.period = period
        self.fires = 0
        self.count = self.stats.counter("fires")
        self._event = self.make_event(self._tick, "tick")

    def start(self):
        self.schedule_after(self._event, self.period)

    def _tick(self):
        self.fires += 1
        self.count.inc()
        self.schedule_after(self._event, self.period)


def test_register_and_lookup():
    sim = Simulation()
    obj = Ticker(sim, "t0", 10)
    assert sim.object("t0") is obj


def test_duplicate_names_rejected():
    sim = Simulation()
    Ticker(sim, "t0", 10)
    with pytest.raises(ValueError):
        Ticker(sim, "t0", 10)


def test_periodic_events():
    sim = Simulation()
    ticker = Ticker(sim, "t0", 10)
    ticker.start()
    sim.run(until=100)
    assert ticker.fires == 10


def test_stats_are_namespaced():
    sim = Simulation()
    ticker = Ticker(sim, "t0", 10)
    ticker.start()
    sim.run(until=50)
    assert sim.stats.dump()["t0.fires"] == 5


def test_reset_stats_calls_hook():
    class Hooked(SimObject):
        def __init__(self, sim, name):
            super().__init__(sim, name)
            self.hook_calls = 0

        def on_stats_reset(self):
            self.hook_calls += 1

    sim = Simulation()
    obj = Hooked(sim, "h")
    sim.reset_stats()
    assert obj.hook_calls == 1


def test_now_tracks_queue():
    sim = Simulation()
    obj = Ticker(sim, "t0", 7)
    obj.start()
    sim.run(until=21)
    assert obj.now == 21


def test_rng_is_seeded():
    a = Simulation(seed=42).rng.random()
    b = Simulation(seed=42).rng.random()
    c = Simulation(seed=43).rng.random()
    assert a == b
    assert a != c


def test_call_after_names_event():
    sim = Simulation()
    obj = Ticker(sim, "t0", 10)
    fired = []
    obj.call_after(5, lambda: fired.append(obj.now), name="probe")
    sim.run()
    assert fired == [5]
