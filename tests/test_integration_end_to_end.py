"""Cross-module integration tests: full node, trace replay, dual mode."""

from repro.apps.memcached_dpdk import MemcachedDpdk
from repro.apps.testpmd import TestPmd as PmdApp  # noqa: N811
from repro.kvstore.store import KvStore
from repro.loadgen.ether_load_gen import (
    DEFAULT_DST_MAC,
    DEFAULT_SRC_MAC,
    SyntheticConfig,
    TraceConfig,
)
from repro.loadgen.memcached_client import (
    MemcachedClient,
    MemcachedClientConfig,
)
from repro.net.pcap import PcapReader
from repro.system.dual_mode import run_dual_mode_comparison
from repro.system.node import DpdkNode
from repro.system.presets import gem5_default


class TestTraceReplayPipeline:
    """The full §IV trace story: a DPDK KVS client records its request
    stream as a PCAP (dpdk-pdump), EtherLoadGen replays it against the
    simulated server, and the server answers every request."""

    def test_recorded_trace_replays_against_server(self, tmp_path):
        # 1. Record a client trace (the dpdk-pdump integration).
        config = gem5_default()
        node = DpdkNode(config, seed=11)
        store = KvStore(node.address_space)
        node.install_app(MemcachedDpdk, store=store)
        recorder = MemcachedClient(
            node.sim, "recorder",
            MemcachedClientConfig(n_warm_keys=40, n_requests=60,
                                  rate_rps=500_000.0),
            dst_mac=DEFAULT_DST_MAC, src_mac=DEFAULT_SRC_MAC)
        recorder.preload(store)
        trace_path = tmp_path / "kvs.pcap"
        recorder.write_trace(trace_path, n_requests=60)

        # 2. Replay it through EtherLoadGen trace mode.
        loadgen = node.attach_loadgen()
        records = PcapReader(trace_path).read_all()
        node.start()
        loadgen.start_trace(TraceConfig(records=records))
        node.run_us(5000.0)

        # 3. The server parsed and served every request.
        assert node.app.requests_served == 60
        assert node.app.parse_errors == 0
        assert loadgen.rx_packets == 60   # responses came back

    def test_trace_vs_synthetic_same_infrastructure(self, tmp_path):
        """Trace mode and synthetic mode drive the same NIC path."""
        config = gem5_default()
        node = DpdkNode(config, seed=12)
        node.install_app(PmdApp)
        loadgen = node.attach_loadgen()
        node.start()
        loadgen.start_synthetic(SyntheticConfig(packet_size=256,
                                                rate_gbps=1.0, count=50))
        node.run_us(3000.0)
        assert loadgen.rx_packets == 50


class TestDualMode:
    def test_dpdk_speedup_positive(self):
        result = run_dual_mode_comparison(gem5_default(), kernel=False,
                                          n_requests=400,
                                          rate_rps=150_000.0)
        assert result.dual_responses == 400
        assert result.loadgen_responses == 400
        # EtherLoadGen must be faster than simulating the Drive Node.
        assert result.speedup_fraction > 0.0

    def test_kernel_speedup_positive(self):
        result = run_dual_mode_comparison(gem5_default(), kernel=True,
                                          n_requests=400,
                                          rate_rps=120_000.0)
        # The cold-started kernel server may still be draining its last
        # few requests at the horizon; require near-complete delivery.
        assert result.dual_responses >= 380
        assert result.loadgen_responses >= 380
        assert result.speedup_fraction > 0.0


class TestDeterminism:
    def test_same_seed_same_results(self):
        def run():
            node = DpdkNode(gem5_default(), seed=99)
            node.install_app(PmdApp)
            loadgen = node.attach_loadgen()
            node.start()
            loadgen.start_synthetic(SyntheticConfig(
                packet_size=256, rate_gbps=30.0, count=800,
                distribution="exponential"))
            node.run_us(4000.0)
            return (loadgen.rx_packets, loadgen.tx_packets,
                    node.nic.drop_fsm.counts.copy(),
                    round(node.core.busy_ns, 3))

        assert run() == run()

    def test_different_seed_different_arrivals(self):
        def run(seed):
            node = DpdkNode(gem5_default(), seed=seed)
            node.install_app(PmdApp)
            loadgen = node.attach_loadgen()
            node.start()
            loadgen.start_synthetic(SyntheticConfig(
                packet_size=256, rate_gbps=5.0, count=100,
                distribution="exponential"))
            node.run_us(3000.0)
            return loadgen.latency.summary()["mean"]

        assert run(1) != run(2)
