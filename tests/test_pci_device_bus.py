"""Unit tests for PCI devices and the bus."""

import pytest

from repro.pci.bus import PciBus
from repro.pci.config_space import CMD_INTX_DISABLE, COMMAND_OFFSET
from repro.pci.device import PciDevice


class TestDevice:
    def test_interrupt_delivery(self):
        device = PciDevice(0x8086, 0x100E)
        fired = []
        device.interrupt_handler = lambda: fired.append(1)
        assert device.post_interrupt()
        assert fired == [1]
        assert device.interrupts_posted == 1

    def test_interrupt_suppressed_when_disabled(self):
        device = PciDevice(0x8086, 0x100E)
        device.write_config(COMMAND_OFFSET, 2, CMD_INTX_DISABLE)
        assert not device.post_interrupt()
        assert device.interrupts_suppressed == 1

    def test_device_level_mask_suppresses(self):
        class Masked(PciDevice):
            def device_interrupts_masked(self):
                return True

        device = Masked(0x8086, 0x100E)
        assert not device.post_interrupt()

    def test_driver_binding(self):
        device = PciDevice(0x8086, 0x100E)
        device.bind_driver("e1000")
        assert device.driver_name == "e1000"
        device.unbind_driver()
        assert device.driver_name is None


class TestBus:
    def test_attach_and_lookup(self):
        bus = PciBus()
        device = PciDevice(0x8086, 0x100E)
        bus.attach("00:02.0", device)
        assert bus.device("00:02.0") is device
        assert device.bdf == "00:02.0"

    def test_malformed_bdf_rejected(self):
        bus = PciBus()
        with pytest.raises(ValueError):
            bus.attach("2.0", PciDevice(1, 1))
        with pytest.raises(ValueError):
            bus.attach("00:02.8", PciDevice(1, 1))

    def test_occupied_slot_rejected(self):
        bus = PciBus()
        bus.attach("00:02.0", PciDevice(1, 1))
        with pytest.raises(ValueError):
            bus.attach("00:02.0", PciDevice(1, 2))

    def test_double_attach_rejected(self):
        bus = PciBus()
        device = PciDevice(1, 1)
        bus.attach("00:02.0", device)
        with pytest.raises(ValueError):
            bus.attach("00:03.0", device)

    def test_enumerate_in_bdf_order(self):
        bus = PciBus()
        late = bus.attach("00:1f.0", PciDevice(1, 1))
        early = bus.attach("00:02.0", PciDevice(1, 2))
        assert bus.enumerate() == [early, late]

    def test_find_by_ids(self):
        bus = PciBus()
        nic = bus.attach("00:02.0", PciDevice(0x8086, 0x100E))
        bus.attach("00:03.0", PciDevice(0x15B3, 0x101B))
        assert bus.find(0x8086, 0x100E) == [nic]
        assert bus.find(0xDEAD, 0xBEEF) == []

    def test_missing_device(self):
        with pytest.raises(KeyError):
            PciBus().device("00:09.0")

    def test_len(self):
        bus = PciBus()
        bus.attach("00:02.0", PciDevice(1, 1))
        assert len(bus) == 1
