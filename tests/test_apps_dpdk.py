"""Unit tests for the DPDK applications against a full node."""

import pytest

from repro.apps.memcached_dpdk import MemcachedDpdk
from repro.apps.rxptx import RxPTx
from repro.apps.testpmd import TestPmd as PmdApp  # noqa: N811
from repro.apps.touchdrop import TouchDrop
from repro.apps.touchfwd import TouchFwd

from repro.kvstore.store import KvStore
from repro.loadgen.ether_load_gen import SyntheticConfig
from repro.loadgen.memcached_client import MemcachedClientConfig
from repro.system.node import DpdkNode
from repro.system.presets import gem5_default


def run_app(app_class, app_options=None, count=60, size=256, gbps=2.0,
            horizon_us=3000.0):
    node = DpdkNode(gem5_default(), seed=3)
    options = dict(app_options or {})
    if app_class is MemcachedDpdk:
        options["store"] = KvStore(node.address_space)
    node.install_app(app_class, **options)
    loadgen = node.attach_loadgen()
    node.start()
    loadgen.start_synthetic(SyntheticConfig(packet_size=size,
                                            rate_gbps=gbps, count=count))
    node.run_us(horizon_us)
    return node, loadgen


class TestTestPmd:
    def test_forwards_every_packet(self):
        node, loadgen = run_app(PmdApp)
        assert node.app.packets_processed == 60
        assert node.app.packets_forwarded == 60
        assert loadgen.rx_packets == 60

    def test_macswap_swaps_addresses(self):
        node, loadgen = run_app(PmdApp)
        # Responses arrive back at the loadgen: src/dst must be swapped,
        # which is exactly why they were delivered to the loadgen's port.
        assert loadgen.drop_rate == 0.0

    def test_io_mode_forwards_unmodified(self):
        node, loadgen = run_app(PmdApp, {"forward_mode": "io"})
        assert node.app.packets_forwarded == 60

    def test_unknown_mode_rejected(self):
        node = DpdkNode(gem5_default(), seed=3)
        with pytest.raises(ValueError):
            node.install_app(PmdApp, forward_mode="bounce")

    def test_latency_echo(self):
        _node, loadgen = run_app(PmdApp)
        assert loadgen.latency.summary()["count"] == 60
        # RTT at least twice the 200us link delay.
        assert loadgen.latency.summary()["min"] >= 400.0


class TestTouchFwd:
    def test_forwards_with_payload_touch(self):
        node, loadgen = run_app(TouchFwd, count=40)
        assert node.app.packets_forwarded == 40
        assert loadgen.rx_packets == 40

    def test_slower_than_testpmd(self):
        node_fwd, _ = run_app(TouchFwd, count=40, size=1518)
        node_pmd, _ = run_app(PmdApp, count=40, size=1518)
        assert node_fwd.core.busy_ns > 2 * node_pmd.core.busy_ns

    def test_touch_scales_with_packet_size(self):
        small, _ = run_app(TouchFwd, count=40, size=64)
        large, _ = run_app(TouchFwd, count=40, size=1518)
        assert large.core.busy_ns > 5 * small.core.busy_ns


class TestTouchDrop:
    def test_consumes_without_transmitting(self):
        node, loadgen = run_app(TouchDrop, count=50)
        assert node.app.packets_processed == 50
        assert node.app.packets_dropped_by_app == 50
        assert node.app.packets_forwarded == 0
        assert loadgen.rx_packets == 0   # "drop rate is always 100%"

    def test_mbufs_recycled(self):
        node, _loadgen = run_app(TouchDrop, count=50)
        assert node.mempool.in_use == 0


class TestRxPTx:
    def test_forwards(self):
        node, loadgen = run_app(RxPTx, {"proc_time_ns": 10.0}, count=40)
        assert loadgen.rx_packets == 40

    def test_processing_interval_costs_time(self):
        fast, _ = run_app(RxPTx, {"proc_time_ns": 10.0}, count=40)
        slow, _ = run_app(RxPTx, {"proc_time_ns": 10000.0}, count=40)
        assert slow.core.busy_ns > fast.core.busy_ns

    def test_negative_proc_time_rejected(self):
        node = DpdkNode(gem5_default(), seed=3)
        with pytest.raises(ValueError):
            node.install_app(RxPTx, proc_time_ns=-1.0)


class TestMemcachedDpdk:
    def test_serves_requests_end_to_end(self):
        node = DpdkNode(gem5_default(), seed=4)
        store = KvStore(node.address_space)
        node.install_app(MemcachedDpdk, store=store)
        client = node.attach_memcached_client(MemcachedClientConfig(
            n_warm_keys=30, n_requests=80, rate_rps=200_000.0))
        client.preload(store)
        node.start()
        client.start()
        node.run_us(3000.0)
        assert node.app.requests_served == 80
        assert client.responses_received == 80
        assert client.get_misses == 0

    def test_non_memcached_traffic_dropped_not_crashed(self):
        node, loadgen = run_app(MemcachedDpdk, count=30)
        assert node.app.parse_errors == 30
        assert loadgen.rx_packets == 0


class TestAppLifecycle:
    def test_stop_halts_polling(self):
        node, loadgen = run_app(PmdApp, count=60)
        node.app.stop()
        before = node.app.packets_processed
        node.run_us(500.0)
        assert node.app.packets_processed == before

    def test_stats_reset_clears_app_counters(self):
        node, _loadgen = run_app(PmdApp, count=60)
        node.sim.reset_stats()
        assert node.app.packets_processed == 0
