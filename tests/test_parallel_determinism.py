"""Determinism properties of the sweep executor (hypothesis).

The executor's contract: a simulation's outcome is a pure function of
``(config, app, load, effective seed)``.  Therefore

- running the same points serially, in parallel, or from cache must
  produce bit-identical result dicts, and
- changing the base seed must change the stochastic parts of the
  outcome for workloads with random behaviour (memcached's zipf key
  draws; fixed-rate testpmd is fully deterministic and is *expected*
  to be seed-invariant).

Small packet counts keep each drawn example fast; the properties do not
depend on run length.
"""

import dataclasses

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.harness.parallel import (
    SweepExecutor,
    fixed_load_point,
    memcached_point,
)
from repro.system.presets import altra, gem5_default

_SETTINGS = dict(max_examples=5, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])

_apps = st.sampled_from(["testpmd", "touchfwd", "iperf"])
_sizes = st.sampled_from([64, 256, 1518])
_rates = st.floats(min_value=1.0, max_value=20.0)
_seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _as_dicts(results):
    return [dataclasses.asdict(r) for r in results]


@given(app=_apps, size=_sizes, rate=_rates, seed=_seeds,
       use_altra=st.booleans())
@settings(**_SETTINGS)
def test_serial_and_parallel_agree_bit_for_bit(app, size, rate, seed,
                                               use_altra):
    config = altra() if use_altra else gem5_default()
    # Two distinct points so the parallel executor actually fans out
    # (a single unique point short-circuits to the serial path).
    points = [
        fixed_load_point(config, app, size, rate, n_packets=200,
                         seed=seed),
        fixed_load_point(config, app, size, rate + 5.0, n_packets=200,
                         seed=seed),
    ]
    serial = SweepExecutor(jobs=1).run(points)
    parallel = SweepExecutor(jobs=2, timeout_s=120.0).run(points)
    assert _as_dicts(serial) == _as_dicts(parallel)


@given(rate=st.floats(min_value=50_000.0, max_value=400_000.0),
       seed=_seeds, kernel=st.booleans())
@settings(**_SETTINGS)
def test_cached_replay_is_bit_identical(tmp_path_factory, rate, seed,
                                        kernel):
    cache_dir = tmp_path_factory.mktemp("cache")
    point = memcached_point(gem5_default(), kernel=kernel, rate_rps=rate,
                            n_requests=250, seed=seed)
    fresh = SweepExecutor(jobs=1, cache_dir=cache_dir).run([point])
    replay_ex = SweepExecutor(jobs=1, cache_dir=cache_dir)
    replayed = replay_ex.run([point])
    assert replay_ex.stats.executed == 0
    assert replay_ex.stats.cache_hits == 1
    assert _as_dicts(fresh) == _as_dicts(replayed)


@given(rate=st.floats(min_value=100_000.0, max_value=300_000.0),
       seed_a=_seeds, seed_b=_seeds)
@settings(**_SETTINGS)
def test_different_seeds_diverge_for_stochastic_workloads(rate, seed_a,
                                                          seed_b):
    # Memcached draws keys from a zipf distribution, so its per-request
    # outcomes depend on the seed; distinct base seeds must produce
    # distinct runs (same seed must reproduce exactly).
    config = gem5_default()

    def run(seed):
        return SweepExecutor(jobs=1).run(
            [memcached_point(config, kernel=False, rate_rps=rate,
                             n_requests=250, seed=seed)])[0]

    a, b = run(seed_a), run(seed_b)
    if seed_a == seed_b:
        assert dataclasses.asdict(a) == dataclasses.asdict(b)
    else:
        assert dataclasses.asdict(a) != dataclasses.asdict(b)


@given(seed=_seeds)
@settings(**_SETTINGS)
def test_point_order_does_not_change_individual_results(seed):
    # Label-derived seeding: each point owns an independent stream, so
    # reordering or growing the sweep never perturbs any other point.
    config = gem5_default()
    rates = [5.0, 10.0, 15.0]
    points = [fixed_load_point(config, "testpmd", 256, r, n_packets=200,
                               seed=seed) for r in rates]
    forward = SweepExecutor(jobs=1).run(points)
    backward = SweepExecutor(jobs=1).run(points[::-1])
    assert _as_dicts(forward) == _as_dicts(backward[::-1])
