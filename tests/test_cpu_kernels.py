"""Unit tests for work-kernel helpers and cost constants."""

import pytest

from repro.cpu.kernels import KernelCosts, lines_covering, touch_lines


class TestLinesCovering:
    def test_single_line(self):
        assert lines_covering(0, 1) == [0]
        assert lines_covering(0, 64) == [0]

    def test_crosses_line_boundary(self):
        assert lines_covering(60, 8) == [0, 64]

    def test_exact_multi_line(self):
        assert lines_covering(0, 128) == [0, 64]

    def test_unaligned_base(self):
        assert lines_covering(100, 64) == [64, 128]

    def test_empty(self):
        assert lines_covering(0, 0) == []
        assert lines_covering(0, -5) == []

    def test_1518_byte_frame(self):
        assert len(lines_covering(0, 1518)) == 24

    def test_custom_line_size(self):
        assert lines_covering(0, 256, line_size=128) == [0, 128]


class TestTouchLines:
    def test_stride_default(self):
        assert touch_lines(0, 200) == [0, 64, 128, 192]

    def test_preserves_base_offset(self):
        assert touch_lines(10, 130) == [10, 74, 138]

    def test_empty(self):
        assert touch_lines(0, 0) == []

    def test_custom_stride(self):
        assert touch_lines(0, 256, stride=128) == [0, 128]


class TestKernelCosts:
    def test_defaults_positive(self):
        costs = KernelCosts()
        assert costs.pmd_per_packet_cycles > 0
        assert costs.syscall_cycles > 0
        assert costs.interrupt_cycles > 0

    def test_kernel_path_dwarfs_dpdk_path(self):
        """The entire point of userspace networking: the kernel's
        per-packet overhead is an order of magnitude above the PMD's."""
        costs = KernelCosts()
        dpdk = (costs.pmd_per_packet_cycles + costs.mempool_get_put_cycles)
        kernel = (costs.interrupt_cycles + costs.context_switch_cycles
                  + costs.softirq_per_packet_cycles + costs.syscall_cycles)
        assert kernel > 10 * dpdk

    def test_batch_size_validated(self):
        with pytest.raises(ValueError):
            KernelCosts(kernel_batch_size=0)

    def test_frozen(self):
        costs = KernelCosts()
        with pytest.raises(Exception):
            costs.syscall_cycles = 1
