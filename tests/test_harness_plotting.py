"""Unit tests for the ASCII plot renderer."""

import pytest

from repro.harness.plotting import MARKERS, ascii_bars, ascii_plot


class TestAsciiPlot:
    def test_renders_title_axes_and_legend(self):
        text = ascii_plot({"a": [(0, 0), (10, 1)]}, title="T",
                          x_label="gbps", y_label="drop")
        assert text.splitlines()[0] == "T"
        assert "gbps" in text
        assert "o a" in text

    def test_extremes_land_on_grid_corners(self):
        text = ascii_plot({"a": [(0, 0), (10, 10)]}, width=20, height=5)
        lines = text.splitlines()
        top_row = next(line for line in lines if "|" in line)
        assert "o" in top_row                      # max lands on top row
        assert lines[4 + 0].startswith("10".rjust(2)) or "10 |" in text

    def test_multiple_series_distinct_markers(self):
        text = ascii_plot({"a": [(0, 1)], "b": [(1, 2)]})
        assert "o a" in text
        assert "x b" in text

    def test_constant_series_does_not_crash(self):
        text = ascii_plot({"flat": [(0, 5), (1, 5), (2, 5)]})
        assert "flat" in text

    def test_single_point(self):
        assert "o" in ascii_plot({"p": [(3, 4)]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({})
        with pytest.raises(ValueError):
            ascii_plot({"a": []})

    def test_marker_cycling_beyond_palette(self):
        series = {f"s{i}": [(i, i)] for i in range(len(MARKERS) + 2)}
        text = ascii_plot(series)
        assert text   # no crash; markers reused


class TestAsciiBars:
    def test_longest_bar_is_peak(self):
        text = ascii_bars({"small": 1.0, "big": 10.0}, width=10)
        lines = {line.split("|")[0].strip(): line for line in
                 text.splitlines()}
        assert lines["big"].count("#") == 10
        assert lines["small"].count("#") == 1

    def test_values_printed(self):
        text = ascii_bars({"a": 2.5})
        assert "2.5" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_bars({})

    def test_zero_values(self):
        text = ascii_bars({"z": 0.0})
        assert "z" in text
