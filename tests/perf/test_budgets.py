"""Performance budgets for the simulator's hot paths.

Each test measures a small, representative workload and compares it
against a recorded budget: a wall-clock ceiling or an events-per-second
floor.  The budgets carry *generous* margins (3-5x the values measured
on the development box) so they only trip on genuine regressions — a
reverted batching optimisation, an accidentally quadratic hot loop — and
not on machine noise.

By default the suite is informative: it prints the measurements and
emits a warning when a budget is exceeded, but never fails — developer
laptops and loaded CI runners vary too much for a hard local gate.  Set
``REPRO_PERF_STRICT=1`` (the CI perf job does) to turn every budget into
an assertion.

The budget constants double as documentation of expected performance;
see ``docs/performance.md`` for how to re-baseline them after an
intentional change.
"""

import dataclasses
import os
import time
import warnings

from repro.harness.parallel import SweepExecutor, fixed_load_point
from repro.harness.runner import build_node, run_fixed_load
from repro.loadgen.ether_load_gen import SyntheticConfig
from repro.system.presets import gem5_default

STRICT = os.environ.get("REPRO_PERF_STRICT") == "1"

#: Wall-clock ceiling for one 600-packet TestPMD run at 25 Gbps
#: (measured 0.9-1.8s; the pre-batching code took ~2.5s).
SINGLE_RUN_BUDGET_S = 8.0

#: Raw event-loop throughput floor: events executed per wall second
#: while TestPMD forwards a saturating synthetic load (measured ~50k/s
#: on the development box — Python-level event dispatch dominates).
EVENTS_PER_SEC_FLOOR = 10_000.0

#: Wall-clock ceilings for a 6-point TestPMD load sweep at 300 packets
#: per point (measured 5-10s serial, and parallel must not be slower than
#: serial by more than noise even on a single-core host).
SERIAL_SWEEP_BUDGET_S = 30.0
PARALLEL_SWEEP_BUDGET_S = 30.0

SWEEP_RATES = [5.0, 15.0, 25.0, 35.0, 45.0, 55.0]


def _check(name: str, value: float, budget: float,
           at_least: bool = False) -> None:
    ok = value >= budget if at_least else value <= budget
    bound = "floor" if at_least else "budget"
    detail = f"{name}: {value:,.1f} ({bound} {budget:,.1f})"
    print(detail)
    if STRICT:
        assert ok, detail
    elif not ok:
        warnings.warn(f"perf budget exceeded (informative only, "
                      f"set REPRO_PERF_STRICT=1 to enforce): {detail}")


def _best_of(n, fn):
    best = float("inf")
    for _ in range(n):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_single_run_wall_clock():
    wall = _best_of(2, lambda: run_fixed_load(
        gem5_default(), "testpmd", 256, 25.0, n_packets=600))
    _check("single 600-packet testpmd run wall s", wall,
           SINGLE_RUN_BUDGET_S)


def test_event_loop_throughput():
    """Events per wall second with TestPMD under saturating load.

    Drives the node directly (no harness, no warm-up) so the number is
    the event loop + component hot path and nothing else.
    """
    node = build_node(gem5_default(), "testpmd", seed=0)
    loadgen = node.attach_loadgen()
    node.start()
    loadgen.start_synthetic(SyntheticConfig(
        packet_size=256, rate_gbps=40.0, count=None,
        expect_responses=True))
    node.run_us(50.0)                      # ramp: fill the pipeline
    fired0 = node.sim.events.fired
    t0 = time.perf_counter()
    node.run_us(400.0)
    wall = time.perf_counter() - t0
    fired = node.sim.events.fired - fired0
    assert fired > 0
    _check("event loop events/s", fired / wall,
           EVENTS_PER_SEC_FLOOR, at_least=True)


def test_sweep_wall_clock_serial_and_parallel():
    config = gem5_default()
    points = [fixed_load_point(config, "testpmd", 256, rate,
                               n_packets=300) for rate in SWEEP_RATES]
    serial_ex = SweepExecutor(jobs=1)
    t0 = time.perf_counter()
    serial = serial_ex.run(points)
    serial_s = time.perf_counter() - t0

    parallel_ex = SweepExecutor(jobs=4, timeout_s=300.0)
    t0 = time.perf_counter()
    parallel = parallel_ex.run(points)
    parallel_s = time.perf_counter() - t0

    # The budgets ride on correctness: both modes must agree exactly.
    assert [dataclasses.asdict(r) for r in parallel] == \
        [dataclasses.asdict(r) for r in serial]

    _check("serial 6-point sweep wall s", serial_s, SERIAL_SWEEP_BUDGET_S)
    _check("parallel (jobs=4) 6-point sweep wall s", parallel_s,
           PARALLEL_SWEEP_BUDGET_S)
