"""Wall-clock budget: 2-shard vs single-process on the 10k-flow run.

Informative by default (print + warn), strict under
``REPRO_PERF_STRICT=1`` — same policy as tests/perf/test_budgets.py.

At the K=4 fabric's model cost the sharded run carries real
conservative-sync overhead (a queue round-trip per epoch per peer), so
the budget bounds the *overhead ratio* against the single-process run
rather than demanding a speedup; ``bench_results/shard_scaling.txt``
records the measured numbers and the reasoning.  The digest equality
check is a hard assertion either way — speed may vary with the host,
correctness may not.
"""

import os
import time
import warnings

from repro.dist.shard import run_fabric_sharded
from repro.harness.fabric import run_fabric
from repro.system.presets import gem5_default

STRICT = os.environ.get("REPRO_PERF_STRICT") == "1"

#: 2-shard wall clock may be at most this multiple of single-process
#: (measured 1.25x on the development box; generous margin for CI).
SHARD_OVERHEAD_RATIO = 5.0


def _check(name: str, value: float, budget: float) -> None:
    detail = f"{name}: {value:,.2f} (budget {budget:,.2f})"
    print(detail)
    if STRICT:
        assert value <= budget, detail
    elif value > budget:
        warnings.warn(f"perf budget exceeded (informative only, "
                      f"set REPRO_PERF_STRICT=1 to enforce): {detail}")


def test_two_shard_overhead_on_10k_flow_run():
    config = gem5_default()
    args = dict(pattern="uniform", load=0.5, n_flows=10_000, seed=0)

    t0 = time.perf_counter()
    single = run_fabric(config, "fat-tree-k4", "dpdk", **args)
    single_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    sharded = run_fabric_sharded(config, "fat-tree-k4", "dpdk",
                                 shards=2, **args)
    sharded_s = time.perf_counter() - t0

    assert sharded.flow_digest == single.flow_digest
    print(f"10k-flow k4 run: single {single_s:.2f}s, "
          f"2 shards {sharded_s:.2f}s")
    _check("2-shard/single wall-clock ratio", sharded_s / single_s,
           SHARD_OVERHEAD_RATIO)
