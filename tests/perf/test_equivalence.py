"""The batched hot path must be invisible in results.

``REPRO_EVENT_BATCH=1`` (the default) turns on the same-tick FIFO run
queue and pooled per-packet events; ``REPRO_EVENT_BATCH=0`` restores the
reference one-fresh-event-per-packet pure-heap path.  The two must be
*bit-identical* in everything observable: every stat, every latency
percentile, and — the strongest check — the trace digest, which hashes
the full ordered event stream of the run.

Hypothesis drives the comparison across all the paper's applications
(DPDK: testpmd / touchfwd / touchdrop / rxptx / memcached_dpdk; kernel:
iperf / memcached_kernel), packet sizes, loads and seeds.  The flag is
read at component construction time, so flipping the environment between
two fresh runs in one process is sufficient — no subprocesses needed.
"""

import dataclasses
import os
from contextlib import contextmanager

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.runner import run_fixed_load, run_memcached
from repro.system.presets import gem5_default

FIXED_LOAD_APPS = ["testpmd", "touchfwd", "touchdrop", "rxptx", "iperf"]


@contextmanager
def _batching(enabled: bool):
    previous = os.environ.get("REPRO_EVENT_BATCH")
    os.environ["REPRO_EVENT_BATCH"] = "1" if enabled else "0"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_EVENT_BATCH", None)
        else:
            os.environ["REPRO_EVENT_BATCH"] = previous


def _assert_identical(fast, reference):
    fast_dict = dataclasses.asdict(fast)
    reference_dict = dataclasses.asdict(reference)
    # Name the strongest signal first: the digest covers the ordered
    # event stream, so a mismatch means firing order itself diverged.
    assert fast_dict.get("trace_digest") == \
        reference_dict.get("trace_digest"), (
        "trace digests diverged between the batched and reference "
        "event-loop paths")
    assert fast_dict == reference_dict


@settings(max_examples=6, deadline=None)
@given(app=st.sampled_from(FIXED_LOAD_APPS),
       packet_size=st.sampled_from([64, 256, 1024]),
       gbps=st.sampled_from([8.0, 25.0, 55.0]),
       seed=st.integers(min_value=0, max_value=3))
def test_fixed_load_batched_path_is_bit_identical(app, packet_size,
                                                  gbps, seed):
    config = gem5_default()
    with _batching(True):
        fast = run_fixed_load(config, app, packet_size, gbps,
                              n_packets=150, seed=seed)
    with _batching(False):
        reference = run_fixed_load(config, app, packet_size, gbps,
                                   n_packets=150, seed=seed)
    _assert_identical(fast, reference)


@settings(max_examples=3, deadline=None)
@given(kernel=st.booleans(),
       rate_rps=st.sampled_from([100_000.0, 400_000.0]),
       seed=st.integers(min_value=0, max_value=2))
def test_memcached_batched_path_is_bit_identical(kernel, rate_rps, seed):
    config = gem5_default()
    with _batching(True):
        fast = run_memcached(config, kernel, rate_rps,
                             n_requests=250, seed=seed)
    with _batching(False):
        reference = run_memcached(config, kernel, rate_rps,
                                  n_requests=250, seed=seed)
    _assert_identical(fast, reference)
