"""Properties of the cross-shard link-channel layer.

The conservative-sync safety argument rests on three properties of
:class:`~repro.sim.channel.ChannelHalf` / ``ChannelGroup``:

- frames on one channel deliver in send order (per-channel sequence
  numbers, injected in a deterministic sort);
- no frame ever delivers before ``send time + link latency`` (it also
  pays serialization at line rate first);
- the delivery ticks are *independent of the sync quantum*: any epoch
  length ``q <= link latency`` yields bit-identical delivery times, and
  they equal what a single-process :class:`~repro.nic.phy.EtherLink`
  computes for the same send schedule.

Everything here runs under :class:`InProcessCoupler` — no processes —
which drives the exact ``begin_epoch``/``finish_epoch`` code path the
multiprocess shard runner uses.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.packet import MacAddress, Packet
from repro.nic.phy import EtherLink, EtherPort
from repro.sim.channel import (
    ChannelError,
    ChannelGroup,
    ChannelHalf,
    InProcessCoupler,
    decode_frame,
    encode_frame,
)
from repro.sim.simobject import Simulation

MAC_A = MacAddress.parse("02:00:00:00:00:01")
MAC_B = MacAddress.parse("02:00:00:00:00:02")

LATENCY = 1_000          # ticks (1 ns): the quantum bound under test
BANDWIDTH = 100e9

#: A send schedule: (gap from previous send, wire_len) per frame.
schedules = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3_000),
              st.integers(min_value=64, max_value=1518)),
    min_size=1, max_size=10)


def _mk_packet(size, index):
    return Packet(size, dst=MAC_B, src=MAC_A,
                  data=index.to_bytes(4, "big"))


def _run_pair(schedule, quantum=None, latency=LATENCY):
    """Send ``schedule`` from shard 0 to shard 1 over a channel pair
    coupled in-process; returns [(delivery tick, payload index), ...]."""
    sim0, sim1 = Simulation(seed=0), Simulation(seed=1)
    half0 = ChannelHalf(sim0, "link", peer_shard=1,
                        bandwidth_bits_per_sec=BANDWIDTH,
                        delay_ticks=latency)
    half1 = ChannelHalf(sim1, "link", peer_shard=0,
                        bandwidth_bits_per_sec=BANDWIDTH,
                        delay_ticks=latency)
    received = []
    half0.attach(EtherPort("n0.port", lambda p: None))
    half1.attach(EtherPort(
        "n1.port",
        lambda p: received.append((sim1.now,
                                   int.from_bytes(p.data, "big")))))
    sends = []
    when = 0
    for i, (gap, size) in enumerate(schedule):
        when += gap
        sends.append((when, i))
        sim0.events.call_at(
            when, lambda s=size, i=i: half0.port.send(_mk_packet(s, i)),
            name="test.send")
    coupler = InProcessCoupler({
        0: ChannelGroup(sim0, [half0], quantum_ticks=quantum),
        1: ChannelGroup(sim1, [half1], quantum_ticks=quantum),
    })
    # Advance past the last send, then in chunks until both halves are
    # idle (the busy window is bounded by per-frame serialization at
    # line rate — ~130k ticks for a 1518B frame at 100 Gbps — so the
    # chunk cap is generous).
    target = when + 1
    coupler.advance(target)
    chunk = max(4 * latency, 2_000)
    for _ in range(400):
        if half0.in_flight == 0 and half1.in_flight == 0:
            break
        target += chunk
        coupler.advance(target)
    assert half0.in_flight == 0 and half1.in_flight == 0
    assert half0.frames_out == len(schedule) == half1.frames_in
    return sends, received


def _run_etherlink(schedule, latency=LATENCY):
    """The same schedule over a plain single-process EtherLink."""
    sim = Simulation(seed=0)
    link = EtherLink(sim, "link", bandwidth_bits_per_sec=BANDWIDTH,
                     delay_ticks=latency)
    received = []
    port_a = EtherPort("n0.port", lambda p: None)
    port_b = EtherPort(
        "n1.port",
        lambda p: received.append((sim.now,
                                   int.from_bytes(p.data, "big"))))
    link.connect(port_a, port_b)
    when = 0
    for i, (gap, size) in enumerate(schedule):
        when += gap
        sim.events.call_at(
            when, lambda s=size, i=i: port_a.send(_mk_packet(s, i)),
            name="test.send")
    sim.run(until=when + (len(schedule) + 1) * 130_000 + latency)
    return received


@given(schedules)
@settings(max_examples=40, deadline=None)
def test_channel_delivers_in_order(schedule):
    _sends, received = _run_pair(schedule)
    assert [idx for _tick, idx in received] == list(range(len(schedule)))
    ticks = [tick for tick, _idx in received]
    assert ticks == sorted(ticks)


@given(schedules)
@settings(max_examples=40, deadline=None)
def test_channel_never_beats_the_link_latency(schedule):
    sends, received = _run_pair(schedule)
    send_tick = dict((idx, tick) for tick, idx in sends)
    for tick, idx in received:
        assert tick >= send_tick[idx] + LATENCY, \
            f"frame {idx} sent at {send_tick[idx]} arrived at {tick}"


@given(schedules,
       st.integers(min_value=50, max_value=LATENCY))
@settings(max_examples=25, deadline=None)
def test_delivery_ticks_are_quantum_invariant(schedule, quantum):
    """Any epoch length up to the link latency gives the same delivery
    ticks as the largest legal quantum — and as a real EtherLink."""
    _s, at_quantum = _run_pair(schedule, quantum=quantum)
    _s, at_latency = _run_pair(schedule, quantum=None)
    assert at_quantum == at_latency
    assert at_quantum == _run_etherlink(schedule)


def test_one_tick_quantum_matches_etherlink():
    """The degenerate epoch length (one tick) still reproduces the
    single-process delivery ticks — kept deterministic and small since
    it costs one epoch per tick."""
    schedule = [(0, 64), (100, 128), (0, 300)]
    _s, received = _run_pair(schedule, quantum=1, latency=80)
    assert received == _run_etherlink(schedule, latency=80)


@given(st.integers(min_value=64, max_value=1518),
       st.integers(min_value=0, max_value=255))
@settings(max_examples=40, deadline=None)
def test_frame_codec_round_trips(size, tag):
    packet = Packet(size, dst=MAC_B, src=MAC_A, ethertype=0x88B5,
                    data=bytes([tag]), ts_tx=tag * 7, request_id=tag,
                    meta={"flow": tag})
    decoded = decode_frame(encode_frame(packet))
    # Equal in every field except packet_id, a process-local counter.
    decoded.packet_id = packet.packet_id
    assert decoded == packet
    assert decoded.meta == packet.meta


# ----------------------------------------------------------------------
# Protocol-violation paths fail loudly rather than corrupt time.
# ----------------------------------------------------------------------

def test_quantum_above_link_latency_is_rejected():
    sim = Simulation(seed=0)
    half = ChannelHalf(sim, "link", peer_shard=1, delay_ticks=100)
    with pytest.raises(ChannelError, match="exceeds the minimum"):
        ChannelGroup(sim, [half], quantum_ticks=101)


def test_zero_latency_channel_is_rejected():
    sim = Simulation(seed=0)
    with pytest.raises(ValueError, match="positive link latency"):
        ChannelHalf(sim, "link", peer_shard=1, delay_ticks=0)


def test_injecting_into_the_past_is_rejected():
    sim = Simulation(seed=0)
    half = ChannelHalf(sim, "link", peer_shard=1, delay_ticks=100)
    half.attach(EtherPort("n0.port", lambda p: None))
    sim.events.call_at(500, lambda: None, name="test.noop")
    sim.run(until=500)
    with pytest.raises(ChannelError, match="epoch skew"):
        half.inject(400, encode_frame(_mk_packet(64, 0)))


def test_drain_rejects_frames_inside_the_epoch():
    # A frame due at or before the epoch boundary means the quantum
    # exceeded the link latency: drain must refuse to ship it.
    sim = Simulation(seed=0)
    half = ChannelHalf(sim, "link", peer_shard=1, delay_ticks=100)
    half.attach(EtherPort("n0.port", lambda p: None))
    half.transmit(half.port, _mk_packet(64, 0))
    deliver_at = half._outbox[0][0]
    with pytest.raises(ChannelError, match="quantum must not exceed"):
        half.drain(deliver_at)


def test_duplicate_channel_names_are_rejected():
    sim = Simulation(seed=0)
    a = ChannelHalf(sim, "link", peer_shard=1, delay_ticks=100)
    b = ChannelHalf(sim, "link2", peer_shard=1, delay_ticks=100)
    b.name = "link"
    with pytest.raises(ChannelError, match="duplicate channel name"):
        ChannelGroup(sim, [a, b])
