"""Unit tests for the parallel sweep executor's building blocks.

Covers the point constructors, the label-derived per-point seeding, the
cache key, result encode/decode round-trips, dedupe of identical points,
and the serial execution path across all three point kinds.  Failure
injection and the worker pool live in test_parallel_failures.py; the
serial-vs-parallel determinism property in test_parallel_determinism.py.
"""

import dataclasses

import pytest

from repro.harness.msb import MsbResult
from repro.harness.parallel import (
    KIND_FIXED_LOAD,
    KIND_MEMCACHED,
    KIND_MSB,
    SweepExecutor,
    SweepPoint,
    cache_key,
    decode_result,
    encode_result,
    execute_point,
    fixed_load_point,
    memcached_point,
    msb_point,
    run_points,
)
from repro.harness.runner import FixedLoadResult, MemcachedRunResult
from repro.system.presets import altra, gem5_default


class TestPointConstructors:
    def test_fixed_load_point(self):
        p = fixed_load_point(gem5_default(), "testpmd", 256, 10.0,
                             n_packets=500, seed=3)
        assert p.kind == KIND_FIXED_LOAD
        assert p.app == "testpmd"
        assert p.packet_size == 256
        assert p.load == 10.0
        assert p.n_packets == 500
        assert p.seed == 3

    def test_memcached_point_flavours(self):
        kernel = memcached_point(gem5_default(), kernel=True,
                                 rate_rps=200_000.0)
        dpdk = memcached_point(gem5_default(), kernel=False,
                               rate_rps=200_000.0)
        assert kernel.kind == KIND_MEMCACHED
        assert kernel.app == "memcached_kernel"
        assert dpdk.app == "memcached_dpdk"

    def test_msb_point(self):
        p = msb_point(gem5_default(), "iperf", 1518, max_gbps=16.0)
        assert p.kind == KIND_MSB
        assert p.load == 16.0

    def test_points_are_frozen_and_hashable(self):
        p = fixed_load_point(gem5_default(), "testpmd", 256, 10.0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            p.seed = 1
        assert p == fixed_load_point(gem5_default(), "testpmd", 256, 10.0)


class TestSeeding:
    def test_rng_label_identifies_the_point(self):
        a = fixed_load_point(gem5_default(), "testpmd", 256, 10.0)
        b = fixed_load_point(gem5_default(), "testpmd", 512, 10.0)
        assert a.rng_label != b.rng_label

    def test_rng_label_shared_across_loads(self):
        # Points differing only in offered load share one RNG stream,
        # so a load sweep passes through identical warm-up state and can
        # share a single warm-up checkpoint (docs/checkpointing.md).
        a = fixed_load_point(gem5_default(), "testpmd", 256, 10.0)
        b = fixed_load_point(gem5_default(), "testpmd", 256, 20.0)
        assert a.rng_label == b.rng_label
        assert a.effective_seed == b.effective_seed

    def test_effective_seed_is_stable(self):
        p = fixed_load_point(gem5_default(), "testpmd", 256, 10.0, seed=7)
        assert p.effective_seed == \
            fixed_load_point(gem5_default(), "testpmd", 256, 10.0,
                             seed=7).effective_seed

    def test_effective_seed_depends_on_base_seed_and_label(self):
        base = fixed_load_point(gem5_default(), "testpmd", 256, 10.0,
                                seed=0)
        reseeded = fixed_load_point(gem5_default(), "testpmd", 256, 10.0,
                                    seed=1)
        relabelled = fixed_load_point(gem5_default(), "touchfwd", 256,
                                      10.0, seed=0)
        assert base.effective_seed != reseeded.effective_seed
        assert base.effective_seed != relabelled.effective_seed

    def test_app_options_feed_the_label(self):
        plain = fixed_load_point(gem5_default(), "rxptx", 256, 10.0)
        tuned = fixed_load_point(gem5_default(), "rxptx", 256, 10.0,
                                 app_options={"proc_time_ns": 40.0})
        assert plain.rng_label != tuned.rng_label


class TestCacheKey:
    def test_key_is_stable(self):
        p = fixed_load_point(gem5_default(), "testpmd", 256, 10.0)
        assert cache_key(p) == cache_key(
            fixed_load_point(gem5_default(), "testpmd", 256, 10.0))

    def test_key_covers_seed(self):
        a = fixed_load_point(gem5_default(), "testpmd", 256, 10.0, seed=0)
        b = fixed_load_point(gem5_default(), "testpmd", 256, 10.0, seed=1)
        assert cache_key(a) != cache_key(b)

    def test_key_covers_config(self):
        a = fixed_load_point(gem5_default(), "testpmd", 256, 10.0)
        b = fixed_load_point(altra(), "testpmd", 256, 10.0)
        c = fixed_load_point(gem5_default().variant(link_delay_us=50.0),
                             "testpmd", 256, 10.0)
        assert len({cache_key(a), cache_key(b), cache_key(c)}) == 3

    def test_key_covers_kind_and_load(self):
        fixed = fixed_load_point(gem5_default(), "testpmd", 256, 10.0)
        msb = msb_point(gem5_default(), "testpmd", 256, max_gbps=10.0)
        assert cache_key(fixed) != cache_key(msb)


class TestEncodeDecode:
    def test_fixed_load_round_trip(self):
        result = execute_point(
            fixed_load_point(gem5_default(), "testpmd", 256, 5.0,
                             n_packets=200))
        assert isinstance(result, FixedLoadResult)
        decoded = decode_result(encode_result(result))
        assert dataclasses.asdict(decoded) == dataclasses.asdict(result)

    def test_memcached_round_trip(self):
        result = execute_point(
            memcached_point(gem5_default(), kernel=False,
                            rate_rps=100_000.0, n_requests=300))
        assert isinstance(result, MemcachedRunResult)
        decoded = decode_result(encode_result(result))
        assert dataclasses.asdict(decoded) == dataclasses.asdict(result)

    def test_msb_round_trip_preserves_curve_tuples(self):
        result = execute_point(
            msb_point(gem5_default(), "testpmd", 256, max_gbps=12.0,
                      n_packets=300))
        assert isinstance(result, MsbResult)
        decoded = decode_result(encode_result(result))
        assert dataclasses.asdict(decoded) == dataclasses.asdict(result)
        assert all(isinstance(pt, tuple) for pt in decoded.curve)

    def test_plain_dict_round_trip(self):
        payload = {"ok": True, "n": 3}
        assert decode_result(encode_result(payload)) == payload


class TestSerialExecution:
    def test_all_three_kinds(self):
        config = gem5_default()
        results = SweepExecutor(jobs=1).run([
            fixed_load_point(config, "testpmd", 256, 5.0, n_packets=200),
            memcached_point(config, kernel=True, rate_rps=80_000.0,
                            n_requests=300),
            msb_point(config, "iperf", 1518, max_gbps=8.0, n_packets=300),
        ])
        assert isinstance(results[0], FixedLoadResult)
        assert isinstance(results[1], MemcachedRunResult)
        assert isinstance(results[2], MsbResult)

    def test_results_keep_input_order(self):
        config = gem5_default()
        rates = [15.0, 5.0, 10.0]
        results = SweepExecutor(jobs=1).run([
            fixed_load_point(config, "testpmd", 256, r, n_packets=200)
            for r in rates])
        assert [round(r.offered_gbps, 1) for r in results] == rates

    def test_identical_points_are_deduped(self):
        config = gem5_default()
        point = fixed_load_point(config, "testpmd", 256, 5.0,
                                 n_packets=200)
        ex = SweepExecutor(jobs=1)
        a, b, c = ex.run([point, point, point])
        assert ex.stats.executed == 1
        assert ex.stats.deduped == 2
        assert dataclasses.asdict(a) == dataclasses.asdict(b)
        assert dataclasses.asdict(b) == dataclasses.asdict(c)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown sweep point kind"):
            execute_point(SweepPoint(kind="nonsense"))

    def test_run_points_convenience(self):
        results = run_points(
            [fixed_load_point(gem5_default(), "testpmd", 256, 5.0,
                              n_packets=200)])
        assert isinstance(results[0], FixedLoadResult)

    def test_empty_input(self):
        assert SweepExecutor(jobs=4).run([]) == []
