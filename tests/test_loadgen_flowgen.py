"""Unit and property tests for the flow-level traffic generator.

The Hypothesis properties pin the three guarantees the fabric scenario
matrix leans on: sampled flow sizes track the empirical CDF, Poisson
arrival schedules are seed-deterministic under RNG fork-labels, and
ECMP hashing is permutation-stable for a fixed 5-tuple.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.loadgen.flowgen import (
    DATAMINING_CDF,
    SIZE_CDFS,
    SMOKE_CDF,
    WEBSEARCH_CDF,
    Flow,
    FlowGenConfig,
    FlowSizeCdf,
    pick_endpoints,
    plan_flows,
    read_flow_trace,
    resolve_size_cdf,
    write_flow_trace,
)
from repro.net.fabric import ecmp_hash, ecmp_select
from repro.sim.rng import DeterministicRng

GROUPS_2x4 = [0, 0, 0, 0, 1, 1, 1, 1]
LINK_BPS = 100e9


# ----------------------------------------------------------------------
# FlowSizeCdf construction and sampling
# ----------------------------------------------------------------------

def test_cdf_rejects_bad_points():
    with pytest.raises(ValueError):
        FlowSizeCdf([])
    with pytest.raises(ValueError):
        FlowSizeCdf([(100, 0.5), (100, 1.0)])       # sizes not increasing
    with pytest.raises(ValueError):
        FlowSizeCdf([(100, 0.7), (200, 0.5)])       # probs decreasing
    with pytest.raises(ValueError):
        FlowSizeCdf([(100, 0.5), (200, 0.9)])       # does not reach 1.0
    with pytest.raises(ValueError):
        FlowSizeCdf([(100, 1.5)])                   # prob out of range


def test_builtin_cdfs_well_formed():
    for name, cdf in SIZE_CDFS.items():
        assert cdf.name == name
        assert cdf.points[-1][1] == pytest.approx(1.0)
        assert cdf.mean() > 0


def test_cdf_sample_bounds_and_mean():
    rng = DeterministicRng(7)
    draws = [SMOKE_CDF.sample(rng) for _ in range(4000)]
    lo = SMOKE_CDF.points[0][0]
    hi = SMOKE_CDF.points[-1][0]
    assert all(lo <= d <= hi for d in draws)
    empirical = sum(draws) / len(draws)
    assert empirical == pytest.approx(SMOKE_CDF.mean(), rel=0.05)


def test_cdf_lines_round_trip():
    text = WEBSEARCH_CDF.to_lines()
    back = FlowSizeCdf.from_lines(text, name="websearch")
    assert back.points == [(float(int(s)), pytest.approx(p, abs=1e-6))
                           for s, p in WEBSEARCH_CDF.points]


def test_resolve_size_cdf():
    assert resolve_size_cdf("datamining") is DATAMINING_CDF
    assert resolve_size_cdf(SMOKE_CDF) is SMOKE_CDF
    with pytest.raises(ValueError):
        resolve_size_cdf("nope")


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=20, deadline=None)
def test_sampled_sizes_match_cdf_within_tolerance(seed):
    """Empirical P(size <= breakpoint) tracks the CDF at every point."""
    rng = DeterministicRng(seed)
    n = 800
    draws = [SMOKE_CDF.sample(rng) for _ in range(n)]
    for size, prob in SMOKE_CDF.points:
        empirical = sum(1 for d in draws if d <= size) / n
        # 4 sigma of a Binomial(n, p) proportion at worst-case p=0.5
        assert abs(empirical - prob) < 0.075


# ----------------------------------------------------------------------
# FlowGenConfig and endpoint patterns
# ----------------------------------------------------------------------

def test_flow_gen_config_validation():
    with pytest.raises(ValueError):
        FlowGenConfig(pattern="zipf")
    with pytest.raises(ValueError):
        FlowGenConfig(load=0.0)
    with pytest.raises(ValueError):
        FlowGenConfig(n_flows=0)
    with pytest.raises(ValueError):
        FlowGenConfig(intra_group_fraction=1.5)


def test_incast_pattern_converges_on_host_zero():
    rng = DeterministicRng(1)
    config = FlowGenConfig(pattern="incast")
    for _ in range(50):
        src, dst = pick_endpoints(rng, GROUPS_2x4, config)
        assert dst == 0
        assert src != 0


def test_incast_fanin_limits_sources():
    rng = DeterministicRng(1)
    config = FlowGenConfig(pattern="incast", incast_fanin=3)
    sources = {pick_endpoints(rng, GROUPS_2x4, config)[0]
               for _ in range(100)}
    assert sources <= {1, 2, 3}


def test_hotspot_pattern_skews_to_hot_hosts():
    rng = DeterministicRng(2)
    config = FlowGenConfig(pattern="hotspot", hotspot_fraction=0.8)
    dsts = [pick_endpoints(rng, GROUPS_2x4, config)[1]
            for _ in range(300)]
    hot_share = sum(1 for d in dsts if d == 0) / len(dsts)
    assert hot_share > 0.5        # well above the 1/8 uniform share


def test_uniform_pattern_never_self_flows():
    rng = DeterministicRng(3)
    config = FlowGenConfig(pattern="uniform")
    for _ in range(200):
        src, dst = pick_endpoints(rng, GROUPS_2x4, config)
        assert src != dst


def test_intra_group_fraction_extremes():
    config_intra = FlowGenConfig(pattern="uniform", intra_group_fraction=1.0)
    config_inter = FlowGenConfig(pattern="uniform", intra_group_fraction=0.0)
    rng = DeterministicRng(4)
    for _ in range(100):
        src, dst = pick_endpoints(rng, GROUPS_2x4, config_intra)
        assert GROUPS_2x4[src] == GROUPS_2x4[dst]
    for _ in range(100):
        src, dst = pick_endpoints(rng, GROUPS_2x4, config_inter)
        assert GROUPS_2x4[src] != GROUPS_2x4[dst]


def test_pick_endpoints_needs_two_hosts():
    with pytest.raises(ValueError):
        pick_endpoints(DeterministicRng(0), [0], FlowGenConfig())


# ----------------------------------------------------------------------
# Poisson schedules: seed-determinism under fork labels
# ----------------------------------------------------------------------

def test_plan_flows_deterministic_per_seed():
    config = FlowGenConfig(pattern="uniform", load=0.4, n_flows=64)
    a = plan_flows(config, GROUPS_2x4, LINK_BPS, seed=11)
    b = plan_flows(config, GROUPS_2x4, LINK_BPS, seed=11)
    c = plan_flows(config, GROUPS_2x4, LINK_BPS, seed=12)
    assert a == b
    assert a != c
    assert [f.start_tick for f in a] == sorted(f.start_tick for f in a)
    assert all(f.start_tick > 0 for f in a)


@given(st.integers(min_value=0, max_value=2**31 - 1),
       st.text(alphabet="abcdefgh.", min_size=1, max_size=12))
@settings(max_examples=25, deadline=None)
def test_poisson_gaps_seed_deterministic_under_fork_labels(seed, label):
    """The same (seed, fork label) always yields the same arrival
    schedule; a different label yields an independent stream."""
    config = FlowGenConfig(pattern="uniform", load=0.3, n_flows=16)

    def schedule(fork_label):
        from repro.loadgen.flowgen import _synthesize
        rng = DeterministicRng(seed).fork(fork_label)
        return [f.start_tick for f in
                _synthesize(rng, GROUPS_2x4, LINK_BPS, config,
                            first_flow_id=0, start_tick=0)]

    assert schedule(label) == schedule(label)
    assert schedule(label) != schedule(label + ".other")


# ----------------------------------------------------------------------
# ECMP hashing: permutation stability
# ----------------------------------------------------------------------

FIVE_TUPLES = st.tuples(st.integers(0, 1 << 16), st.integers(0, 1 << 16),
                        st.integers(0, 255), st.integers(0, 1 << 16),
                        st.integers(0, 1 << 16))


@given(FIVE_TUPLES, st.lists(st.integers(0, 63), min_size=1, max_size=8,
                             unique=True).flatmap(
           lambda base: st.tuples(st.just(base), st.permutations(base))))
@settings(max_examples=100, deadline=None)
def test_ecmp_select_permutation_stable(five_tuple, choices_pair):
    """The chosen port depends on the candidate *set*, never its order."""
    base, shuffled = choices_pair
    assert (ecmp_select(five_tuple, base)
            == ecmp_select(five_tuple, shuffled))


@given(FIVE_TUPLES)
@settings(max_examples=100, deadline=None)
def test_ecmp_hash_stable_and_salted(five_tuple):
    assert ecmp_hash(five_tuple) == ecmp_hash(five_tuple)
    assert ecmp_hash(five_tuple, salt="a") != ecmp_hash(five_tuple, salt="b")


def test_ecmp_spreads_across_choices():
    """Distinct flows between one host pair fan out over all uplinks."""
    chosen = {ecmp_select((1, 2, 3, sport, 9000), [0, 1, 2, 3])
              for sport in range(49152, 49152 + 64)}
    assert chosen == {0, 1, 2, 3}


# ----------------------------------------------------------------------
# Flow trace format
# ----------------------------------------------------------------------

def test_flow_trace_round_trip():
    config = FlowGenConfig(pattern="hotspot", load=0.5, n_flows=40)
    flows = plan_flows(config, GROUPS_2x4, LINK_BPS, seed=5)
    back = read_flow_trace(write_flow_trace(flows))
    assert len(back) == len(flows)
    for orig, parsed in zip(flows, back):
        assert (parsed.src, parsed.dst, parsed.proto, parsed.dst_port,
                parsed.size_bytes) == (orig.src, orig.dst, orig.proto,
                                       orig.dst_port, orig.size_bytes)
        # start times round-trip through 9-decimal seconds: ns precision
        assert abs(parsed.start_tick - orig.start_tick) <= 1000


def test_flow_trace_header_mismatch_rejected():
    with pytest.raises(ValueError):
        read_flow_trace("3\n0 1 3 9000 100 0.0\n")
    assert read_flow_trace("") == []


def test_flow_five_tuple():
    flow = Flow(flow_id=1, src=3, dst=5, size_bytes=100, start_tick=0,
                src_port=50000)
    assert flow.five_tuple == (3, 5, 3, 50000, 9000)
