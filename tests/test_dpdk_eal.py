"""Unit tests for the EAL vendor-matching story (paper §III.B)."""

import pytest

from repro.dpdk.eal import Eal, EalConfig, EalProbeError
from repro.pci.bus import PciBus
from repro.pci.device import PciDevice
from repro.pci.uio import UioPciGeneric


class FakePmd:
    def __init__(self, device, *args):
        self.device = device
        self.args = args


def build_bus(bind=True):
    bus = PciBus()
    nic = bus.attach("00:02.0", PciDevice(0x8086, 0x100E))
    if bind:
        UioPciGeneric().bind(nic)
    return bus, nic


def test_probe_matches_by_vendor_id():
    bus, nic = build_bus()
    eal = Eal(bus, EalConfig(vendor_info_missing=False))
    eal.register_pmd(0x8086, 0x100E, FakePmd)
    ports = eal.probe()
    assert len(ports) == 1
    assert ports[0].device is nic


def test_unbound_devices_skipped():
    bus, _nic = build_bus(bind=False)
    eal = Eal(bus, EalConfig(vendor_info_missing=False))
    eal.register_pmd(0x8086, 0x100E, FakePmd)
    with pytest.raises(EalProbeError):
        eal.probe()


def test_gem5_vendor_info_missing_breaks_unpatched_dpdk():
    """'Unmodified DPDK cannot fetch the correct vendor ID when running on
    gem5 and therefore fails to call the proper PMD.'"""
    bus, _nic = build_bus()
    eal = Eal(bus, EalConfig(vendor_info_missing=True,
                             skip_vendor_check=False))
    eal.register_pmd(0x8086, 0x100E, FakePmd)
    with pytest.raises(EalProbeError, match="vendor"):
        eal.probe()


def test_skip_vendor_check_patch_force_matches():
    """The paper's DPDK patch: skip the check, force the PMD."""
    bus, nic = build_bus()
    eal = Eal(bus, EalConfig(vendor_info_missing=True,
                             skip_vendor_check=True))
    eal.register_pmd(0x8086, 0x100E, FakePmd)
    ports = eal.probe()
    assert ports[0].device is nic


def test_skip_check_requires_single_pmd():
    """'If new NIC models are added ... the DPDK framework should be
    recompiled after hard-coding the PMD' — ambiguous force-match errors."""
    bus, _nic = build_bus()
    eal = Eal(bus, EalConfig(vendor_info_missing=True,
                             skip_vendor_check=True))
    eal.register_pmd(0x8086, 0x100E, FakePmd)
    eal.register_pmd(0x15B3, 0x101B, FakePmd)
    with pytest.raises(EalProbeError, match="exactly one"):
        eal.probe()


def test_probe_passes_args_to_pmd():
    bus, _nic = build_bus()
    eal = Eal(bus, EalConfig(vendor_info_missing=False))
    eal.register_pmd(0x8086, 0x100E, FakePmd)
    ports = eal.probe("mempool", 42)
    assert ports[0].args == ("mempool", 42)


def test_probe_multiple_devices():
    bus = PciBus()
    uio = UioPciGeneric()
    for slot in ("00:02.0", "00:03.0"):
        nic = bus.attach(slot, PciDevice(0x8086, 0x100E))
        uio.bind(nic)
    eal = Eal(bus, EalConfig(vendor_info_missing=False))
    eal.register_pmd(0x8086, 0x100E, FakePmd)
    assert len(eal.probe()) == 2
