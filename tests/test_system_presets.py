"""Unit tests for Table-I presets and sweep helpers."""

import pytest

from repro.system.presets import (
    ALTRA_CLIENT_MAX_PPS,
    altra,
    gem5_baseline,
    gem5_default,
    with_core,
    with_dca,
    with_dram_channels,
    with_frequency,
    with_l1_size,
    with_l2_size,
    with_llc_size,
    with_rob,
)

KIB = 1024
MIB = 1024 * 1024


class TestGem5Preset:
    def test_table1_core_column(self):
        cfg = gem5_default()
        assert cfg.core.freq_hz == 3e9
        assert cfg.core.width == 4
        assert cfg.core.rob_entries == 128
        assert cfg.core.iq_entries == 120
        assert cfg.core.lq_entries == 68
        assert cfg.core.sq_entries == 72
        assert cfg.core.btb_entries == 8192
        assert cfg.core.branch_predictor == "BiModeBP"

    def test_table1_cache_column(self):
        cfg = gem5_default()
        assert cfg.hierarchy.l1i.size == 64 * KIB
        assert cfg.hierarchy.l1d.size == 64 * KIB
        assert cfg.hierarchy.l2.size == 1 * MIB
        assert cfg.hierarchy.l2.assoc == 8

    def test_table1_network_column(self):
        cfg = gem5_default()
        assert cfg.link_bandwidth_bps == 100e9
        assert cfg.link_delay_us == 200.0

    def test_dca_default_enabled(self):
        assert gem5_default().hierarchy.dca_enabled

    def test_hardware_loadgen(self):
        assert gem5_default().software_loadgen_max_pps is None


class TestAltraPreset:
    def test_ddio_disabled(self):
        """Table I: DCA/DDIO disabled on the Altra."""
        assert not altra().hierarchy.dca_enabled

    def test_faster_dram(self):
        assert (altra().hierarchy.dram.channel_bw_bytes_per_ns
                > gem5_default().hierarchy.dram.channel_bw_bytes_per_ns)

    def test_real_core_outperforms_model(self):
        assert altra().core.efficiency > 1.0

    def test_software_client_ceiling(self):
        cfg = altra()
        assert cfg.software_loadgen_max_pps == ALTRA_CLIENT_MAX_PPS
        # ~8 Gbps at 64B, ~16 Gbps at 128B (Fig 6).
        assert cfg.software_loadgen_max_pps * 64 * 8 / 1e9 == \
            pytest.approx(8.0, rel=0.1)


class TestBaselinePreset:
    def test_all_quirks_active(self):
        cfg = gem5_baseline()
        assert not cfg.pci_quirks.interrupt_disable_implemented
        assert not cfg.pci_quirks.byte_granular_command_access
        assert not cfg.nic.quirks.imr_implemented
        assert not cfg.nic.quirks.pmd_writeback_threshold_works
        assert not cfg.eal.skip_vendor_check


class TestSweepHelpers:
    def test_l1_sets_both_caches(self):
        cfg = with_l1_size(gem5_default(), 128 * KIB)
        assert cfg.hierarchy.l1i.size == 128 * KIB
        assert cfg.hierarchy.l1d.size == 128 * KIB

    def test_l2(self):
        assert with_l2_size(gem5_default(),
                            4 * MIB).hierarchy.l2.size == 4 * MIB

    def test_llc(self):
        assert with_llc_size(gem5_default(),
                             64 * MIB).hierarchy.llc.size == 64 * MIB

    def test_llc_resize_keeps_dca_ways(self):
        cfg = with_llc_size(gem5_default(), 16 * MIB)
        assert cfg.hierarchy.llc.reserved_io_ways == 4

    def test_dca_toggle(self):
        assert not with_dca(gem5_default(), False).hierarchy.dca_enabled
        assert with_dca(gem5_default(), True,
                        io_ways=2).hierarchy.llc.reserved_io_ways == 2

    def test_frequency(self):
        assert with_frequency(gem5_default(), 4e9).core.freq_hz == 4e9

    def test_rob(self):
        assert with_rob(gem5_default(), 512).core.rob_entries == 512

    def test_core_type(self):
        assert not with_core(gem5_default(), ooo=False).core.ooo

    def test_channels(self):
        assert with_dram_channels(gem5_default(),
                                  8).hierarchy.dram.channels == 8

    def test_helpers_do_not_mutate_base(self):
        base = gem5_default()
        with_l2_size(base, 8 * MIB)
        with_frequency(base, 1e9)
        assert base.hierarchy.l2.size == 1 * MIB
        assert base.core.freq_hz == 3e9
