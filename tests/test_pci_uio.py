"""Unit tests for the uio_pci_generic driver model (paper §III.A.1)."""

import pytest

from repro.pci.config_space import (
    CMD_BUS_MASTER,
    CMD_INTX_DISABLE,
    COMMAND_OFFSET,
    PciQuirks,
)
from repro.pci.device import PciDevice
from repro.pci.uio import UioBindError, UioPciGeneric


def test_bind_disables_interrupts_and_enables_bus_master():
    device = PciDevice(0x8086, 0x100E, PciQuirks.fixed())
    uio = UioPciGeneric()
    uio.bind(device)
    assert device.config_space.interrupts_disabled
    assert device.config_space.bus_master_enabled
    assert device.driver_name == "uio_pci_generic"


def test_bind_fails_on_baseline_gem5():
    """The headline failure: mainline gem5 cannot run the UIO driver
    because the interrupt-disable bit is unimplemented."""
    device = PciDevice(0x8086, 0x100E, PciQuirks.baseline_gem5())
    uio = UioPciGeneric()
    with pytest.raises(UioBindError, match="interrupt"):
        uio.bind(device)
    assert device.driver_name is None


def test_bind_refuses_already_bound_device():
    device = PciDevice(0x8086, 0x100E)
    device.bind_driver("e1000")
    with pytest.raises(UioBindError, match="already bound"):
        UioPciGeneric().bind(device)


def test_unbind_restores_interrupts():
    device = PciDevice(0x8086, 0x100E)
    uio = UioPciGeneric()
    uio.bind(device)
    uio.unbind(device)
    assert not device.config_space.interrupts_disabled
    assert device.driver_name is None


def test_unbind_unknown_device_rejected():
    with pytest.raises(UioBindError):
        UioPciGeneric().unbind(PciDevice(1, 1))


def test_bound_device_suppresses_interrupts():
    device = PciDevice(0x8086, 0x100E)
    UioPciGeneric().bind(device)
    assert not device.post_interrupt()
    assert device.interrupts_suppressed == 1


def test_bind_preserves_other_command_bits():
    device = PciDevice(0x8086, 0x100E)
    device.write_config(COMMAND_OFFSET, 2, 0x0003)   # io + mem space
    UioPciGeneric().bind(device)
    command = device.read_config(COMMAND_OFFSET, 2)
    assert command & 0x0003 == 0x0003
    assert command & CMD_INTX_DISABLE
    assert command & CMD_BUS_MASTER
