"""Unit tests for IPv4/UDP header encoding."""

import pytest

from repro.net.headers import (
    Ipv4Header,
    UdpHeader,
    build_udp_frame,
    internet_checksum,
    parse_udp_frame,
)
from repro.net.packet import MacAddress, Packet

SRC_MAC = MacAddress.parse("02:00:00:00:00:01")
DST_MAC = MacAddress.parse("02:00:00:00:00:02")


def test_checksum_of_checksummed_header_is_zero():
    header = Ipv4Header(src_ip=0x0A000001, dst_ip=0x0A000002,
                        total_length=40).to_bytes()
    assert internet_checksum(header) == 0


def test_ipv4_round_trip():
    header = Ipv4Header(src_ip=0x0A000001, dst_ip=0x0A000002,
                        total_length=60, ttl=17, identification=99)
    parsed = Ipv4Header.from_bytes(header.to_bytes())
    assert parsed.src_ip == 0x0A000001
    assert parsed.dst_ip == 0x0A000002
    assert parsed.total_length == 60
    assert parsed.ttl == 17
    assert parsed.identification == 99


def test_ipv4_corruption_detected():
    raw = bytearray(Ipv4Header(src_ip=1, dst_ip=2,
                               total_length=40).to_bytes())
    raw[8] ^= 0xFF   # flip TTL bits
    with pytest.raises(ValueError):
        Ipv4Header.from_bytes(bytes(raw))


def test_ipv4_truncated_rejected():
    with pytest.raises(ValueError):
        Ipv4Header.from_bytes(b"\x45\x00")


def test_udp_round_trip():
    header = UdpHeader(src_port=40000, dst_port=11211, length=28)
    parsed = UdpHeader.from_bytes(header.to_bytes())
    assert parsed.src_port == 40000
    assert parsed.dst_port == 11211
    assert parsed.length == 28


def test_build_parse_udp_frame_round_trip():
    payload = b"GET key-000001"
    packet = build_udp_frame(SRC_MAC, DST_MAC, 0x0A000001, 0x0A000002,
                             40000, 11211, payload)
    ip, udp, parsed_payload = parse_udp_frame(packet)
    assert parsed_payload == payload
    assert ip.src_ip == 0x0A000001
    assert udp.dst_port == 11211


def test_build_udp_frame_wire_len():
    payload = b"x" * 100
    packet = build_udp_frame(SRC_MAC, DST_MAC, 1, 2, 3, 4, payload)
    # 14 (eth) + 20 (ip) + 8 (udp) + 100 + 4 (crc)
    assert packet.wire_len == 146


def test_small_payload_pads_to_min_frame():
    packet = build_udp_frame(SRC_MAC, DST_MAC, 1, 2, 3, 4, b"x")
    assert packet.wire_len == 64


def test_parse_rejects_non_ipv4():
    packet = Packet(wire_len=64, data=b"\x00" * 46)   # experimental type
    with pytest.raises(ValueError):
        parse_udp_frame(packet)


def test_parse_rejects_missing_payload():
    packet = Packet(wire_len=64, ethertype=0x0800, data=None)
    with pytest.raises(ValueError):
        parse_udp_frame(packet)


def test_udp_length_field_bounds_payload():
    payload = b"abcdef"
    packet = build_udp_frame(SRC_MAC, DST_MAC, 1, 2, 3, 4, payload)
    # Extend the data with trailing garbage; parse must honor udp.length.
    packet.data = packet.data + b"junk"
    _ip, _udp, parsed = parse_udp_frame(packet)
    assert parsed == payload
