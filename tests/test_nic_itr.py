"""Unit tests for interrupt throttling (the 8254x ITR register)."""

from repro.mem.address import AddressSpace
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.xbar import BandwidthServer
from repro.net.packet import Packet
from repro.nic.dma import DmaConfig, DmaEngine
from repro.nic.i8254x import I8254xNic, NicConfig
from repro.sim.simobject import Simulation
from repro.sim.ticks import us_to_ticks


def build(itr_us=0.0, wb_threshold=1):
    sim = Simulation()
    hierarchy = MemoryHierarchy()
    dma = DmaEngine(DmaConfig(), BandwidthServer("iobus", 7.6e9), hierarchy)
    nic = I8254xNic(sim, "nic0", NicConfig(itr_us=itr_us,
                                           writeback_threshold=wb_threshold),
                    dma, AddressSpace())
    state = {"next": 0x100000}

    def source(packet):
        addr = state["next"]
        state["next"] += 2048
        return addr

    nic.rx_buffer_source = source
    notifications = []
    nic.rx_notify = lambda count: notifications.append((sim.now, count))
    return sim, nic, notifications


def burst(nic, n, size=64):
    for _ in range(n):
        nic.port.deliver(Packet(wire_len=size))


def test_no_throttling_by_default():
    sim, nic, notifications = build(itr_us=0.0)
    burst(nic, 10)
    sim.run(until=us_to_ticks(100))
    # Threshold 1: one writeback (and one notify) per packet.
    assert len(notifications) == 10


def test_itr_coalesces_notifications():
    sim, nic, notifications = build(itr_us=50.0)
    burst(nic, 10)
    sim.run(until=us_to_ticks(500))
    assert len(notifications) < 10
    assert sum(count for _t, count in notifications) == 10


def test_itr_enforces_min_spacing():
    sim, nic, notifications = build(itr_us=50.0)
    burst(nic, 10)
    sim.run(until=us_to_ticks(500))
    gaps = [b - a for (a, _), (b, _) in zip(notifications,
                                            notifications[1:])]
    assert all(gap >= us_to_ticks(50) for gap in gaps)


def test_itr_no_notification_lost():
    sim, nic, notifications = build(itr_us=20.0)
    for wave in range(3):
        burst(nic, 5)
        sim.run(until=sim.now + us_to_ticks(100))
    sim.run(until=sim.now + us_to_ticks(200))
    assert sum(count for _t, count in notifications) == 15


def test_isolated_packet_notified_promptly():
    sim, nic, notifications = build(itr_us=50.0)
    burst(nic, 1)
    sim.run(until=us_to_ticks(20))
    # First notification is not delayed (window starts empty).
    assert len(notifications) == 1
    assert notifications[0][0] < us_to_ticks(20)
