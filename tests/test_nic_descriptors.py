"""Unit tests for descriptor rings and the descriptor cache."""

import pytest

from repro.mem.address import AddressSpace
from repro.net.packet import Packet
from repro.nic.descriptors import DESC_SIZE, RxRing, TxRing


@pytest.fixture
def space():
    return AddressSpace()


def make_rx(space, size=8, threshold=4, cache=8):
    region = space.allocate("rx", size * DESC_SIZE)
    return RxRing(size, region, writeback_threshold=threshold,
                  desc_cache_size=cache)


def make_tx(space, size=8):
    region = space.allocate("tx", size * DESC_SIZE)
    return TxRing(size, region)


def pkt(size=64):
    return Packet(wire_len=size)


class TestRxRing:
    def test_starts_fully_posted(self, space):
        ring = make_rx(space)
        assert ring.nic_free_descriptors == 8
        assert not ring.full

    def test_fill_consumes_posted(self, space):
        ring = make_rx(space)
        ring.fill(0x1000, pkt())
        assert ring.nic_free_descriptors == 7
        assert ring.pending_writeback_count == 1

    def test_full_after_all_filled(self, space):
        ring = make_rx(space)
        for i in range(8):
            ring.fill(0x1000 + i, pkt())
        assert ring.full
        with pytest.raises(RuntimeError):
            ring.fill(0x2000, pkt())

    def test_writeback_due_at_threshold(self, space):
        ring = make_rx(space, threshold=4)
        for i in range(3):
            ring.fill(0x1000, pkt())
        assert not ring.writeback_due
        ring.fill(0x1000, pkt())
        assert ring.writeback_due

    def test_writeback_moves_to_completed(self, space):
        ring = make_rx(space, threshold=4)
        for _ in range(4):
            ring.fill(0x1000, pkt())
        batch = ring.writeback()
        assert len(batch) == 4
        assert ring.completed_count == 4
        assert ring.pending_writeback_count == 0
        assert ring.writebacks == 1

    def test_descriptor_cache_bound_forces_writeback(self, space):
        ring = make_rx(space, size=8, threshold=100, cache=4)
        for _ in range(4):
            ring.fill(0x1000, pkt())
        # Threshold 100 never reached, but the 4-entry cache is full.
        assert ring.writeback_due

    def test_harvest_and_replenish_cycle(self, space):
        ring = make_rx(space, threshold=2)
        ring.fill(0x1000, pkt())
        ring.fill(0x1001, pkt())
        ring.writeback()
        descs = ring.harvest(32)
        assert len(descs) == 2
        assert ring.completed_count == 0
        ring.replenish(2)
        assert ring.nic_free_descriptors == 8

    def test_harvest_respects_limit(self, space):
        ring = make_rx(space, threshold=1)
        for _ in range(3):
            ring.fill(0x1000, pkt())
            ring.writeback()
        assert len(ring.harvest(2)) == 2
        assert ring.completed_count == 1

    def test_overreplenish_rejected(self, space):
        ring = make_rx(space)
        with pytest.raises(RuntimeError):
            ring.replenish(1)   # all 8 already posted

    def test_descriptor_indices_wrap(self, space):
        ring = make_rx(space, size=4, threshold=1)
        indices = []
        for i in range(6):
            desc = ring.fill(0x1000, pkt())
            indices.append(desc.index)
            ring.writeback()
            ring.harvest(1)
            ring.replenish(1)
        assert indices == [0, 1, 2, 3, 0, 1]

    def test_desc_addr_layout(self, space):
        ring = make_rx(space)
        assert ring.desc_addr(1) - ring.desc_addr(0) == DESC_SIZE
        assert ring.desc_addr(8) == ring.desc_addr(0)   # wraps

    def test_threshold_validation(self, space):
        region = space.allocate("r2", 8 * DESC_SIZE)
        with pytest.raises(ValueError):
            RxRing(8, region, writeback_threshold=0)

    def test_region_size_validated(self, space):
        small = space.allocate("small", 4)
        with pytest.raises(ValueError):
            RxRing(8, small)


class TestTxRing:
    def test_enqueue_consume_order(self, space):
        ring = make_tx(space)
        a, b = pkt(), pkt()
        ring.enqueue(0x1000, a)
        ring.enqueue(0x2000, b)
        assert ring.consume() == (0x1000, a)
        assert ring.consume() == (0x2000, b)

    def test_full_rejects(self, space):
        ring = make_tx(space, size=2)
        assert ring.enqueue(0, pkt())
        assert ring.enqueue(0, pkt())
        assert ring.full
        assert not ring.enqueue(0, pkt())

    def test_free_slots(self, space):
        ring = make_tx(space, size=4)
        ring.enqueue(0, pkt())
        assert ring.free_slots == 3
        assert ring.occupancy == 1

    def test_consume_empty_raises(self, space):
        with pytest.raises(IndexError):
            make_tx(space).consume()

    def test_peek(self, space):
        ring = make_tx(space)
        a = pkt()
        ring.enqueue(0x10, a)
        assert ring.peek() == (0x10, a)
        assert ring.occupancy == 1
