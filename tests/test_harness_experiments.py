"""Tests for the lighter experiment-definition functions.

The heavyweight figure functions are exercised by the benchmark suite;
these tests cover the cheap ones plus the structural contracts the
benchmarks rely on.
"""

import pytest

from repro.harness.experiments import (
    FIG5_WORKLOADS,
    SENSITIVITY_APPS,
    SENSITIVITY_SIZES,
    headline_speedup,
    table1_configs,
)


class TestTable1:
    def test_both_platforms_present(self):
        rows = table1_configs()
        assert set(rows) == {"gem5", "altra"}

    def test_paper_parameters_rendered(self):
        rows = table1_configs()
        gem5 = rows["gem5"]
        assert gem5["Core freq"] == "3GHz"
        assert gem5["Superscalar"] == "4 ways"
        assert gem5["ROB/IQ entries"] == "128/120"
        assert gem5["LQ/SQ entries"] == "68/72"
        assert gem5["BTB entries"] == 8192
        assert gem5["L1I/L1D"] == "64KB,4/64KB,4"
        assert gem5["L2"] == "1MB,8 ways"
        assert gem5["L1I/L1D/L2 latency"] == "1/2/12"
        assert gem5["Network bandwidth"] == "100Gbps"
        assert gem5["Network latency"] == "200us"

    def test_dca_row_differs(self):
        rows = table1_configs()
        assert rows["gem5"]["DCA/DDIO"] == "enabled"
        assert rows["altra"]["DCA/DDIO"] == "disabled"


class TestExperimentStructure:
    def test_fig5_covers_all_paper_workloads(self):
        labels = [label for label, _a, _s, _o in FIG5_WORKLOADS]
        for prefix in ("TestPMD", "TouchFwd", "TouchDrop", "RXpTX"):
            assert any(label.startswith(prefix) for label in labels)

    def test_sensitivity_apps_cover_figure_panels(self):
        keys = [key for key, _l, _c, _o in SENSITIVITY_APPS]
        assert keys == ["testpmd", "touchfwd", "iperf", "rxptx-10ns",
                        "rxptx-1us"]

    def test_sensitivity_sizes_match_paper(self):
        assert SENSITIVITY_SIZES == [128, 256, 512, 1024, 1518]


class TestHeadline:
    def test_headline_speedup(self):
        result = headline_speedup()
        assert result["dpdk_gbps"] > result["kernel_gbps"]
        assert result["speedup"] == pytest.approx(
            result["dpdk_gbps"] / result["kernel_gbps"])
