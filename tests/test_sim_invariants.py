"""Unit tests for the invariant-checker registry.

The registry is the enforcement core: components register conservation
rules, the harness asserts them at the end of every run (``final``
mode), and ``strict`` mode re-checks the cheap subset after every
simulated event.  Mutation-style tests that break *real* components and
watch the checker fire live in ``test_invariants_mutation.py``.
"""

import pytest

from repro.sim.event_queue import Event, EventQueue
from repro.sim.invariants import (
    InvariantRegistry,
    InvariantViolation,
    mode_from_env,
)
from repro.sim.simobject import Simulation


class TestModeFromEnv:
    @pytest.mark.parametrize("raw", [None, "", "1", "final", "on",
                                     "default", "FINAL"])
    def test_final_spellings(self, raw):
        env = {} if raw is None else {"REPRO_CHECK_INVARIANTS": raw}
        assert mode_from_env(env) == "final"

    @pytest.mark.parametrize("raw", ["0", "off", "none", "disabled", "OFF"])
    def test_off_spellings(self, raw):
        assert mode_from_env({"REPRO_CHECK_INVARIANTS": raw}) == "off"

    def test_strict(self):
        assert mode_from_env({"REPRO_CHECK_INVARIANTS": "strict"}) == "strict"

    def test_garbage_rejected(self):
        with pytest.raises(ValueError, match="REPRO_CHECK_INVARIANTS"):
            mode_from_env({"REPRO_CHECK_INVARIANTS": "pedantic"})


class TestRegistry:
    def test_duplicate_name_rejected(self):
        reg = InvariantRegistry(mode="final")
        reg.register("x", lambda final: None)
        with pytest.raises(ValueError, match="x"):
            reg.register("x", lambda final: None)

    def test_clean_check_passes(self):
        reg = InvariantRegistry(mode="final")
        reg.register("ok-none", lambda final: None)
        reg.register("ok-empty", lambda final: [])
        reg.check(final=True)
        assert reg.final_checks_run == 1

    def test_failures_carry_names(self):
        reg = InvariantRegistry(mode="final")
        reg.register("good", lambda final: None)
        reg.register("bad-str", lambda final: "one message")
        reg.register("bad-list", lambda final: ["a", "b"])
        with pytest.raises(InvariantViolation) as info:
            reg.check(final=True)
        message = str(info.value)
        assert "bad-str" in message and "one message" in message
        assert "bad-list" in message and "a" in message and "b" in message
        assert "good" not in message
        assert len(info.value.failures) == 3

    def test_off_mode_never_raises(self):
        reg = InvariantRegistry(mode="off")
        reg.register("always-bad", lambda final: "broken")
        reg.check(final=True)
        assert reg.final_checks_run == 0

    def test_final_flag_reaches_checks(self):
        reg = InvariantRegistry(mode="final")
        seen = []
        reg.register("spy", lambda final: seen.append(final) and None)
        reg.check(final=True)
        reg.check(final=False)
        assert seen == [True, False]

    def test_violation_is_assertion_error(self):
        # Test suites that assert on simulation health catch it naturally.
        assert issubclass(InvariantViolation, AssertionError)


class TestStrictMode:
    def test_strict_installs_event_hook(self):
        queue = EventQueue()
        reg = InvariantRegistry(queue, mode="strict")
        assert queue.on_event is not None
        assert reg.mode == "strict"

    def test_final_mode_leaves_hot_path_alone(self):
        queue = EventQueue()
        InvariantRegistry(queue, mode="final")
        assert queue.on_event is None

    def test_strict_check_trips_mid_run(self):
        queue = EventQueue()
        reg = InvariantRegistry(queue, mode="strict")
        broken = {"flag": False}
        reg.register("tripwire",
                     lambda final: "tripped" if broken["flag"] else None,
                     strict=True)

        def breaker():
            broken["flag"] = True

        queue.schedule(Event(breaker), 100)
        queue.schedule(Event(lambda: None), 200)
        with pytest.raises(InvariantViolation) as info:
            queue.run()
        # The hook fires right after the breaking event's callback, not
        # at the end of the run.
        assert info.value.tick == 100
        assert info.value.phase == "strict"

    def test_non_strict_checks_skipped_per_event(self):
        queue = EventQueue()
        reg = InvariantRegistry(queue, mode="strict")
        calls = {"expensive": 0}

        def expensive(final):
            calls["expensive"] += 1

        reg.register("expensive-walk", expensive)   # final-only
        for when in (10, 20, 30):
            queue.schedule(Event(lambda: None), when)
        queue.run()
        assert calls["expensive"] == 0
        reg.check(final=True)
        assert calls["expensive"] == 1
        assert reg.events_checked == 3


class TestSimulationIntegration:
    def test_simulation_registers_core_invariants(self):
        sim = Simulation(invariant_mode="final")
        names = set(sim.invariants.names)
        assert "sim.tick-monotonic" in names
        assert "sim.event-queue-sane" in names
        sim.run(until=1000)
        sim.invariants.check(final=True)

    def test_strict_simulation_detects_time_rewind(self):
        sim = Simulation(invariant_mode="strict")

        def rewind():
            # Corrupt the clock the way a buggy event queue would.
            sim.events._now = 5

        sim.events.schedule(Event(lambda: None), 50)
        sim.events.schedule(Event(rewind), 100)
        with pytest.raises(InvariantViolation, match="tick-monotonic"):
            sim.run(until=1000)
