"""The fabric scenario test matrix (ISSUE 7's first-class deliverable).

{fat-tree K=4, leaf-spine} x {DPDK, kernel} x {uniform, hotspot,
incast} — 12 parametrized cases, each asserting the three properties
the fabric subsystem stands on:

- **conservation at quiescence**: every frame a host sent is either
  processed or charged to exactly one drop cause (the registered
  invariants fire inside ``run_fabric``; the matrix re-checks the
  reported numbers close over the causes);
- **determinism**: re-running a case yields a bit-identical result —
  same flow digest, same FCT percentiles, same per-switch drops;
- **bounded drops under oversubscription**: incast traffic produces a
  nonzero but bounded drop count, all charged to switch output queues.

A module-scoped warm-up cache makes the reruns cheap (each
preset/stack pair simulates its warm-up once and restores it
thereafter) while exercising the restore path across the whole matrix.

The golden fixture pins one small fat-tree run's digest and FCT
summary; regenerate after an intentional behaviour change with
``REPRO_REGEN_GOLDEN=1 pytest tests/test_fabric_scenarios.py``.
"""

import dataclasses
import json
import os
from pathlib import Path

import pytest

from repro.harness.fabric import run_fabric
from repro.harness.parallel import (
    SweepExecutor,
    _warm_signature,
    fabric_point,
)
from repro.harness.warmup_cache import WarmupCache
from repro.net.fabric import DROP_CAUSES, DROP_SWITCH_QUEUE
from repro.system.presets import gem5_default

GOLDEN_DIR = Path(__file__).parent / "golden"

PRESETS = ["fat-tree-k4", "leaf-spine"]
STACKS = ["dpdk", "kernel"]

# Pattern -> (load, n_flows).  Uniform and hotspot run below the knee;
# incast oversubscribes host 0's edge link so its output FIFO overflows
# on every preset/stack combination (probed, deterministic).
PATTERN_POINTS = {
    "uniform": (0.35, 100),
    "hotspot": (0.5, 100),
    "incast": (0.7, 160),
}

MATRIX = [(preset, stack, pattern)
          for preset in PRESETS
          for stack in STACKS
          for pattern in PATTERN_POINTS]


@pytest.fixture(scope="module")
def warm_cache(tmp_path_factory):
    return WarmupCache(tmp_path_factory.mktemp("fabric-warm"))


def _run_case(preset, stack, pattern, warm_cache, seed=0):
    load, n_flows = PATTERN_POINTS[pattern]
    return run_fabric(gem5_default(), preset, stack, pattern=pattern,
                      load=load, n_flows=n_flows, seed=seed,
                      warmup_cache=warm_cache)


@pytest.mark.parametrize("preset,stack,pattern", MATRIX)
def test_fabric_scenario(preset, stack, pattern, warm_cache):
    result = _run_case(preset, stack, pattern, warm_cache)

    # -- packet conservation at quiescence -----------------------------
    # run_fabric asserted the registered invariants (switch, host, link
    # and fabric-wide conservation) at final check; the reported window
    # numbers must close over the drop-cause taxonomy too.
    lost = result.frames_sent - result.frames_delivered
    assert lost >= 0
    if lost:
        assert result.drop_breakdown, \
            f"{lost} frames lost but no drop cause charged"
        assert sum(result.drop_breakdown.values()) == pytest.approx(1.0)
    assert set(result.drop_breakdown) <= set(DROP_CAUSES)
    for counts in result.per_switch_drops.values():
        assert set(counts) <= set(DROP_CAUSES)
        assert all(n > 0 for n in counts.values())

    # -- flows actually ran and completed ------------------------------
    assert result.flows_started == PATTERN_POINTS[pattern][1]
    assert 0 < result.flows_completed <= result.flows_started
    assert result.fct_us["count"] == result.flows_completed
    assert result.fct_us["p99"] >= result.fct_us["p50"] > 0

    # -- determinism: a rerun is bit-identical -------------------------
    rerun = _run_case(preset, stack, pattern, warm_cache)
    assert rerun.flow_digest == result.flow_digest, \
        f"{preset}/{stack}/{pattern}: flow digest changed across reruns"
    assert dataclasses.asdict(rerun) == dataclasses.asdict(result), \
        f"{preset}/{stack}/{pattern}: rerun result differs"

    # -- drops: clean where expected, bounded where oversubscribed -----
    if pattern == "incast":
        total_drops = round(result.drop_rate * result.frames_sent)
        assert total_drops > 0, \
            f"{preset}/{stack}: incast produced no drops"
        assert result.drop_rate < 0.5, \
            f"{preset}/{stack}: incast drop rate {result.drop_rate} " \
            f"unbounded"
        assert result.drop_breakdown.get(DROP_SWITCH_QUEUE, 0) > 0, \
            "incast drops must be charged to switch output queues"
        assert result.per_switch_drops, \
            "incast drops must name the congested switch"
    else:
        assert result.drop_rate < 0.05


def test_k4_fat_tree_sustains_10k_flows(warm_cache):
    """The acceptance run: 16 hosts, 10k open-loop flows through the
    batched event loop, FCT percentiles and per-switch drop stats out,
    invariants green at quiescence (checked inside run_fabric)."""
    result = run_fabric(gem5_default(), "fat-tree-k4", "dpdk",
                        pattern="uniform", load=0.5, n_flows=10_000,
                        seed=0, warmup_cache=warm_cache)
    assert result.flows_started == 10_000
    assert result.flows_completed >= 9_900
    for pct in ("p50", "p95", "p99", "p999"):
        assert result.fct_us[pct] > 0
    assert result.fct_us["p999"] >= result.fct_us["p50"]
    assert result.drop_rate < 0.01


def test_seed_changes_the_flow_schedule(warm_cache):
    a = _run_case("leaf-spine", "dpdk", "uniform", warm_cache, seed=0)
    b = _run_case("leaf-spine", "dpdk", "uniform", warm_cache, seed=1)
    assert a.flow_digest != b.flow_digest


def test_kernel_stack_is_slower_than_dpdk(warm_cache):
    """The paper's stack contrast survives at fabric scale: identical
    offered traffic completes slower through kernel-stack hosts."""
    dpdk = _run_case("leaf-spine", "dpdk", "uniform", warm_cache)
    kernel = _run_case("leaf-spine", "kernel", "uniform", warm_cache)
    assert kernel.fct_us["mean"] > dpdk.fct_us["mean"]


# ----------------------------------------------------------------------
# Golden regression fixture: one small fat-tree run, pinned.
# ----------------------------------------------------------------------

def test_fabric_golden_small_fat_tree():
    result = run_fabric(gem5_default(), "fat-tree-k4", "dpdk",
                        pattern="uniform", load=0.3, n_flows=60, seed=0)
    computed = {
        "flow_digest": result.flow_digest,
        "flows_started": result.flows_started,
        "flows_completed": result.flows_completed,
        "frames_sent": result.frames_sent,
        "frames_delivered": result.frames_delivered,
        "drop_rate": result.drop_rate,
        "fct_us": {k: round(v, 6) for k, v in result.fct_us.items()},
    }
    path = GOLDEN_DIR / "fabric_k4_small.json"
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(computed, indent=2, sort_keys=True)
                        + "\n")
    if not path.exists():
        pytest.fail(f"golden file {path} missing; generate it with "
                    f"REPRO_REGEN_GOLDEN=1")
    golden = json.loads(path.read_text())
    assert computed == golden, \
        "small fat-tree run drifted from the pinned golden; if the " \
        "change is intentional, regenerate with REPRO_REGEN_GOLDEN=1 " \
        "and review the diff"


# ----------------------------------------------------------------------
# Sweep executor integration (satellite 5)
# ----------------------------------------------------------------------

def _matrix_points(seed=0):
    return [fabric_point(gem5_default(), preset, "dpdk", pattern=pattern,
                         load=PATTERN_POINTS[pattern][0], n_flows=60,
                         seed=seed)
            for preset in PRESETS
            for pattern in ("uniform", "incast")]


def test_fabric_points_share_warm_signature_across_loads():
    """The executor's parent prewarm treats fabric points like fixed-load
    points: loads share one warm-up signature, patterns do not."""
    a = fabric_point(gem5_default(), "fat-tree-k4", "dpdk", load=0.2)
    b = fabric_point(gem5_default(), "fat-tree-k4", "dpdk", load=0.8)
    c = fabric_point(gem5_default(), "fat-tree-k4", "kernel", load=0.2)
    assert _warm_signature(a) is not None
    assert _warm_signature(a) == _warm_signature(b)
    assert _warm_signature(a) != _warm_signature(c)


def test_fabric_sweep_parallel_matches_serial():
    """jobs=2 (with the auto-provisioned ephemeral warm-up cache, since
    no REPRO_WARMUP_CACHE is set) returns bit-identical results to the
    serial reference path."""
    assert not os.environ.get("REPRO_WARMUP_CACHE"), \
        "test requires the ephemeral-provisioning path"
    points = _matrix_points()
    serial = SweepExecutor(jobs=1).run(points)
    parallel = SweepExecutor(jobs=2, timeout_s=120.0).run(points)
    assert [dataclasses.asdict(r) for r in serial] \
        == [dataclasses.asdict(r) for r in parallel]
