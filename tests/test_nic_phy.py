"""Unit tests for Ethernet ports and links."""

import pytest

from repro.net.packet import Packet
from repro.nic.phy import EtherLink, EtherPort
from repro.sim.simobject import Simulation
from repro.sim.ticks import us_to_ticks


def build(bandwidth=100e9, delay=0):
    sim = Simulation()
    rx_a, rx_b = [], []
    port_a = EtherPort("a", rx_a.append)
    port_b = EtherPort("b", rx_b.append)
    link = EtherLink(sim, "link", bandwidth_bits_per_sec=bandwidth,
                     delay_ticks=delay)
    link.connect(port_a, port_b)
    return sim, link, port_a, port_b, rx_a, rx_b


def test_delivery_between_ports():
    sim, _link, port_a, _port_b, _rx_a, rx_b = build()
    packet = Packet(wire_len=64)
    port_a.send(packet)
    sim.run()
    assert rx_b == [packet]


def test_bidirectional():
    sim, _link, port_a, port_b, rx_a, rx_b = build()
    port_a.send(Packet(wire_len=64))
    port_b.send(Packet(wire_len=64))
    sim.run()
    assert len(rx_a) == 1
    assert len(rx_b) == 1


def test_propagation_delay():
    delay = us_to_ticks(200)
    sim, _link, port_a, _pb, _ra, rx_b = build(delay=delay)
    port_a.send(Packet(wire_len=64))
    sim.run(until=delay - 1)
    assert rx_b == []
    sim.run()
    assert len(rx_b) == 1
    assert sim.now >= delay


def test_serialization_time():
    # 1 Gbps: a 64B frame + 20B overhead = 672 bits = 672ns.
    sim, link, port_a, _pb, _ra, rx_b = build(bandwidth=1e9)
    port_a.send(Packet(wire_len=64))
    sim.run()
    assert sim.now == 672 * 1000


def test_back_to_back_frames_serialize():
    sim, _link, port_a, _pb, _ra, rx_b = build(bandwidth=1e9)
    port_a.send(Packet(wire_len=64))
    port_a.send(Packet(wire_len=64))
    sim.run()
    assert sim.now == 2 * 672 * 1000


def test_directions_full_duplex():
    sim, _link, port_a, port_b, rx_a, rx_b = build(bandwidth=1e9)
    port_a.send(Packet(wire_len=64))
    port_b.send(Packet(wire_len=64))
    sim.run()
    # Both directions finish at the single-frame time, not double.
    assert sim.now == 672 * 1000


def test_stats_counters():
    sim, link, port_a, _pb, _ra, _rb = build()
    port_a.send(Packet(wire_len=100))
    sim.run()
    assert link.stat_frames.value == 1
    assert link.stat_bytes.value == 100
    assert port_a.frames_sent == 1


def test_unconnected_port_rejected():
    port = EtherPort("lonely", lambda p: None)
    with pytest.raises(RuntimeError):
        port.send(Packet(wire_len=64))


def test_double_connect_rejected():
    sim, link, port_a, port_b, _ra, _rb = build()
    with pytest.raises(RuntimeError):
        link.connect(port_a, port_b)


def test_foreign_port_rejected():
    sim, link, _pa, _pb, _ra, _rb = build()
    stranger = EtherPort("s", lambda p: None)
    with pytest.raises(ValueError):
        link.transmit(stranger, Packet(wire_len=64))


def test_bad_config_rejected():
    sim = Simulation()
    with pytest.raises(ValueError):
        EtherLink(sim, "l1", bandwidth_bits_per_sec=0)
    with pytest.raises(ValueError):
        EtherLink(sim, "l2", delay_ticks=-1)
