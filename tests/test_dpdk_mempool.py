"""Unit tests for hugepages, mempools and mbufs."""

import pytest

from repro.dpdk.hugepages import HUGEPAGE_SIZE, HugepageAllocator
from repro.dpdk.mempool import (
    MBUF_HEADROOM,
    Mempool,
    MempoolEmptyError,
)
from repro.mem.address import AddressSpace


@pytest.fixture
def hugepages():
    return HugepageAllocator(AddressSpace(), nr_hugepages=64)


class TestHugepages:
    def test_alignment(self, hugepages):
        region = hugepages.allocate(100)
        assert region.base % HUGEPAGE_SIZE == 0

    def test_rounds_up_to_whole_pages(self, hugepages):
        before = hugepages.free_pages
        hugepages.allocate(HUGEPAGE_SIZE + 1)
        assert hugepages.free_pages == before - 2

    def test_exhaustion(self):
        small = HugepageAllocator(AddressSpace(), nr_hugepages=1)
        small.allocate(HUGEPAGE_SIZE)
        with pytest.raises(MemoryError):
            small.allocate(1)

    def test_regions_disjoint(self, hugepages):
        a = hugepages.allocate(HUGEPAGE_SIZE)
        b = hugepages.allocate(HUGEPAGE_SIZE)
        assert a.end <= b.base or b.end <= a.base

    def test_validation(self):
        with pytest.raises(ValueError):
            HugepageAllocator(AddressSpace(), nr_hugepages=0)


class TestMempool:
    def test_get_put_cycle(self, hugepages):
        pool = Mempool("p", hugepages, n_mbufs=4)
        mbuf = pool.get()
        assert pool.in_use == 1
        mbuf.free()
        assert pool.in_use == 0

    def test_lifo_reuse(self, hugepages):
        """Most-recently-freed buffer is reallocated first — the cache-hot
        recycling DPDK's per-lcore mempool cache provides."""
        pool = Mempool("p", hugepages, n_mbufs=4)
        a = pool.get()
        b = pool.get()
        b.free()
        a.free()
        assert pool.get() is a
        assert pool.get() is b

    def test_exhaustion_raises(self, hugepages):
        pool = Mempool("p", hugepages, n_mbufs=2)
        pool.get()
        pool.get()
        with pytest.raises(MempoolEmptyError):
            pool.get()

    def test_try_get_returns_none(self, hugepages):
        pool = Mempool("p", hugepages, n_mbufs=1)
        assert pool.try_get() is not None
        assert pool.try_get() is None

    def test_buffers_distinct_and_spaced(self, hugepages):
        pool = Mempool("p", hugepages, n_mbufs=8, mbuf_size=2048)
        addrs = sorted(m.buffer_addr for m in pool._free)
        assert len(set(addrs)) == 8
        assert all(b - a == 2048 for a, b in zip(addrs, addrs[1:]))

    def test_data_addr_offset_by_headroom(self, hugepages):
        pool = Mempool("p", hugepages, n_mbufs=1)
        mbuf = pool.get()
        assert mbuf.data_addr == mbuf.buffer_addr + MBUF_HEADROOM

    def test_foreign_mbuf_rejected(self, hugepages):
        pool_a = Mempool("a", hugepages, n_mbufs=1)
        pool_b = Mempool("b", hugepages, n_mbufs=1)
        mbuf = pool_a.get()
        with pytest.raises(ValueError):
            pool_b.put(mbuf)

    def test_put_clears_packet_ref(self, hugepages):
        pool = Mempool("p", hugepages, n_mbufs=1)
        mbuf = pool.get()
        mbuf.packet = object()
        mbuf.free()
        assert mbuf.packet is None

    def test_high_watermark(self, hugepages):
        pool = Mempool("p", hugepages, n_mbufs=4)
        a, b = pool.get(), pool.get()
        a.free()
        pool.get()
        assert pool.high_watermark == 2

    def test_footprint(self, hugepages):
        pool = Mempool("p", hugepages, n_mbufs=16, mbuf_size=2048)
        assert pool.footprint_bytes() == 32768

    def test_validation(self, hugepages):
        with pytest.raises(ValueError):
            Mempool("p", hugepages, n_mbufs=0)
        with pytest.raises(ValueError):
            Mempool("p", hugepages, n_mbufs=1, mbuf_size=64)
