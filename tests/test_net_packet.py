"""Unit tests for Ethernet frames and MAC addresses."""

import pytest

from repro.net.packet import (
    ETHER_MAX_FRAME,
    ETHER_MIN_FRAME,
    ETHERTYPE_IPV4,
    MacAddress,
    Packet,
)


class TestMacAddress:
    def test_parse_and_str_round_trip(self):
        mac = MacAddress.parse("02:00:00:00:00:2a")
        assert str(mac) == "02:00:00:00:00:2a"

    def test_bytes_round_trip(self):
        mac = MacAddress.parse("aa:bb:cc:dd:ee:ff")
        assert MacAddress.from_bytes(mac.to_bytes()) == mac

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            MacAddress.parse("aa:bb:cc")

    def test_value_range_checked(self):
        with pytest.raises(ValueError):
            MacAddress(1 << 48)
        with pytest.raises(ValueError):
            MacAddress(-1)


class TestPacket:
    def test_wire_len_bounds(self):
        with pytest.raises(ValueError):
            Packet(wire_len=ETHER_MIN_FRAME - 1)
        with pytest.raises(ValueError):
            Packet(wire_len=ETHER_MAX_FRAME + 1)

    def test_payload_len(self):
        packet = Packet(wire_len=64)
        assert packet.payload_len == 64 - 14 - 4

    def test_unique_packet_ids(self):
        a, b = Packet(wire_len=64), Packet(wire_len=64)
        assert a.packet_id != b.packet_id

    def test_response_swaps_macs(self):
        src = MacAddress.parse("02:00:00:00:00:01")
        dst = MacAddress.parse("02:00:00:00:00:02")
        packet = Packet(wire_len=128, src=src, dst=dst)
        response = packet.response_to()
        assert response.src == dst
        assert response.dst == src

    def test_response_echoes_timestamp_and_id(self):
        packet = Packet(wire_len=128, ts_tx=12345, request_id=9)
        response = packet.response_to()
        assert response.ts_tx == 12345
        assert response.request_id == 9

    def test_response_copies_meta(self):
        packet = Packet(wire_len=128)
        packet.meta["epoch"] = 3
        response = packet.response_to()
        assert response.meta["epoch"] == 3
        response.meta["epoch"] = 4
        assert packet.meta["epoch"] == 3   # a copy, not an alias

    def test_response_can_resize(self):
        packet = Packet(wire_len=1518)
        assert packet.response_to(wire_len=64).wire_len == 64

    def test_serialize_parse_round_trip(self):
        src = MacAddress.parse("02:00:00:00:00:01")
        dst = MacAddress.parse("02:00:00:00:00:02")
        packet = Packet(wire_len=256, src=src, dst=dst,
                        ethertype=ETHERTYPE_IPV4, data=b"hello" * 10)
        raw = packet.to_bytes()
        parsed = Packet.from_bytes(raw)
        assert parsed.src == src
        assert parsed.dst == dst
        assert parsed.ethertype == ETHERTYPE_IPV4
        assert parsed.data[:50] == b"hello" * 10

    def test_timestamp_embedded_at_offset(self):
        packet = Packet(wire_len=128, ts_tx=0xDEADBEEF, ts_offset=8)
        raw = packet.to_bytes()
        parsed = Packet.from_bytes(raw, has_timestamp=True, ts_offset=8)
        assert parsed.ts_tx == 0xDEADBEEF

    def test_truncated_frame_rejected(self):
        with pytest.raises(ValueError):
            Packet.from_bytes(b"\x00" * 10)

    def test_to_bytes_without_payload_synthesizes(self):
        packet = Packet(wire_len=64)
        raw = packet.to_bytes()
        assert len(raw) == 64 - 4   # CRC not serialized
