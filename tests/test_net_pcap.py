"""Unit tests for the PCAP reader/writer."""

import struct

import pytest

from repro.net.pcap import (
    LINKTYPE_ETHERNET,
    PCAP_MAGIC_US,
    PcapReader,
    PcapRecord,
    PcapWriter,
)


def test_write_read_round_trip(tmp_path):
    path = tmp_path / "t.pcap"
    frames = [(1000, b"\x01" * 64), (2500, b"\x02" * 128),
              (9999, b"\x03" * 1514)]
    with PcapWriter(path) as writer:
        for ts, data in frames:
            writer.write(ts, data)
    records = PcapReader(path).read_all()
    assert [(r.ts_ns, r.data) for r in records] == frames


def test_header_fields(tmp_path):
    path = tmp_path / "t.pcap"
    with PcapWriter(path) as writer:
        writer.write(0, b"\x00" * 64)
    reader = PcapReader(path)
    assert reader.linktype == LINKTYPE_ETHERNET
    assert reader.version_major == 2
    assert reader.version_minor == 4


def test_timestamps_preserve_ns_resolution(tmp_path):
    path = tmp_path / "t.pcap"
    with PcapWriter(path) as writer:
        writer.write(1_234_567_891, b"\x00" * 64)   # 1.234... seconds
    record = PcapReader(path).read_all()[0]
    assert record.ts_ns == 1_234_567_891


def test_snaplen_truncates(tmp_path):
    path = tmp_path / "t.pcap"
    with PcapWriter(path, snaplen=100) as writer:
        writer.write(0, b"\xab" * 500)
    record = PcapReader(path).read_all()[0]
    assert len(record.data) == 100


def test_reads_microsecond_big_endian_files(tmp_path):
    """tcpdump on a big-endian host writes >-ordered us-resolution files."""
    path = tmp_path / "be.pcap"
    data = b"\x11" * 60
    header = struct.pack(">IHHiIII", PCAP_MAGIC_US, 2, 4, 0, 0, 65535,
                         LINKTYPE_ETHERNET)
    record = struct.pack(">IIII", 1, 500, len(data), len(data)) + data
    path.write_bytes(header + record)
    records = PcapReader(path).read_all()
    assert records[0].ts_ns == 1 * 10**9 + 500 * 1000
    assert records[0].data == data


def test_bad_magic_rejected(tmp_path):
    path = tmp_path / "bad.pcap"
    path.write_bytes(b"\x00" * 64)
    with pytest.raises(ValueError):
        PcapReader(path)


def test_truncated_file_rejected(tmp_path):
    path = tmp_path / "short.pcap"
    path.write_bytes(b"\xd4\xc3\xb2\xa1")
    with pytest.raises(ValueError):
        PcapReader(path)


def test_truncated_record_rejected(tmp_path):
    path = tmp_path / "trunc.pcap"
    with PcapWriter(path) as writer:
        writer.write(0, b"\x00" * 64)
    raw = path.read_bytes()
    path.write_bytes(raw[:-10])
    with pytest.raises(ValueError):
        PcapReader(path).read_all()


def test_write_after_close_rejected(tmp_path):
    path = tmp_path / "t.pcap"
    writer = PcapWriter(path)
    writer.close()
    with pytest.raises(ValueError):
        writer.write(0, b"\x00" * 64)


def test_records_written_counter(tmp_path):
    path = tmp_path / "t.pcap"
    with PcapWriter(path) as writer:
        for _ in range(7):
            writer.write(0, b"\x00" * 64)
        assert writer.records_written == 7


def test_empty_capture(tmp_path):
    path = tmp_path / "empty.pcap"
    PcapWriter(path).close()
    assert PcapReader(path).read_all() == []


def test_record_wire_len(tmp_path):
    record = PcapRecord(ts_ns=0, data=b"\x00" * 123)
    assert record.wire_len == 123
