"""Failure paths of the parallel sweep executor.

The ``_poison_*`` sweep point kinds inject worker misbehaviour without
running any simulation:

- ``_poison_raise``       the handler raises (in worker and in-process)
- ``_poison_hang``        the handler sleeps forever (timeout path)
- ``_poison_hang_once``   hangs on its first attempt only (timeout ->
                          clean retry succeeds)
- ``_poison_child_crash`` hard ``os._exit`` in a worker, succeeds
                          in-process (crash -> retry -> serial fallback)
- ``_poison_crash``       hard ``os._exit`` in a worker AND raises
                          in-process (the unrecoverable point)

Cache behaviour (hit / miss / corrupted entry) is covered here too since
it is the other recovery path, as are the persistent-worker batch paths:
a crash mid-batch must requeue the unreported batch-mates, a warm-up
checkpoint that fails to restore *inside a worker* must be discarded and
rebuilt there, and no failure mode may ever leave a torn or wrong entry
in the result cache.
"""

import dataclasses
import json

import pytest

from repro.harness.parallel import (
    CACHE_VERSION,
    ResultCache,
    SweepExecutor,
    SweepPoint,
    SweepPointError,
    SweepTimeoutError,
    cache_key,
    fixed_load_point,
)
from repro.harness.runner import _fixed_load_plan, build_node
from repro.harness.warmup_cache import WarmupCache, warmup_key
from repro.system.presets import gem5_default


def _poison(kind: str, n: int = 1):
    return [SweepPoint(kind=kind, app=f"p{i}") for i in range(n)]


def _sim_points(n: int, n_packets: int = 200):
    config = gem5_default()
    return [fixed_load_point(config, "testpmd", 256, 5.0 + 2.0 * i,
                             n_packets=n_packets) for i in range(n)]


class TestWorkerExceptions:
    def test_worker_exception_propagates(self):
        ex = SweepExecutor(jobs=2, timeout_s=30.0)
        with pytest.raises(SweepPointError, match="injected exception"):
            ex.run(_poison("_poison_raise", 2))

    def test_serial_exception_propagates(self):
        ex = SweepExecutor(jobs=1)
        with pytest.raises(SweepPointError, match="injected exception"):
            ex.run(_poison("_poison_raise", 1))


class TestTimeouts:
    def test_hanging_point_times_out(self):
        ex = SweepExecutor(jobs=2, timeout_s=0.4, max_retries=1)
        with pytest.raises(SweepTimeoutError, match="no result within"):
            ex.run(_poison("_poison_hang", 2))
        # Each hanging point is retried once before the error surfaces,
        # so at least two timeouts and one retry must have been counted.
        assert ex.stats.timeouts >= 2
        assert ex.stats.retries >= 1

    def test_timeout_does_not_leak_workers(self):
        ex = SweepExecutor(jobs=2, timeout_s=0.3, max_retries=0)
        with pytest.raises(SweepTimeoutError):
            ex.run(_poison("_poison_hang", 2))
        # The shutdown path terminated everything; a later run on the
        # same executor still works (with a budget real sims fit in).
        ex.timeout_s = 120.0
        results = ex.run(_sim_points(2))
        assert len(results) == 2


class TestCrashes:
    def test_crash_retries_then_falls_back_to_serial(self):
        ex = SweepExecutor(jobs=2, timeout_s=30.0, max_retries=1)
        results = ex.run(_poison("_poison_child_crash", 2))
        assert all(r["ok"] for r in results)
        assert all(r["via"] == "serial-fallback" for r in results)
        # Both points: initial crash + one retry crash, then fallback.
        assert ex.stats.crashes == 4
        assert ex.stats.retries == 2
        assert ex.stats.serial_fallbacks == 2

    def test_unrecoverable_crash_raises(self):
        ex = SweepExecutor(jobs=2, timeout_s=30.0, max_retries=1)
        with pytest.raises(SweepPointError, match="crashes everywhere"):
            ex.run(_poison("_poison_crash", 1) + _poison(
                "_poison_child_crash", 1))

    def test_healthy_points_survive_a_poisoned_neighbour(self):
        points = _sim_points(2) + _poison("_poison_child_crash", 1)
        ex = SweepExecutor(jobs=2, timeout_s=60.0, max_retries=1)
        results = ex.run(points)
        serial = SweepExecutor(jobs=1).run(_sim_points(2))
        for got, want in zip(results[:2], serial):
            assert dataclasses.asdict(got) == dataclasses.asdict(want)
        assert results[2]["via"] == "serial-fallback"


class TestCache:
    def test_miss_then_hit(self, tmp_path):
        points = _sim_points(2)
        first = SweepExecutor(jobs=1, cache_dir=tmp_path)
        cold = first.run(points)
        assert first.stats.cache_misses == 2
        assert first.stats.executed == 2

        second = SweepExecutor(jobs=1, cache_dir=tmp_path)
        warm = second.run(points)
        assert second.stats.cache_hits == 2
        assert second.stats.executed == 0
        for got, want in zip(warm, cold):
            assert dataclasses.asdict(got) == dataclasses.asdict(want)

    def test_key_change_misses(self, tmp_path):
        point = _sim_points(1)[0]
        SweepExecutor(jobs=1, cache_dir=tmp_path).run([point])
        reseeded = dataclasses.replace(point, seed=99)
        ex = SweepExecutor(jobs=1, cache_dir=tmp_path)
        ex.run([reseeded])
        assert ex.stats.cache_hits == 0
        assert ex.stats.executed == 1

    def test_corrupted_entry_is_discarded_and_recomputed(self, tmp_path):
        point = _sim_points(1)[0]
        baseline = SweepExecutor(jobs=1, cache_dir=tmp_path).run([point])[0]
        path = ResultCache(tmp_path).path_for(cache_key(point))
        assert path.exists()
        path.write_text("{ not json at all")

        ex = SweepExecutor(jobs=1, cache_dir=tmp_path)
        healed = ex.run([point])[0]
        assert ex.stats.cache_corrupt >= 1
        assert ex.stats.executed == 1
        assert dataclasses.asdict(healed) == dataclasses.asdict(baseline)
        # The entry was rewritten and is valid again.
        blob = json.loads(path.read_text())
        assert blob["version"] == CACHE_VERSION

    def test_wrong_version_entry_is_treated_as_corrupt(self, tmp_path):
        point = _sim_points(1)[0]
        SweepExecutor(jobs=1, cache_dir=tmp_path).run([point])
        path = ResultCache(tmp_path).path_for(cache_key(point))
        blob = json.loads(path.read_text())
        blob["version"] = CACHE_VERSION + 1
        path.write_text(json.dumps(blob))

        ex = SweepExecutor(jobs=1, cache_dir=tmp_path)
        ex.run([point])
        assert ex.stats.cache_corrupt >= 1
        assert ex.stats.executed == 1

    def test_parallel_run_populates_cache_for_serial(self, tmp_path):
        points = _sim_points(3)
        par = SweepExecutor(jobs=2, cache_dir=tmp_path, timeout_s=120.0)
        cold = par.run(points)
        ser = SweepExecutor(jobs=1, cache_dir=tmp_path)
        warm = ser.run(points)
        assert ser.stats.executed == 0
        assert ser.stats.cache_hits == 3
        for got, want in zip(warm, cold):
            assert dataclasses.asdict(got) == dataclasses.asdict(want)


class TestPersistentWorkerBatches:
    """Eight unique points at ``jobs=2`` gives ``batch_size=2``, so a
    worker death mid-batch has an unreported batch-mate to account for:
    the in-flight point is charged with the crash, the batch-mate is
    merely requeued at its current attempt and re-executed elsewhere."""

    def test_crash_mid_batch_requeues_batch_mates(self):
        sims = _sim_points(7, n_packets=120)
        # Index 4 heads the third dispatched batch [4, 5]: the worker
        # announces it, dies, and point 5 (undispatched outcome) must
        # survive via requeue — not inherit the crash.
        points = sims[:4] + _poison("_poison_child_crash", 1) + sims[4:]
        ex = SweepExecutor(jobs=2, timeout_s=120.0, max_retries=0)
        results = ex.run(points)

        serial = SweepExecutor(jobs=1).run(sims)
        for got, want in zip(results[:4] + results[5:], serial):
            assert dataclasses.asdict(got) == dataclasses.asdict(want)
        assert results[4]["via"] == "serial-fallback"
        # Exactly one crash, charged to the poisoned point; its
        # batch-mate was requeued without burning a retry or fallback.
        assert ex.stats.crashes == 1
        assert ex.stats.retries == 0
        assert ex.stats.serial_fallbacks == 1
        assert ex.stats.executed == len(points)

    def test_crash_mid_fabric_batch_requeues_batch_mates(self):
        """Same batch-mate guarantee with fabric points in the batches:
        a worker dying mid-fabric-batch costs exactly the poisoned
        point, and every fabric result still matches the serial
        reference bit-for-bit."""
        from repro.harness.parallel import fabric_point

        config = gem5_default()
        fabrics = [fabric_point(config, "leaf-spine", "dpdk",
                                pattern="uniform", load=0.2 + 0.1 * i,
                                n_flows=60) for i in range(7)]
        points = fabrics[:4] + _poison("_poison_child_crash", 1) \
            + fabrics[4:]
        ex = SweepExecutor(jobs=2, timeout_s=120.0, max_retries=0)
        results = ex.run(points)

        serial = SweepExecutor(jobs=1).run(fabrics)
        for got, want in zip(results[:4] + results[5:], serial):
            assert dataclasses.asdict(got) == dataclasses.asdict(want)
        assert results[4]["via"] == "serial-fallback"
        assert ex.stats.crashes == 1
        assert ex.stats.retries == 0
        assert ex.stats.serial_fallbacks == 1
        assert ex.stats.executed == len(points)


class TestTimeoutRetry:
    def test_timeout_then_clean_retry_succeeds(self, tmp_path):
        """A point that hangs once times out, the pool is rebuilt, and
        the retry on a fresh worker completes — the sweep succeeds with
        the timeout and retry counted, no fallback, no error.  The
        second hanging point rides the rebuild: requeued uncharged, it
        finds its flag already stamped and just succeeds."""
        points = [
            SweepPoint(kind="_poison_hang_once", app=f"h{i}",
                       app_options={"flag": str(tmp_path / f"flag{i}")})
            for i in range(2)
        ]
        ex = SweepExecutor(jobs=2, timeout_s=1.0, max_retries=1)
        results = ex.run(points)
        assert [r["via"] for r in results] == ["retry", "retry"]
        assert ex.stats.timeouts == 1
        assert ex.stats.retries == 1
        assert ex.stats.crashes == 0
        assert ex.stats.serial_fallbacks == 0


class TestWorkerWarmRestore:
    def test_restore_failure_in_worker_recovers(self, tmp_path):
        """A digest-valid warm-up entry whose payload cannot restore
        (schema drift from another code version) is discarded *inside a
        worker*: the worker re-warms from scratch, replaces the entry,
        and the sweep's results stay bit-identical to a no-cache run."""
        config = gem5_default()
        points = [fixed_load_point(config, "testpmd", 256, rate,
                                   n_packets=200) for rate in (5.0, 7.0)]
        serial = SweepExecutor(jobs=1).run(points)

        # Forge a valid-looking entry under the sweep's warm-up key
        # whose checkpoint belongs to a different application.
        warm_dir = tmp_path / "warm"
        cache = WarmupCache(warm_dir)
        seed = points[0].effective_seed
        impostor_node = build_node(config, "touchfwd", seed=seed)
        impostor_node.attach_loadgen()
        impostor_node.start()
        impostor_node.warmup_and_reset(
            _fixed_load_plan(config, 256, True, None))
        impostor = impostor_node.checkpoint()
        impostor_app = impostor["meta"]["app"]
        plan = _fixed_load_plan(config, 256, True, None)
        probe = build_node(config, "testpmd", seed=seed)
        key = warmup_key(config, "testpmd", 256, None, plan, seed,
                         probe.sim.tracer._options_signature())
        cache.put(key, impostor)

        ex = SweepExecutor(jobs=2, timeout_s=120.0,
                           warmup_cache_dir=warm_dir)
        results = ex.run(points)
        for got, want in zip(results, serial):
            assert dataclasses.asdict(got) == dataclasses.asdict(want)
        assert ex.stats.crashes == 0
        assert ex.stats.serial_fallbacks == 0

        # The workers rebuilt the entry: the on-disk snapshot now
        # belongs to the right application.
        doc = json.loads(cache.path_for(key).read_text())
        assert doc["meta"]["app"] != impostor_app
        # And a later run restoring it still matches bit-for-bit.
        again = SweepExecutor(jobs=1, warmup_cache_dir=warm_dir)
        for got, want in zip(again.run(points), serial):
            assert dataclasses.asdict(got) == dataclasses.asdict(want)


class TestCacheIntegrityUnderFailure:
    def test_cache_never_poisoned_by_worker_failures(self, tmp_path):
        """Worker crashes (and the serial fallback they trigger) must
        never leave a torn, stale, or undecodable result-cache entry:
        every file decodes, no temp files survive, and a warm replay is
        pure cache hits, bit-identical to the first run."""
        cache_dir = tmp_path / "results"
        points = _sim_points(3, n_packets=120) + _poison(
            "_poison_child_crash", 1)
        ex = SweepExecutor(jobs=2, timeout_s=120.0, max_retries=0,
                           cache_dir=cache_dir)
        first = ex.run(points)
        assert ex.stats.crashes == 1
        assert ex.stats.serial_fallbacks == 1

        entries = sorted(cache_dir.glob("*.json"))
        assert len(entries) == len(points)
        assert not list(cache_dir.glob("*.tmp"))
        cache = ResultCache(cache_dir)
        for path in entries:
            assert cache.get(path.stem) is not None
        assert cache.corrupt_entries == 0

        replay = SweepExecutor(jobs=2, cache_dir=cache_dir)
        warm = replay.run(points)
        assert replay.stats.executed == 0
        assert replay.stats.cache_hits == len(points)
        for got, want in zip(warm, first):
            if dataclasses.is_dataclass(got):
                assert dataclasses.asdict(got) == dataclasses.asdict(want)
            else:
                assert got == want


class TestConstruction:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="jobs"):
            SweepExecutor(jobs=0)
