"""Unit tests for the latency tracker."""

import pytest

from repro.loadgen.latency import LatencyTracker
from repro.sim.ticks import us_to_ticks


def test_record_returns_microseconds():
    tracker = LatencyTracker("t")
    rtt = tracker.record(0, us_to_ticks(400))
    assert rtt == pytest.approx(400.0)


def test_summary_statistics():
    tracker = LatencyTracker("t")
    for us in (100, 200, 300):
        tracker.record(0, us_to_ticks(us))
    summary = tracker.summary()
    assert summary["count"] == 3
    assert summary["mean"] == pytest.approx(200.0)
    assert summary["median"] == pytest.approx(200.0)
    assert summary["min"] == pytest.approx(100.0)
    assert summary["max"] == pytest.approx(300.0)


def test_histogram_populated():
    tracker = LatencyTracker("t", histogram_max_us=1000.0, nbuckets=10)
    tracker.record(0, us_to_ticks(150))
    assert tracker.histogram.buckets[1] == 1


def test_histogram_overflow_for_huge_latency():
    tracker = LatencyTracker("t", histogram_max_us=100.0)
    tracker.record(0, us_to_ticks(500))
    assert tracker.histogram.overflow == 1


def test_negative_rtt_rejected():
    tracker = LatencyTracker("t")
    with pytest.raises(ValueError):
        tracker.record(100, 50)


def test_reset():
    tracker = LatencyTracker("t")
    tracker.record(0, us_to_ticks(100))
    tracker.reset()
    assert tracker.summary()["count"] == 0
    assert tracker.histogram.count == 0
