"""Invariant verdicts travelling through the sweep executor.

A sweep point whose simulation violates a conservation invariant must
fail the sweep with :class:`SweepInvariantError` *naming the offending
point* — not a generic worker traceback — on both the serial and the
parallel path.  The ``_poison_invariant`` kind injects the violation
without running a simulation; the end-to-end case corrupts a real
component inside a real run.
"""

import pytest

from repro.harness.parallel import (
    SweepExecutor,
    SweepInvariantError,
    SweepPoint,
    SweepPointError,
    fixed_load_point,
)
from repro.nic.fifo import PacketByteFifo
from repro.system.presets import gem5_default


def _poison_points(n=1):
    return [SweepPoint(kind="_poison_invariant", app=f"p{i}")
            for i in range(n)]


class TestVerdictPropagation:
    def test_is_a_sweep_point_error(self):
        # Callers catching the generic failure still see invariant ones.
        assert issubclass(SweepInvariantError, SweepPointError)

    def test_serial_path_names_the_point(self):
        ex = SweepExecutor(jobs=1)
        with pytest.raises(SweepInvariantError) as info:
            ex.run(_poison_points())
        message = str(info.value)
        assert "_poison_invariant p0" in message
        assert "conservation failure" in message

    def test_parallel_path_names_the_point(self):
        ex = SweepExecutor(jobs=2, timeout_s=60.0)
        with pytest.raises(SweepInvariantError) as info:
            ex.run(_poison_points(3))
        assert "_poison_invariant" in str(info.value)
        assert "conservation failure" in str(info.value)

    def test_violation_is_not_retried(self):
        # A deterministic simulation re-violates on every retry; the
        # executor must fail fast instead of burning attempts.
        ex = SweepExecutor(jobs=2, timeout_s=60.0, max_retries=3)
        with pytest.raises(SweepInvariantError):
            ex.run(_poison_points(2))
        assert ex.stats.retries == 0


class TestEndToEndVerdict:
    @pytest.fixture()
    def _corrupt_fifo(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "final")
        orig = PacketByteFifo.try_enqueue
        corrupted = {"done": False}

        def mutant(self, packet):
            ok = orig(self, packet)
            if ok and not corrupted["done"]:
                corrupted["done"] = True
                self.enqueued += 1
            return ok

        monkeypatch.setattr(PacketByteFifo, "try_enqueue", mutant)

    def test_real_violation_fails_sweep_with_label(self, _corrupt_fifo):
        point = fixed_load_point(gem5_default(), "testpmd", 256, 5.0,
                                 n_packets=120)
        ex = SweepExecutor(jobs=1)
        with pytest.raises(SweepInvariantError) as info:
            ex.run([point])
        message = str(info.value)
        # The verdict names the point and the violated rule.
        assert point.describe() in message
        assert "fifo" in message
