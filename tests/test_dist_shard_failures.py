"""Failure semantics of the multiprocess shard runner.

A shard that dies mid-epoch must surface as a :class:`ShardCrashError`
naming the dead shard — promptly (the coordinator polls liveness while
waiting on responses, it does not sit out a full command timeout) — and
teardown must leave neither deadlocked peers nor orphan processes.
"""

import multiprocessing
import time

import pytest

from repro.dist import ShardCrashError
from repro.dist.shard import run_fabric_sharded
from repro.system.presets import gem5_default


def _shard_children():
    return [p for p in multiprocessing.active_children()
            if p.name.startswith("repro-shard-")]


def _run_with_crash(crash, shards=2):
    return run_fabric_sharded(
        gem5_default(), "fat-tree-k4", "dpdk", pattern="uniform",
        load=0.35, n_flows=100, seed=0, shards=shards, _crash=crash)


def test_crash_mid_epoch_raises_named_error_without_orphans():
    t0 = time.monotonic()
    with pytest.raises(ShardCrashError) as excinfo:
        _run_with_crash(crash=(1, 5))
    elapsed = time.monotonic() - t0

    # The error identifies the shard that died, not just "a failure".
    assert excinfo.value.shard_id == 1
    assert "shard 1" in str(excinfo.value)

    # Bounded: liveness polling catches the death within seconds; the
    # surviving peer is torn down without waiting out its 60s
    # peer-receive backstop.
    assert elapsed < 30.0, f"crash detection took {elapsed:.1f}s"

    # No orphans: every worker process is joined or killed.
    deadline = time.monotonic() + 5.0
    while _shard_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert _shard_children() == []


def test_crash_in_first_epoch_of_four_shards():
    with pytest.raises(ShardCrashError) as excinfo:
        _run_with_crash(crash=(3, 0), shards=4)
    assert excinfo.value.shard_id == 3
    deadline = time.monotonic() + 5.0
    while _shard_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert _shard_children() == []


def test_clean_run_leaves_no_processes_behind():
    result = _run_with_crash(crash=None)
    assert result.flows_completed > 0
    deadline = time.monotonic() + 5.0
    while _shard_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert _shard_children() == []
