"""Failure-injection tests: the simulator degrades, it does not crash."""

from repro.apps.testpmd import TestPmd as PmdApp  # noqa: N811
from repro.apps.touchfwd import TouchFwd
from repro.loadgen.ether_load_gen import SyntheticConfig
from repro.system.node import DpdkNode
from repro.system.presets import gem5_default


class TestMempoolStarvation:
    def _starved_node(self):
        """A node whose mempool is far too small for its rings."""
        from dataclasses import replace
        base = gem5_default()
        config = base.variant(
            nic=replace(base.nic, rx_ring_size=16, tx_ring_size=16),
            mempool_mbufs=8)
        node = DpdkNode(config, seed=31)
        # Defeat the builder's covers-the-rings floor to force starvation.
        from repro.dpdk.mempool import Mempool
        node.mempool = Mempool("tiny", node.hugepages, n_mbufs=8)
        node.pmd.mempool = node.mempool
        return node

    def test_starvation_stalls_instead_of_crashing(self):
        node = self._starved_node()
        node.install_app(TouchFwd)   # slow consumer
        loadgen = node.attach_loadgen()
        node.start()
        loadgen.start_synthetic(SyntheticConfig(packet_size=1518,
                                                rate_gbps=40.0, count=3000))
        node.run_us(2000.0)          # must not raise
        assert node.nic.stat_buffer_starved.value > 0

    def test_starved_node_still_makes_progress(self):
        node = self._starved_node()
        node.install_app(PmdApp)
        loadgen = node.attach_loadgen()
        node.start()
        loadgen.start_synthetic(SyntheticConfig(packet_size=256,
                                                rate_gbps=20.0, count=3000))
        node.run_us(3000.0)
        # The pool recycles through TX completions: forwarding continues.
        assert node.app.packets_forwarded > 100

    def test_buffers_conserved_under_starvation(self):
        node = self._starved_node()
        node.install_app(PmdApp)
        loadgen = node.attach_loadgen()
        node.start()
        loadgen.start_synthetic(SyntheticConfig(packet_size=256,
                                                rate_gbps=20.0, count=1000))
        node.run_us(3000.0)
        loadgen.stop()
        node.run_us(3000.0)
        assert node.mempool.in_use == 0   # every mbuf came home


class TestMisbehavingTraffic:
    def test_undersized_payload_frames_do_not_crash_parsers(self):
        """Garbage traffic into a parsing server must be counted, not
        fatal (exercised for memcached in the app tests; here for the
        generic forwarding path with byte-carrying frames)."""
        node = DpdkNode(gem5_default(), seed=32)
        node.install_app(PmdApp)
        loadgen = node.attach_loadgen()
        node.start()
        loadgen.start_synthetic(SyntheticConfig(packet_size=64,
                                                rate_gbps=1.0, count=50,
                                                protocol="udp"))
        node.run_us(2000.0)
        assert node.app.packets_processed == 50

    def test_zero_count_loadgen_is_a_noop(self):
        node = DpdkNode(gem5_default(), seed=33)
        node.install_app(PmdApp)
        loadgen = node.attach_loadgen()
        node.start()
        loadgen.start_synthetic(SyntheticConfig(packet_size=64,
                                                rate_gbps=1.0, count=1))
        node.run_us(1000.0)
        assert loadgen.tx_packets == 1
