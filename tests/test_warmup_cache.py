"""Warm-up cache behaviour under failure: corruption, version drift,
and restore failures must all degrade to re-simulating the warm-up —
a damaged cache can cost time but can never change results.
"""

import dataclasses
import json
import os

import pytest

from repro.harness.parallel import SweepExecutor, fixed_load_point
from repro.harness.runner import (
    _fixed_load_plan,
    build_node,
    run_fixed_load,
)
from repro.harness.warmup_cache import (
    WARMUP_CACHE_ENV,
    WarmupCache,
    warmup_cache_from_env,
    warmup_key,
)
from repro.sim.checkpoint import CHECKPOINT_FORMAT, compute_digest
from repro.system.presets import gem5_default, with_core


def _reference(config, **kw):
    return dataclasses.asdict(run_fixed_load(config, "testpmd", 256, 8.0,
                                             n_packets=600, **kw))


def _entry_path(cache):
    entries = sorted(cache.root.glob("warmup-*.json"))
    assert len(entries) == 1
    return entries[0]


class TestKeying:
    def test_key_ignores_nothing_it_should_depend_on(self):
        config = gem5_default()
        plan = _fixed_load_plan(config, 256, True, None)
        sig = {"enabled": False}
        base = warmup_key(config, "testpmd", 256, None, plan, 0, sig)
        assert base == warmup_key(config, "testpmd", 256, None, plan, 0,
                                  sig)
        assert base != warmup_key(config, "touchfwd", 256, None, plan, 0,
                                  sig)
        assert base != warmup_key(config, "testpmd", 512, None, plan, 0,
                                  sig)
        assert base != warmup_key(config, "testpmd", 256, None, plan, 1,
                                  sig)
        assert base != warmup_key(config, "testpmd", 256,
                                  {"proc_time_ns": 40.0}, plan, 0, sig)
        assert base != warmup_key(with_core(config, ooo=False), "testpmd",
                                  256, None, plan, 0, sig)
        assert base != warmup_key(config, "testpmd", 256, None, plan, 0,
                                  {"enabled": True})

    def test_key_excludes_the_store_option(self):
        config = gem5_default()
        plan = _fixed_load_plan(config, 256, True, None)
        sig = {"enabled": False}
        assert warmup_key(config, "testpmd", 256, {"store": object()},
                          plan, 0, sig) == \
            warmup_key(config, "testpmd", 256, None, plan, 0, sig)


class TestCorruptionRecovery:
    def test_truncated_entry_is_deleted_and_resimulated(self, tmp_path):
        config = gem5_default()
        cache = WarmupCache(tmp_path)
        expected = _reference(config)
        _reference(config, warmup_cache=cache)
        path = _entry_path(cache)
        path.write_text(path.read_text()[:100])

        result = _reference(config, warmup_cache=cache)
        assert result == expected
        assert cache.corrupt_entries == 1
        assert cache.hits == 0
        # The corrupt entry was replaced by a good one.
        assert cache.saves == 2
        result = _reference(config, warmup_cache=cache)
        assert result == expected
        assert cache.hits == 1

    def test_bitflipped_entry_fails_the_digest_and_recovers(self,
                                                            tmp_path):
        config = gem5_default()
        cache = WarmupCache(tmp_path)
        expected = _reference(config, warmup_cache=cache)
        path = _entry_path(cache)
        doc = json.loads(path.read_text())
        doc["sim"]["events"]["now"] += 1
        path.write_text(json.dumps(doc))

        assert _reference(config, warmup_cache=cache) == expected
        assert cache.corrupt_entries == 1

    def test_version_mismatched_entry_misses(self, tmp_path):
        config = gem5_default()
        cache = WarmupCache(tmp_path)
        expected = _reference(config, warmup_cache=cache)
        path = _entry_path(cache)
        doc = json.loads(path.read_text())
        doc["format"] = CHECKPOINT_FORMAT + 1
        doc["digest"] = compute_digest(doc)   # digest valid, format not
        path.write_text(json.dumps(doc))

        assert _reference(config, warmup_cache=cache) == expected
        assert cache.corrupt_entries == 1
        assert not path.exists() or cache.saves == 2

    def test_restore_failure_discards_and_rebuilds(self, tmp_path):
        """A digest-valid checkpoint whose *content* cannot restore
        (schema drift from another code version): the runner discards
        it, rebuilds the node, and warms up from scratch."""
        config = gem5_default()
        cache = WarmupCache(tmp_path)
        expected = _reference(config)

        # Forge a valid-looking entry under testpmd's key whose payload
        # belongs to a different application.
        node = build_node(config, "touchfwd", seed=0)
        node.attach_loadgen()
        node.start()
        node.warmup_and_reset(_fixed_load_plan(config, 256, True, None))
        impostor = node.checkpoint()
        plan = _fixed_load_plan(config, 256, True, None)
        probe = build_node(config, "testpmd", seed=0)
        key = warmup_key(config, "testpmd", 256, None, plan, 0,
                         probe.sim.tracer._options_signature())
        cache.put(key, impostor)

        result = _reference(config, warmup_cache=cache)
        assert result == expected
        assert cache.hits == 1          # the entry *loaded*...
        assert not cache.path_for(key).exists() or cache.saves == 2
        # ...but the fresh warm-up overwrote it with a good snapshot.
        assert _reference(config, warmup_cache=cache) == expected


class TestEnvironmentPlumbing:
    def test_from_env_unset_is_none(self, monkeypatch):
        monkeypatch.delenv(WARMUP_CACHE_ENV, raising=False)
        assert warmup_cache_from_env() is None

    def test_from_env_points_at_directory(self, monkeypatch, tmp_path):
        monkeypatch.setenv(WARMUP_CACHE_ENV, str(tmp_path / "warm"))
        cache = warmup_cache_from_env()
        assert cache is not None
        assert cache.root == tmp_path / "warm"
        assert cache.root.is_dir()

    def test_runner_picks_up_env_cache(self, monkeypatch, tmp_path):
        monkeypatch.setenv(WARMUP_CACHE_ENV, str(tmp_path))
        config = gem5_default()
        expected = _reference(config)
        assert _reference(config) == expected
        assert list(tmp_path.glob("warmup-*.json")), \
            "runner ignored REPRO_WARMUP_CACHE"

    def test_executor_exports_and_restores_env(self, monkeypatch,
                                               tmp_path):
        monkeypatch.delenv(WARMUP_CACHE_ENV, raising=False)
        ex = SweepExecutor(jobs=1, warmup_cache_dir=tmp_path)
        point = fixed_load_point(gem5_default(), "testpmd", 256, 8.0,
                                 n_packets=600)
        with_cache = ex.run([point])[0]
        assert os.environ.get(WARMUP_CACHE_ENV) is None, \
            "executor leaked REPRO_WARMUP_CACHE"
        assert list(tmp_path.glob("warmup-*.json"))
        plain = SweepExecutor(jobs=1).run([point])[0]
        assert dataclasses.asdict(with_cache) == dataclasses.asdict(plain)

    def test_executor_shares_snapshot_across_loads(self, tmp_path):
        config = gem5_default()
        ex = SweepExecutor(jobs=1, warmup_cache_dir=tmp_path)
        ex.run([fixed_load_point(config, "testpmd", 256, gbps,
                                 n_packets=600)
                for gbps in (6.0, 8.0, 10.0)])
        # Same rng_label => same effective seed => one shared snapshot.
        assert len(list(tmp_path.glob("warmup-*.json"))) == 1
