"""Unit tests for the address space allocator."""

import pytest

from repro.mem.address import AddressSpace, Region


class TestRegion:
    def test_end(self):
        region = Region("r", base=0x1000, size=0x100)
        assert region.end == 0x1100

    def test_addr_bounds_checked(self):
        region = Region("r", base=0x1000, size=0x100)
        assert region.addr(0) == 0x1000
        assert region.addr(0xFF) == 0x10FF
        with pytest.raises(ValueError):
            region.addr(0x100)
        with pytest.raises(ValueError):
            region.addr(-1)

    def test_wrap_addr_cycles(self):
        region = Region("r", base=0x1000, size=0x100)
        assert region.wrap_addr(0x100) == 0x1000
        assert region.wrap_addr(0x1F0) == 0x10F0

    def test_contains(self):
        region = Region("r", base=0x1000, size=0x100)
        assert region.contains(0x1000)
        assert region.contains(0x10FF)
        assert not region.contains(0x1100)
        assert not region.contains(0xFFF)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            Region("r", base=0, size=0)
        with pytest.raises(ValueError):
            Region("r", base=-1, size=4)


class TestAddressSpace:
    def test_regions_do_not_overlap(self):
        space = AddressSpace()
        a = space.allocate("a", 1000)
        b = space.allocate("b", 1000)
        assert a.end <= b.base

    def test_alignment(self):
        space = AddressSpace(alignment=4096)
        a = space.allocate("a", 100)
        b = space.allocate("b", 100)
        assert a.base % 4096 == 0
        assert b.base % 4096 == 0

    def test_custom_alignment(self):
        space = AddressSpace()
        region = space.allocate("huge", 100, alignment=2 * 1024 * 1024)
        assert region.base % (2 * 1024 * 1024) == 0

    def test_duplicate_names_rejected(self):
        space = AddressSpace()
        space.allocate("a", 100)
        with pytest.raises(ValueError):
            space.allocate("a", 100)

    def test_lookup_by_name(self):
        space = AddressSpace()
        region = space.allocate("a", 100)
        assert space.region("a") is region
        assert "a" in space
        assert "b" not in space
