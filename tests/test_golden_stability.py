"""Bit-identical wiring regression: one traced sweep point vs golden.

The typed-port/topology refactor promises *behaviour-preserving*
re-wiring: the golden file under ``tests/golden/wiring_stability.json``
was captured on the hand-wired assembly, and this test replays the same
traced fixed-load point on the current builder.  Three things must hold
exactly (no tolerances — the harness is deterministic):

- ``SystemConfig.stable_hash()`` — the parallel executor's cache key; a
  drift here silently invalidates every cached sweep result;
- the run's ``trace_digest`` — SHA-256 over the full event trace, i.e.
  every simulated event still happens at the same tick in the same
  order;
- the full result record (drops, latency summary, service rate, ...).

After an *intentional* behaviour change, regenerate with
``REPRO_REGEN_GOLDEN=1 pytest tests/test_golden_stability.py`` and
review the diff like any other code change.
"""

import dataclasses
import json
import os
from pathlib import Path

import pytest

from repro.harness.runner import run_fixed_load
from repro.system.presets import gem5_default

GOLDEN_PATH = Path(__file__).parent / "golden" / "wiring_stability.json"

# The traced point the golden file was captured from.
APP, PACKET_SIZE, GBPS, N_PACKETS, SEED = "testpmd", 256, 10.0, 800, 3


@pytest.fixture()
def golden():
    if not GOLDEN_PATH.exists() and not os.environ.get("REPRO_REGEN_GOLDEN"):
        pytest.fail(f"golden file {GOLDEN_PATH} missing; generate it with "
                    "REPRO_REGEN_GOLDEN=1")
    if GOLDEN_PATH.exists():
        return json.loads(GOLDEN_PATH.read_text())
    return None


def _run_traced_point(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE", "1")
    monkeypatch.delenv("REPRO_TRACE_PATH", raising=False)
    config = gem5_default()
    result = run_fixed_load(config, APP, PACKET_SIZE, GBPS,
                            n_packets=N_PACKETS, seed=SEED)
    return config, result


def test_wiring_is_behaviour_preserving(monkeypatch, golden):
    config, result = _run_traced_point(monkeypatch)
    blob = {
        "config_stable_hash": config.stable_hash(),
        "trace_digest": result.trace_digest,
        "result": dataclasses.asdict(result),
    }
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_PATH.write_text(
            json.dumps(blob, indent=2, sort_keys=True) + "\n")
        golden = blob
    assert blob["config_stable_hash"] == golden["config_stable_hash"], \
        "SystemConfig.stable_hash() drifted: cached sweep results invalid"
    assert blob["trace_digest"] == golden["trace_digest"], \
        "trace digest drifted: the event stream is no longer bit-identical"
    assert blob["result"] == golden["result"]


def test_trace_digest_recorded_in_result(monkeypatch, golden):
    """The digest in the result record is the one the golden file pins —
    equal-(config, seed) runs must reproduce it."""
    assert golden is not None
    assert golden["result"]["trace_digest"] == golden["trace_digest"]
    assert len(golden["trace_digest"]) == 64   # SHA-256 hex
