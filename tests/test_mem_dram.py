"""Unit tests for the DRAM model."""

import pytest

from repro.mem.dram import DramConfig, DramModel


def make_dram(channels=2, banks=4, row=2048, bw=19.2):
    return DramModel(DramConfig(channels=channels, banks_per_channel=banks,
                                row_size=row,
                                channel_bw_bytes_per_ns=bw))


def test_first_access_is_row_miss():
    dram = make_dram()
    latency = dram.access(0, 0.0)
    assert dram.row_misses == 1
    assert latency >= dram.config.t_row_miss_ns


def test_same_row_hits():
    dram = make_dram(channels=1)
    dram.access(0, 0.0)
    dram.access(64, 1000.0)
    assert dram.row_hits == 1


def test_row_hit_is_faster():
    dram = make_dram(channels=1)
    miss = dram.access(0, 0.0)
    hit = dram.access(64, 1e6)
    assert hit < miss


def test_different_rows_same_bank_conflict():
    dram = make_dram(channels=1, banks=4, row=2048)
    dram.access(0, 0.0)
    # Same bank = row number congruent mod banks; row stride is
    # row_size * channels bytes.
    conflict_addr = 2048 * 4
    dram.access(conflict_addr, 1e6)
    assert dram.row_misses == 2


def test_channel_interleave_at_line_granularity():
    dram = make_dram(channels=2)
    cfg = dram.config
    ch0 = dram._map(0)[0]
    ch1 = dram._map(cfg.line_size)[0]
    assert ch0 != ch1


def test_more_channels_spread_load():
    dram = make_dram(channels=4)
    channels = {dram._map(i * 64)[0] for i in range(4)}
    assert channels == {0, 1, 2, 3}


def test_queueing_under_back_to_back_load():
    dram = make_dram(channels=1, bw=1.0)   # 64ns per line transfer
    first = dram.access(0, 0.0)
    second = dram.access(64, 0.0)          # same instant: queues behind
    assert second > first - dram.config.t_row_miss_ns + dram.config.t_cas_ns


def test_queueing_bounded():
    dram = make_dram(channels=1, bw=1.0)
    for i in range(200):
        latency = dram.access(i * 64, 0.0)
    cfg = dram.config
    bound = (cfg.queue_depth * (cfg.t_cas_ns + 64.0)
             + cfg.t_row_miss_ns + 64.0 + 1)
    assert latency <= bound


def test_read_write_counters():
    dram = make_dram()
    dram.access(0, 0.0, is_write=True)
    dram.access(64, 0.0, is_write=False)
    assert dram.writes == 1
    assert dram.reads == 1


def test_peak_bandwidth_scales_with_channels():
    assert (make_dram(channels=4).peak_bandwidth_bytes_per_ns()
            == 2 * make_dram(channels=2).peak_bandwidth_bytes_per_ns())


def test_row_hit_rate():
    dram = make_dram(channels=1)
    dram.access(0, 0.0)
    dram.access(64, 1e6)
    dram.access(128, 2e6)
    assert dram.row_hit_rate == pytest.approx(2 / 3)


def test_reset_counters():
    dram = make_dram()
    dram.access(0, 0.0)
    dram.reset_counters()
    assert dram.reads == 0
    assert dram.row_misses == 0


def test_config_validation():
    with pytest.raises(ValueError):
        DramConfig(channels=0)
    with pytest.raises(ValueError):
        DramConfig(banks_per_channel=0)
    with pytest.raises(ValueError):
        DramConfig(row_size=32, line_size=64)
