"""Acceptance bound on strict-mode overhead.

Strict mode re-evaluates the strict-flagged invariants after *every*
simulated event, so its cost is the product of event rate and per-check
cost.  The checks are deliberately pure integer compares (the O(n)
walks are final-only) — the contract is that strict mode stays under 2x
the wall-clock of the default final-only mode on a drop-heavy fig-5
style point, keeping it usable as a routine debugging tool.
"""

import time

from repro.harness.runner import run_fixed_load
from repro.system.presets import gem5_default


def _timed_run(monkeypatch, mode: str) -> float:
    monkeypatch.setenv("REPRO_CHECK_INVARIANTS", mode)
    t0 = time.perf_counter()
    result = run_fixed_load(gem5_default(), "testpmd", 64, 40.0,
                            n_packets=500)
    elapsed = time.perf_counter() - t0
    assert result.sent > 0
    return elapsed


def test_strict_mode_under_2x_wall_clock(monkeypatch):
    # Warm imports/allocator before timing anything.
    _timed_run(monkeypatch, "off")
    # Best-of-two per mode to damp scheduler noise.
    final_s = min(_timed_run(monkeypatch, "final") for _ in range(2))
    strict_s = min(_timed_run(monkeypatch, "strict") for _ in range(2))
    ratio = strict_s / final_s
    assert ratio < 2.0, (
        f"strict mode cost {ratio:.2f}x final mode "
        f"({strict_s:.2f}s vs {final_s:.2f}s); strict checks must stay "
        f"cheap integer compares")
