"""Unit tests for node assembly and the baseline-gem5 failure modes."""

import pytest

from repro.apps.iperf import IperfServer
from repro.apps.testpmd import TestPmd as PmdApp  # noqa: N811
from repro.system.node import DpdkNode, KernelNode, NodeBuildError
from repro.system.presets import gem5_baseline, gem5_default


class TestDpdkNode:
    def test_listing2_bringup_sequence(self):
        """modprobe uio_pci_generic; devbind; hugepages; EAL probe."""
        node = DpdkNode(gem5_default())
        assert node.nic.driver_name == "uio_pci_generic"
        assert node.hugepages.nr_hugepages == 2048
        assert node.pmd is not None
        assert node.pci_bus.device("00:02.0") is node.nic

    def test_dpdk_cannot_run_on_baseline_gem5(self):
        """The paper's motivating failure: mainline gem5 cannot bring up
        a DPDK application at all."""
        with pytest.raises(NodeBuildError):
            DpdkNode(gem5_baseline())

    def test_app_installation_once(self):
        node = DpdkNode(gem5_default())
        node.install_app(PmdApp)
        with pytest.raises(NodeBuildError):
            node.install_app(PmdApp)

    def test_start_requires_app(self):
        node = DpdkNode(gem5_default())
        with pytest.raises(NodeBuildError):
            node.start()

    def test_single_traffic_source(self):
        node = DpdkNode(gem5_default())
        node.attach_loadgen()
        with pytest.raises(NodeBuildError):
            node.attach_loadgen()

    def test_mempool_covers_rings(self):
        node = DpdkNode(gem5_default())
        config = node.config
        assert node.mempool.n_mbufs >= (config.nic.rx_ring_size
                                        + config.nic.tx_ring_size)

    def test_warmup_and_reset(self):
        node = DpdkNode(gem5_default())
        node.install_app(PmdApp)
        loadgen = node.attach_loadgen()
        node.start()
        from repro.loadgen.ether_load_gen import SyntheticConfig
        loadgen.start_synthetic(SyntheticConfig(packet_size=64,
                                                rate_gbps=1.0, count=None))
        node.warmup_and_reset()
        assert loadgen.tx_packets == 0
        assert node.core.busy_ns == 0
        assert node.sim.now > 0


class TestKernelNode:
    def test_bringup(self):
        node = KernelNode(gem5_default())
        node.install_app(IperfServer)
        assert node.nic.driver_name == "e1000"
        assert node.driver is not None

    def test_kernel_ring_override(self):
        node = KernelNode(gem5_default())
        assert node.nic.rx_ring.size == gem5_default().kernel_rx_ring

    def test_kernel_works_even_on_baseline_gem5(self):
        """Kernel networking predates the paper's fixes: it must come up
        on the unmodified model too."""
        node = KernelNode(gem5_baseline())
        node.install_app(IperfServer)
        assert node.app is not None
